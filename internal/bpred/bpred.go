// Package bpred implements the branch predictors of the simulated cores
// (Table 5): an 8 Kbit gshare conditional predictor, a 32-entry return
// address stack, and a 256-entry indirect-target predictor.
package bpred

// Gshare is a global-history XOR-indexed table of 2-bit saturating counters.
// An 8 Kbit budget is 4,096 counters with 12 bits of global history.
type Gshare struct {
	counters []uint8
	history  uint64
	mask     uint64
	histBits uint
}

// NewGshare returns a gshare predictor with 2^indexBits counters.
func NewGshare(indexBits uint) *Gshare {
	n := uint64(1) << indexBits
	g := &Gshare{
		counters: make([]uint8, n),
		mask:     n - 1,
		histBits: indexBits,
	}
	// Weakly not-taken initial state.
	for i := range g.counters {
		g.counters[i] = 1
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.counters[g.index(pc)] >= 2
}

// Update trains the predictor with the resolved outcome and advances the
// global history. It returns whether the prediction was correct.
func (g *Gshare) Update(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := g.counters[i] >= 2
	if taken {
		if g.counters[i] < 3 {
			g.counters[i]++
		}
	} else if g.counters[i] > 0 {
		g.counters[i]--
	}
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histBits) - 1
	return pred == taken
}

// RAS is a fixed-depth return-address stack. Overflow wraps (overwriting the
// oldest entry), as hardware stacks do; underflow mispredicts.
type RAS struct {
	entries []uint64
	top     int
	depth   int
}

// NewRAS returns a return-address stack with n entries.
func NewRAS(n int) *RAS {
	return &RAS{entries: make([]uint64, n)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = addr
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the target of a return. The boolean reports whether the stack
// had a valid entry (an empty stack is a guaranteed misprediction).
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return addr, true
}

// Indirect is a direct-mapped indirect-target predictor.
type Indirect struct {
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewIndirect returns an n-entry indirect predictor (n must be a power of
// two).
func NewIndirect(n int) *Indirect {
	if n&(n-1) != 0 {
		panic("bpred: indirect predictor size must be a power of two")
	}
	return &Indirect{
		targets: make([]uint64, n),
		valid:   make([]bool, n),
		mask:    uint64(n - 1),
	}
}

// Predict returns the predicted target for the indirect branch at pc and
// whether the entry is valid.
func (p *Indirect) Predict(pc uint64) (uint64, bool) {
	i := (pc >> 2) & p.mask
	return p.targets[i], p.valid[i]
}

// Update trains the predictor with the actual target, returning whether the
// prediction was correct.
func (p *Indirect) Update(pc, target uint64) bool {
	i := (pc >> 2) & p.mask
	correct := p.valid[i] && p.targets[i] == target
	p.targets[i] = target
	p.valid[i] = true
	return correct
}

// Unit bundles the three predictors into one front-end unit with hit/miss
// accounting (the per-core predictor of Table 5).
type Unit struct {
	Cond *Gshare
	Ras  *RAS
	Ind  *Indirect

	CondLookups, CondMisses uint64
	RetLookups, RetMisses   uint64
	IndLookups, IndMisses   uint64
}

// NewUnit returns the Table 5 predictor: 8 Kbit gshare, 32-entry RAS,
// 256-entry indirect predictor.
func NewUnit() *Unit {
	return &Unit{
		Cond: NewGshare(12),
		Ras:  NewRAS(32),
		Ind:  NewIndirect(256),
	}
}

// Conditional resolves a conditional branch, returning whether it was
// predicted correctly.
func (u *Unit) Conditional(pc uint64, taken bool) bool {
	u.CondLookups++
	correct := u.Cond.Update(pc, taken)
	if !correct {
		u.CondMisses++
	}
	return correct
}

// Call records a call's return address.
func (u *Unit) Call(retAddr uint64) { u.Ras.Push(retAddr) }

// Return resolves a return to retAddr, returning whether it was predicted
// correctly.
func (u *Unit) Return(retAddr uint64) bool {
	u.RetLookups++
	pred, ok := u.Ras.Pop()
	correct := ok && pred == retAddr
	if !correct {
		u.RetMisses++
	}
	return correct
}

// IndirectJump resolves an indirect branch, returning whether its target was
// predicted correctly.
func (u *Unit) IndirectJump(pc, target uint64) bool {
	u.IndLookups++
	correct := u.Ind.Update(pc, target)
	if !correct {
		u.IndMisses++
	}
	return correct
}
