package bpred

import (
	"testing"
	"testing/quick"
)

func TestGshareLearnsBiasedBranch(t *testing.T) {
	g := NewGshare(12)
	misses := 0
	for i := 0; i < 10_000; i++ {
		if !g.Update(0x4000, true) {
			misses++
		}
	}
	// The global history register cycles through ~13 fresh indices while
	// warming up; after that the branch is perfectly predicted.
	if misses > 16 {
		t.Fatalf("gshare missed an always-taken branch %d times", misses)
	}
}

func TestGshareLearnsAlternatingPattern(t *testing.T) {
	// With global history, a strict alternation becomes predictable.
	g := NewGshare(12)
	misses := 0
	for i := 0; i < 10_000; i++ {
		if !g.Update(0x4000, i%2 == 0) {
			misses++
		}
	}
	if misses > 200 {
		t.Fatalf("gshare missed alternating pattern %d times", misses)
	}
}

func TestGshareRandomBranchMissesOften(t *testing.T) {
	g := NewGshare(12)
	misses := 0
	x := uint64(12345)
	for i := 0; i < 10_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		if !g.Update(0x4000, x>>63 == 1) {
			misses++
		}
	}
	if misses < 3_000 {
		t.Fatalf("gshare 'predicted' a random branch (misses=%d)", misses)
	}
}

func TestGshareCounterBoundsProperty(t *testing.T) {
	f := func(outcomes []bool, pcs []uint16) bool {
		g := NewGshare(8)
		for i, taken := range outcomes {
			pc := uint64(0x1000)
			if i < len(pcs) {
				pc = uint64(pcs[i])
			}
			g.Update(pc, taken)
		}
		for _, c := range g.counters {
			if c > 3 {
				return false
			}
		}
		return g.history < 1<<8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRASMatchedCalls(t *testing.T) {
	r := NewRAS(32)
	addrs := []uint64{0x100, 0x200, 0x300}
	for _, a := range addrs {
		r.Push(a)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		got, ok := r.Pop()
		if !ok || got != addrs[i] {
			t.Fatalf("Pop = (%#x, %v), want (%#x, true)", got, ok, addrs[i])
		}
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS returned a prediction")
	}
	r.Push(0x10)
	r.Pop()
	if _, ok := r.Pop(); ok {
		t.Fatal("drained RAS returned a prediction")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if a, ok := r.Pop(); !ok || a != 3 {
		t.Fatalf("Pop = %d", a)
	}
	if a, ok := r.Pop(); !ok || a != 2 {
		t.Fatalf("Pop = %d", a)
	}
	// The overwritten entry is gone; depth is exhausted.
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS depth should be exhausted after overflow")
	}
}

func TestIndirectLearnsTarget(t *testing.T) {
	p := NewIndirect(256)
	if _, valid := p.Predict(0x500); valid {
		t.Fatal("cold predictor claimed validity")
	}
	if p.Update(0x500, 0xAAA) {
		t.Fatal("first update cannot be correct")
	}
	if !p.Update(0x500, 0xAAA) {
		t.Fatal("repeated target should be predicted")
	}
	if p.Update(0x500, 0xBBB) {
		t.Fatal("changed target should miss")
	}
	if !p.Update(0x500, 0xBBB) {
		t.Fatal("new target should be learned")
	}
}

func TestIndirectSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	NewIndirect(100)
}

func TestUnitCounters(t *testing.T) {
	u := NewUnit()
	for i := 0; i < 100; i++ {
		u.Conditional(0x10, true)
	}
	if u.CondLookups != 100 {
		t.Fatalf("CondLookups = %d", u.CondLookups)
	}
	if u.CondMisses > 16 {
		t.Fatalf("CondMisses = %d for an always-taken branch", u.CondMisses)
	}
	u.Call(0x42)
	if !u.Return(0x42) {
		t.Fatal("matched call/return mispredicted")
	}
	if u.Return(0x42) {
		t.Fatal("unmatched return predicted")
	}
	if u.RetLookups != 2 || u.RetMisses != 1 {
		t.Fatalf("return counters %d/%d", u.RetLookups, u.RetMisses)
	}
	u.IndirectJump(0x90, 0x1000)
	if u.IndLookups != 1 || u.IndMisses != 1 {
		t.Fatalf("indirect counters %d/%d", u.IndLookups, u.IndMisses)
	}
}
