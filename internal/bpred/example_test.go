package bpred_test

import (
	"fmt"

	"reactivespec/internal/bpred"
)

// Example trains the Table 5 gshare predictor on a biased branch.
func Example() {
	u := bpred.NewUnit()
	misses := 0
	for i := 0; i < 1_000; i++ {
		if !u.Conditional(0x4ab0, true) {
			misses++
		}
	}
	fmt.Printf("1000 executions, %d mispredictions after history warm-up\n", misses)
	// Output:
	// 1000 executions, 13 mispredictions after history warm-up
}
