package behavior

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	if !Fixed(true).Outcome(0) || Fixed(false).Outcome(123) {
		t.Fatal("Fixed ignored its direction")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	for _, p := range []float64{0.0, 0.1, 0.5, 0.9, 0.999, 1.0} {
		m := Bernoulli{Seed: 42, PTaken: p}
		got := MeasuredBias(m, 200_000)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestBernoulliDeterminism(t *testing.T) {
	m := Bernoulli{Seed: 7, PTaken: 0.5}
	for n := uint64(0); n < 1000; n++ {
		if m.Outcome(n) != m.Outcome(n) {
			t.Fatalf("Outcome(%d) not pure", n)
		}
	}
}

func TestBernoulliSeedsDiffer(t *testing.T) {
	a := Bernoulli{Seed: 1, PTaken: 0.5}
	b := Bernoulli{Seed: 2, PTaken: 0.5}
	same := 0
	for n := uint64(0); n < 10_000; n++ {
		if a.Outcome(n) == b.Outcome(n) {
			same++
		}
	}
	if same > 5_500 || same < 4_500 {
		t.Fatalf("different seeds agree on %d/10000 outcomes", same)
	}
}

func TestSegmentsBoundaries(t *testing.T) {
	m := Segments{Seed: 3, Segs: []Segment{
		{Len: 100, PTaken: 1},
		{Len: 100, PTaken: 0},
		{PTaken: 1},
	}}
	for n := uint64(0); n < 100; n++ {
		if !m.Outcome(n) {
			t.Fatalf("segment 1 outcome %d not taken", n)
		}
	}
	for n := uint64(100); n < 200; n++ {
		if m.Outcome(n) {
			t.Fatalf("segment 2 outcome %d taken", n)
		}
	}
	for n := uint64(200); n < 300; n++ {
		if !m.Outcome(n) {
			t.Fatalf("final segment outcome %d not taken", n)
		}
	}
}

func TestSegmentsSingle(t *testing.T) {
	m := Segments{Seed: 9, Segs: []Segment{{PTaken: 1}}}
	if !m.Outcome(0) || !m.Outcome(1<<40) {
		t.Fatal("single-segment model should cover all indices")
	}
}

func TestInductionFlipExact(t *testing.T) {
	m := InductionFlip{FlipAt: 32_768, TakenFirst: false}
	if m.Outcome(0) || m.Outcome(32_767) {
		t.Fatal("taken before flip point")
	}
	if !m.Outcome(32_768) || !m.Outcome(1<<30) {
		t.Fatal("not taken after flip point")
	}
	r := InductionFlip{FlipAt: 10, TakenFirst: true}
	if !r.Outcome(9) || r.Outcome(10) {
		t.Fatal("TakenFirst direction wrong")
	}
}

func TestOscillatorAlternates(t *testing.T) {
	m := Oscillator{Seed: 5, Period: 1_000, PFirst: 1, PSecond: 0}
	if !m.Outcome(500) {
		t.Fatal("first phase should be taken")
	}
	if m.Outcome(1_500) {
		t.Fatal("second phase should be not-taken")
	}
	if !m.Outcome(2_500) {
		t.Fatal("third phase should be taken again")
	}
}

func TestCyclicPhases(t *testing.T) {
	m := Cyclic{Seed: 8, LenA: 900, LenB: 100, PA: 1, PB: 0}
	for _, n := range []uint64{0, 899, 1_000, 1_899} {
		if !m.Outcome(n) {
			t.Fatalf("index %d should be in the A phase", n)
		}
	}
	for _, n := range []uint64{900, 999, 1_900, 1_999} {
		if m.Outcome(n) {
			t.Fatalf("index %d should be in the B phase", n)
		}
	}
}

func TestCyclicZeroLens(t *testing.T) {
	m := Cyclic{Seed: 8, PA: 1}
	if !m.Outcome(12) {
		t.Fatal("degenerate cyclic should fall back to PA")
	}
}

func TestBurstyBaseRate(t *testing.T) {
	m := Bursty{Seed: 4, PTaken: 0.999, PBurst: 0.01, BurstLen: 20, PInBurst: 0.5}
	bias := MeasuredBias(m, 300_000)
	// Expected ≈ 0.99×0.999 + 0.01×0.5 ≈ 0.994.
	if bias < 0.985 || bias > 0.999 {
		t.Fatalf("bursty long-run bias = %v", bias)
	}
}

func TestDriftMovesTowardEnd(t *testing.T) {
	m := Drift{Seed: 11, PStart: 1.0, PEnd: 0.0, Span: 100_000}
	early := MeasuredBias(m, 10_000)
	var lateTaken int
	for n := uint64(200_000); n < 210_000; n++ {
		if m.Outcome(n) {
			lateTaken++
		}
	}
	if early < 0.9 {
		t.Fatalf("drift early bias = %v", early)
	}
	if lateTaken > 100 {
		t.Fatalf("drift late taken count = %d", lateTaken)
	}
}

func TestInverted(t *testing.T) {
	m := Inverted{M: Fixed(true)}
	if m.Outcome(0) {
		t.Fatal("inverted fixed-true should be false")
	}
}

func TestMeasuredBiasEmpty(t *testing.T) {
	if MeasuredBias(Fixed(true), 0) != 0 {
		t.Fatal("MeasuredBias(_, 0) should be 0")
	}
}

func TestModelsArePureProperty(t *testing.T) {
	// Property: every model is a pure function of its execution index.
	models := []Model{
		Bernoulli{Seed: 1, PTaken: 0.5},
		Segments{Seed: 2, Segs: []Segment{{Len: 50, PTaken: 0.9}, {PTaken: 0.1}}},
		Oscillator{Seed: 3, Period: 17, PFirst: 0.9, PSecond: 0.1},
		Cyclic{Seed: 4, LenA: 31, LenB: 7, PA: 0.99, PB: 0.3},
		Bursty{Seed: 5, PTaken: 0.99, PBurst: 0.1, BurstLen: 4, PInBurst: 0.5},
		Drift{Seed: 6, PStart: 0.2, PEnd: 0.8, Span: 100},
		InductionFlip{FlipAt: 13, TakenFirst: true},
	}
	f := func(n uint64, shuffle []uint16) bool {
		for _, m := range models {
			want := m.Outcome(n)
			// Interleave other queries; purity means they cannot
			// disturb the answer.
			for _, s := range shuffle {
				m.Outcome(uint64(s))
			}
			if m.Outcome(n) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdEdges(t *testing.T) {
	if threshold(-1) != 0 {
		t.Fatal("negative probability should clamp to 0")
	}
	if threshold(2) != math.MaxUint64 {
		t.Fatal("probability > 1 should clamp to max")
	}
}
