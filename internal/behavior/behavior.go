// Package behavior provides deterministic models of per-branch outcome
// sequences. A model maps the execution index of a static branch (0, 1, 2, …)
// to a taken/not-taken outcome.
//
// The models encode the behavior classes characterized in Section 2 of the
// paper: stably biased branches, stably unbiased branches, branches whose
// behavior changes mid-run (bias softening, complete reversal, induction-
// variable flips, late-onset bias), bursty branches, and oscillators. All
// randomness is derived by hashing (seed, execution index), so every model is
// a pure function: sequences are reproducible and support random access,
// which the property tests exploit.
package behavior

import "math"

// Model maps a branch's execution index to its outcome.
//
// Implementations must be pure: Outcome(n) must always return the same value
// for the same n, independent of call order.
type Model interface {
	// Outcome reports whether the n-th execution (0-based) is taken.
	Outcome(n uint64) bool
}

// mix64 is the splitmix64 finalizer; it turns (seed, n) into 64 well-mixed
// bits, which is the entire source of randomness in this package.
func mix64(seed, n uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// threshold converts a probability in [0, 1] to a uint64 comparison bound.
func threshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.MaxUint64
	default:
		return uint64(p * float64(math.MaxUint64))
	}
}

// coin reports true with probability p, deterministically in (seed, n).
func coin(seed, n uint64, p float64) bool {
	return mix64(seed, n) < threshold(p)
}

// Fixed is a branch that always resolves in one direction.
type Fixed bool

// Outcome implements Model.
func (f Fixed) Outcome(uint64) bool { return bool(f) }

// Bernoulli is a stationary branch: every execution is taken independently
// with probability PTaken.
type Bernoulli struct {
	Seed   uint64
	PTaken float64
}

// Outcome implements Model.
func (b Bernoulli) Outcome(n uint64) bool { return coin(b.Seed, n, b.PTaken) }

// Segment is one phase of a piecewise-stationary branch.
type Segment struct {
	// Len is the number of executions this segment covers. A zero Len on
	// the final segment means "for the rest of the run".
	Len uint64
	// PTaken is the taken probability within the segment.
	PTaken float64
}

// Segments is a piecewise-stationary branch: its taken probability changes at
// fixed execution indices. This directly expresses the Figure 3 behaviors:
// a branch 100% biased for its first 20,000 executions that then reverses is
// Segments{{20000, 1.0}, {0, 0.0}}.
type Segments struct {
	Seed uint64
	Segs []Segment
}

// Outcome implements Model. Executions beyond the last segment use the last
// segment's probability.
func (s Segments) Outcome(n uint64) bool {
	rem := n
	for i, seg := range s.Segs {
		last := i == len(s.Segs)-1
		if last || seg.Len == 0 || rem < seg.Len {
			return coin(s.Seed, n, seg.PTaken)
		}
		rem -= seg.Len
	}
	return false
}

// InductionFlip models the branch described in Section 2.3 whose outcome is a
// pure function of a loop induction variable: not taken for the first FlipAt
// executions, then taken forever (or the reverse if TakenFirst is set).
type InductionFlip struct {
	FlipAt     uint64
	TakenFirst bool
}

// Outcome implements Model.
func (f InductionFlip) Outcome(n uint64) bool {
	before := n < f.FlipAt
	return before == f.TakenFirst
}

// Oscillator alternates between two stationary phases of fixed length,
// modeling the small population of branches that flip between biased
// directions many times over a run.
type Oscillator struct {
	Seed    uint64
	Period  uint64 // executions per phase; must be > 0
	PFirst  float64
	PSecond float64
}

// Outcome implements Model.
func (o Oscillator) Outcome(n uint64) bool {
	p := o.PFirst
	if o.Period > 0 && (n/o.Period)%2 == 1 {
		p = o.PSecond
	}
	return coin(o.Seed, n, p)
}

// Bursty is a branch that is highly biased except for occasional bursts of
// contrary outcomes. Executions are divided into blocks of BurstLen; each
// block independently is a burst with probability PBurst. This models the
// short misspeculation bursts the eviction hysteresis must tolerate.
type Bursty struct {
	Seed     uint64
	PTaken   float64 // probability outside bursts
	PBurst   float64 // probability a given block is a burst
	BurstLen uint64  // executions per block; must be > 0
	PInBurst float64 // taken probability inside a burst
}

// Outcome implements Model.
func (b Bursty) Outcome(n uint64) bool {
	// Burst placement is derived from an independent hash stream
	// (seed^burstSalt) so it does not correlate with outcomes.
	const burstSalt = 0xb52a9d5c3a1e0f77
	if b.BurstLen > 0 && coin(b.Seed^burstSalt, n/b.BurstLen, b.PBurst) {
		return coin(b.Seed, n, b.PInBurst)
	}
	return coin(b.Seed, n, b.PTaken)
}

// Cyclic is an asymmetric oscillator: each cycle is LenA executions at PA
// followed by LenB executions at PB. With a long highly-biased A phase and a
// short noisy B phase it models the branches that are repeatedly evicted and
// re-selected — brief bursts of contrary outcomes evict them, after which
// their restored bias earns re-selection, until the oscillation limit retires
// them.
type Cyclic struct {
	Seed uint64
	LenA uint64 // must be > 0
	LenB uint64
	PA   float64
	PB   float64
}

// Outcome implements Model.
func (c Cyclic) Outcome(n uint64) bool {
	cycle := c.LenA + c.LenB
	if cycle == 0 {
		return coin(c.Seed, n, c.PA)
	}
	if n%cycle < c.LenA {
		return coin(c.Seed, n, c.PA)
	}
	return coin(c.Seed, n, c.PB)
}

// Drift linearly interpolates the taken probability from PStart to PEnd over
// Span executions, then holds PEnd. It models gradual bias softening
// (Figure 6's "bias direction stays the same, but the percentage reduces").
type Drift struct {
	Seed   uint64
	PStart float64
	PEnd   float64
	Span   uint64
}

// Outcome implements Model.
func (d Drift) Outcome(n uint64) bool {
	p := d.PEnd
	if d.Span > 0 && n < d.Span {
		frac := float64(n) / float64(d.Span)
		p = d.PStart + (d.PEnd-d.PStart)*frac
	}
	return coin(d.Seed, n, p)
}

// Inverted negates another model, turning a mostly-taken branch into a
// mostly-not-taken one. Used to flip input-dependent branches between the
// profile and evaluation inputs.
type Inverted struct {
	M Model
}

// Outcome implements Model.
func (v Inverted) Outcome(n uint64) bool { return !v.M.Outcome(n) }

// MeasuredBias returns the fraction of the first n executions that are taken.
// It is a test and calibration helper.
func MeasuredBias(m Model, n uint64) float64 {
	if n == 0 {
		return 0
	}
	taken := uint64(0)
	for i := uint64(0); i < n; i++ {
		if m.Outcome(i) {
			taken++
		}
	}
	return float64(taken) / float64(n)
}
