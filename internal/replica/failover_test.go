package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"reactivespec/internal/server"
)

// TestFailoverBitwiseIdentical is the subsystem's end-to-end claim: kill the
// primary mid-run, promote the follower, redirect the client, and the
// surviving decision stream is bitwise-identical to an uncrashed in-process
// control. The client resumes from the promoted replica's /v1/cursor event
// count, exactly as reactiveload -failover does.
func TestFailoverBitwiseIdentical(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, seed := range []uint64{3, 11} {
			t.Run(fmt.Sprintf("shards=%d,seed=%d", shards, seed), func(t *testing.T) {
				runFailover(t, shards, seed)
			})
		}
	}
}

func runFailover(t *testing.T, shards int, seed uint64) {
	const (
		batchEvents = 250
		batches     = 40
		killAfter   = 25 // batches ingested into the primary before the crash
	)
	events := synthEvents(batches*batchEvents, seed)
	const program = "gzip"

	// The uncrashed control: one in-process table sees the whole stream.
	tab := server.NewTable(testParams(), 1)
	var instr uint64
	control := make([]byte, 0, len(events))
	for _, ev := range events {
		instr += uint64(ev.Gap)
		control = append(control, tab.Apply(program, ev, instr).Encode())
	}

	p := startPrimary(t, shards)
	r := startReplica(t, shards, p.ln.Addr().String(), 8)
	ctx := context.Background()

	// Phase 1: drive the primary. Every acked decision is recorded at its
	// absolute stream index.
	got := make([]byte, len(events))
	idx := 0
	for b := 0; b < killAfter; b++ {
		ds, err := p.client.Ingest(ctx, program, events[idx:idx+batchEvents])
		if err != nil {
			t.Fatalf("primary ingest batch %d: %v", b, err)
		}
		for i, d := range ds {
			got[idx+i] = d.Encode()
		}
		idx += batchEvents
	}

	// The crash: HTTP front end, shipper, and replication listener all die
	// at once, with no drain. The follower holds whatever it holds.
	p.kill()

	// Failover: promote the replica, learn the resume point, redirect.
	res, err := r.client.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if res.Mode != "primary" {
		t.Fatalf("promote result %+v", res)
	}
	if _, err := r.client.Promote(ctx); !errors.Is(err, server.ErrNotReplica) {
		t.Fatalf("second promote: %v, want ErrNotReplica", err)
	}
	cur, err := r.client.Cursor(ctx, program)
	if err != nil {
		t.Fatalf("cursor: %v", err)
	}
	resume := int(cur.Events)
	if resume > idx {
		t.Fatalf("replica claims %d events, primary only acked %d", resume, idx)
	}
	if resume%batchEvents != 0 {
		t.Fatalf("resume point %d is not at a record boundary", resume)
	}

	// Phase 2: re-send everything the replica does not hold, from the
	// cursor's resume point — including acked-but-unreplicated primary
	// batches, which the client knows only the replica's cursor can
	// adjudicate.
	for off := resume; off < len(events); off += batchEvents {
		ds, err := r.client.Ingest(ctx, program, events[off:off+batchEvents])
		if err != nil {
			t.Fatalf("replica ingest at offset %d: %v", off, err)
		}
		for i, d := range ds {
			got[off+i] = d.Encode()
		}
	}

	// Every decision — primary-acked prefix and post-failover tail — is
	// bitwise-identical to the uncrashed control.
	if !bytes.Equal(got, control) {
		for i := range got {
			if got[i] != control[i] {
				t.Fatalf("decision %d diverges after failover (resume point %d): got %#x want %#x",
					i, resume, got[i], control[i])
			}
		}
	}
}
