package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
)

// Follower states, in the order a healthy session moves through them.
const (
	// StateConnecting: dialing the primary (including between reconnect
	// attempts after a transient failure).
	StateConnecting = "connecting"
	// StateCatchup: applying historical records; the primary's durable
	// boundary is still ahead.
	StateCatchup = "catchup"
	// StateStreaming: applied up to the primary's durable boundary as of the
	// last shipped record; records now arrive as the primary fsyncs them.
	StateStreaming = "streaming"
	// StateSealed: Seal was called (promotion); no further record will be
	// applied.
	StateSealed = "sealed"
	// StateFailed: a permanent error (parameter mismatch, compaction gap,
	// sequence divergence) stopped replication; Err() has the cause.
	StateFailed = "failed"
)

const (
	// reconnectMin/Max bound the dial backoff after transient failures.
	reconnectMin = 50 * time.Millisecond
	reconnectMax = 2 * time.Second
	// followerAckTimeout bounds the handshake round trip.
	followerAckTimeout = 10 * time.Second
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// Addr is the primary's replication listener address.
	Addr string
	// ParamsHash is the replica's controller-parameter hash; the primary
	// rejects a mismatch at hello time.
	ParamsHash uint64
	// NextSeq returns the next WAL sequence the replica needs — the resume
	// point of every (re)connect. With a replica server this is its own
	// WAL's NextSeq: the follower logs records before applying, so the
	// resume point is exactly what survived locally.
	NextSeq func() uint64
	// Apply applies one shipped record. It must log-then-apply (the replica
	// server's ApplyReplicated) so NextSeq advances with it. traceID is the
	// record's span-trace context (zero when the originating batch was
	// untraced or the primary speaks replication proto 1).
	Apply func(program string, events []trace.Event, traceID uint64) error
	// Window is the requested credit window (0 = primary's default).
	Window uint32
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, records trace-less "repl_connect" spans timing
	// each dial-plus-handshake, so reconnect storms show up in span dumps.
	Trace *obs.Tracer
	// Dial, when non-nil, replaces the default TCP dial (tests).
	Dial func(ctx context.Context) (net.Conn, error)
}

// Follower maintains a replication session with a primary: connect, catch
// up, stream, reconnect on transient failures — until sealed for promotion
// or stopped by a permanent error.
type Follower struct {
	cfg    FollowerConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	conn   net.Conn // live session's connection, for Seal to interrupt
	err    error    // permanent failure, once set
	sealed bool

	state           atomic.Value // string
	lastApplied     atomic.Uint64
	lagRecords      atomic.Uint64
	lagNanos        atomic.Int64
	receivedRecords atomic.Uint64
	receivedEvents  atomic.Uint64
	receivedBytes   atomic.Uint64
	reconnects      atomic.Uint64

	done chan struct{}
}

// errPermanent wraps session failures that reconnecting cannot fix.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// StartFollower starts replicating from cfg.Addr and returns immediately;
// the session runs on its own goroutine. Done() closes when the follower
// stops for good (sealed or failed); Err() reports a permanent failure.
func StartFollower(cfg FollowerConfig) *Follower {
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	f.state.Store(StateConnecting)
	f.lastApplied.Store(cfg.NextSeq())
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer close(f.done)
		// The pprof labels make follower CPU samples attributable per
		// transport in -debug-addr profiles.
		pprof.Do(context.Background(), pprof.Labels(
			"program", "all", "transport", "replication", "role", "replica",
		), func(context.Context) {
			f.run()
		})
	}()
	return f
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// State names the follower's current phase (see the State constants).
func (f *Follower) State() string { return f.state.Load().(string) }

// LastApplied returns the sequence number one past the last applied record.
func (f *Follower) LastApplied() uint64 { return f.lastApplied.Load() }

// Err returns the permanent failure that stopped the follower, or nil.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Done closes when the follower has stopped for good: sealed, or failed
// permanently.
func (f *Follower) Done() <-chan struct{} { return f.done }

// Seal stops replication and returns the sequence one past the last applied
// record. It blocks until no further Apply call can be in flight — exactly
// what Server.Promote needs before flipping writable — and is idempotent.
// Sealing a follower that already failed permanently still succeeds: failover
// to whatever replicated is precisely the promote-under-duress scenario.
func (f *Follower) Seal() (uint64, error) {
	f.mu.Lock()
	f.sealed = true
	if f.conn != nil {
		f.conn.Close() // wake a blocked frame read
	}
	f.mu.Unlock()
	f.cancel()
	f.wg.Wait()
	f.state.Store(StateSealed)
	return f.lastApplied.Load(), nil
}

// RegisterMetrics exposes the follower's lag and throughput on reg.
func (f *Follower) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector("reactived_replication_follower", func(e *obs.Emitter) {
		e.Family("reactived_replication_lag_records", "gauge",
			"Records the primary had made durable but this replica had not applied, as of the last shipped record.")
		e.SampleUint(f.lagRecords.Load())
		e.Family("reactived_replication_lag_seconds", "gauge",
			"Age of the last shipped record when it was applied (primary clock minus replica clock skew applies).")
		e.Sample(float64(f.lagNanos.Load()) / 1e9)
		e.Family("reactived_replication_received_records_total", "counter", "Records received from the primary.")
		e.SampleUint(f.receivedRecords.Load())
		e.Family("reactived_replication_received_events_total", "counter", "Events received from the primary.")
		e.SampleUint(f.receivedEvents.Load())
		e.Family("reactived_replication_received_bytes_total", "counter", "Bytes of record payloads received.")
		e.SampleUint(f.receivedBytes.Load())
		e.Family("reactived_replication_reconnects_total", "counter", "Replication session reconnect attempts.")
		e.SampleUint(f.reconnects.Load())
		e.Family("reactived_replication_state", "gauge", "Follower session state, one-hot by state label.")
		cur := f.State()
		for _, st := range []string{StateConnecting, StateCatchup, StateStreaming, StateSealed, StateFailed} {
			v := uint64(0)
			if st == cur {
				v = 1
			}
			e.SampleUint(v, "state", st)
		}
	})
}

// run is the reconnect loop: each session either ends transiently (dial
// failure, connection loss, primary draining/restarting) and is retried with
// backoff, or permanently (mismatch, compaction gap, divergence) and stops
// the follower.
func (f *Follower) run() {
	backoff := reconnectMin
	for {
		if f.ctx.Err() != nil {
			return
		}
		err := f.session()
		if f.ctx.Err() != nil {
			return
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			f.mu.Lock()
			f.err = perm.err
			f.mu.Unlock()
			f.state.Store(StateFailed)
			f.logf("replication: follower stopped: %v", perm.err)
			return
		}
		f.state.Store(StateConnecting)
		f.reconnects.Add(1)
		if err != nil {
			f.logf("replication: session ended (%v); reconnecting in %v", err, backoff)
		}
		select {
		case <-time.After(backoff):
		case <-f.ctx.Done():
			return
		}
		if backoff *= 2; backoff > reconnectMax {
			backoff = reconnectMax
		}
	}
}

// dial opens the session connection.
func (f *Follower) dial() (net.Conn, error) {
	if f.cfg.Dial != nil {
		return f.cfg.Dial(f.ctx)
	}
	var d net.Dialer
	return d.DialContext(f.ctx, "tcp", f.cfg.Addr)
}

// session runs one connection to completion. A nil or plain error asks the
// run loop to reconnect; an errPermanent stops the follower.
func (f *Follower) session() error {
	conn, err := f.dial()
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.sealed {
		f.mu.Unlock()
		conn.Close()
		return nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	connectStart := time.Now()
	from := f.cfg.NextSeq()
	conn.SetDeadline(time.Now().Add(followerAckTimeout))
	hello := trace.AppendReplHello(nil, trace.ReplHello{
		Proto: trace.ReplicationProtoVersion, ParamsHash: f.cfg.ParamsHash,
		From: from, Window: f.cfg.Window,
	})
	if _, err := bw.Write(hello); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	ack, err := trace.ReadReplAck(br)
	if err != nil {
		return err
	}
	if ack.Err != nil {
		return f.classify(*ack.Err)
	}
	// A proto-1 primary acks 1 and ships trace-less records; anything
	// outside [min, current] is a peer this build cannot speak to.
	proto := ack.Proto
	if proto < trace.ReplicationProtoMin || proto > trace.ReplicationProtoVersion {
		return errPermanent{fmt.Errorf("replica: primary acked protocol %d, follower supports [%d, %d]",
			proto, trace.ReplicationProtoMin, trace.ReplicationProtoVersion)}
	}
	conn.SetDeadline(time.Time{})
	if f.cfg.Trace.SampleInfra() {
		f.cfg.Trace.RecordInfra("repl_connect", connectStart, time.Since(connectStart))
	}
	if from < ack.Next {
		f.state.Store(StateCatchup)
		f.logf("replication: catching up [%d, %d) from %s", from, ack.Next, f.cfg.Addr)
	} else {
		f.state.Store(StateStreaming)
	}

	var (
		scratch  []byte
		events   []trace.Event
		ackBuf   []byte
		expected = from
	)
	for {
		typ, payload, newScratch, err := trace.ReadReplFrame(br, scratch)
		scratch = newScratch
		if err != nil {
			return err
		}
		switch typ {
		case trace.ReplFrameRecord:
			rec, err := trace.DecodeReplRecord(payload, proto)
			if err != nil {
				return fmt.Errorf("replica: decoding shipped record: %w", err)
			}
			if rec.Seq != expected {
				// The primary and replica disagree about the sequence;
				// applying anyway would silently diverge decisions.
				return errPermanent{fmt.Errorf(
					"replica: primary shipped seq %d, replica expected %d — logs have diverged", rec.Seq, expected)}
			}
			events, err = trace.DecodeFrameAppend(rec.Frame, events[:0])
			if err != nil {
				return errPermanent{fmt.Errorf("replica: shipped record %d does not decode: %w", rec.Seq, err)}
			}
			if err := f.cfg.Apply(rec.Program, events, rec.Trace); err != nil {
				return errPermanent{fmt.Errorf("replica: applying record %d: %w", rec.Seq, err)}
			}
			expected = rec.Seq + 1
			f.lastApplied.Store(expected)
			f.receivedRecords.Add(1)
			f.receivedEvents.Add(uint64(len(events)))
			f.receivedBytes.Add(uint64(len(payload)))
			if rec.Durable > expected {
				f.lagRecords.Store(rec.Durable - expected)
				f.state.Store(StateCatchup)
			} else {
				f.lagRecords.Store(0)
				f.state.Store(StateStreaming)
			}
			if lag := time.Now().UnixNano() - int64(rec.ShippedUnixNanos); lag > 0 {
				f.lagNanos.Store(lag)
			} else {
				f.lagNanos.Store(0)
			}
			ackBuf = trace.AppendReplAckFrame(ackBuf[:0], expected)
			conn.SetWriteDeadline(time.Now().Add(shipWriteTimeout))
			if _, err := bw.Write(ackBuf); err != nil {
				return err
			}
			// Flush acks only when no further record is already buffered: a
			// full catch-up stream acks in batches, the live tail acks
			// immediately.
			if br.Buffered() == 0 {
				if err := bw.Flush(); err != nil {
					return err
				}
			}
		case trace.StreamFrameTerminal:
			se, err := trace.DecodeStreamError(payload)
			if err != nil {
				return fmt.Errorf("replica: malformed terminal frame: %w", err)
			}
			return f.classify(se)
		default:
			return fmt.Errorf("replica: unexpected replication frame type %q", typ)
		}
	}
}

// classify sorts a primary-sent StreamError into permanent (stop) and
// transient (reconnect) failures.
func (f *Follower) classify(se trace.StreamError) error {
	switch se.Code {
	case trace.StreamCodeParamMismatch, trace.StreamCodeProtoMismatch,
		trace.ReplCodeCompacted, trace.StreamCodeMalformed:
		return errPermanent{fmt.Errorf("replica: primary rejected the session: %w", &se)}
	}
	// draining, internal, bye: the primary is going away or restarting;
	// reconnect and resume.
	return fmt.Errorf("replica: session terminated by primary: %w", &se)
}
