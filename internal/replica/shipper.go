// Package replica ships a primary's write-ahead log to read-only follower
// daemons and keeps them promotable: the Shipper serves the segmented log
// over a raw TCP listener (historical catch-up first, then live appends as
// they become durable), and the Follower connects out, applies every shipped
// record through the replica server's log-before-apply path, and can be
// sealed at any moment to promote the replica into a primary.
//
// The wire format lives in internal/trace (replication.go): a pinned
// handshake — protocol revision, controller-parameter hash, resume sequence —
// then 'S' record frames one way and cumulative 'A' acks the other, bounded
// by a credit window so a slow follower exerts backpressure instead of
// growing an unbounded send queue.
//
// Replication never ships a record the primary has not fsynced: the shipper
// caps itself at the log's durable boundary (wal.Log.DurableSeq), so a
// promoted follower can only ever be a prefix of what the primary
// acknowledged — never a superset containing writes the primary would lose in
// a crash. Under wal.SyncNever the boundary only advances on segment rotation
// and explicit syncs, and replication inherits that granularity.
package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

const (
	// DefaultShipWindow is the credit window granted when the follower's
	// hello does not request one: how many shipped records may be
	// unacknowledged before the shipper pauses.
	DefaultShipWindow = 256
	// MaxShipWindow caps the grantable window.
	MaxShipWindow = 4096
	// helloTimeout bounds how long a new connection may take to present its
	// hello before the shipper hangs up.
	helloTimeout = 10 * time.Second
	// shipWriteTimeout bounds every record write so a dead follower cannot
	// pin a session goroutine.
	shipWriteTimeout = 30 * time.Second
	// shipPollInterval is the fallback poll for durability advances, in case
	// a subscription notification is ever missed.
	shipPollInterval = 250 * time.Millisecond
)

// ShipperConfig configures a Shipper.
type ShipperConfig struct {
	// Log is the primary's write-ahead log. Records are shipped only once
	// they are below Log.DurableSeq().
	Log *wal.Log
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, records a "ship" span for every record whose
	// ingest batch was traced (the tracer's seq→trace side table re-attaches
	// the trace ID the WAL does not store).
	Trace *obs.Tracer
}

// Shipper serves the primary side of replication sessions: one goroutine per
// attached follower, each running an independent follow-mode WAL reader.
type Shipper struct {
	cfg ShipperConfig

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	states map[*shipSession]struct{}
	closed bool
	wg     sync.WaitGroup

	sessions       atomic.Int64
	shippedRecords atomic.Uint64
	shippedBytes   atomic.Uint64
	rejectedHellos atomic.Uint64
}

// shipSession is one attached follower's live lag state, kept for the
// per-follower gauges: how many durable records it still lacks, and how old
// its oldest unacknowledged record is.
type shipSession struct {
	addr  string
	acked atomic.Uint64

	mu       sync.Mutex
	inflight []shipMark // FIFO: shipped, not yet acked
}

// shipMark remembers when one record left the primary.
type shipMark struct {
	seq uint64
	at  time.Time
}

// noteShipped records that seq left the wire now.
func (ss *shipSession) noteShipped(seq uint64, at time.Time) {
	ss.mu.Lock()
	ss.inflight = append(ss.inflight, shipMark{seq: seq, at: at})
	ss.mu.Unlock()
}

// noteAcked drops every in-flight mark the cumulative ack covers.
func (ss *shipSession) noteAcked(ackedSeq uint64) {
	ss.mu.Lock()
	i := 0
	for i < len(ss.inflight) && ss.inflight[i].seq < ackedSeq {
		i++
	}
	ss.inflight = ss.inflight[i:]
	ss.mu.Unlock()
}

// lagSeconds is the age of the oldest unacknowledged shipped record, zero
// when the follower is fully caught up with everything shipped.
func (ss *shipSession) lagSeconds(now time.Time) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if len(ss.inflight) == 0 {
		return 0
	}
	return now.Sub(ss.inflight[0].at).Seconds()
}

// NewShipper returns a shipper over cfg.Log. Serve it on one or more
// listeners; Close stops everything.
func NewShipper(cfg ShipperConfig) *Shipper {
	return &Shipper{
		cfg:    cfg,
		lns:    make(map[net.Listener]struct{}),
		conns:  make(map[net.Conn]struct{}),
		states: make(map[*shipSession]struct{}),
	}
}

func (sh *Shipper) logf(format string, args ...any) {
	if sh.cfg.Logf != nil {
		sh.cfg.Logf(format, args...)
	}
}

// Serve accepts replication sessions on ln until the listener closes (or
// Close is called). Each connection is handled on its own goroutine.
func (sh *Shipper) Serve(ln net.Listener) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		ln.Close()
		return errors.New("replica: shipper closed")
	}
	sh.lns[ln] = struct{}{}
	sh.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			sh.mu.Lock()
			delete(sh.lns, ln)
			sh.mu.Unlock()
			return err
		}
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			conn.Close()
			return errors.New("replica: shipper closed")
		}
		sh.conns[conn] = struct{}{}
		sh.wg.Add(1)
		sh.mu.Unlock()
		go func() {
			defer sh.wg.Done()
			sh.serveConn(conn)
			sh.mu.Lock()
			delete(sh.conns, conn)
			sh.mu.Unlock()
		}()
	}
}

// Close stops the shipper: listeners and live sessions close, and Close
// returns once every session goroutine has exited.
func (sh *Shipper) Close() {
	sh.mu.Lock()
	sh.closed = true
	for ln := range sh.lns {
		ln.Close()
	}
	for conn := range sh.conns {
		conn.Close()
	}
	sh.mu.Unlock()
	sh.wg.Wait()
}

// Sessions reports the number of currently attached followers.
func (sh *Shipper) Sessions() int64 { return sh.sessions.Load() }

// Shipped reports lifetime shipped record and byte totals.
func (sh *Shipper) Shipped() (records, bytes uint64) {
	return sh.shippedRecords.Load(), sh.shippedBytes.Load()
}

// RegisterMetrics exposes the shipper's counters on reg.
func (sh *Shipper) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCollector("reactived_replication_shipper", func(e *obs.Emitter) {
		e.Family("reactived_replication_sessions", "gauge", "Attached replication followers.")
		e.SampleUint(uint64(sh.sessions.Load()))
		e.Family("reactived_replication_shipped_records_total", "counter", "WAL records shipped to followers.")
		e.SampleUint(sh.shippedRecords.Load())
		e.Family("reactived_replication_shipped_bytes_total", "counter", "Bytes of record frames shipped to followers.")
		e.SampleUint(sh.shippedBytes.Load())
		e.Family("reactived_replication_rejected_hellos_total", "counter", "Replication hellos rejected at handshake.")
		e.SampleUint(sh.rejectedHellos.Load())

		// Per-follower lag, in records and in seconds, labeled by the
		// follower's remote address. Records lag compares the primary's
		// durable boundary against the follower's cumulative ack; seconds
		// lag is the age of the oldest record shipped but not yet acked.
		sh.mu.Lock()
		states := make([]*shipSession, 0, len(sh.states))
		for ss := range sh.states {
			states = append(states, ss)
		}
		sh.mu.Unlock()
		sort.Slice(states, func(i, j int) bool { return states[i].addr < states[j].addr })
		durable := sh.cfg.Log.DurableSeq()
		now := time.Now()
		e.Family("reactived_replication_follower_lag_records", "gauge",
			"Durable WAL records the follower has not yet acknowledged, per attached follower.")
		for _, ss := range states {
			lag := uint64(0)
			if acked := ss.acked.Load(); durable > acked {
				lag = durable - acked
			}
			e.SampleUint(lag, "follower", ss.addr)
		}
		e.Family("reactived_replication_follower_lag_seconds", "gauge",
			"Age of the oldest shipped-but-unacknowledged record, per attached follower.")
		for _, ss := range states {
			e.Sample(ss.lagSeconds(now), "follower", ss.addr)
		}
	})
}

// FollowerLag reports one attached follower's lag in records and seconds;
// ok is false when no follower matches addr ("" matches any single
// follower). Tests and the expvar block use it without a registry scrape.
func (sh *Shipper) FollowerLag(addr string) (records uint64, seconds float64, ok bool) {
	sh.mu.Lock()
	var match *shipSession
	for ss := range sh.states {
		if addr == "" || ss.addr == addr {
			match = ss
			break
		}
	}
	sh.mu.Unlock()
	if match == nil {
		return 0, 0, false
	}
	durable := sh.cfg.Log.DurableSeq()
	if acked := match.acked.Load(); durable > acked {
		records = durable - acked
	}
	return records, match.lagSeconds(time.Now()), true
}

// serveConn runs one replication session: hello, catch-up, live tail. The
// pprof labels make shipper CPU samples attributable per transport in
// -debug-addr profiles.
func (sh *Shipper) serveConn(conn net.Conn) {
	pprof.Do(context.Background(), pprof.Labels(
		"program", "all", "transport", "replication", "role", "primary",
	), func(context.Context) {
		sh.serveConnLabeled(conn)
	})
}

func (sh *Shipper) serveConnLabeled(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	var wireBuf []byte
	writeWire := func(b []byte) error {
		conn.SetWriteDeadline(time.Now().Add(shipWriteTimeout))
		_, err := bw.Write(b)
		return err
	}
	reject := func(code, msg string) {
		sh.rejectedHellos.Add(1)
		wireBuf = trace.AppendReplAck(wireBuf[:0], trace.ReplAck{Err: &trace.StreamError{Code: code, Msg: msg}})
		if writeWire(wireBuf) == nil {
			bw.Flush()
		}
	}

	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	hello, err := trace.ReadReplHello(br)
	if err != nil {
		return // no coherent hello; nothing to answer in
	}
	log := sh.cfg.Log
	oldest, next := log.OldestSeq(), log.NextSeq()
	proto, protoOK := trace.NegotiateReplProto(hello.Proto)
	switch {
	case !protoOK:
		reject(trace.StreamCodeProtoMismatch, fmt.Sprintf(
			"follower speaks replication protocol %d, primary supports [%d, %d]",
			hello.Proto, trace.ReplicationProtoMin, trace.ReplicationProtoVersion))
		return
	case hello.ParamsHash != log.ParamsHash():
		reject(trace.StreamCodeParamMismatch, fmt.Sprintf(
			"follower controller params hash %016x != primary %016x", hello.ParamsHash, log.ParamsHash()))
		return
	case hello.From < oldest:
		reject(trace.ReplCodeCompacted, fmt.Sprintf(
			"records [%d, %d) were compacted away; the primary retains [%d, %d) — "+
				"a full resync (fresh snapshot, empty wal directory) is required", hello.From, oldest, oldest, next))
		return
	case hello.From > next:
		reject(trace.StreamCodeMalformed, fmt.Sprintf(
			"from-sequence %d is beyond the log end %d (the follower holds records this primary never wrote)",
			hello.From, next))
		return
	}
	window := hello.Window
	if window == 0 {
		window = DefaultShipWindow
	}
	if window > MaxShipWindow {
		window = MaxShipWindow
	}

	r, err := wal.NewReader(wal.ReaderOptions{
		Dir:        log.Dir(),
		ParamsHash: log.ParamsHash(),
		From:       hello.From,
		Follow:     true,
		FrameOnly:  true,
	})
	if err != nil {
		// The hello-time range check raced a compaction; the message the
		// reader carries already names the full-resync remedy.
		reject(trace.ReplCodeCompacted, err.Error())
		return
	}
	defer r.Close()

	wireBuf = trace.AppendReplAck(wireBuf[:0], trace.ReplAck{
		Proto: proto, Window: window, Oldest: oldest, Next: next,
	})
	if writeWire(wireBuf) != nil || bw.Flush() != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	sh.sessions.Add(1)
	defer sh.sessions.Add(-1)
	state := &shipSession{addr: conn.RemoteAddr().String()}
	state.acked.Store(hello.From)
	sh.mu.Lock()
	sh.states[state] = struct{}{}
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		delete(sh.states, state)
		sh.mu.Unlock()
	}()
	sh.logf("replication: follower %s attached from seq %d (window %d, proto %d)",
		conn.RemoteAddr(), hello.From, window, proto)

	terminal := func(code, msg string) {
		wireBuf = trace.AppendSessionFrame(wireBuf[:0], trace.StreamFrameTerminal,
			trace.AppendStreamError(nil, trace.StreamError{Code: code, Msg: msg}))
		if writeWire(wireBuf) == nil {
			bw.Flush()
		}
	}

	// The ack reader runs aside the ship loop: cumulative acks open the
	// window back up, a close frame (or any read failure — the connection is
	// shared state, a dead read side means a dead session) ends the session.
	var acked atomic.Uint64
	acked.Store(hello.From)
	ackNotify := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var scratch []byte
		for {
			typ, payload, newScratch, err := trace.ReadReplFrame(br, scratch)
			scratch = newScratch
			if err != nil {
				return
			}
			switch typ {
			case trace.ReplFrameAck:
				seq, err := trace.DecodeReplAckFrame(payload)
				if err != nil {
					return
				}
				if seq > acked.Load() {
					acked.Store(seq)
					state.acked.Store(seq)
				}
				state.noteAcked(seq)
				select {
				case ackNotify <- struct{}{}:
				default:
				}
			case trace.StreamFrameClose:
				return
			default:
				return
			}
		}
	}()

	durNotify, cancelDur := log.SubscribeDurable()
	defer cancelDur()
	poll := time.NewTicker(shipPollInterval)
	defer poll.Stop()

	nextShip := hello.From
	var frameBuf []byte
	for {
		select {
		case <-done:
			sh.logf("replication: follower %s detached at seq %d", conn.RemoteAddr(), nextShip)
			return
		default:
		}
		// Two gates before the next record moves: it must be durable on the
		// primary, and the credit window must have room.
		if nextShip >= log.DurableSeq() || nextShip-acked.Load() >= uint64(window) {
			if bw.Flush() != nil {
				return
			}
			select {
			case <-durNotify:
			case <-ackNotify:
			case <-poll.C:
			case <-done:
				sh.logf("replication: follower %s detached at seq %d", conn.RemoteAddr(), nextShip)
				return
			}
			continue
		}
		rec, err := r.Next()
		if err == io.EOF {
			// The durable boundary is ahead of what the segment files show
			// us yet (directory listing raced the append); wait it out.
			if bw.Flush() != nil {
				return
			}
			select {
			case <-durNotify:
			case <-ackNotify:
			case <-poll.C:
			case <-done:
				return
			}
			continue
		}
		if err != nil {
			// A follow reader only fails permanently: fell behind compaction
			// (the session must full-resync) or the log is damaged.
			terminal(trace.ReplCodeCompacted, err.Error())
			sh.logf("replication: follower %s session failed: %v", conn.RemoteAddr(), err)
			return
		}
		now := time.Now()
		traceID := sh.cfg.Trace.TraceForSeq(rec.Seq)
		frameBuf = trace.AppendReplRecord(frameBuf[:0], trace.ReplRecord{
			Seq:              rec.Seq,
			Durable:          log.DurableSeq(),
			ShippedUnixNanos: uint64(now.UnixNano()),
			Trace:            traceID,
			Program:          rec.Program,
			Frame:            rec.Frame,
		}, proto)
		if writeWire(frameBuf) != nil {
			return
		}
		sh.cfg.Trace.RecordStage(traceID, 0, "ship", rec.Program, 0, rec.Seq, now, time.Since(now))
		state.noteShipped(rec.Seq, now)
		nextShip = rec.Seq + 1
		sh.shippedRecords.Add(1)
		sh.shippedBytes.Add(uint64(len(frameBuf)))
	}
}
