package replica

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/obs"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

func testParams() core.Params { return core.DefaultParams().Scaled(200) }

// synthEvents mirrors the server package's deterministic event generator so
// cross-package equivalence tests drive identical streams.
func synthEvents(n int, seed uint64) []trace.Event {
	evs := make([]trace.Event, 0, n)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		r := next()
		id := trace.BranchID(r % 24)
		var taken bool
		switch {
		case id < 8:
			taken = next()%500 != 0
		case id < 16:
			taken = (i/700)%2 == 0
		default:
			taken = next()%2 == 0
		}
		evs = append(evs, trace.Event{Branch: id, Taken: taken, Gap: uint32(1 + r%9)})
	}
	return evs
}

// primaryEnv is a full primary: WAL-backed server, HTTP client, and a
// shipper on its own listener.
type primaryEnv struct {
	srv     *server.Server
	client  *server.Client
	log     *wal.Log
	shipper *Shipper
	ln      net.Listener
	ts      *httptest.Server
}

func startPrimary(t *testing.T, shards int) *primaryEnv {
	return startPrimarySeg(t, shards, 0)
}

// startPrimarySeg is startPrimary with a segment-size override (small
// segments force rotations, which compaction needs).
func startPrimarySeg(t *testing.T, shards int, segBytes int64) *primaryEnv {
	t.Helper()
	params := testParams()
	l, err := wal.Open(wal.Options{
		Dir: t.TempDir(), ParamsHash: server.ParamsHash(params), Policy: wal.SyncAlways,
		SegmentBytes: segBytes,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s := server.New(server.Config{Params: params, Shards: shards, SnapshotDir: t.TempDir(), WAL: l, Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	sh := NewShipper(ShipperConfig{Log: l, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh.Serve(ln)
	t.Cleanup(func() { sh.Close(); l.Close() })
	return &primaryEnv{srv: s, client: server.NewClient(ts.URL, ts.Client()), log: l, shipper: sh, ln: ln, ts: ts}
}

// kill simulates a primary crash: the shipper, its listener, and the HTTP
// front end all go away at once.
func (p *primaryEnv) kill() {
	p.ts.CloseClientConnections()
	p.ts.Close()
	p.shipper.Close()
	p.ln.Close()
}

// replicaEnv is a read-only replica daemon: its own WAL-backed server, an
// HTTP client, and a follower attached to a primary.
type replicaEnv struct {
	srv      *server.Server
	client   *server.Client
	log      *wal.Log
	follower *Follower
}

func startReplica(t *testing.T, shards int, addr string, window uint32) *replicaEnv {
	t.Helper()
	params := testParams()
	l, err := wal.Open(wal.Options{
		Dir: t.TempDir(), ParamsHash: server.ParamsHash(params), Policy: wal.SyncAlways,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s := server.New(server.Config{Params: params, Shards: shards, SnapshotDir: t.TempDir(), WAL: l, Replica: true, Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	f := StartFollower(FollowerConfig{
		Addr:       addr,
		ParamsHash: server.ParamsHash(params),
		NextSeq:    l.NextSeq,
		Apply:      s.ApplyReplicated,
		Window:     window,
		Logf:       t.Logf,
	})
	s.SetSealFunc(f.Seal)
	t.Cleanup(func() { f.Seal(); l.Close() })
	return &replicaEnv{srv: s, client: server.NewClient(ts.URL, ts.Client()), log: l, follower: f}
}

// waitApplied blocks until the follower has applied through seq (the
// primary's NextSeq), or the deadline trips.
func waitApplied(t *testing.T, f *Follower, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for f.LastApplied() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled at seq %d, want %d (state %s, err %v)",
				f.LastApplied(), seq, f.State(), f.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicationCatchupAndLiveTail attaches a follower to a primary that
// already holds records (catch-up), keeps ingesting (live tail), and pins
// the replica's table state and decisions to the primary's.
func TestReplicationCatchupAndLiveTail(t *testing.T) {
	p := startPrimary(t, 4)
	ctx := context.Background()

	// Records that exist before the follower attaches: the catch-up phase.
	for i := 0; i < 5; i++ {
		if _, err := p.client.Ingest(ctx, "gzip", synthEvents(300, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	r := startReplica(t, 4, p.ln.Addr().String(), 8)

	// Records appended while attached: the live tail, two programs.
	for i := 5; i < 10; i++ {
		if _, err := p.client.Ingest(ctx, "gzip", synthEvents(300, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := p.client.Ingest(ctx, "vpr", synthEvents(200, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, r.follower, p.log.NextSeq())

	if got, want := r.srv.Table().SnapshotEntries(), p.srv.Table().SnapshotEntries(); len(got) != len(want) {
		t.Fatalf("replica has %d entries, primary %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("entry %d diverges: replica %+v primary %+v", i, got[i], want[i])
			}
		}
	}
	// Cursor accounting matches: the failover resume point is exact.
	pc, err := p.client.Cursor(ctx, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := r.client.Cursor(ctx, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if pc.Events != rc.Events || pc.Instr != rc.Instr || pc.Events != 3000 {
		t.Fatalf("cursors diverge: primary %+v replica %+v", pc, rc)
	}
	// The replica serves decisions.
	pd, err := p.client.Decide(ctx, "gzip", 3)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.client.Decide(ctx, "gzip", 3)
	if err != nil {
		t.Fatal(err)
	}
	if pd != rd {
		t.Fatalf("decide diverges: primary %+v replica %+v", pd, rd)
	}
	if st := r.follower.State(); st != StateStreaming {
		t.Fatalf("follower state %q after catch-up, want %q", st, StateStreaming)
	}

	// Replication metrics are live on both sides.
	reg := obs.NewRegistry()
	p.shipper.RegisterMetrics(reg)
	r.follower.RegisterMetrics(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	m := sb.String()
	for _, want := range []string{
		"reactived_replication_sessions 1",
		"reactived_replication_shipped_records_total 15",
		"reactived_replication_received_records_total 15",
		"reactived_replication_lag_records 0",
		`reactived_replication_state{state="streaming"} 1`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestFollowerParamsMismatch pins the handshake guard: a follower whose
// controller parameters differ is rejected permanently — no retry loop, a
// typed state, a diagnostic naming both hashes.
func TestFollowerParamsMismatch(t *testing.T) {
	p := startPrimary(t, 2)
	f := StartFollower(FollowerConfig{
		Addr:       p.ln.Addr().String(),
		ParamsHash: server.ParamsHash(testParams()) + 1,
		NextSeq:    func() uint64 { return 0 },
		Apply:      func(string, []trace.Event, uint64) error { return nil },
		Logf:       t.Logf,
	})
	defer f.Seal()
	select {
	case <-f.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("mismatched follower did not stop")
	}
	if f.State() != StateFailed {
		t.Fatalf("state %q, want failed", f.State())
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "params hash") {
		t.Fatalf("error %v does not name the params hash", err)
	}
}

// TestFollowerBehindCompaction pins the mid-compaction connect: a follower
// resuming below the primary's retained range is told, permanently and in
// plain words, that it needs a full resync.
func TestFollowerBehindCompaction(t *testing.T) {
	p := startPrimarySeg(t, 2, 1<<12)
	ctx := context.Background()
	// Rotate segments, then snapshot: the snapshot compacts the log so
	// sequence 0 is gone.
	for i := 0; i < 20; i++ {
		if _, err := p.client.Ingest(ctx, "gzip", synthEvents(2000, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.client.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if p.log.OldestSeq() == 0 {
		t.Fatal("compaction retained sequence 0; segment rotation did not trigger")
	}

	f := StartFollower(FollowerConfig{
		Addr:       p.ln.Addr().String(),
		ParamsHash: server.ParamsHash(testParams()),
		NextSeq:    func() uint64 { return 0 },
		Apply:      func(string, []trace.Event, uint64) error { return nil },
		Logf:       t.Logf,
	})
	defer f.Seal()
	select {
	case <-f.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("compacted-behind follower did not stop")
	}
	if f.State() != StateFailed {
		t.Fatalf("state %q, want failed", f.State())
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "full resync") {
		t.Fatalf("error %v does not name the full-resync remedy", err)
	}
}

// TestFollowerResumesAcrossPrimaryRestart kills the primary's shipper
// mid-session, brings a new one up on the same log, and checks the follower
// reconnects and resumes exactly where it left off.
func TestFollowerResumesAcrossPrimaryRestart(t *testing.T) {
	p := startPrimary(t, 4)
	ctx := context.Background()
	if _, err := p.client.Ingest(ctx, "gzip", synthEvents(500, 1)); err != nil {
		t.Fatal(err)
	}

	// The follower dials through an indirection so the restarted shipper can
	// land on a fresh port.
	var addr atomic.Value
	addr.Store(p.ln.Addr().String())
	params := testParams()
	rl, err := wal.Open(wal.Options{
		Dir: t.TempDir(), ParamsHash: server.ParamsHash(params), Policy: wal.SyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	rs := server.New(server.Config{Params: params, Shards: 4, WAL: rl, Replica: true, Logf: t.Logf})
	f := StartFollower(FollowerConfig{
		ParamsHash: server.ParamsHash(params),
		NextSeq:    rl.NextSeq,
		Apply:      rs.ApplyReplicated,
		Logf:       t.Logf,
		Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr.Load().(string))
		},
	})
	defer f.Seal()
	waitApplied(t, f, p.log.NextSeq())

	// Crash the shipper (listener and sessions die; the WAL lives on, as it
	// would across a daemon restart) and keep ingesting into the primary.
	p.shipper.Close()
	p.ln.Close()
	if _, err := p.client.Ingest(ctx, "gzip", synthEvents(400, 2)); err != nil {
		t.Fatal(err)
	}

	sh2 := NewShipper(ShipperConfig{Log: p.log, Logf: t.Logf})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh2.Serve(ln2)
	defer func() { sh2.Close(); ln2.Close() }()
	addr.Store(ln2.Addr().String())

	waitApplied(t, f, p.log.NextSeq())
	if got, want := rs.Table().SnapshotEntries(), p.srv.Table().SnapshotEntries(); len(got) != len(want) {
		t.Fatalf("replica has %d entries, primary %d", len(got), len(want))
	}
	if f.Err() != nil {
		t.Fatalf("follower reported a permanent error across a transient restart: %v", f.Err())
	}
}

// TestShipperRejectsFutureFrom pins the divergence guard: a follower ahead
// of the primary's log end is rejected permanently (its records came from a
// history this primary never wrote).
func TestShipperRejectsFutureFrom(t *testing.T) {
	p := startPrimary(t, 2)
	f := StartFollower(FollowerConfig{
		Addr:       p.ln.Addr().String(),
		ParamsHash: server.ParamsHash(testParams()),
		NextSeq:    func() uint64 { return 999 },
		Apply:      func(string, []trace.Event, uint64) error { return nil },
		Logf:       t.Logf,
	})
	defer f.Seal()
	select {
	case <-f.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("future-from follower did not stop")
	}
	if err := f.Err(); err == nil || !strings.Contains(err.Error(), "beyond the log end") {
		t.Fatalf("error %v does not name the divergence", err)
	}
}
