// Package harness drives speculation controllers over branch-event streams
// and accounts the resulting correct/incorrect speculation statistics. It is
// the functional-simulation loop of Sections 2 and 3: architecture-
// independent, tracking each branch's interaction with whatever control
// policy is plugged in.
package harness

import (
	"context"
	"math"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Controller is any speculation-control policy: reactive (core.Controller),
// static profile-based, or initial-behavior-based.
type Controller interface {
	// OnBranch observes one dynamic branch instance at global instruction
	// count instr and reports the speculation outcome.
	OnBranch(id trace.BranchID, taken bool, instr uint64) core.Verdict
}

// instrSink is implemented by controllers that want the instruction stream
// accounted to them as well (core.Controller uses it for its own
// misspeculation-distance statistic).
type instrSink interface {
	AddInstrs(n uint64)
}

// Stats summarizes one run.
type Stats struct {
	// Events is the total number of dynamic branch instances.
	Events uint64
	// Instrs is the total number of dynamic instructions.
	Instrs uint64
	// Correct, Misspec and NotSpec partition Events by verdict.
	Correct, Misspec, NotSpec uint64
}

// CorrectFrac returns correct speculations as a fraction of all events
// (the y axis of Figures 2 and 5).
func (s Stats) CorrectFrac() float64 { return frac(s.Correct, s.Events) }

// MisspecFrac returns misspeculations as a fraction of all events
// (the x axis of Figures 2 and 5).
func (s Stats) MisspecFrac() float64 { return frac(s.Misspec, s.Events) }

// MisspecDistance returns the mean dynamic instructions between
// misspeculations (+Inf if none occurred) — Table 3's final column.
func (s Stats) MisspecDistance() float64 {
	if s.Misspec == 0 {
		return math.Inf(1)
	}
	return float64(s.Instrs) / float64(s.Misspec)
}

func frac(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Run drives the controller over the whole stream and returns the run's
// statistics.
func Run(s trace.Stream, ctl Controller) Stats {
	var st Stats
	sink, _ := ctl.(instrSink)
	instr := uint64(0)
	for {
		ev, ok := s.Next()
		if !ok {
			return st
		}
		instr += uint64(ev.Gap)
		if sink != nil {
			sink.AddInstrs(uint64(ev.Gap))
		}
		st.Events++
		st.Instrs += uint64(ev.Gap)
		switch ctl.OnBranch(ev.Branch, ev.Taken, instr) {
		case core.Correct:
			st.Correct++
		case core.Misspec:
			st.Misspec++
		default:
			st.NotSpec++
		}
	}
}

// ctxCheckEvery is how many events RunContext processes between context
// polls: frequent enough that cancelation lands within milliseconds, rare
// enough to stay invisible in the hot loop.
const ctxCheckEvery = 1 << 16

// RunContext is Run with cooperative cancelation: it polls ctx every
// ctxCheckEvery events and stops early when the context is done, returning
// the statistics accumulated so far together with the context's error. Long
// sweeps use it so a deadline cancels mid-benchmark, not only between
// benchmarks.
func RunContext(ctx context.Context, s trace.Stream, ctl Controller) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st Stats
	sink, _ := ctl.(instrSink)
	instr := uint64(0)
	for {
		if st.Events%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		ev, ok := s.Next()
		if !ok {
			return st, nil
		}
		instr += uint64(ev.Gap)
		if sink != nil {
			sink.AddInstrs(uint64(ev.Gap))
		}
		st.Events++
		st.Instrs += uint64(ev.Gap)
		switch ctl.OnBranch(ev.Branch, ev.Taken, instr) {
		case core.Correct:
			st.Correct++
		case core.Misspec:
			st.Misspec++
		default:
			st.NotSpec++
		}
	}
}

// Observer is an optional per-event callback for experiments that need to
// watch the raw stream alongside the controller (eviction neighborhoods,
// characterization windows, …). It runs after the controller has processed
// the event.
type Observer func(ev trace.Event, instr uint64, v core.Verdict)

// RunObserved is Run with a per-event observer.
func RunObserved(s trace.Stream, ctl Controller, obs Observer) Stats {
	var st Stats
	sink, _ := ctl.(instrSink)
	instr := uint64(0)
	for {
		ev, ok := s.Next()
		if !ok {
			return st
		}
		instr += uint64(ev.Gap)
		if sink != nil {
			sink.AddInstrs(uint64(ev.Gap))
		}
		st.Events++
		st.Instrs += uint64(ev.Gap)
		v := ctl.OnBranch(ev.Branch, ev.Taken, instr)
		switch v {
		case core.Correct:
			st.Correct++
		case core.Misspec:
			st.Misspec++
		default:
			st.NotSpec++
		}
		if obs != nil {
			obs(ev, instr, v)
		}
	}
}
