package harness

import (
	"math"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// scriptController returns canned verdicts in order.
type scriptController struct {
	verdicts []core.Verdict
	pos      int
	instrs   uint64
}

func (s *scriptController) OnBranch(trace.BranchID, bool, uint64) core.Verdict {
	v := s.verdicts[s.pos%len(s.verdicts)]
	s.pos++
	return v
}

func (s *scriptController) AddInstrs(n uint64) { s.instrs += n }

func TestRunAccountsVerdicts(t *testing.T) {
	events := []trace.Event{
		{Branch: 0, Taken: true, Gap: 5},
		{Branch: 0, Taken: true, Gap: 5},
		{Branch: 0, Taken: true, Gap: 5},
	}
	ctl := &scriptController{verdicts: []core.Verdict{core.Correct, core.Misspec, core.NotSpeculated}}
	st := Run(trace.NewSliceStream(events), ctl)
	if st.Events != 3 || st.Instrs != 15 {
		t.Fatalf("stats %+v", st)
	}
	if st.Correct != 1 || st.Misspec != 1 || st.NotSpec != 1 {
		t.Fatalf("verdict partition %+v", st)
	}
	if ctl.instrs != 15 {
		t.Fatalf("instr sink got %d", ctl.instrs)
	}
}

func TestRunWithRealController(t *testing.T) {
	// An always-taken branch under a tiny reactive controller: after the
	// monitor window everything is correct speculation.
	p := core.Params{
		MonitorPeriod: 10, SelectThreshold: 0.9, EvictThreshold: 100,
		MisspecStep: 50, CorrectStep: 1, WaitPeriod: 50, MaxOptimizations: 5,
	}
	events := make([]trace.Event, 100)
	for i := range events {
		events[i] = trace.Event{Branch: 0, Taken: true, Gap: 2}
	}
	st := Run(trace.NewSliceStream(events), core.New(p))
	if st.Correct != 90 {
		t.Fatalf("correct = %d, want 90 (100 minus the 10-execution monitor window)", st.Correct)
	}
	if st.Misspec != 0 {
		t.Fatalf("misspec = %d", st.Misspec)
	}
}

func TestStatsDerivedQuantities(t *testing.T) {
	st := Stats{Events: 200, Instrs: 1000, Correct: 50, Misspec: 4}
	if st.CorrectFrac() != 0.25 || st.MisspecFrac() != 0.02 {
		t.Fatalf("fractions %v %v", st.CorrectFrac(), st.MisspecFrac())
	}
	if st.MisspecDistance() != 250 {
		t.Fatalf("distance %v", st.MisspecDistance())
	}
	if !math.IsInf(Stats{Instrs: 10}.MisspecDistance(), 1) {
		t.Fatal("zero-misspec distance should be +Inf")
	}
	if (Stats{}).CorrectFrac() != 0 {
		t.Fatal("empty stats should not divide by zero")
	}
}

func TestRunObservedCallsObserver(t *testing.T) {
	events := []trace.Event{
		{Branch: 1, Taken: true, Gap: 3},
		{Branch: 2, Taken: false, Gap: 4},
	}
	ctl := &scriptController{verdicts: []core.Verdict{core.Correct}}
	var seen []trace.Event
	var instrs []uint64
	st := RunObserved(trace.NewSliceStream(events), ctl, func(ev trace.Event, instr uint64, v core.Verdict) {
		seen = append(seen, ev)
		instrs = append(instrs, instr)
		if v != core.Correct {
			t.Fatalf("observer verdict = %v", v)
		}
	})
	if len(seen) != 2 || seen[0].Branch != 1 || seen[1].Branch != 2 {
		t.Fatalf("observer saw %+v", seen)
	}
	if instrs[0] != 3 || instrs[1] != 7 {
		t.Fatalf("observer instruction counts %v", instrs)
	}
	if st.Events != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRunObservedNilObserver(t *testing.T) {
	events := []trace.Event{{Branch: 0, Taken: true, Gap: 1}}
	ctl := &scriptController{verdicts: []core.Verdict{core.Correct}}
	if st := RunObserved(trace.NewSliceStream(events), ctl, nil); st.Events != 1 {
		t.Fatal("nil observer should still run")
	}
}
