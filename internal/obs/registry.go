// Package obs is the unified observability layer: a metrics registry with
// cheap atomic hot paths and a Prometheus text exposition writer, and a
// ring-buffer lifecycle trace sink for the reactive controller
// (internal/core). Server, harness, and CLI metrics all flow through one
// Registry so every binary exposes the same metric grammar, and the trace
// sink makes a live controller's monitor/biased/unbiased trajectory — the
// paper's Figures 3, 6 and 9 — observable on demand.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"reactivespec/internal/stats"
)

// Counter is a monotonically increasing metric. The hot path is a single
// atomic add; Counters are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a log-bucketed latency/size histogram (stats.LogHist) exposed
// as a Prometheus summary: one sample per configured quantile plus _sum and
// _count. Safe for concurrent use (observations serialize on a mutex; keep
// one Histogram per hot region, not per event source, if that matters).
type Histogram struct {
	mu        sync.Mutex
	h         *stats.LogHist
	sum       float64
	quantiles []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.sum += v
	h.mu.Unlock()
}

// Quantile returns the estimated p-quantile of the observations so far.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(p)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Total()
}

// CounterVec is a family of Counters distinguished by label values.
type CounterVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (created on
// first use), which the caller should cache on hot paths. The number of
// values must match the vec's label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// metric is one registered exposition unit: a direct instrument (one family)
// or a collector (any number of computed families).
type metric struct {
	name   string
	expose func(e *Emitter)
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Register everything at startup; registration panics on
// an invalid or duplicate name (programmer error), exposition never does.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]struct{}
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

func (r *Registry) register(name string, expose func(e *Emitter)) {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.byName[name] = struct{}{}
	r.metrics = append(r.metrics, metric{name: name, expose: expose})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, func(e *Emitter) {
		e.Family(name, "counter", help)
		e.SampleUint(c.Value())
	})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, func(e *Emitter) {
		e.Family(name, "gauge", help)
		e.Sample(g.Value())
	})
	return g
}

// NewGaugeFunc registers a gauge computed at exposition time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, func(e *Emitter) {
		e.Family(name, "gauge", help)
		e.Sample(fn())
	})
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		mustValidName(l)
	}
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(name, func(e *Emitter) {
		e.Family(name, "counter", help)
		v.mu.RLock()
		keys := make([]string, 0, len(v.children))
		for k := range v.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			kv := make([]string, 0, 2*len(labels))
			for i, val := range strings.Split(k, "\xff") {
				kv = append(kv, labels[i], val)
			}
			e.SampleUint(v.children[k].Value(), kv...)
		}
		v.mu.RUnlock()
	})
	return v
}

// NewHistogram registers and returns a histogram over [lo, hi] with
// perDecade log buckets, exposed as a summary with the given quantiles.
func (r *Registry) NewHistogram(name, help string, lo, hi float64, perDecade int, quantiles ...float64) *Histogram {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	qs := append([]float64(nil), quantiles...)
	sort.Float64s(qs)
	h := &Histogram{h: stats.NewLogHist(lo, hi, perDecade), quantiles: qs}
	r.register(name, func(e *Emitter) {
		e.Family(name, "summary", help)
		h.mu.Lock()
		snap := h.h.Snapshot()
		sum := h.sum
		h.mu.Unlock()
		for _, q := range qs {
			e.Sample(snap.Quantile(q), "quantile", strconv.FormatFloat(q, 'g', -1, 64))
		}
		e.appendf("%s_sum %s\n", name, formatFloat(sum))
		e.appendf("%s_count %d\n", name, snap.Total())
	})
	return h
}

// RegisterCollector registers a computed metric source: fn runs at every
// exposition and may emit any number of families through the Emitter. The
// name orders the collector among the registry's metrics (exposition is
// sorted by registration name) and must be unique; by convention it is a
// prefix of the families the collector emits.
func (r *Registry) RegisterCollector(name string, fn func(e *Emitter)) {
	r.register(name, fn)
}

// Names returns every registered metric (and collector) name, sorted. The
// metrics-conformance test walks this list to pin that registration and
// exposition never drift apart.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		names = append(names, m.name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// FamiliesByMetric runs every registered metric's exposition in isolation
// and returns the family names each emits, keyed by registration name. A
// direct instrument maps to its own single family; a collector maps to every
// family it computes. The metrics-conformance test uses this to pin that
// every registered metric exposes at least one family and that no two
// metrics emit the same family — the check registration-time dedup alone
// cannot make for collectors.
func (r *Registry) FamiliesByMetric() map[string][]string {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string][]string, len(ms))
	for _, m := range ms {
		e := &Emitter{}
		m.expose(e)
		out[m.name] = e.fams
	}
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by registration name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	e := &Emitter{}
	for _, m := range ms {
		m.expose(e)
	}
	_, err := w.Write(e.b)
	return err
}

// Emitter accumulates exposition text. Collectors receive one to emit
// computed families; direct instruments use it internally.
type Emitter struct {
	b       []byte
	curName string
	fams    []string // family names in emission order (FamiliesByMetric)
}

func (e *Emitter) appendf(format string, args ...any) {
	e.b = append(e.b, fmt.Sprintf(format, args...)...)
}

// Family starts a metric family: its # HELP and # TYPE header lines.
// Subsequent Sample calls emit samples of this family.
func (e *Emitter) Family(name, typ, help string) {
	e.curName = name
	e.fams = append(e.fams, name)
	e.appendf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample of the current family with optional labels given
// as alternating name, value pairs.
func (e *Emitter) Sample(v float64, kv ...string) {
	e.sample(formatFloat(v), kv)
}

// SampleUint is Sample for integer-valued counters (full 64-bit precision).
func (e *Emitter) SampleUint(v uint64, kv ...string) {
	e.sample(strconv.FormatUint(v, 10), kv)
}

func (e *Emitter) sample(val string, kv []string) {
	e.b = append(e.b, e.curName...)
	if len(kv) > 0 {
		e.b = append(e.b, '{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				e.b = append(e.b, ',')
			}
			// %q escapes exactly what the exposition format requires
			// in label values: backslash, quote, and newline.
			e.appendf("%s=%q", kv[i], kv[i+1])
		}
		e.b = append(e.b, '}')
	}
	e.b = append(e.b, ' ')
	e.b = append(e.b, val...)
	e.b = append(e.b, '\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(s)
}

func mustValidName(name string) {
	if !validName(name) {
		panic("obs: invalid metric or label name " + strconv.Quote(name))
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
