package obs

import (
	"bytes"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// tracedRun drives the gzip workload through a reactive controller with a
// sink attached and returns the sink plus the per-event verdict sequence.
func tracedRun(t *testing.T, capacity int) (*Sink, []core.Verdict, uint64) {
	t.Helper()
	spec, err := workload.Build("gzip", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := core.New(core.DefaultParams().Scaled(50))
	sink := NewSink(capacity)
	sink.Attach(ctl)
	var verdicts []core.Verdict
	var lastInstr uint64
	harness.RunObserved(workload.NewGenerator(spec), ctl,
		func(ev trace.Event, instr uint64, v core.Verdict) {
			verdicts = append(verdicts, v)
			lastInstr = instr
		})
	return sink, verdicts, lastInstr
}

func TestSinkRecordsTransitions(t *testing.T) {
	sink, _, _ := tracedRun(t, 0)
	recs := sink.Records()
	if len(recs) == 0 {
		t.Fatal("no transitions recorded")
	}
	if sink.Dropped() != 0 {
		t.Fatalf("default capacity dropped %d records", sink.Dropped())
	}
	sawSelection, sawEviction := false, false
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.From == r.To {
			t.Fatalf("record %d is a self-transition: %+v", i, r)
		}
		if r.From == core.Monitor && r.To == core.Biased {
			sawSelection = true
		}
		if r.From == core.Biased && r.To == core.Monitor {
			sawEviction = true
			if r.Counter == 0 {
				t.Fatalf("eviction record %d has zero saturating counter: %+v", i, r)
			}
		}
	}
	if !sawSelection || !sawEviction {
		t.Fatalf("expected selections and evictions in gzip trace (selection=%v eviction=%v)",
			sawSelection, sawEviction)
	}
}

// TestSinkDoesNotChangeDecisions pins the observability contract: attaching
// a sink must not change a single controller decision.
func TestSinkDoesNotChangeDecisions(t *testing.T) {
	spec, err := workload.Build("gzip", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams().Scaled(50)

	plain := core.New(params)
	var plainVerdicts []core.Verdict
	harness.RunObserved(workload.NewGenerator(spec), plain,
		func(_ trace.Event, _ uint64, v core.Verdict) { plainVerdicts = append(plainVerdicts, v) })

	_, tracedVerdicts, _ := tracedRun(t, 0)

	if len(plainVerdicts) != len(tracedVerdicts) {
		t.Fatalf("event counts differ: %d vs %d", len(plainVerdicts), len(tracedVerdicts))
	}
	for i := range plainVerdicts {
		if plainVerdicts[i] != tracedVerdicts[i] {
			t.Fatalf("verdict %d differs with sink attached: %v vs %v",
				i, plainVerdicts[i], tracedVerdicts[i])
		}
	}
}

// TestSinkJSONLDeterministic pins byte-identical JSONL for identical seed
// and parameters.
func TestSinkJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	s1, _, _ := tracedRun(t, 0)
	if err := s1.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	s2, _, _ := tracedRun(t, 0)
	if err := s2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty JSONL export")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL export not byte-identical across identical runs")
	}
}

func TestSinkRingWrap(t *testing.T) {
	sink := NewSink(4)
	for i := 0; i < 10; i++ {
		sink.Record(core.Transition{Branch: trace.BranchID(i), Instr: uint64(i)})
	}
	if sink.Len() != 4 || sink.Total() != 10 || sink.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d, want 4/10/6",
			sink.Len(), sink.Total(), sink.Dropped())
	}
	recs := sink.Records()
	for i, r := range recs {
		if want := uint64(6 + i); r.Seq != want {
			t.Fatalf("record %d seq %d, want %d (oldest-first after wrap)", i, r.Seq, want)
		}
	}
}

func TestBuildTimeline(t *testing.T) {
	recs := []Record{
		{Seq: 0, Branch: 3, From: core.Monitor, To: core.Biased, Instr: 100},
		{Seq: 1, Branch: 1, From: core.Monitor, To: core.Unbiased, Instr: 150},
		{Seq: 2, Branch: 3, From: core.Biased, To: core.Monitor, Instr: 400},
		{Seq: 3, Branch: 3, From: core.Monitor, To: core.Biased, Instr: 600},
	}
	tls := BuildTimeline(recs, 1000)
	if len(tls) != 2 {
		t.Fatalf("got %d branch timelines, want 2", len(tls))
	}
	if tls[0].Branch != 1 || tls[1].Branch != 3 {
		t.Fatalf("timelines not sorted by branch: %+v", tls)
	}
	b3 := tls[1]
	if b3.Transitions != 3 || b3.Evictions != 1 || b3.Final != core.Biased {
		t.Fatalf("branch 3 summary wrong: %+v", b3)
	}
	want := []Segment{
		{State: core.Monitor, FromInstr: 0, ToInstr: 100},
		{State: core.Biased, FromInstr: 100, ToInstr: 400},
		{State: core.Monitor, FromInstr: 400, ToInstr: 600},
		{State: core.Biased, FromInstr: 600, ToInstr: 1000},
	}
	if len(b3.Segments) != len(want) {
		t.Fatalf("branch 3 has %d segments, want %d: %+v", len(b3.Segments), len(want), b3.Segments)
	}
	for i, s := range b3.Segments {
		if s != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func BenchmarkSinkRecord(b *testing.B) {
	sink := NewSink(DefaultSinkCapacity)
	tr := core.Transition{Branch: 7, From: core.Monitor, To: core.Biased, Instr: 123, Exec: 45}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Record(tr)
	}
}
