package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Operations performed.")
	c.Add(41)
	c.Inc()
	g := r.NewGauge("test_depth", "Current depth.")
	g.Set(2.5)
	r.NewGaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 7 })
	v := r.NewCounterVec("test_shard_events_total", "Events per shard.", "shard")
	v.With("1").Add(10)
	v.With("0").Add(5)
	h := r.NewHistogram("test_latency_seconds", "Latency.", 1e-6, 60, 30, 0.5, 0.99)
	h.Observe(0.01)
	h.Observe(0.02)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations performed.",
		"# TYPE test_ops_total counter",
		"test_ops_total 42",
		"test_depth 2.5",
		"test_uptime_seconds 7",
		`test_shard_events_total{shard="0"} 5`,
		`test_shard_events_total{shard="1"} 10`,
		"# TYPE test_latency_seconds summary",
		`test_latency_seconds{quantile="0.5"}`,
		`test_latency_seconds{quantile="0.99"}`,
		"test_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families are sorted by name, so depth precedes latency precedes ops.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_ops_total") {
		t.Errorf("exposition not sorted by family name:\n%s", out)
	}
}

func TestRegistryExpositionDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.NewCounter("b_total", "b").Add(3)
		r.NewCounter("a_total", "a").Add(1)
		v := r.NewCounterVec("c_total", "c", "k")
		v.With("y").Inc()
		v.With("x").Inc()
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector("test_computed", func(e *Emitter) {
		e.Family("test_computed_total", "counter", "Computed.")
		e.SampleUint(9, "kind", "x")
		e.Family("test_computed_rate", "gauge", "Rate.")
		e.Sample(0.25)
	})
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_computed_total{kind="x"} 9`,
		"test_computed_rate 0.25",
		"# TYPE test_computed_rate gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestRegistryDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.NewCounter("dup_total", "x") },
		"invalid":       func() { r.NewCounter("bad-name", "x") },
		"empty":         func() { r.NewCounter("", "x") },
		"leading digit": func() { r.NewCounter("0bad", "x") },
		"bad label":     func() { r.NewCounterVec("ok_total", "x", "bad-label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("cc_total", "x", "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.With("a").Value(); got != 8000 {
		t.Fatalf("concurrent vec count = %d, want 8000", got)
	}
}

func TestHistogramQuantileAccessors(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("hq_seconds", "x", 1e-6, 60, 30)
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	q := h.Quantile(0.5)
	// Log-bucketed: the estimate is the bucket's upper edge, within ~8%.
	if q < 0.001 || q > 0.0012 {
		t.Fatalf("p50 = %v, want ≈0.001", q)
	}
}
