package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// A nil tracer must be a complete no-op: every method callable, zero IDs.
func TestTracerNilFastPath(t *testing.T) {
	var tr *Tracer
	if got := tr.SampleBatch(); got != 0 {
		t.Fatalf("nil SampleBatch = %d, want 0", got)
	}
	if tr.SampleInfra() {
		t.Fatal("nil SampleInfra = true")
	}
	if got := tr.SpanID(); got != 0 {
		t.Fatalf("nil SpanID = %d, want 0", got)
	}
	if got := tr.RecordStage(1, 0, "batch", "p", 1, 0, time.Now(), time.Second); got != 0 {
		t.Fatalf("nil RecordStage = %d, want 0", got)
	}
	tr.Record(Span{Span: 1})
	tr.RecordInfra("wal_fsync", time.Now(), time.Millisecond)
	tr.NoteSeq(5, 9)
	if got := tr.TraceForSeq(5); got != 0 {
		t.Fatalf("nil TraceForSeq = %d, want 0", got)
	}
	tr.SetOutput(&bytes.Buffer{})
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer("n", 4)
	traced := 0
	for i := 0; i < 400; i++ {
		if tr.SampleBatch() != 0 {
			traced++
		}
	}
	if traced != 100 {
		t.Fatalf("1-in-4 sampling over 400 batches traced %d, want 100", traced)
	}
	off := NewTracer("n", 0)
	for i := 0; i < 10; i++ {
		if off.SampleBatch() != 0 {
			t.Fatal("sample=0 tracer sampled a batch")
		}
	}
}

func TestTracerJSONLDeterministic(t *testing.T) {
	span := Span{Trace: 7, Span: 9, Parent: 3, Stage: "decode", Program: "gzip",
		Events: 512, Seq: 42, Start: 1000, Dur: 2000}
	render := func() string {
		var buf bytes.Buffer
		tr := NewTracer("primary", 1)
		tr.SetOutput(&buf)
		tr.Record(span)
		tr.Close()
		return buf.String()
	}
	a, b := render(), b2(render)
	if a != b {
		t.Fatalf("identical spans encoded differently:\n%q\n%q", a, b)
	}
	want := `{"trace":7,"span":9,"parent":3,"node":"primary","stage":"decode","program":"gzip","events":512,"seq":42,"start":1000,"dur":2000}` + "\n"
	if a != want {
		t.Fatalf("span JSONL = %q, want %q", a, want)
	}
}

func b2(f func() string) string { return f() }

func TestTracerSeqTable(t *testing.T) {
	tr := NewTracer("n", 1)
	tr.NoteSeq(100, 7)
	tr.NoteSeq(101, 8)
	if got := tr.TraceForSeq(100); got != 7 {
		t.Fatalf("TraceForSeq(100) = %d, want 7", got)
	}
	if got := tr.TraceForSeq(101); got != 8 {
		t.Fatalf("TraceForSeq(101) = %d, want 8", got)
	}
	if got := tr.TraceForSeq(99); got != 0 {
		t.Fatalf("TraceForSeq(99) = %d, want 0 (never noted)", got)
	}
	// Eviction: a colliding slot forgets the old seq rather than lying.
	tr.NoteSeq(100+seqTableSize, 9)
	if got := tr.TraceForSeq(100); got != 0 {
		t.Fatalf("TraceForSeq(100) after eviction = %d, want 0", got)
	}
	if got := tr.TraceForSeq(100 + seqTableSize); got != 9 {
		t.Fatalf("TraceForSeq(evictor) = %d, want 9", got)
	}
}

func TestTracerRingDump(t *testing.T) {
	tr := NewTracer("n", 1)
	for i := 0; i < 3; i++ {
		tr.RecordStage(uint64(i+1), 0, "batch", "p", 1, 0, time.Unix(0, int64(i)), time.Duration(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("ring dump has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	spans, dropped, err := LoadSpans(&buf)
	if err != nil || dropped != 0 {
		t.Fatalf("LoadSpans: %v dropped=%d", err, dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("LoadSpans = %d spans, want 3", len(spans))
	}
}

// Distinct node names must produce disjoint ID spaces, so concatenated span
// files never collide.
func TestTracerNodeSaltedIDs(t *testing.T) {
	a, b := NewTracer("primary", 1), NewTracer("replica", 1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		for _, id := range []uint64{a.SpanID(), b.SpanID()} {
			if id == 0 || seen[id] {
				t.Fatalf("ID collision or zero: %d", id)
			}
			seen[id] = true
		}
	}
}

func TestSpanReportAttribution(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer("primary", 1)
	tr.SetOutput(&buf)
	// One traced batch: root 1000ns, children covering 950ns, plus ship and
	// a follower apply on the same trace.
	trace := uint64(11)
	root := tr.SpanID()
	tr.Record(Span{Trace: trace, Span: root, Stage: "batch", Program: "gzip", Events: 64, Start: 0, Dur: 1000})
	for _, c := range []struct {
		stage string
		dur   int64
	}{{"decode", 200}, {"wal_append", 300}, {"fsync", 250}, {"apply", 150}, {"respond", 50}} {
		tr.Record(Span{Trace: trace, Span: tr.SpanID(), Parent: root, Stage: c.stage, Dur: c.dur})
	}
	tr.Record(Span{Trace: trace, Span: tr.SpanID(), Stage: "ship", Seq: 1, Dur: 100})
	tr.Record(Span{Trace: trace, Span: tr.SpanID(), Stage: "follower_apply", Seq: 1, Dur: 80})
	tr.Close()

	spans, dropped, err := LoadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildSpanReport(spans, dropped)
	if rep.Batches != 1 || rep.Traces != 1 {
		t.Fatalf("report batches=%d traces=%d, want 1/1", rep.Batches, rep.Traces)
	}
	if rep.CoveragePct < 94.9 || rep.CoveragePct > 95.1 {
		t.Fatalf("coverage = %.2f%%, want 95%%", rep.CoveragePct)
	}
	if rep.CompleteChains != 1 {
		t.Fatalf("complete chains = %d, want 1", rep.CompleteChains)
	}
	var table, csv, svg bytes.Buffer
	if err := WriteSpanReport(&table, rep, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpanReport(&csv, rep, true); err != nil {
		t.Fatal(err)
	}
	if err := SVGSpanReport(&svg, rep); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"wal_append", "complete ingest→wal→ship→follower chains: 1"} {
		if !strings.Contains(table.String(), s) {
			t.Fatalf("table output missing %q:\n%s", s, table.String())
		}
	}
	if !strings.HasPrefix(csv.String(), "stage,count,p50_ms,p99_ms,mean_ms,pct_of_batch\n") {
		t.Fatalf("csv header wrong:\n%s", csv.String())
	}
	if !strings.HasPrefix(svg.String(), "<svg") {
		t.Fatal("svg output is not SVG")
	}
}

// A torn final line (SIGKILL mid-write) is skipped, not fatal.
func TestLoadSpansTornTail(t *testing.T) {
	input := `{"trace":1,"span":2,"parent":0,"node":"n","stage":"batch","program":"p","events":1,"seq":0,"start":0,"dur":10}` + "\n" +
		`{"trace":1,"span":3,"parent":2,"node":"n","sta`
	spans, dropped, err := LoadSpans(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || dropped != 1 {
		t.Fatalf("spans=%d dropped=%d, want 1/1", len(spans), dropped)
	}
}
