package obs

import (
	"fmt"
	"io"
	"sort"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Record is one controller lifecycle transition as captured by a Sink: the
// core.Transition payload plus the sink's global sequence number, so exports
// order totally even when the ring has wrapped.
type Record struct {
	// Seq is the 0-based index of this transition among all transitions
	// the sink has observed (including ones the ring later dropped).
	Seq     uint64
	Branch  trace.BranchID
	From    core.State
	To      core.State
	Instr   uint64
	Exec    uint64
	Counter uint32
}

// Sink is an allocation-conscious ring buffer of controller lifecycle
// transitions. Attach it to a core.Controller and every classification
// change (monitor→biased selection, eviction, revisit, squash-triggered
// demotion, retiral) is recorded with its event index, branch ID, and
// saturating-counter value. When the ring fills, the oldest records are
// overwritten and counted as dropped.
//
// The sink observes; it never feeds back. Attaching one must not change a
// single controller decision (TestSinkDoesNotChangeDecisions pins this), so
// every later experiment can run traced without invalidating its numbers.
//
// Sink is not safe for concurrent use, matching core.Controller.
type Sink struct {
	buf     []Record
	next    int // ring position of the next write
	n       int // number of valid records in buf
	seq     uint64
	dropped uint64
}

// DefaultSinkCapacity bounds a sink's memory when the caller does not care:
// 64k records ≈ 3 MiB, enough for every calibrated workload's full
// transition history at default scale.
const DefaultSinkCapacity = 1 << 16

// NewSink returns a sink retaining up to capacity records (capacity < 1
// selects DefaultSinkCapacity). The buffer is allocated once, up front.
func NewSink(capacity int) *Sink {
	if capacity < 1 {
		capacity = DefaultSinkCapacity
	}
	return &Sink{buf: make([]Record, capacity)}
}

// Attach registers the sink as ctl's transition hook, replacing any previous
// hook.
func (s *Sink) Attach(ctl *core.Controller) {
	ctl.OnTransition = s.Record
}

// Record appends one transition. It is the core.Controller.OnTransition
// callback and does not allocate.
func (s *Sink) Record(tr core.Transition) {
	if s.n == len(s.buf) {
		s.dropped++
	} else {
		s.n++
	}
	s.buf[s.next] = Record{
		Seq:     s.seq,
		Branch:  tr.Branch,
		From:    tr.From,
		To:      tr.To,
		Instr:   tr.Instr,
		Exec:    tr.Exec,
		Counter: tr.Counter,
	}
	s.seq++
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
	}
}

// Len returns the number of retained records.
func (s *Sink) Len() int { return s.n }

// Total returns the number of transitions observed, including dropped ones.
func (s *Sink) Total() uint64 { return s.seq }

// Dropped returns how many records the ring overwrote.
func (s *Sink) Dropped() uint64 { return s.dropped }

// Records returns the retained records, oldest first.
func (s *Sink) Records() []Record {
	out := make([]Record, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// WriteJSONL writes the retained records as JSON lines with a fixed field
// order, one record per line. The output is byte-deterministic: the same
// seed and parameters produce the identical file.
func (s *Sink) WriteJSONL(w io.Writer) error {
	for _, r := range s.Records() {
		_, err := fmt.Fprintf(w,
			`{"seq":%d,"branch":%d,"from":%q,"to":%q,"instr":%d,"exec":%d,"counter":%d}`+"\n",
			r.Seq, r.Branch, r.From.String(), r.To.String(), r.Instr, r.Exec, r.Counter)
		if err != nil {
			return err
		}
	}
	return nil
}

// Segment is one constant-state span of a branch's timeline, covering
// dynamic instruction counts [FromInstr, ToInstr).
type Segment struct {
	State     core.State
	FromInstr uint64
	ToInstr   uint64
}

// BranchTimeline is one branch's state trajectory: the per-branch view of
// the paper's Figures 3, 6 and 9, reconstructed from a transition log.
type BranchTimeline struct {
	Branch      trace.BranchID
	Transitions int
	Evictions   int // biased→monitor demotions
	Final       core.State
	Segments    []Segment
}

// BuildTimeline reconstructs per-branch state timelines from a transition
// log (oldest first, as Sink.Records returns). endInstr closes the last
// segment of every branch; branches are returned in ascending ID order.
// Branches with no recorded transition do not appear.
func BuildTimeline(records []Record, endInstr uint64) []BranchTimeline {
	byBranch := make(map[trace.BranchID]*BranchTimeline)
	for _, r := range records {
		tl := byBranch[r.Branch]
		if tl == nil {
			tl = &BranchTimeline{Branch: r.Branch}
			// The first record's From state has held since instr 0
			// (every branch starts in monitor; after a ring wrap the
			// From state still opens the reconstructed window).
			tl.Segments = append(tl.Segments, Segment{State: r.From})
			byBranch[r.Branch] = tl
		}
		tl.Segments[len(tl.Segments)-1].ToInstr = r.Instr
		tl.Segments = append(tl.Segments, Segment{State: r.To, FromInstr: r.Instr})
		tl.Transitions++
		if r.From == core.Biased && r.To == core.Monitor {
			tl.Evictions++
		}
	}
	out := make([]BranchTimeline, 0, len(byBranch))
	for _, tl := range byBranch {
		last := &tl.Segments[len(tl.Segments)-1]
		last.ToInstr = endInstr
		if last.ToInstr < last.FromInstr {
			last.ToInstr = last.FromInstr
		}
		tl.Final = last.State
		out = append(out, *tl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Branch < out[j].Branch })
	return out
}
