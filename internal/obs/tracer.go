package obs

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage in a batch's life. A trace is the set of spans
// sharing a Trace ID; within one node, Parent links a stage to the span that
// contains it (the server's "batch" root contains decode, wal_append, fsync,
// apply and respond). Across nodes only the Trace ID travels — the stream 'E'
// frame and the replication record frame both carry it at protocol version 2
// — so a primary's ship span and a follower's follower_apply span join the
// trace by ID with Parent zero.
//
// Infrastructure spans (wal_fsync, wal_rotate, repl_session) carry Trace
// zero: they time background machinery that no single batch owns.
type Span struct {
	Trace  uint64
	Span   uint64
	Parent uint64
	// Node names the process that recorded the span (reactived -trace-node,
	// default "primary"/"replica" by role; reactiveload uses "loadgen").
	Node  string
	Stage string
	// Program is the event program the span worked on, when one applies.
	Program string
	// Events is the batch's event count, when one applies.
	Events int
	// Seq is the first WAL sequence the span covers, when one applies.
	Seq uint64
	// Start is the span's start wall clock in Unix nanoseconds; Dur its
	// duration in nanoseconds.
	Start int64
	Dur   int64
}

// DefaultTraceRing is the span ring capacity a Tracer keeps for the /debug
// span dump when the caller does not choose one.
const DefaultTraceRing = 1 << 14

// seqTableSize is the seq→trace side-table capacity (power of two). The
// table lets the replication shipper — which reads records back off the WAL,
// where no trace context is stored — recover the trace ID a traced batch's
// appends belonged to. Entries are evicted by ring position; a shipper more
// than seqTableSize records behind simply ships those records untraced.
const seqTableSize = 1 << 12

// Tracer records sampled batch spans. The zero-cost off switch is the nil
// receiver: every method nil-checks first, so untraced builds pay one
// predictable branch per call site. Sampling is 1-in-N on batch arrival;
// sampled batches get a fresh trace ID, everything else records nothing.
//
// Spans land in a fixed ring (for the /debug/spans dump) and, when an output
// writer is attached, as byte-deterministic JSONL: fixed field order, fixed
// integer formats, so identical span values encode to identical bytes.
type Tracer struct {
	node   string
	sample uint64

	batches atomic.Uint64 // batch arrivals, for 1-in-N sampling
	infra   atomic.Uint64 // infra-span arrivals, sampled on their own counter
	ids     atomic.Uint64 // span/trace ID counter, low bits
	idBase  uint64        // node-hash high bits, keeps IDs distinct across nodes

	mu      sync.Mutex
	ring    []Span
	next    int
	n       int
	dropped uint64
	w       *bufio.Writer
	werr    error

	seqMu  sync.RWMutex
	seqTab [seqTableSize]seqTraceEntry
}

type seqTraceEntry struct {
	seq   uint64
	trace uint64
}

// NewTracer returns a tracer that samples one batch in sampleN (0 disables
// sampling; explicit trace IDs arriving over the wire are still honored) and
// stamps node on every span. Node-derived high ID bits keep trace and span
// IDs from colliding when several nodes' span files are concatenated.
func NewTracer(node string, sampleN int) *Tracer {
	if sampleN < 0 {
		sampleN = 0
	}
	h := fnv.New64a()
	io.WriteString(h, node)
	t := &Tracer{
		node:   node,
		sample: uint64(sampleN),
		idBase: (h.Sum64() & 0xffff) << 40,
		ring:   make([]Span, DefaultTraceRing),
	}
	return t
}

// SetOutput attaches a JSONL span stream. Each recorded span is written and
// flushed immediately — span volume is bounded by sampling, and an abrupt
// SIGKILL (the failover smoke's whole point) must not lose the tail.
func (t *Tracer) SetOutput(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.w = bufio.NewWriterSize(w, 1<<15)
	t.mu.Unlock()
}

// Close flushes the JSONL stream, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w != nil {
		if err := t.w.Flush(); err != nil && t.werr == nil {
			t.werr = err
		}
		t.w = nil
	}
	return t.werr
}

// Node returns the tracer's node label ("" on a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// id returns a fresh process-unique, node-salted ID. Never zero.
func (t *Tracer) id() uint64 {
	return t.idBase | (t.ids.Add(1) & 0xffffffffff)
}

// SampleBatch decides whether the arriving batch is traced: every sampleN-th
// call returns a fresh trace ID, the rest (and every call on a nil or
// sampling-disabled tracer) return zero.
func (t *Tracer) SampleBatch() uint64 {
	if t == nil || t.sample == 0 {
		return 0
	}
	if t.batches.Add(1)%t.sample != 0 {
		return 0
	}
	return t.id()
}

// SampleInfra is SampleBatch for background infrastructure spans (WAL fsync
// and rotation), on an independent counter so infra volume does not skew
// batch sampling. It returns whether to record, not a trace ID — infra spans
// are trace-less.
func (t *Tracer) SampleInfra() bool {
	if t == nil || t.sample == 0 {
		return false
	}
	return t.infra.Add(1)%t.sample == 0
}

// SpanID mints a span ID for a span the caller will Record later. Returns
// zero on a nil tracer.
func (t *Tracer) SpanID() uint64 {
	if t == nil {
		return 0
	}
	return t.id()
}

// Record stores one completed span in the ring and on the JSONL stream. A
// nil tracer, or a zero span ID, records nothing; the caller does not need
// its own tracing-off branch.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Span == 0 {
		return
	}
	s.Node = t.node
	t.mu.Lock()
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.w != nil {
		writeSpanJSON(t.w, s)
		if err := t.w.Flush(); err != nil && t.werr == nil {
			t.werr = err
		}
	}
	t.mu.Unlock()
}

// RecordStage is the one-call form for a stage measured inline: it mints the
// span ID, stamps start/duration, and records. Returns the span ID (zero on
// a nil tracer) so callers can parent further children under it.
func (t *Tracer) RecordStage(trace, parent uint64, stage, program string, events int, seq uint64, start time.Time, dur time.Duration) uint64 {
	if t == nil || trace == 0 {
		return 0
	}
	id := t.id()
	t.Record(Span{
		Trace:   trace,
		Span:    id,
		Parent:  parent,
		Stage:   stage,
		Program: program,
		Events:  events,
		Seq:     seq,
		Start:   start.UnixNano(),
		Dur:     int64(dur),
	})
	return id
}

// RecordInfra records one trace-less infrastructure span (wal_fsync,
// wal_rotate): callers gate volume with SampleInfra first.
func (t *Tracer) RecordInfra(stage string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.Record(Span{
		Span:  t.id(),
		Stage: stage,
		Start: start.UnixNano(),
		Dur:   int64(dur),
	})
}

// NoteSeq remembers that WAL sequence seq belongs to trace, so the
// replication shipper can re-attach the trace when it ships the record. A
// nil tracer or an untraced batch (trace 0) notes nothing.
func (t *Tracer) NoteSeq(seq, trace uint64) {
	if t == nil || trace == 0 {
		return
	}
	t.seqMu.Lock()
	t.seqTab[seq%seqTableSize] = seqTraceEntry{seq: seq, trace: trace}
	t.seqMu.Unlock()
}

// TraceForSeq returns the trace a WAL sequence was noted under, or zero when
// the sequence was untraced or already evicted from the side table.
func (t *Tracer) TraceForSeq(seq uint64) uint64 {
	if t == nil {
		return 0
	}
	t.seqMu.RLock()
	e := t.seqTab[seq%seqTableSize]
	t.seqMu.RUnlock()
	if e.seq != seq {
		return 0
	}
	return e.trace
}

// Dropped returns how many spans the ring has overwritten since start.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL dumps the ring's retained spans, oldest first, in the same
// byte-deterministic JSONL encoding the output stream uses. The /debug/spans
// handler serves exactly this.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]Span, 0, t.n)
	start := (t.next - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		spans = append(spans, t.ring[(start+i)%len(t.ring)])
	}
	t.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		writeSpanJSON(bw, s)
	}
	return bw.Flush()
}

// writeSpanJSON writes one span as one JSON line: fixed field order and
// plain %d/%q formatting, so identical spans encode to identical bytes.
func writeSpanJSON(w io.Writer, s Span) {
	fmt.Fprintf(w, `{"trace":%d,"span":%d,"parent":%d,"node":%q,"stage":%q,"program":%q,"events":%d,"seq":%d,"start":%d,"dur":%d}`+"\n",
		s.Trace, s.Span, s.Parent, s.Node, s.Stage, s.Program, s.Events, s.Seq, s.Start, s.Dur)
}
