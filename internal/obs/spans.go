package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"reactivespec/internal/plot"
)

// This file is the offline half of span tracing: load a JSONL span file (or
// several nodes' files concatenated), group spans into traces, and attribute
// each traced batch's wall time to its named stages. reactivespec spans
// renders the result as a table, CSV, or an SVG bar chart.

// ingestStages are the server-side children of a batch root, in pipeline
// order; crossNodeStages follow once the record leaves the ingest path. The
// fixed order keeps the report (and its CSV/SVG forms) deterministic.
var ingestStages = []string{"decode", "wal_append", "fsync", "apply", "respond"}
var crossNodeStages = []string{"ship", "follower_apply"}
var clientStages = []string{"client_encode", "client_network"}

// StageStat aggregates one stage across every trace in a span file.
type StageStat struct {
	Stage string
	Count int
	// P50/P99/Mean are per-span durations in milliseconds.
	P50, P99, Mean float64
	// PctOfBatch is the stage's share of traced batch wall time: the
	// stage's summed duration over the summed duration of every batch
	// root, in percent. Stages that outlive the batch (ship,
	// follower_apply) can exceed the batch window on their own clock and
	// are reported against the same denominator for comparability.
	PctOfBatch float64
}

// SpanReport is the analysis of one span file.
type SpanReport struct {
	Spans  int
	Traces int
	// Batches counts traces that contain a server "batch" root span.
	Batches int
	Stages  []StageStat
	// CoveragePct is the mean fraction of a batch root's wall time covered
	// by its direct children, in percent — how much of a traced batch the
	// named stages explain.
	CoveragePct float64
	// CompleteChains counts traces observed end to end: an ingest batch,
	// its WAL append, the replication ship, and a follower apply.
	CompleteChains int
	Nodes          []string
	// DroppedLines counts input lines that did not parse as spans.
	DroppedLines int
}

// LoadSpans reads spans from a JSONL stream, one span object per line.
// Unparsable lines are counted, not fatal — a SIGKILL'd daemon can leave a
// torn final line.
func LoadSpans(r io.Reader) ([]Span, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var spans []Span
	dropped := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil || s.Span == 0 {
			dropped++
			continue
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, dropped, fmt.Errorf("obs: reading span file: %w", err)
	}
	return spans, dropped, nil
}

// BuildSpanReport groups spans into traces and computes the per-stage
// latency distribution and batch-time attribution.
func BuildSpanReport(spans []Span, dropped int) SpanReport {
	rep := SpanReport{Spans: len(spans), DroppedLines: dropped}
	byTrace := make(map[uint64][]Span)
	nodes := make(map[string]bool)
	durs := make(map[string][]float64) // stage -> durations (ms)
	for _, s := range spans {
		nodes[s.Node] = true
		durs[s.Stage] = append(durs[s.Stage], float64(s.Dur)/1e6)
		if s.Trace != 0 {
			byTrace[s.Trace] = append(byTrace[s.Trace], s)
		}
	}
	rep.Traces = len(byTrace)
	for n := range nodes {
		rep.Nodes = append(rep.Nodes, n)
	}
	sort.Strings(rep.Nodes)

	// Batch-time attribution: for every trace with a batch root, the
	// root's direct children cover some fraction of its wall time.
	var batchTotal float64 // summed batch root durations, ms
	var covered float64    // summed child durations inside those roots, ms
	stageInBatch := make(map[string]float64)
	for _, ts := range byTrace {
		var root Span
		for _, s := range ts {
			if s.Stage == "batch" {
				root = s
				break
			}
		}
		if root.Span == 0 || root.Dur <= 0 {
			continue
		}
		rep.Batches++
		batchTotal += float64(root.Dur) / 1e6
		for _, s := range ts {
			if s.Parent == root.Span {
				covered += float64(s.Dur) / 1e6
			}
			stageInBatch[s.Stage] += float64(s.Dur) / 1e6
		}
		if hasStages(ts, "wal_append") && hasStages(ts, "ship") && hasStages(ts, "follower_apply") {
			rep.CompleteChains++
		}
	}
	if batchTotal > 0 {
		rep.CoveragePct = covered / batchTotal * 100
	}

	// Stage rows in pipeline order first, then anything else alphabetically.
	ordered := append(append(append([]string{}, clientStages...), "batch"), ingestStages...)
	ordered = append(ordered, crossNodeStages...)
	seen := make(map[string]bool)
	for _, st := range ordered {
		seen[st] = true
	}
	var extra []string
	for st := range durs {
		if !seen[st] {
			extra = append(extra, st)
		}
	}
	sort.Strings(extra)
	for _, st := range append(ordered, extra...) {
		ds := durs[st]
		if len(ds) == 0 {
			continue
		}
		sort.Float64s(ds)
		var sum float64
		for _, d := range ds {
			sum += d
		}
		pct := 0.0
		if batchTotal > 0 && st != "batch" {
			pct = stageInBatch[st] / batchTotal * 100
		}
		rep.Stages = append(rep.Stages, StageStat{
			Stage: st,
			Count: len(ds),
			P50:   percentile(ds, 0.50),
			P99:   percentile(ds, 0.99),
			Mean:  sum / float64(len(ds)),
			PctOfBatch: pct,
		})
	}
	return rep
}

func hasStages(ts []Span, stage string) bool {
	for _, s := range ts {
		if s.Stage == stage {
			return true
		}
	}
	return false
}

// percentile returns the p-quantile of sorted (ascending) values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// WriteSpanReport renders the report as an aligned table or as CSV.
func WriteSpanReport(w io.Writer, rep SpanReport, csv bool) error {
	if csv {
		if _, err := fmt.Fprintln(w, "stage,count,p50_ms,p99_ms,mean_ms,pct_of_batch"); err != nil {
			return err
		}
		for _, s := range rep.Stages {
			if _, err := fmt.Fprintf(w, "%s,%d,%.6f,%.6f,%.6f,%.2f\n",
				s.Stage, s.Count, s.P50, s.P99, s.Mean, s.PctOfBatch); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# spans=%d traces=%d batches=%d coverage_pct=%.1f complete_chains=%d dropped_lines=%d nodes=%v\n",
			rep.Spans, rep.Traces, rep.Batches, rep.CoveragePct, rep.CompleteChains, rep.DroppedLines, rep.Nodes)
		return err
	}
	fmt.Fprintf(w, "spans: %d   traces: %d   traced batches: %d   nodes: %v\n",
		rep.Spans, rep.Traces, rep.Batches, rep.Nodes)
	fmt.Fprintf(w, "batch wall time attributed to named stages: %.1f%%\n", rep.CoveragePct)
	fmt.Fprintf(w, "complete ingest→wal→ship→follower chains: %d\n", rep.CompleteChains)
	if rep.DroppedLines > 0 {
		fmt.Fprintf(w, "unparsable lines skipped: %d\n", rep.DroppedLines)
	}
	fmt.Fprintf(w, "\n%-16s %8s %12s %12s %12s %14s\n", "stage", "count", "p50 ms", "p99 ms", "mean ms", "% of batch")
	for _, s := range rep.Stages {
		pct := "-"
		if s.PctOfBatch > 0 {
			pct = fmt.Sprintf("%.2f", s.PctOfBatch)
		}
		if _, err := fmt.Fprintf(w, "%-16s %8d %12.4f %12.4f %12.4f %14s\n",
			s.Stage, s.Count, s.P50, s.P99, s.Mean, pct); err != nil {
			return err
		}
	}
	return nil
}

// SVGSpanReport renders the per-stage batch-time attribution as a bar chart.
func SVGSpanReport(w io.Writer, rep SpanReport) error {
	var xs, ys []float64
	var names []string
	for _, s := range rep.Stages {
		if s.Stage == "batch" || s.PctOfBatch <= 0 {
			continue
		}
		xs = append(xs, float64(len(xs)))
		ys = append(ys, s.PctOfBatch)
		names = append(names, s.Stage)
	}
	p := &plot.Plot{
		Title:  fmt.Sprintf("Batch latency attribution (%d traced batches, %.1f%% covered)", rep.Batches, rep.CoveragePct),
		XLabel: fmt.Sprintf("stage index: %v", names),
		YLabel: "% of batch wall time",
		Series: []plot.Series{{Name: "stages", X: xs, Y: ys, Style: plot.Bars}},
	}
	return p.WriteSVG(w, 860, 420)
}
