package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"reactivespec/internal/trace"
)

// streamBatches splits evs into batches of size batch.
func streamBatches(evs []trace.Event, batch int) [][]trace.Event {
	var out [][]trace.Event
	for off := 0; off < len(evs); off += batch {
		end := off + batch
		if end > len(evs) {
			end = len(evs)
		}
		out = append(out, evs[off:end])
	}
	return out
}

// runSession pushes every batch through st pipelined (sender goroutine,
// receiver in the caller) and returns the concatenated decisions.
func runSession(t *testing.T, st *Stream, batches [][]trace.Event) []Decision {
	t.Helper()
	ctx := context.Background()
	sendErr := make(chan error, 1)
	go func() {
		for _, b := range batches {
			if err := st.Send(ctx, b); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()
	var got []Decision
	for range batches {
		ds, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		got = append(got, ds...)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("Send: %v", err)
	}
	return got
}

// TestStreamMatchesIngest pins the tentpole equivalence: a streaming session
// produces byte-identical decisions to POST /v1/ingest for the same event
// sequence, across shard counts and pipeline window sizes.
func TestStreamMatchesIngest(t *testing.T) {
	evs := synthEvents(20_000, 11)
	const batch = 1000
	for _, shards := range []int{1, 4, 16} {
		// The POST reference for this shard count.
		_, postC := newTestServer(t, Config{Shards: shards})
		var want []Decision
		for _, b := range streamBatches(evs, batch) {
			ds, err := postC.Ingest(context.Background(), "gzip", b)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ds...)
		}
		for _, window := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("shards=%d/window=%d", shards, window), func(t *testing.T) {
				_, c := newTestServer(t, Config{Shards: shards})
				st, err := c.OpenStream(context.Background(), "gzip", WithStreamWindow(window))
				if err != nil {
					t.Fatalf("OpenStream: %v", err)
				}
				if st.Window() != window {
					t.Fatalf("granted window %d, requested %d", st.Window(), window)
				}
				got := runSession(t, st, streamBatches(evs, batch))
				if err := st.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("%d decisions, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("decision %d = %v, want %v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestStreamRawTCPListener drives a session over ServeStream's raw listener
// (no HTTP upgrade) and pins it to the same decisions as the table.
func TestStreamRawTCPListener(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeStream(ln)

	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hash, err := ParseInfoParamsHash(info)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DialStream(context.Background(), ln.Addr().String(), "raw", hash, WithStreamWindow(8))
	if err != nil {
		t.Fatalf("DialStream: %v", err)
	}
	evs := synthEvents(5000, 7)
	got := runSession(t, st, streamBatches(evs, 500))
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	tab := NewTable(s.cfg.Params, 1)
	var instr uint64
	want := applyAll(tab, "raw", evs, &instr)
	if len(got) != len(want) {
		t.Fatalf("%d decisions, want %d", len(got), len(want))
	}
	for i, d := range got {
		if d.Encode() != want[i] {
			t.Fatalf("decision %d = %v, want encoded %#x", i, d, want[i])
		}
	}
}

// TestStreamSnapshotWhileStreaming interleaves snapshots with an active
// session: both must succeed, and the snapshot must land on disk.
func TestStreamSnapshotWhileStreaming(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 4, SnapshotDir: t.TempDir()})
	st, err := c.OpenStream(context.Background(), "snap", WithStreamWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	evs := synthEvents(30_000, 3)
	batches := streamBatches(evs, 500)

	var wg sync.WaitGroup
	wg.Add(1)
	snapErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.SnapshotNow(); err != nil {
				snapErr <- err
				return
			}
		}
		snapErr <- nil
	}()
	got := runSession(t, st, batches)
	wg.Wait()
	if err := <-snapErr; err != nil {
		t.Fatalf("SnapshotNow during streaming: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("%d decisions for %d events", len(got), len(evs))
	}
	snap, err := LoadSnapshot(s.cfg.SnapshotDir)
	if err != nil || snap == nil {
		t.Fatalf("LoadSnapshot = %v, %v; want a snapshot", snap, err)
	}
}

// TestStreamDrainSendsTerminal pins the lifecycle contract: BeginDrain ends
// an idle session with a terminal "draining" frame, so the client observes
// ErrDraining — a typed error, not a connection reset.
func TestStreamDrainSendsTerminal(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 2})
	st, err := c.OpenStream(context.Background(), "drain")
	if err != nil {
		t.Fatal(err)
	}
	// One working round trip before the drain.
	if err := st.Send(context.Background(), synthEvents(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := st.Recv(ctx); !errors.Is(err, ErrDraining) {
		t.Fatalf("Recv after drain = %v, want ErrDraining", err)
	}
	if err := st.Send(ctx, synthEvents(10, 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Send after drain = %v, want ErrDraining", err)
	}
	if err := st.Close(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Close after drain = %v, want ErrDraining", err)
	}
	// The server side must also settle: the session left the registry.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	if err := s.WaitStreams(waitCtx); err != nil {
		t.Fatalf("WaitStreams: %v", err)
	}

	// New sessions are refused while draining, with the typed error on both
	// transports.
	if _, err := c.OpenStream(context.Background(), "late"); !errors.Is(err, ErrDraining) {
		t.Fatalf("OpenStream while draining = %v, want ErrDraining", err)
	}
}

// TestStreamHandshakeParamMismatch pins the typed rejection of a handshake
// whose controller-parameter hash differs from the server's.
func TestStreamHandshakeParamMismatch(t *testing.T) {
	_, c := newTestServer(t, Config{Shards: 2})
	_, err := c.OpenStream(context.Background(), "p", WithStreamParams(0xdeadbeef))
	if !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("OpenStream with wrong hash = %v, want ErrParamsMismatch", err)
	}
}

// TestStreamHandshakeProtoMismatch drives the raw wire format directly: a
// handshake with an unknown protocol version gets a typed reject ack.
func TestStreamHandshakeProtoMismatch(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A peer newer than us negotiates down (NegotiateStreamProto), so the
	// reject only fires below the supported minimum.
	hs := trace.Handshake{Proto: trace.StreamProtoMin - 1, ParamsHash: s.paramsHash, Program: "p"}
	if _, err := conn.Write(trace.AppendHandshake(nil, hs)); err != nil {
		t.Fatal(err)
	}
	ack, err := trace.ReadAck(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("ReadAck: %v", err)
	}
	if ack.Err == nil || ack.Err.Code != trace.StreamCodeProtoMismatch {
		t.Fatalf("ack = %+v, want proto_mismatch reject", ack)
	}
}

// TestStreamRejectFrameKeepsSession sends a corrupt event payload inside an
// intact session frame: the server answers a reject for that frame and the
// session keeps working.
func TestStreamRejectFrameKeepsSession(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeStream(ln)

	st, err := DialStream(context.Background(), ln.Addr().String(), "p", s.paramsHash)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Reach under the client: write a session frame whose event payload is
	// garbage (valid session framing, corrupt trace frame inside).
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	br := bufio.NewReader(raw)
	if _, err := raw.Write(trace.AppendHandshake(nil,
		trace.Handshake{Proto: trace.StreamProtoVersion, ParamsHash: s.paramsHash, Program: "q"})); err != nil {
		t.Fatal(err)
	}
	if ack, err := trace.ReadAck(br); err != nil || ack.Err != nil {
		t.Fatalf("handshake: %v, %+v", err, ack)
	}
	if _, err := raw.Write(trace.AppendSessionFrame(nil, trace.StreamFrameEvents,
		[]byte("not a trace frame"))); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := trace.ReadSessionFrame(br, nil)
	if err != nil {
		t.Fatalf("reading reject: %v", err)
	}
	if typ != trace.StreamFrameReject {
		t.Fatalf("frame type %q, want reject", typ)
	}
	// The session survived the rejection: a valid frame still applies. The
	// handshake negotiated proto >= 4, so the payload leads with a trace
	// context (zero = untraced) and a kind tag.
	good := trace.EncodeFrameAppend(
		trace.AppendKind(trace.AppendTraceContext(nil, 0), trace.KindBranch),
		synthEvents(10, 4))
	if _, err := raw.Write(trace.AppendSessionFrame(nil, trace.StreamFrameEvents, good)); err != nil {
		t.Fatal(err)
	}
	typ, payload, _, err := trace.ReadSessionFrame(br, nil)
	if err != nil {
		t.Fatalf("after reject: %v", err)
	}
	// At proto 3 the server may coalesce ('d'); both forms decode to the
	// same decisions.
	var ds []Decision
	switch typ {
	case trace.StreamFrameDecisions:
		ds, err = decodeDecisionsPayload(payload)
	case trace.StreamFrameDecisionsRLE:
		var raw []byte
		if raw, err = trace.DecodeDecisionsRLE(payload, nil); err == nil {
			ds, err = decisionsFromBytes(raw)
		}
	default:
		t.Fatalf("after reject: type %q; want a decisions frame", typ)
	}
	if err != nil || len(ds) != 10 {
		t.Fatalf("decisions after reject = %d, %v; want 10", len(ds), err)
	}
}

// TestStreamCloseRemovesSession checks the registry bookkeeping around a
// clean close.
func TestStreamCloseRemovesSession(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 2})
	st, err := c.OpenStream(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(context.Background(), synthEvents(50, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := s.ActiveStreams(); n != 1 {
		t.Fatalf("ActiveStreams = %d, want 1", n)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitStreams(ctx); err != nil {
		t.Fatalf("WaitStreams after close: %v", err)
	}
	// Recv after a clean close reports end-of-session, not an error.
	if _, err := st.Recv(context.Background()); err != io.EOF {
		t.Fatalf("Recv after close = %v, want io.EOF", err)
	}
}

// TestStreamCloseUnblocksAbandonedSession pins the abort path: a receiver
// that stops Recv'ing mid-session wedges the stream reader (its results
// buffer fills, so no more window credits come back) and thereby any Send
// waiting on credit. Close must discard the undelivered results, fail the
// blocked Send, and still complete the bye handshake — not deadlock.
func TestStreamCloseUnblocksAbandonedSession(t *testing.T) {
	_, c := newTestServer(t, Config{Shards: 2})
	ctx := context.Background()
	st, err := c.OpenStream(ctx, "p", WithStreamWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	evs := synthEvents(64, 3)
	// Far more frames than two windows' worth: with no Recv ever issued,
	// the sender is guaranteed to end up blocked on window credit.
	sendDone := make(chan error, 1)
	go func() {
		for i := 0; i < 16; i++ {
			if err := st.Send(ctx, evs); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()

	closeDone := make(chan error, 1)
	go func() { closeDone <- st.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an abandoned session")
	}
	select {
	case err := <-sendDone:
		if err == nil {
			t.Fatal("all sends succeeded without a receiver; sender never blocked")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender still blocked after Close")
	}
}

// TestStreamUpgradeOnRealServer sanity-checks the HTTP hijack path against a
// stock httptest server end to end (newTestServer uses one already; this
// pins the 101 upgrade specifically by driving a second session while the
// first is open).
func TestStreamUpgradeOnRealServer(t *testing.T) {
	s := New(Config{Params: testParams(), Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := Connect(ts.URL)
	st1, err := c.OpenStream(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.OpenStream(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if n := s.ActiveStreams(); n != 2 {
		t.Fatalf("ActiveStreams = %d, want 2", n)
	}
	for _, st := range []*Stream{st1, st2} {
		if err := st.Send(context.Background(), synthEvents(20, 5)); err != nil {
			t.Fatal(err)
		}
		if ds, err := st.Recv(context.Background()); err != nil || len(ds) != 20 {
			t.Fatalf("Recv = %d decisions, %v", len(ds), err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
