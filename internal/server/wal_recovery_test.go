package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"

	"reactivespec/internal/wal"
)

// walTestEnv is one crash-recovery scenario's fixture: a victim server with
// a WAL, the batches it ingested (per program, in order), and the shared
// directories a recovered server reopens.
type walTestEnv struct {
	walDir  string
	snapDir string
	shards  int
}

func newWALEnv(t *testing.T, shards int) *walTestEnv {
	t.Helper()
	return &walTestEnv{
		walDir:  t.TempDir(),
		snapDir: t.TempDir(),
		shards:  shards,
	}
}

// openLog opens the env's WAL with the params hash every test server uses.
func (env *walTestEnv) openLog(t *testing.T, policy wal.SyncPolicy) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{
		Dir:        env.walDir,
		ParamsHash: ParamsHash(testParams()),
		Policy:     policy,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

// newServer builds a server over the env's directories and the given log.
func (env *walTestEnv) newServer(t *testing.T, l *wal.Log) (*Server, *Client) {
	t.Helper()
	return newTestServer(t, Config{Shards: env.shards, SnapshotDir: env.snapDir, WAL: l})
}

// walBatch is one ingested batch: which program, which synthEvents seed.
type walBatch struct {
	program string
	n       int
	seed    uint64
}

// controlState applies batches[:upto] to a fresh WAL-less server in ingest
// order and returns its entry snapshot — the ground truth a recovered server
// must reproduce byte-for-byte.
func controlState(t *testing.T, shards int, batches []walBatch, upto int) ([]EntrySnapshot, *Server) {
	t.Helper()
	s := New(Config{Params: testParams(), Shards: shards})
	var discard []byte
	for _, b := range batches[:upto] {
		cur := s.cursorFor(b.program)
		discard, cur.instr = s.table.ApplyBatch(b.program, synthEvents(b.n, b.seed), cur.instr, discard[:0])
	}
	return s.table.SnapshotEntries(), s
}

// futureDecisions runs one more batch directly against a server's table and
// returns the decision bytes — recovered and control servers must agree on
// the future, not just the present.
func futureDecisions(t *testing.T, s *Server, b walBatch) []byte {
	t.Helper()
	cur := s.cursorFor(b.program)
	var out []byte
	out, cur.instr = s.table.ApplyBatch(b.program, synthEvents(b.n, b.seed), cur.instr, nil)
	return out
}

// TestRecoverMatchesUncrashed pins the recovery determinism contract across
// seeds, shard counts and both transports: a server that crashes (WAL
// abandoned mid-life, no graceful shutdown path) and recovers via
// snapshot + WAL-tail replay reaches byte-identical controller state and
// produces byte-identical future decisions to a server that never crashed.
func TestRecoverMatchesUncrashed(t *testing.T) {
	for _, tc := range []struct {
		seed     uint64
		shards   int
		stream   bool
		snapshot bool // take a snapshot mid-stream so replay starts mid-WAL
	}{
		{seed: 1, shards: 1, stream: false, snapshot: true},
		{seed: 2, shards: 4, stream: false, snapshot: true},
		{seed: 3, shards: 4, stream: false, snapshot: false},
		{seed: 4, shards: 1, stream: true, snapshot: true},
		{seed: 5, shards: 4, stream: true, snapshot: false},
	} {
		name := fmt.Sprintf("seed=%d/shards=%d/stream=%v/snapshot=%v",
			tc.seed, tc.shards, tc.stream, tc.snapshot)
		t.Run(name, func(t *testing.T) {
			env := newWALEnv(t, tc.shards)
			batches := []walBatch{
				{program: "gzip", n: 4000, seed: tc.seed},
				{program: "vpr", n: 3000, seed: tc.seed + 10},
				{program: "gzip", n: 2000, seed: tc.seed + 20},
				{program: "mcf", n: 1000, seed: tc.seed + 30},
				{program: "vpr", n: 2500, seed: tc.seed + 40},
				{program: "gzip", n: 1500, seed: tc.seed + 50},
			}

			// Victim: ingest, optionally snapshot mid-way, ingest more,
			// then "crash" — the WAL is closed (SyncAlways makes every
			// acknowledged batch durable anyway) but the server never
			// drains or takes a shutdown snapshot.
			l := env.openLog(t, wal.SyncAlways)
			victim, vc := env.newServer(t, l)
			ingest := func(b walBatch) {
				events := synthEvents(b.n, b.seed)
				if tc.stream {
					st, err := vc.OpenStream(context.Background(), b.program)
					if err != nil {
						t.Fatalf("OpenStream: %v", err)
					}
					if err := st.Send(context.Background(), events); err != nil {
						t.Fatalf("Send: %v", err)
					}
					if _, err := st.Recv(context.Background()); err != nil {
						t.Fatalf("Recv: %v", err)
					}
					st.Close()
				} else if _, err := vc.Ingest(context.Background(), b.program, events); err != nil {
					t.Fatalf("Ingest: %v", err)
				}
			}
			for i, b := range batches {
				if tc.snapshot && i == len(batches)/2 {
					if _, err := victim.SnapshotNow(); err != nil {
						t.Fatalf("SnapshotNow: %v", err)
					}
				}
				ingest(b)
			}
			crashed := victim.table.SnapshotEntries()
			if err := l.Close(); err != nil {
				t.Fatalf("closing victim wal: %v", err)
			}

			// Recover into a fresh server over the same directories.
			l2 := env.openLog(t, wal.SyncAlways)
			recovered, _ := env.newServer(t, l2)
			res, err := recovered.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if tc.snapshot != res.SnapshotRestored {
				t.Fatalf("SnapshotRestored = %v, want %v", res.SnapshotRestored, tc.snapshot)
			}
			if res.ReplayedRecords == 0 {
				t.Fatalf("recovery replayed nothing")
			}
			if tc.snapshot && res.WALSeq == 0 {
				t.Fatalf("snapshot restored but replay anchored at 0")
			}

			// Byte-identical present: recovered state == crashed state ==
			// a control that never saw a WAL or a crash.
			got := recovered.table.SnapshotEntries()
			if !reflect.DeepEqual(got, crashed) {
				t.Fatalf("recovered entries differ from the crashed server's")
			}
			control, controlSrv := controlState(t, tc.shards, batches, len(batches))
			if !reflect.DeepEqual(got, control) {
				t.Fatalf("recovered entries differ from the uncrashed control")
			}

			// Byte-identical future: the next batch decides the same way.
			next := walBatch{program: "gzip", n: 2000, seed: tc.seed + 99}
			gotNext := futureDecisions(t, recovered, next)
			wantNext := futureDecisions(t, controlSrv, next)
			if !reflect.DeepEqual(gotNext, wantNext) {
				t.Fatalf("post-recovery decisions diverge from the uncrashed control")
			}
		})
	}
}

// TestRecoverTornFinalRecord pins SIGKILL-style torn-write recovery: the
// last WAL record is cut mid-payload, recovery truncates it at the last
// valid boundary, and the recovered state matches a control that never saw
// the torn batch.
func TestRecoverTornFinalRecord(t *testing.T) {
	env := newWALEnv(t, 4)
	batches := []walBatch{
		{program: "gzip", n: 3000, seed: 11},
		{program: "vpr", n: 2000, seed: 12},
		{program: "gzip", n: 1000, seed: 13},
	}
	l := env.openLog(t, wal.SyncAlways)
	_, vc := env.newServer(t, l)
	for _, b := range batches {
		if _, err := vc.Ingest(context.Background(), b.program, synthEvents(b.n, b.seed)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("closing victim wal: %v", err)
	}

	// Tear the final record the way a mid-write power cut would.
	segs, err := os.ReadDir(env.walDir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("ReadDir: %v (%d entries)", err, len(segs))
	}
	path := env.walDir + "/" + segs[0].Name()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, st.Size()-37); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	l2 := env.openLog(t, wal.SyncAlways)
	recovered, _ := env.newServer(t, l2)
	res, err := recovered.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.Truncation == nil {
		t.Fatalf("recovery reported no truncation")
	}
	if !strings.Contains(res.Truncation.String(), "byte offset") {
		t.Fatalf("truncation diagnostic carries no byte offset: %v", res.Truncation)
	}
	if res.ReplayedRecords != uint64(len(batches)-1) {
		t.Fatalf("replayed %d records, want %d (torn final record dropped)",
			res.ReplayedRecords, len(batches)-1)
	}

	control, _ := controlState(t, 4, batches, len(batches)-1)
	if got := recovered.table.SnapshotEntries(); !reflect.DeepEqual(got, control) {
		t.Fatalf("recovered entries differ from a control without the torn batch")
	}
}

// TestRecoverSurvivesCrashMidSnapshotWrite combines fsync=always with the
// snapshot crash-mid-write pattern: a garbage current.snap.tmp (a snapshot
// writer killed mid-write) must not disturb recovery — the previous durable
// snapshot plus the WAL tail still reproduce the full state.
func TestRecoverSurvivesCrashMidSnapshotWrite(t *testing.T) {
	env := newWALEnv(t, 2)
	batches := []walBatch{
		{program: "gzip", n: 3000, seed: 21},
		{program: "vpr", n: 2000, seed: 22},
		{program: "gzip", n: 1500, seed: 23},
	}
	l := env.openLog(t, wal.SyncAlways)
	victim, vc := env.newServer(t, l)
	for i, b := range batches {
		if i == 1 {
			if _, err := victim.SnapshotNow(); err != nil {
				t.Fatalf("SnapshotNow: %v", err)
			}
		}
		if _, err := vc.Ingest(context.Background(), b.program, synthEvents(b.n, b.seed)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("closing victim wal: %v", err)
	}
	// A snapshot writer died mid-write, leaving a torn temp file behind.
	if err := os.WriteFile(env.snapDir+"/current.snap.tmp", []byte("partial garbage"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	l2 := env.openLog(t, wal.SyncAlways)
	recovered, _ := env.newServer(t, l2)
	res, err := recovered.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !res.SnapshotRestored {
		t.Fatalf("previous durable snapshot not restored")
	}
	control, _ := controlState(t, 2, batches, len(batches))
	if got := recovered.table.SnapshotEntries(); !reflect.DeepEqual(got, control) {
		t.Fatalf("recovered entries differ from the uncrashed control")
	}
}

// TestCompactionAfterSnapshot checks the snapshot→compaction hook: once a
// snapshot anchors past rotated segments, they are deleted, and recovery
// from the compacted log still reproduces the full state.
func TestCompactionAfterSnapshot(t *testing.T) {
	env := newWALEnv(t, 2)
	l, err := wal.Open(wal.Options{
		Dir:          env.walDir,
		ParamsHash:   ParamsHash(testParams()),
		Policy:       wal.SyncAlways,
		SegmentBytes: 4 << 10, // rotate aggressively
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	victim, vc := env.newServer(t, l)
	batches := []walBatch{
		{program: "gzip", n: 2000, seed: 31},
		{program: "vpr", n: 2000, seed: 32},
		{program: "gzip", n: 2000, seed: 33},
		{program: "mcf", n: 2000, seed: 34},
	}
	for _, b := range batches {
		if _, err := vc.Ingest(context.Background(), b.program, synthEvents(b.n, b.seed)); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	before := l.Stats().Segments
	if before < 2 {
		t.Fatalf("expected rotation before snapshot, got %d segments", before)
	}
	if _, err := victim.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if after := l.Stats().Segments; after >= before {
		t.Fatalf("snapshot compacted nothing: %d -> %d segments", before, after)
	}
	if _, err := vc.Ingest(context.Background(), "gzip", synthEvents(500, 35)); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	crashed := victim.table.SnapshotEntries()
	if err := l.Close(); err != nil {
		t.Fatalf("closing victim wal: %v", err)
	}

	l2 := env.openLog(t, wal.SyncAlways)
	recovered, _ := env.newServer(t, l2)
	if _, err := recovered.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := recovered.table.SnapshotEntries(); !reflect.DeepEqual(got, crashed) {
		t.Fatalf("recovery from a compacted log diverged")
	}
}

// TestWALAppendErrorFailsIngest pins the log-before-apply contract's failure
// mode: when the WAL cannot append, POST ingest answers 500 without training
// the table, and a streaming session ends with a typed internal terminal.
func TestWALAppendErrorFailsIngest(t *testing.T) {
	env := newWALEnv(t, 2)
	l := env.openLog(t, wal.SyncAlways)
	s, c := env.newServer(t, l)
	// Kill the log under the server: every subsequent append fails.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, err := c.Ingest(context.Background(), "gzip", synthEvents(100, 1))
	if err == nil || !strings.Contains(err.Error(), "wal append") {
		t.Fatalf("Ingest with a dead WAL: %v, want wal append error", err)
	}
	if entries := s.table.SnapshotEntries(); len(entries) != 0 {
		t.Fatalf("table trained %d entries despite WAL failure", len(entries))
	}

	st, err := c.OpenStream(context.Background(), "gzip")
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()
	if err := st.Send(context.Background(), synthEvents(100, 1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := st.Recv(context.Background()); err == nil || err == io.EOF {
		t.Fatalf("Recv with a dead WAL: %v, want terminal internal error", err)
	}
	if entries := s.table.SnapshotEntries(); len(entries) != 0 {
		t.Fatalf("table trained %d entries despite WAL failure on the stream path", len(entries))
	}
}
