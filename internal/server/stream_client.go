package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
)

// Stream is one open streaming ingest session (see stream.go for the
// protocol). Send and Recv may run on different goroutines — that is the
// intended pipelined shape: a sender pushes event frames while a receiver
// drains decision frames, with up to Window frames in flight. Send blocks
// when the window is exhausted until the receiver frees a slot.
//
// Results arrive strictly in Send order. The session ends either with Close
// (clean "bye") or with the server's terminal frame: a drained server
// surfaces ErrDraining from Recv/Send/Close, never a bare connection reset.
type Stream struct {
	conn net.Conn
	bw   *bufio.Writer

	window  int
	proto   uint32      // negotiated session protocol version
	program string      // handshake program, stamped on client spans
	tracer  *obs.Tracer // nil when the session is untraced
	credits chan struct{}     // capacity window; a token = permission to send one frame
	results chan streamResult // capacity window; reader never blocks on it

	sendMu  sync.Mutex
	closed  bool   // guarded by sendMu: a close frame has been written
	sendBuf []byte // guarded by sendMu: reused frame scratch
	evBuf   []byte // guarded by sendMu: reused event-payload scratch

	readerDone chan struct{}
	termErr    error // valid after readerDone closes
}

// streamResult is one frame's outcome, in Send order.
type streamResult struct {
	decisions []Decision
	err       error // per-frame rejection (session continues)
}

// streamConfig collects OpenStream options.
type streamConfig struct {
	window     uint32
	paramsHash *uint64
	tracer     *obs.Tracer
	decisions  StreamDecisions
}

// StreamOption configures OpenStream.
type StreamOption func(*streamConfig)

// StreamDecisions selects the decision-frame encoding a session negotiates.
// Every mode yields identical per-event decisions from Recv — the encoding
// only changes the wire bytes carrying them.
type StreamDecisions int

const (
	// StreamDecisionsRLE (the default) negotiates stream proto 3: the
	// server coalesces each decision frame with run-length encoding,
	// falling back to the plain form per frame whenever RLE would not
	// shrink it. The client decodes transparently.
	StreamDecisionsRLE StreamDecisions = iota
	// StreamDecisionsPlain pins the handshake to stream proto 2 — the
	// pre-coalescing protocol, byte-for-byte: every decision frame
	// arrives as a plain 'D' frame.
	StreamDecisionsPlain
	// StreamDecisionsChangeOnly negotiates proto 3 with the change-only
	// session flag: the server sends (index, decision) deltas per frame
	// and the client reconstructs the full vector.
	StreamDecisionsChangeOnly
)

// streamProtoPlainDecisions is the newest protocol version whose decision
// frames are always plain; StreamDecisionsPlain pins the handshake to it.
const streamProtoPlainDecisions = 2

// handshakeProtoFlags maps the requested decision mode onto the handshake's
// protocol version and session flags.
func (sc *streamConfig) handshakeProtoFlags() (proto, flags uint32) {
	switch sc.decisions {
	case StreamDecisionsPlain:
		return streamProtoPlainDecisions, 0
	case StreamDecisionsChangeOnly:
		return trace.StreamProtoVersion, trace.StreamFlagChangeOnly
	default:
		return trace.StreamProtoVersion, 0
	}
}

// WithStreamDecisions selects the session's decision-frame encoding; see the
// StreamDecisions constants. The default is StreamDecisionsRLE.
func WithStreamDecisions(mode StreamDecisions) StreamOption {
	return func(sc *streamConfig) { sc.decisions = mode }
}

// WithStreamWindow requests a pipeline window of n in-flight event frames.
// The server clamps the grant to [1, MaxStreamWindow]; 0 (the default)
// accepts the server's DefaultStreamWindow.
func WithStreamWindow(n int) StreamOption {
	return func(sc *streamConfig) {
		if n > 0 {
			sc.window = uint32(n)
		}
	}
}

// WithStreamParams pins the handshake to the given controller-parameter
// hash, overriding the client's WithParamsHash pin and the /v1/info lookup.
func WithStreamParams(h uint64) StreamOption {
	return func(sc *streamConfig) { sc.paramsHash = &h }
}

// WithStreamTracer samples this session's Send calls into t: a sampled frame
// records client_encode and client_network spans and, at stream protocol 2,
// carries its trace ID to the server in the frame's trace context.
func WithStreamTracer(t *obs.Tracer) StreamOption {
	return func(sc *streamConfig) { sc.tracer = t }
}

// OpenStream upgrades a POST /v1/stream request into a streaming ingest
// session for program. The controller-parameter hash for the handshake comes
// from WithStreamParams, else the client's WithParamsHash pin, else a
// GET /v1/info lookup (trust-on-connect). ctx governs the dial and handshake
// only; the returned Stream outlives it.
func (c *Client) OpenStream(ctx context.Context, program string, opts ...StreamOption) (*Stream, error) {
	var sc streamConfig
	for _, opt := range opts {
		opt(&sc)
	}
	hash, err := c.streamParamsHash(ctx, sc)
	if err != nil {
		return nil, err
	}

	u, err := url.Parse(c.base)
	if err != nil {
		return nil, fmt.Errorf("server: stream: parsing base URL: %w", err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("server: stream: unsupported scheme %q (http only)", u.Scheme)
	}
	var d net.Dialer
	var conn net.Conn
	if c.unixPath != "" {
		// A unix:// client reaches the same /v1/stream upgrade over the
		// socket file every other request uses.
		conn, err = d.DialContext(ctx, "unix", c.unixPath)
	} else {
		host := u.Host
		if u.Port() == "" {
			host = net.JoinHostPort(u.Hostname(), "80")
		}
		conn, err = d.DialContext(ctx, "tcp", host)
	}
	if err != nil {
		return nil, fmt.Errorf("server: stream: %w", err)
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	// Upgrade request, written by hand: the connection stops speaking HTTP
	// the moment the server answers 101.
	_, err = fmt.Fprintf(bw, "POST /v1/stream HTTP/1.1\r\nHost: %s\r\n"+
		"Upgrade: reactived-stream/1\r\nConnection: Upgrade\r\nContent-Length: 0\r\n\r\n",
		u.Host)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: stream: writing upgrade request: %w", err)
	}
	applyDeadline(ctx, conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: stream: reading upgrade response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		defer conn.Close()
		defer resp.Body.Close()
		return nil, httpError("stream", resp)
	}
	if sc.tracer == nil {
		sc.tracer = c.tracer
	}
	proto, flags := sc.handshakeProtoFlags()
	return newStream(ctx, conn, br, bw, trace.Handshake{
		Proto:      proto,
		Flags:      flags,
		ParamsHash: hash,
		Window:     sc.window,
		Program:    program,
	}, sc.tracer)
}

// DialStream opens a streaming session on a raw stream listener, no HTTP
// preamble: either a TCP one (reactived -stream-addr, addr is host:port) or
// a unix-domain one (reactived -stream-unix, addr is "unix:///path/to.sock"
// or "unix:/path/to.sock"). The controller-parameter hash must be supplied
// explicitly — a raw listener has no /v1/info to consult (compute it with
// ParamsHash, or copy it from an Info lookup on the HTTP address).
func DialStream(ctx context.Context, addr, program string, paramsHash uint64, opts ...StreamOption) (*Stream, error) {
	var sc streamConfig
	for _, opt := range opts {
		opt(&sc)
	}
	if sc.paramsHash != nil {
		paramsHash = *sc.paramsHash
	}
	network, target := "tcp", addr
	if path, ok := cutUnixTarget(addr); ok {
		network, target = "unix", path
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, network, target)
	if err != nil {
		return nil, fmt.Errorf("server: stream: %w", err)
	}
	proto, flags := sc.handshakeProtoFlags()
	return newStream(ctx, conn,
		bufio.NewReaderSize(conn, 1<<16), bufio.NewWriterSize(conn, 1<<16),
		trace.Handshake{
			Proto:      proto,
			Flags:      flags,
			ParamsHash: paramsHash,
			Window:     sc.window,
			Program:    program,
		}, sc.tracer)
}

// cutUnixTarget recognizes a unix-domain target — "unix:///path/to.sock" or
// "unix:/path/to.sock" — and returns the socket path.
func cutUnixTarget(addr string) (path string, ok bool) {
	rest, found := strings.CutPrefix(addr, "unix://")
	if !found {
		rest, found = strings.CutPrefix(addr, "unix:")
	}
	if !found || rest == "" {
		return "", false
	}
	return rest, true
}

// streamParamsHash resolves the handshake hash: explicit option, client pin,
// else a /v1/info lookup.
func (c *Client) streamParamsHash(ctx context.Context, sc streamConfig) (uint64, error) {
	if sc.paramsHash != nil {
		return *sc.paramsHash, nil
	}
	if c.paramsPin != "" {
		return parseParamsHash(c.paramsPin)
	}
	info, err := c.Info(ctx)
	if err != nil {
		return 0, fmt.Errorf("server: stream: resolving params hash: %w", err)
	}
	return parseParamsHash(info.ParamsHash)
}

// applyDeadline projects ctx's deadline (if any) onto conn for the handshake
// phase; newStream clears it once the session is established.
func applyDeadline(ctx context.Context, conn net.Conn) {
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
}

// newStream performs the session handshake on an established connection and
// starts the reader goroutine. It owns conn and closes it on failure.
func newStream(ctx context.Context, conn net.Conn, br *bufio.Reader, bw *bufio.Writer, hs trace.Handshake, tracer *obs.Tracer) (*Stream, error) {
	applyDeadline(ctx, conn)
	_, err := bw.Write(trace.AppendHandshake(nil, hs))
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: stream: writing handshake: %w", err)
	}
	ack, err := trace.ReadAck(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: stream: reading handshake ack: %w", err)
	}
	if ack.Err != nil {
		conn.Close()
		return nil, streamTerminalError(*ack.Err)
	}
	// An older server acks a lower protocol version and the session speaks
	// it (dropping the trace context); anything outside the supported range
	// is a broken peer.
	if ack.Proto < trace.StreamProtoMin || ack.Proto > hs.Proto {
		conn.Close()
		return nil, fmt.Errorf("server: stream: server acked protocol %d, client supports %d..%d",
			ack.Proto, trace.StreamProtoMin, hs.Proto)
	}
	// The server may grant fewer flags than requested (or none, below proto
	// 3) — never more.
	if ack.Flags&^hs.Flags != 0 {
		conn.Close()
		return nil, fmt.Errorf("server: stream: server granted unrequested session flags %#x", ack.Flags&^hs.Flags)
	}
	if ack.Window == 0 {
		conn.Close()
		return nil, fmt.Errorf("server: stream: server granted a zero window")
	}
	conn.SetDeadline(time.Time{})

	st := &Stream{
		conn:       conn,
		bw:         bw,
		window:     int(ack.Window),
		proto:      ack.Proto,
		program:    hs.Program,
		tracer:     tracer,
		credits:    make(chan struct{}, ack.Window),
		results:    make(chan streamResult, ack.Window),
		readerDone: make(chan struct{}),
	}
	for i := 0; i < st.window; i++ {
		st.credits <- struct{}{}
	}
	go st.readLoop(br)
	return st, nil
}

// streamTerminalError maps a terminal/ack StreamError onto the package's
// sentinels: "draining" wraps ErrDraining, "param_mismatch" wraps
// ErrParamsMismatch, "read_only" wraps ErrReadOnly, a clean "bye" is io.EOF.
func streamTerminalError(e trace.StreamError) error {
	switch e.Code {
	case trace.StreamCodeBye:
		return io.EOF
	case trace.StreamCodeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, e.Error())
	case trace.StreamCodeParamMismatch:
		return fmt.Errorf("%w: %s", ErrParamsMismatch, e.Error())
	case trace.StreamCodeReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, e.Error())
	}
	return &e
}

// readLoop drains the connection: decision and reject frames feed the
// results channel (returning one window credit each), a terminal frame ends
// the session with its typed error.
func (st *Stream) readLoop(br *bufio.Reader) {
	defer close(st.readerDone)
	defer close(st.results)
	var scratch, decScratch []byte
	finish := func(err error) { st.termErr = err }
	for {
		typ, payload, newScratch, err := trace.ReadSessionFrame(br, scratch)
		scratch = newScratch
		if err != nil {
			finish(fmt.Errorf("server: stream: reading frame: %w", err))
			return
		}
		switch typ {
		case trace.StreamFrameDecisions:
			decisions, err := decodeDecisionsPayload(payload)
			if err != nil {
				finish(err)
				return
			}
			st.results <- streamResult{decisions: decisions}
			st.credits <- struct{}{}
		case trace.StreamFrameDecisionsRLE, trace.StreamFrameDecisionsChanges:
			// Coalesced forms decode to exactly the bytes a plain 'D'
			// frame would have carried; Recv callers never see the
			// difference.
			if typ == trace.StreamFrameDecisionsRLE {
				decScratch, err = trace.DecodeDecisionsRLE(payload, decScratch[:0])
			} else {
				decScratch, err = trace.DecodeDecisionsChanges(payload, decScratch[:0])
			}
			if err != nil {
				finish(fmt.Errorf("server: stream: decoding coalesced decisions frame: %w", err))
				return
			}
			decisions, err := decisionsFromBytes(decScratch)
			if err != nil {
				finish(err)
				return
			}
			st.results <- streamResult{decisions: decisions}
			st.credits <- struct{}{}
		case trace.StreamFrameReject:
			st.results <- streamResult{err: fmt.Errorf("server: frame rejected: %s", payload)}
			st.credits <- struct{}{}
		case trace.StreamFrameTerminal:
			se, err := trace.DecodeStreamError(payload)
			if err != nil {
				finish(fmt.Errorf("server: stream: decoding terminal frame: %w", err))
				return
			}
			finish(streamTerminalError(se))
			return
		default:
			finish(fmt.Errorf("server: stream: unexpected frame type %q", typ))
			return
		}
	}
}

// decodeDecisionsPayload parses a 'D' frame payload: count uvarint, then one
// decision byte per event.
func decodeDecisionsPayload(payload []byte) ([]Decision, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || uint64(len(payload)-used) != n {
		return nil, fmt.Errorf("server: stream: malformed decisions frame (%d bytes for %d decisions)",
			len(payload)-used, n)
	}
	return decisionsFromBytes(payload[used:])
}

// decisionsFromBytes decodes one Decision per raw wire byte.
func decisionsFromBytes(raw []byte) ([]Decision, error) {
	decisions := make([]Decision, len(raw))
	var err error
	for i, b := range raw {
		if decisions[i], err = DecodeDecision(b); err != nil {
			return nil, fmt.Errorf("server: stream: decision %d: %w", i, err)
		}
	}
	return decisions, nil
}

// Window reports the granted pipeline window (max in-flight event frames).
func (st *Stream) Window() int { return st.window }

// Send ships one batch of events as a single in-flight frame. It blocks
// while the window is exhausted, until the receiver frees a slot, ctx ends,
// or the session terminates. Each successful Send owes exactly one Recv.
//
// Send is the kind=branch compatibility surface — its wire bytes are
// identical at every protocol version; kind-aware callers use SendKind.
func (st *Stream) Send(ctx context.Context, events []trace.Event) error {
	return st.send(ctx, trace.KindBranch, events, nil, len(events))
}

// SendKind is Send with an explicit speculation kind. kind=branch is Send
// exactly (and works at every negotiated protocol version); other kinds
// require the session to have negotiated stream protocol 4 — against an
// older server SendKind fails without consuming a window credit.
func (st *Stream) SendKind(ctx context.Context, kind trace.Kind, events []trace.Event) error {
	return st.send(ctx, kind, events, nil, len(events))
}

// SendEncoded ships one pre-encoded event frame — the exact bytes
// trace.EncodeFrameAppend produces for a batch — without re-encoding. It is
// the client-side mirror of the server's zero-copy ingest: callers that
// already hold wire frames (benchmark drivers isolating transport cost, WAL
// replayers) skip the per-event encode entirely. nevents must be the
// frame's event count; it feeds span metadata only. Blocking and credit
// semantics are identical to Send.
func (st *Stream) SendEncoded(ctx context.Context, frame []byte, nevents int) error {
	return st.send(ctx, trace.KindBranch, nil, frame, nevents)
}

// SendEncodedKind is SendEncoded with an explicit speculation kind, under
// SendKind's protocol rules.
func (st *Stream) SendEncodedKind(ctx context.Context, kind trace.Kind, frame []byte, nevents int) error {
	return st.send(ctx, kind, nil, frame, nevents)
}

func (st *Stream) send(ctx context.Context, kind trace.Kind, events []trace.Event, frame []byte, nevents int) error {
	if kind != trace.KindBranch && st.proto < 4 {
		return fmt.Errorf("server: stream: kind %s needs stream protocol 4, session negotiated %d (%w)",
			kind, st.proto, ErrUnsupportedKind)
	}
	if !kind.Valid() {
		return fmt.Errorf("server: stream: invalid kind %s (%w)", kind, ErrUnsupportedKind)
	}
	// A terminated session fails fast even when credits are available (the
	// local socket write could otherwise "succeed" into the kernel buffer).
	select {
	case <-st.readerDone:
		return st.terminalErr()
	default:
	}
	select {
	case <-st.credits:
	case <-st.readerDone:
		return st.terminalErr()
	case <-ctx.Done():
		return ctx.Err()
	}
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if st.closed {
		return fmt.Errorf("server: stream: send after Close")
	}
	// Sampling happens per frame; at proto 2 every event payload leads with
	// a trace context (zero = untraced) so the wire shape is uniform.
	var traceID uint64
	if st.proto >= 2 {
		traceID = st.tracer.SampleBatch()
	}
	encodeStart := time.Now()
	// The session frame carries its own length, so the payload is the bare
	// trace frame (no AppendFrame length prefix).
	st.evBuf = st.evBuf[:0]
	if st.proto >= 2 {
		st.evBuf = trace.AppendTraceContext(st.evBuf, traceID)
	}
	if st.proto >= 4 {
		// The kind tag is unconditional at proto 4 so the wire shape stays
		// uniform; branch encodes as a single zero byte.
		st.evBuf = trace.AppendKind(st.evBuf, kind)
	}
	if frame != nil {
		st.evBuf = append(st.evBuf, frame...)
	} else {
		st.evBuf = trace.EncodeFrameAppend(st.evBuf, events)
	}
	st.sendBuf = trace.AppendSessionFrame(st.sendBuf[:0], trace.StreamFrameEvents, st.evBuf)
	netStart := time.Now()
	_, err := st.bw.Write(st.sendBuf)
	if err == nil {
		err = st.bw.Flush()
	}
	if err != nil {
		return st.sendFailed(err)
	}
	if traceID != 0 {
		// client_network here is the send-side write+flush only: the
		// pipelined response lands in Recv on another goroutine, so the
		// round trip is not attributable to one frame from here.
		st.tracer.RecordStage(traceID, 0, "client_encode", st.program, nevents, 0, encodeStart, netStart.Sub(encodeStart))
		st.tracer.RecordStage(traceID, 0, "client_network", st.program, nevents, 0, netStart, time.Since(netStart))
	}
	return nil
}

// sendFailed turns a write error into the session's terminal error when the
// reader has already seen one (the server closed on us; its terminal frame
// is the real diagnostic).
func (st *Stream) sendFailed(err error) error {
	select {
	case <-st.readerDone:
		return st.terminalErr()
	default:
		return fmt.Errorf("server: stream: sending frame: %w", err)
	}
}

// Recv returns the next frame's outcome, in Send order: the per-event
// decisions, or the server's per-frame rejection error (the session stays
// usable after a rejection). Once the session terminates and all pending
// results are drained, Recv returns the terminal error — io.EOF after a
// clean Close, ErrDraining when the server drained.
func (st *Stream) Recv(ctx context.Context) ([]Decision, error) {
	select {
	case r, ok := <-st.results:
		if !ok {
			return nil, st.terminalErr()
		}
		return r.decisions, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// terminalErr reads the reader goroutine's verdict; only valid once
// readerDone is closed.
func (st *Stream) terminalErr() error {
	<-st.readerDone
	if st.termErr == nil {
		return io.EOF
	}
	return st.termErr
}

// Close ends the session: it sends a close frame, waits for the server's
// terminal frame, and closes the connection. Decision frames not yet Recv'd
// are discarded — Recv everything owed first if the decisions matter; do not
// call Recv concurrently with Close. A clean "bye" returns nil; a drain race
// returns ErrDraining.
//
// Close is also the abort path: discarding undelivered results unwedges the
// reader (whose results channel may be full on an abandoned session), which
// in turn returns window credits and unblocks any Send stuck waiting for
// one (it then fails with a send-after-Close error).
func (st *Stream) Close() error {
	st.sendMu.Lock()
	if !st.closed {
		st.closed = true
		frame := trace.AppendSessionFrame(nil, trace.StreamFrameClose, nil)
		if _, err := st.bw.Write(frame); err == nil {
			st.bw.Flush()
		}
	}
	st.sendMu.Unlock()
	for range st.results {
	}
	err := st.terminalErr()
	st.conn.Close()
	if err == io.EOF {
		return nil
	}
	return err
}
