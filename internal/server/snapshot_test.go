package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"reactivespec/internal/core"
)

// TestSnapshotRestoreResumesIdenticalDecisions is the snapshot/restore
// acceptance test: a table snapshotted mid-trace and restored into a fresh
// server resumes with a bitwise-identical decision sequence on the
// remainder of the trace.
func TestSnapshotRestoreResumesIdenticalDecisions(t *testing.T) {
	dir := t.TempDir()
	params := testParams()
	evs := synthEvents(50_000, 21)
	half := len(evs) / 2

	orig, origClient := newTestServer(t, Config{Params: params, Shards: 8, SnapshotDir: dir})
	firstDs, err := origClient.Ingest(context.Background(), "gzip", evs[:half])
	if err != nil {
		t.Fatal(err)
	}
	if len(firstDs) != half {
		t.Fatalf("%d decisions for %d events", len(firstDs), half)
	}
	if _, err := origClient.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	restored, restoredClient := newTestServer(t, Config{Params: params, Shards: 3, SnapshotDir: dir})
	ok, err := restored.RestoreFromDisk()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no snapshot restored")
	}

	wantDs, err := origClient.Ingest(context.Background(), "gzip", evs[half:])
	if err != nil {
		t.Fatal(err)
	}
	gotDs, err := restoredClient.Ingest(context.Background(), "gzip", evs[half:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantDs {
		if gotDs[i] != wantDs[i] {
			t.Fatalf("event %d after restore: %v, want %v", i, gotDs[i], wantDs[i])
		}
	}

	// The resident state must agree too (snapshot entries are a full
	// export, not just enough for the next event).
	a := orig.Table().SnapshotEntries()
	b := restored.Table().SnapshotEntries()
	if len(a) != len(b) {
		t.Fatalf("%d entries vs %d after replay", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSnapshotCrashMidWriteKeepsPrevious simulates a crash mid-snapshot: a
// partial temp file must not shadow or corrupt the last complete snapshot.
func TestSnapshotCrashMidWriteKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{
		Version: snapshotVersion,
		Params:  testParams(),
		Cursors: []CursorSnapshot{{Program: "p", Instr: 12345}},
		Entries: []EntrySnapshot{{Program: "p", Branch: 7, State: core.BranchState{State: core.Biased, Execs: 9}}},
	}
	if err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}

	// Crash mid-write: a half-written temp file is left behind.
	if err := os.WriteFile(filepath.Join(dir, snapshotTmpName), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("previous snapshot unloadable after crash-mid-write: %v", err)
	}
	if got == nil {
		t.Fatal("previous snapshot vanished")
	}
	if len(got.Cursors) != 1 || got.Cursors[0] != snap.Cursors[0] ||
		len(got.Entries) != 1 || got.Entries[0] != snap.Entries[0] {
		t.Fatalf("loaded %+v, want %+v", got, snap)
	}

	// The next successful snapshot replaces both cleanly.
	snap2 := &Snapshot{Version: snapshotVersion, Params: snap.Params,
		Cursors: []CursorSnapshot{{Program: "p", Instr: 99}}, Entries: snap.Entries}
	if err := WriteSnapshot(dir, snap2); err != nil {
		t.Fatal(err)
	}
	got, err = LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cursors[0].Instr != 99 {
		t.Fatalf("cursor %d, want 99", got.Cursors[0].Instr)
	}
}

// TestLoadSnapshotMissingAndCorrupt covers the fresh-start and damaged-file
// paths.
func TestLoadSnapshotMissingAndCorrupt(t *testing.T) {
	snap, err := LoadSnapshot(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || snap != nil {
		t.Fatalf("missing dir: (%v, %v), want (nil, nil)", snap, err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(snapshotPath(dir), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(dir); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

// TestRestoreRejectsParamMismatch: restoring under different controller
// parameters must fail loudly, not silently change decisions.
func TestRestoreRejectsParamMismatch(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Config{Params: testParams(), SnapshotDir: dir})
	if _, err := c.Ingest(context.Background(), "p", synthEvents(1000, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	other := New(Config{Params: core.DefaultParams(), SnapshotDir: dir})
	if _, err := other.RestoreFromDisk(); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestSnapshotEndpointAndDeterminism: the HTTP snapshot trigger works, and
// snapshotting twice with no intervening ingest produces identical bytes
// (entries are sorted, the layout is deterministic).
func TestSnapshotEndpointAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{SnapshotDir: dir, Shards: 8})
	if _, err := c.Ingest(context.Background(), "a", synthEvents(5000, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(context.Background(), "b", synthEvents(5000, 6)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries == 0 || res.Programs != 2 {
		t.Fatalf("snapshot result %+v", res)
	}
	first, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(res.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("idle snapshots differ byte-for-byte")
	}
}

// TestSnapshotWithoutDirFails: triggering a snapshot on a server with no
// snapshot directory must error rather than write somewhere surprising.
func TestSnapshotWithoutDirFails(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.SnapshotNow(); err == nil {
		t.Fatal("snapshot without a directory succeeded")
	}
}
