package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// APIVersion names the HTTP API generation every /v1/* endpoint belongs to.
const APIVersion = "v1"

// ParamsHash is a deterministic 64-bit digest of the controller parameters:
// FNV-1a over a fixed-order binary serialization of every core.Params field.
// Two processes agree on the hash exactly when they would compute identical
// decisions for identical event sequences, so the stream handshake, the
// optional params pin on /v1/ingest, and reactiveload -verify all use it to
// reject configuration skew up front instead of silently diverging.
func ParamsHash(p core.Params) uint64 {
	var buf [8]byte
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, b := range buf {
			h ^= uint64(b)
			h *= fnvPrime64
		}
	}
	mixBool := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	mix(p.MonitorPeriod)
	mix(math.Float64bits(p.SelectThreshold))
	mix(uint64(p.EvictThreshold))
	mix(uint64(p.MisspecStep))
	mix(uint64(p.CorrectStep))
	mix(p.WaitPeriod)
	mix(uint64(p.MaxOptimizations))
	mix(p.OptLatency)
	mixBool(p.NoEviction)
	mixBool(p.NoRevisit)
	mixBool(p.EvictBySampling)
	mix(p.SampleLen)
	mix(p.SamplePeriod)
	mix(math.Float64bits(p.EvictBias))
	mix(uint64(p.MonitorSampleRate))
	return h
}

// ParamsPolicyHash is ParamsHash extended with the daemon's policy: for the
// default reactive policy it equals ParamsHash(p) exactly — so every
// pre-policy client, WAL segment header, and replication peer keeps matching
// a reactive daemon unchanged — and for any other policy the registered name
// is mixed in, so a client pinned to one policy's decisions is rejected by a
// daemon running another, through the same params-pin machinery as a
// parameter mismatch.
func ParamsPolicyHash(p core.Params, policy string) uint64 {
	h := ParamsHash(p)
	if policy == "" || policy == core.PolicyReactive {
		return h
	}
	for i := 0; i < len(policy); i++ {
		h ^= uint64(policy[i])
		h *= fnvPrime64
	}
	return h
}

// formatParamsHash renders a params hash the way /v1/info and the ingest
// params pin carry it: fixed-width hex, safe for JSON (a raw uint64 would not
// survive every JSON reader's float64 round trip).
func formatParamsHash(h uint64) string {
	const hexDigits = 16
	s := strconv.FormatUint(h, 16)
	for len(s) < hexDigits {
		s = "0" + s
	}
	return s
}

// parseParamsHash parses formatParamsHash's output.
func parseParamsHash(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}

// ParseInfoParamsHash extracts the numeric controller-parameter hash from an
// Info response, for handing to DialStream or comparing against ParamsHash.
func ParseInfoParamsHash(info Info) (uint64, error) {
	h, err := parseParamsHash(info.ParamsHash)
	if err != nil {
		return 0, fmt.Errorf("server: bad params hash %q in info: %w", info.ParamsHash, err)
	}
	return h, nil
}

// Info is the JSON answer of GET /v1/info: everything a client needs to
// check, before sending a single event, that it and the daemon will agree on
// decisions and wire format.
type Info struct {
	// APIVersion is the HTTP API generation ("v1").
	APIVersion string `json:"api_version"`
	// ProtoVersion is the stream session protocol version.
	ProtoVersion uint32 `json:"proto_version"`
	// ParamsHash is the controller-parameter digest, in fixed-width hex.
	ParamsHash string `json:"params_hash"`
	// Shards is the controller table's lock-stripe count.
	Shards int `json:"shards"`
	// Draining reports whether the daemon is draining for shutdown.
	Draining bool `json:"draining"`
	// Mode is "primary" for a writable daemon, "replica" while it is
	// read-only and applying a primary's shipped WAL.
	Mode string `json:"mode"`
	// Kinds lists the speculation kinds this daemon serves, in trace.Kind
	// order. Absent (nil) in pre-kind daemons' responses, which serve
	// exactly ["branch"].
	Kinds []string `json:"kinds,omitempty"`
	// Policy is the registered policy name every table entry runs.
	// Absent in pre-policy daemons' responses, which run "reactive".
	Policy string `json:"policy,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, Info{
		APIVersion:   APIVersion,
		ProtoVersion: trace.StreamProtoVersion,
		ParamsHash:   formatParamsHash(s.paramsHash),
		Shards:       s.table.Shards(),
		Draining:     s.draining.Load(),
		Mode:         s.Mode(),
		Kinds:        s.KindNames(),
		Policy:       s.table.Policy(),
	})
}
