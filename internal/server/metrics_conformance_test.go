package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"reactivespec/internal/replica"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

// TestMetricsConformance pins the registration/exposition contract over the
// daemon's full metric surface (server + WAL + shipper + follower): every
// registered metric emits at least one family, no two metrics emit the same
// family, and every family appears in /metrics with exactly one # HELP and
// one # TYPE header of a known type before its samples.
func TestMetricsConformance(t *testing.T) {
	wlog, err := wal.Open(wal.Options{Dir: t.TempDir(), ParamsHash: ParamsHash(testParams())})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	s, c := newTestServer(t, Config{Shards: 4, WAL: wlog})

	// Register the replication metrics the daemon would: the shipper's
	// (including the per-follower lag gauges) and the follower's. The
	// follower dials a dead address; its collector must expose regardless.
	sh := replica.NewShipper(replica.ShipperConfig{Log: wlog})
	sh.RegisterMetrics(s.Registry())
	defer sh.Close()
	f := replica.StartFollower(replica.FollowerConfig{
		Addr:       "127.0.0.1:1",
		ParamsHash: ParamsHash(testParams()),
		NextSeq:    wlog.NextSeq,
		Apply:      func(string, []trace.Event, uint64) error { return nil },
	})
	f.RegisterMetrics(s.Registry())
	defer f.Seal()

	// A little traffic so counters and summaries carry real samples.
	if _, err := c.Ingest(context.Background(), "gzip", synthEvents(2000, 1)); err != nil {
		t.Fatal(err)
	}

	// Registration side: every metric emits ≥1 family, families are unique
	// across metrics (the dedup registration alone cannot enforce for
	// collectors, which emit computed names).
	owner := map[string]string{} // family → registered metric that emits it
	fams := s.Registry().FamiliesByMetric()
	for _, name := range s.Registry().Names() {
		emitted, ok := fams[name]
		if !ok || len(emitted) == 0 {
			t.Errorf("registered metric %q emits no families", name)
			continue
		}
		for _, fam := range emitted {
			if prev, dup := owner[fam]; dup {
				t.Errorf("family %q emitted by both %q and %q", fam, prev, name)
			}
			owner[fam] = name
		}
	}

	// Exposition side: scrape /metrics and parse headers and samples.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("/metrics: status %d", rr.Code)
	}
	helpCount := map[string]int{}
	typeOf := map[string]string{}
	sampleFams := map[string]bool{}
	for _, line := range strings.Split(rr.Body.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Errorf("HELP without text: %q", line)
				continue
			}
			helpCount[fields[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := fields[2], fields[3]
			if _, dup := typeOf[name]; dup {
				t.Errorf("duplicate # TYPE for %q", name)
			}
			switch typ {
			case "counter", "gauge", "summary":
			default:
				t.Errorf("family %q has unknown type %q", name, typ)
			}
			typeOf[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Errorf("unknown comment line: %q", line)
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			// A summary's _sum/_count samples belong to the base family.
			for _, suffix := range []string{"_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typeOf[base] == "summary" {
					name = base
					break
				}
			}
			sampleFams[name] = true
			if _, known := owner[name]; !known {
				t.Errorf("sample family %q matches no registered metric", name)
			}
		}
	}
	for fam := range owner {
		if n := helpCount[fam]; n != 1 {
			t.Errorf("family %q has %d # HELP lines, want exactly 1", fam, n)
		}
		if _, ok := typeOf[fam]; !ok {
			t.Errorf("family %q has no # TYPE line", fam)
		}
	}
	// Spot-check the labeled per-follower lag gauges made it into the
	// contract even with no follower attached (empty family, headers only).
	for _, fam := range []string{
		"reactived_replication_follower_lag_records",
		"reactived_replication_follower_lag_seconds",
	} {
		if typeOf[fam] != "gauge" {
			t.Errorf("family %q: type %q, want gauge", fam, typeOf[fam])
		}
	}
}
