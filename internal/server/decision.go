// Package server turns the in-process reactive controller (internal/core)
// into a long-running, networked speculation-control service: a sharded,
// lock-striped table of per-(program, branch) controllers, an HTTP daemon
// that ingests batches of branch-outcome events in the internal/trace frame
// format and serves classification decisions back, periodic snapshots with
// atomic rename + restore-on-start, and first-class observability
// (/metrics, /healthz, graceful drain).
//
// The paper's controller is a closed-loop online mechanism — it only pays
// off if observations keep flowing back into decisions — which at service
// scale means: many client programs stream their branch outcomes in, and
// each reads back, per event, whether its speculative code should be live
// and in which direction. The service preserves the in-process model
// bit-for-bit: a client replaying a trace through the daemon receives the
// exact decision sequence the in-process harness computes for the same
// trace (cmd/reactiveload -verify checks this end to end).
package server

import (
	"fmt"

	"reactivespec/internal/core"
)

// Decision is the controller's answer for one dynamic branch instance: the
// verdict for the instance itself plus the branch's resulting classification
// and live-deployment status.
type Decision struct {
	// Verdict reports how the instance interacted with the speculative
	// code live at that instant.
	Verdict core.Verdict
	// State is the branch's classification after observing the instance.
	State core.State
	// Dir is the deployed speculation direction (meaningful when Live).
	Dir bool
	// Live reports whether speculative code is currently deployed.
	Live bool
}

// Decision wire encoding, one byte per event:
//
//	bits 0-1  verdict (core.Verdict)
//	bits 2-3  state   (core.State)
//	bit  4    direction
//	bit  5    live
const (
	decVerdictMask = 0b0000_0011
	decStateShift  = 2
	decStateMask   = 0b0000_1100
	decDirBit      = 1 << 4
	decLiveBit     = 1 << 5
	decValidMask   = decVerdictMask | decStateMask | decDirBit | decLiveBit
)

// Encode packs the decision into its one-byte wire form.
func (d Decision) Encode() byte {
	b := byte(d.Verdict)&0x3 | (byte(d.State)&0x3)<<decStateShift
	if d.Dir {
		b |= decDirBit
	}
	if d.Live {
		b |= decLiveBit
	}
	return b
}

// DecodeDecision unpacks a wire byte.
func DecodeDecision(b byte) (Decision, error) {
	if b&^byte(decValidMask) != 0 {
		return Decision{}, fmt.Errorf("server: invalid decision byte %#02x", b)
	}
	v := core.Verdict(b & decVerdictMask)
	if v > core.Misspec {
		return Decision{}, fmt.Errorf("server: invalid verdict in decision byte %#02x", b)
	}
	return Decision{
		Verdict: v,
		State:   core.State((b & decStateMask) >> decStateShift),
		Dir:     b&decDirBit != 0,
		Live:    b&decLiveBit != 0,
	}, nil
}

// String renders the decision compactly ("biased→taken live correct").
func (d Decision) String() string {
	dir := "not-taken"
	if d.Dir {
		dir = "taken"
	}
	live := "idle"
	if d.Live {
		live = "live"
	}
	return fmt.Sprintf("%s→%s %s %s", d.State, dir, live, d.Verdict)
}
