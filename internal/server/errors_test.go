package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// TestErrorEnvelopeConformance walks every /v1/* handler's failure paths and
// checks the one contract they all share: a JSON {"error", "code"} envelope
// with the documented status code, served as application/json.
func TestErrorEnvelopeConformance(t *testing.T) {
	live := New(Config{Params: testParams(), Shards: 2})
	liveTS := httptest.NewServer(live.Handler())
	defer liveTS.Close()

	draining := New(Config{Params: testParams(), Shards: 2})
	draining.BeginDrain()
	drainTS := httptest.NewServer(draining.Handler())
	defer drainTS.Close()

	// branchOnly serves a restricted kind set, for the unserved-kind paths.
	branchOnly := New(Config{Params: testParams(), Shards: 2, Kinds: []trace.Kind{trace.KindBranch}})
	branchTS := httptest.NewServer(branchOnly.Handler())
	defer branchTS.Close()

	wrongPin := formatParamsHash(live.paramsHash ^ 1)
	cases := []struct {
		name       string
		base       string
		method     string
		path       string
		wantStatus int
		wantCode   string
	}{
		{"ingest wrong method", liveTS.URL, http.MethodGet, "/v1/ingest?program=p", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"ingest missing program", liveTS.URL, http.MethodPost, "/v1/ingest", http.StatusBadRequest, CodeMalformed},
		{"ingest bad params pin", liveTS.URL, http.MethodPost, "/v1/ingest?program=p&params=zzz", http.StatusBadRequest, CodeMalformed},
		{"ingest params mismatch", liveTS.URL, http.MethodPost, "/v1/ingest?program=p&params=" + wrongPin, http.StatusConflict, CodeParamMismatch},
		{"ingest draining", drainTS.URL, http.MethodPost, "/v1/ingest?program=p", http.StatusServiceUnavailable, CodeDraining},
		{"decide wrong method", liveTS.URL, http.MethodPost, "/v1/decide?program=p&branch=0", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"decide missing program", liveTS.URL, http.MethodGet, "/v1/decide?branch=0", http.StatusBadRequest, CodeMalformed},
		{"decide bad branch", liveTS.URL, http.MethodGet, "/v1/decide?program=p&branch=x", http.StatusBadRequest, CodeMalformed},
		{"info wrong method", liveTS.URL, http.MethodPost, "/v1/info", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"stream wrong method", liveTS.URL, http.MethodGet, "/v1/stream", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"stream draining", drainTS.URL, http.MethodPost, "/v1/stream", http.StatusServiceUnavailable, CodeDraining},
		{"snapshot wrong method", liveTS.URL, http.MethodGet, "/v1/snapshot", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"snapshot draining", drainTS.URL, http.MethodPost, "/v1/snapshot", http.StatusServiceUnavailable, CodeDraining},
		{"snapshot unconfigured", liveTS.URL, http.MethodPost, "/v1/snapshot", http.StatusInternalServerError, CodeInternal},

		{"v2 ingest wrong method", liveTS.URL, http.MethodGet, "/v2/ingest?program=p&kind=value", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"v2 ingest draining", drainTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=value", http.StatusServiceUnavailable, CodeDraining},
		{"v2 ingest missing kind", liveTS.URL, http.MethodPost, "/v2/ingest?program=p", http.StatusBadRequest, CodeMalformed},
		{"v2 ingest unknown kind", liveTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=quantum", http.StatusBadRequest, CodeUnsupportedKind},
		{"v2 ingest unserved kind", branchTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=value", http.StatusBadRequest, CodeUnsupportedKind},
		{"v2 ingest NUL program", liveTS.URL, http.MethodPost, "/v2/ingest?program=p%00q&kind=value", http.StatusBadRequest, CodeMalformed},
		{"v2 ingest unknown policy", liveTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=value&policy=zzz", http.StatusBadRequest, CodeUnknownPolicy},
		{"v2 ingest policy mismatch", liveTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=value&policy=selftrain", http.StatusConflict, CodeParamMismatch},
		{"v2 ingest params mismatch", liveTS.URL, http.MethodPost, "/v2/ingest?program=p&kind=value&params=" + wrongPin, http.StatusConflict, CodeParamMismatch},
		{"v2 decide wrong method", liveTS.URL, http.MethodPost, "/v2/decide?program=p&kind=value&id=0", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"v2 decide unknown kind", liveTS.URL, http.MethodGet, "/v2/decide?program=p&kind=quantum&id=0", http.StatusBadRequest, CodeUnsupportedKind},
		{"v2 decide unserved kind", branchTS.URL, http.MethodGet, "/v2/decide?program=p&kind=memdep&id=0", http.StatusBadRequest, CodeUnsupportedKind},
		{"v2 decide bad id", liveTS.URL, http.MethodGet, "/v2/decide?program=p&kind=value&id=x", http.StatusBadRequest, CodeMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.base+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("body is not an error envelope: %v\n%s", err, body)
			}
			if env.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", env.Code, tc.wantCode)
			}
			if env.Error == "" {
				t.Fatal("envelope carries no diagnostic")
			}
		})
	}
}

// TestClientErrorMapping pins the client-side contract: envelopes decode to
// *APIError and map onto the sentinels through errors.Is.
func TestClientErrorMapping(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 2})
	s.BeginDrain()
	_, err := c.Ingest(context.Background(), "p", synthEvents(10, 1))
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("ingest while draining = %v, want ErrDraining", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("ingest error %T is not *APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeDraining || apiErr.Op != "ingest" {
		t.Fatalf("APIError = %+v", apiErr)
	}

	s2, c2 := newTestServer(t, Config{Shards: 2})
	pinned := Connect(c2.base, WithParamsHash(s2.paramsHash^1))
	if _, err := pinned.Ingest(context.Background(), "p", synthEvents(10, 1)); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("pinned ingest = %v, want ErrParamsMismatch", err)
	}

	// Kind and policy rejections map to their sentinels the same way.
	_, c3 := newTestServer(t, Config{Shards: 2, Kinds: []trace.Kind{trace.KindBranch}})
	if _, err := c3.IngestKind(context.Background(), "p", trace.KindValue, synthEvents(10, 1)); !errors.Is(err, ErrUnsupportedKind) {
		t.Fatalf("IngestKind of unserved kind = %v, want ErrUnsupportedKind", err)
	}
	_, c4 := newTestServer(t, Config{Shards: 2})
	misnamed := Connect(c4.base, WithPolicy("zzz"))
	if _, err := misnamed.IngestKind(context.Background(), "p", trace.KindValue, synthEvents(10, 1)); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("IngestKind with unregistered policy pin = %v, want ErrUnknownPolicy", err)
	}
	mispinned := Connect(c4.base, WithPolicy("selftrain"))
	if _, err := mispinned.DecideKind(context.Background(), "p", trace.KindValue, 0); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("DecideKind with mismatched policy pin = %v, want ErrParamsMismatch", err)
	}
}

// TestInfoEndpoint pins /v1/info's contents and the VerifyParams round trip.
func TestInfoEndpoint(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 4})
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.APIVersion != APIVersion {
		t.Fatalf("api_version = %q, want %q", info.APIVersion, APIVersion)
	}
	if info.ProtoVersion != trace.StreamProtoVersion {
		t.Fatalf("proto_version = %d, want %d", info.ProtoVersion, trace.StreamProtoVersion)
	}
	if info.Shards != 4 || info.Draining {
		t.Fatalf("info = %+v", info)
	}
	if info.ParamsHash != formatParamsHash(ParamsHash(s.cfg.Params)) {
		t.Fatalf("params_hash = %q, want %q", info.ParamsHash, formatParamsHash(ParamsHash(s.cfg.Params)))
	}
	h, err := ParseInfoParamsHash(info)
	if err != nil || h != s.paramsHash {
		t.Fatalf("ParseInfoParamsHash = %#x, %v; want %#x", h, err, s.paramsHash)
	}
	if want := trace.KindNames(); !slices.Equal(info.Kinds, want) {
		t.Fatalf("info.Kinds = %v, want %v (a default server serves every kind)", info.Kinds, want)
	}
	if info.Policy != core.PolicyReactive {
		t.Fatalf("info.Policy = %q, want %q", info.Policy, core.PolicyReactive)
	}

	if _, err := c.VerifyParams(context.Background(), s.paramsHash); err != nil {
		t.Fatalf("VerifyParams with matching hash: %v", err)
	}
	if _, err := c.VerifyParams(context.Background(), s.paramsHash^1); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("VerifyParams with wrong hash = %v, want ErrParamsMismatch", err)
	}

	s.BeginDrain()
	info, err = c.Info(context.Background())
	if err != nil || !info.Draining {
		t.Fatalf("info after drain = %+v, %v; want draining", info, err)
	}
}

// TestParamsHashSensitivity checks that the hash separates parameter sets
// and is stable for equal ones.
func TestParamsHashSensitivity(t *testing.T) {
	p := testParams()
	if ParamsHash(p) != ParamsHash(p) {
		t.Fatal("hash not deterministic")
	}
	q := p
	q.MisspecStep++
	if ParamsHash(p) == ParamsHash(q) {
		t.Fatal("hash ignores MisspecStep")
	}
	r := p
	r.EvictBias += 0.5
	if ParamsHash(p) == ParamsHash(r) {
		t.Fatal("hash ignores EvictBias")
	}
	b := p
	b.NoEviction = !b.NoEviction
	if ParamsHash(p) == ParamsHash(b) {
		t.Fatal("hash ignores NoEviction")
	}
}
