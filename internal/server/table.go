package server

import (
	"sort"
	"sync"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Table is a sharded, lock-striped table of speculation-control policies
// keyed by (program, branch ID), where the program key may carry an encoded
// speculation kind (trace.EncodeKindProgram) — branch keys are the plain
// program name, so every pre-kind artifact (WAL, snapshot, shard hash,
// replication stream) is byte-identical. Each key owns an independent
// single-unit policy, so per-unit decisions are bit-for-bit identical to an
// in-process policy observing the same (outcome, instruction-count)
// sequence — the striping changes only who may update concurrently, never
// what any unit decides.
//
// The policy is fixed at construction for the whole table. The default
// (core.PolicyReactive) keeps the paper's FSM on a direct *core.Controller
// fast path — entry.ctl non-nil — so the serving hot path pays only one
// predictable nil check over the pre-policy build; other policies dispatch
// through the core.Policy interface (entry.pol).
//
// Lock discipline: every key maps to exactly one shard (by hash), and all
// access to a shard's entries happens under that shard's mutex. Events for
// *different* keys proceed in parallel up to the shard count; events for the
// same key serialize, which is exactly the ordering the controller needs.
type Table struct {
	params core.Params
	policy string
	shards []tableShard
}

type tableShard struct {
	mu      sync.RWMutex
	entries map[tableKey]*tableEntry
	metrics ShardMetrics
	_       [64]byte // pad shards onto separate cache lines
}

type tableKey struct {
	program string
	branch  trace.BranchID
}

// tableEntry is one (program, branch) unit. Exactly one of ctl/pol is
// non-nil: ctl for the reactive policy (direct calls, no interface
// dispatch), pol for everything else.
type tableEntry struct {
	ctl *core.Controller
	pol core.Policy
}

// NewTable returns a table running the default reactive policy with the
// given controller parameters and shard count (clamped to at least 1).
func NewTable(params core.Params, shards int) *Table {
	t, err := NewTablePolicy(params, shards, core.PolicyReactive)
	if err != nil {
		panic(err) // the reactive policy is always registered
	}
	return t
}

// NewTablePolicy is NewTable with a registered policy name ("" = reactive).
func NewTablePolicy(params core.Params, shards int, policy string) (*Table, error) {
	if _, err := core.NewPolicy(policy, params); err != nil {
		return nil, err
	}
	if policy == "" {
		policy = core.PolicyReactive
	}
	if shards < 1 {
		shards = 1
	}
	t := &Table{params: params, policy: policy, shards: make([]tableShard, shards)}
	for i := range t.shards {
		t.shards[i].entries = make(map[tableKey]*tableEntry)
	}
	return t, nil
}

// Params returns the controller parameters every entry is created with.
func (t *Table) Params() core.Params { return t.params }

// Policy returns the registered policy name every entry runs.
func (t *Table) Policy() string { return t.policy }

// Shards returns the shard count.
func (t *Table) Shards() int { return len(t.shards) }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// programHash is the FNV-1a hash of the program name: the shared prefix of
// every (program, branch) shard hash. Apply recomputes it per event;
// ApplyBatch computes it once per batch.
func programHash(program string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(program); i++ {
		h ^= uint64(program[i])
		h *= fnvPrime64
	}
	return h
}

// shardIndex finishes the FNV-1a hash with the branch ID bytes and maps it
// onto a shard.
func (t *Table) shardIndex(ph uint64, id trace.BranchID) int {
	h := ph
	for s := 0; s < 32; s += 8 {
		h ^= uint64(id>>s) & 0xff
		h *= fnvPrime64
	}
	return int(h % uint64(len(t.shards)))
}

// shardFor hashes (program, branch) onto a shard with FNV-1a.
func (t *Table) shardFor(program string, id trace.BranchID) *tableShard {
	return &t.shards[t.shardIndex(programHash(program), id)]
}

// getLocked returns the entry for key, creating it on first sight. The
// caller holds sh.mu.
func (sh *tableShard) getLocked(key tableKey, t *Table) *tableEntry {
	e := sh.entries[key]
	if e == nil {
		e = &tableEntry{}
		// Count classification transitions into the shard's metrics.
		// OnEvent only runs under sh.mu, so the hook does too.
		hook := func(tr core.Transition) {
			sh.metrics.Transitions[tr.To]++
		}
		if t.policy == core.PolicyReactive {
			e.ctl = core.New(t.params)
			e.ctl.OnTransition = hook
		} else {
			pol, err := core.NewPolicy(t.policy, t.params)
			if err != nil {
				// NewTablePolicy validated the name; this cannot happen.
				panic(err)
			}
			pol.OnTransition(hook)
			e.pol = pol
		}
		sh.entries[key] = e
	}
	return e
}

// applyEvent advances entry e by one event whose absolute instruction count
// is instr and returns the decision. The caller holds the entry's shard
// lock. The reactive fast path calls the controller directly; other
// policies go through the interface.
func (e *tableEntry) applyEvent(ev trace.Event, instr uint64) Decision {
	gap := uint64(ev.Gap)
	if ctl := e.ctl; ctl != nil {
		ctl.AddInstrs(gap)
		v := ctl.OnBranch(0, ev.Taken, instr)
		st := ctl.BranchState(0)
		dir, live := ctl.Speculating(0)
		return Decision{Verdict: v, State: st, Dir: dir, Live: live}
	}
	e.pol.AddInstrs(gap)
	v, st, dir, live := e.pol.OnEvent(ev.Taken, instr)
	return Decision{Verdict: v, State: st, Dir: dir, Live: live}
}

// decide reads the entry's current decision without observing an event.
func (e *tableEntry) decide() Decision {
	if ctl := e.ctl; ctl != nil {
		dir, live := ctl.Speculating(0)
		return Decision{State: ctl.BranchState(0), Dir: dir, Live: live}
	}
	dir, live := e.pol.Speculating()
	return Decision{State: e.pol.State(), Dir: dir, Live: live}
}

// export returns the entry's serializable unit state, aggregate counters,
// and whether the unit has been touched.
func (e *tableEntry) export() (core.BranchState, core.Stats, bool) {
	if ctl := e.ctl; ctl != nil {
		st, ok := ctl.ExportBranch(0)
		return st, ctl.Stats(), ok
	}
	st, ok := e.pol.Export()
	return st, e.pol.Stats(), ok
}

// restore overwrites the entry's unit state and counters.
func (e *tableEntry) restore(st core.BranchState, stats core.Stats) {
	if ctl := e.ctl; ctl != nil {
		ctl.ImportBranch(0, st)
		ctl.SetStats(stats)
		return
	}
	e.pol.Import(st)
	e.pol.SetStats(stats)
}

// Apply observes one dynamic event for program at global instruction count
// instr (monotonically non-decreasing per program) and returns the resulting
// decision.
func (t *Table) Apply(program string, ev trace.Event, instr uint64) Decision {
	sh := t.shardFor(program, ev.Branch)
	sh.mu.Lock()
	e := sh.getLocked(tableKey{program, ev.Branch}, t)
	d := e.applyEvent(ev, instr)
	m := &sh.metrics
	m.Events++
	m.Instrs += uint64(ev.Gap)
	switch d.Verdict {
	case core.Correct:
		m.Correct++
	case core.Misspec:
		m.Misspec++
	default:
		m.NotSpec++
	}
	sh.mu.Unlock()
	return d
}

// ApplyBatch observes a run of dynamic events for program, in order,
// starting at global instruction count startInstr, appending one encoded
// decision byte per event to dst. It returns the extended slice and the
// instruction count after the last event.
//
// The decisions are bit-for-bit the ones len(events) successive Apply calls
// would produce, and the shard counters advance identically
// (TestApplyBatchMatchesApply pins both); only the constant-factor work
// changes. The program-name hash is computed once per batch, and locks are
// amortized one of two ways depending on batch size. Small batches (or a
// single-shard table) walk the events in order, taking each shard's lock
// once per run of consecutive same-shard events. Large batches switch to a
// two-pass schedule (applySharded): pass one prefix-sums the instruction
// cursor and counting-sorts the event indices by shard without any locks,
// pass two visits each touched shard exactly once and applies its events
// while holding the lock for the whole sub-batch. On branch-hopping traces
// the run-grouped walk degenerates to a lock cycle per event; the two-pass
// schedule bounds lock traffic at one acquisition per shard per batch.
// Within a shard the original event order is preserved, and a branch never
// spans shards, so every controller still sees its events in trace order at
// the same instruction counts — the schedule is invisible in the output.
//
// Events for the same program must not be applied concurrently (the caller's
// cursor lock already guarantees this on the ingest path); batches for
// different programs may run in parallel exactly like Apply.
func (t *Table) ApplyBatch(program string, events []trace.Event, startInstr uint64, dst []byte) ([]byte, uint64) {
	instr := startInstr
	if len(events) == 0 {
		return dst, instr
	}
	ph := programHash(program)
	if len(events) >= applyShardedMin && len(t.shards) > 1 && t.shardHopHeavy(ph, events) {
		return t.applySharded(ph, program, events, startInstr, dst)
	}
	for i := 0; i < len(events); {
		si := t.shardIndex(ph, events[i].Branch)
		j := i + 1
		for j < len(events) && t.shardIndex(ph, events[j].Branch) == si {
			j++
		}
		sh := &t.shards[si]
		sh.mu.Lock()
		var (
			lastBranch trace.BranchID
			lastEntry  *tableEntry
		)
		m := &sh.metrics
		for _, ev := range events[i:j] {
			e := lastEntry
			if e == nil || ev.Branch != lastBranch {
				e = sh.getLocked(tableKey{program, ev.Branch}, t)
				lastBranch, lastEntry = ev.Branch, e
			}
			instr += uint64(ev.Gap)
			dst = append(dst, applyOne(e, m, ev, instr))
		}
		sh.mu.Unlock()
		i = j
	}
	return dst, instr
}

// ApplyBatchKind is ApplyBatch with an explicit speculation kind: the kind
// is encoded into the table key (trace.EncodeKindProgram), so kind=branch is
// byte-identical to ApplyBatch on the plain program name.
func (t *Table) ApplyBatchKind(program string, kind trace.Kind, events []trace.Event, startInstr uint64, dst []byte) ([]byte, uint64) {
	return t.ApplyBatch(trace.EncodeKindProgram(kind, program), events, startInstr, dst)
}

// applyShardedMin is the batch size below which the two-pass shard
// partition costs more than the run-grouped walk's locks.
const applyShardedMin = 96

// shardHopHeavy samples the head of the batch and reports whether the
// trace hops between shards often enough that applySharded's partition
// overhead beats the run-grouped walk's lock cycling. A run-grouped walk
// pays one lock acquisition per same-shard run (~25ns), the two-pass
// schedule pays a flat few ns per event for the counting sort, so the
// crossover sits at an average run length of about four events. Loop-heavy
// traces (long runs) stay on the run-grouped walk; branch-hopping traces
// (the expensive case) switch. The sample can misjudge a trace whose
// character shifts mid-batch, but both schedules produce bit-identical
// output, so the choice only moves constant factors.
func (t *Table) shardHopHeavy(ph uint64, events []trace.Event) bool {
	sample := len(events)
	if sample > 256 {
		sample = 256
	}
	trans := 0
	prev := t.shardIndex(ph, events[0].Branch)
	for i := 1; i < sample; i++ {
		si := t.shardIndex(ph, events[i].Branch)
		if si != prev {
			trans++
			prev = si
		}
	}
	return trans*4 >= sample
}

// applyScratch is the per-batch workspace applySharded needs: the absolute
// instruction count at each event, the counting-sort of event indices by
// shard, and the per-shard bucket cursors.
type applyScratch struct {
	instr  []uint64
	shard  []int32
	idx    []int32
	bucket []int32
}

var applyScratchPool = sync.Pool{New: func() any { return new(applyScratch) }}

// applyOne advances entry e by one event whose absolute instruction count
// is instr, bumps the shard counters, and returns the encoded decision.
// The caller holds the entry's shard lock.
func applyOne(e *tableEntry, m *ShardMetrics, ev trace.Event, instr uint64) byte {
	d := e.applyEvent(ev, instr)
	m.Events++
	m.Instrs += uint64(ev.Gap)
	switch d.Verdict {
	case core.Correct:
		m.Correct++
	case core.Misspec:
		m.Misspec++
	default:
		m.NotSpec++
	}
	return d.Encode()
}

// applySharded is ApplyBatch's large-batch schedule: one lock acquisition
// per touched shard instead of one per same-shard run. Pass one walks the
// events lock-free, recording each event's absolute instruction count (the
// prefix sum of gaps over the whole batch — a controller only needs its own
// events' counts, which don't depend on when other shards apply) and
// counting-sorting the event indices by shard, preserving original order
// within each shard. Pass two applies each shard's sub-batch under a single
// lock hold, writing every decision byte to its event's original position.
func (t *Table) applySharded(ph uint64, program string, events []trace.Event, startInstr uint64, dst []byte) ([]byte, uint64) {
	n := len(events)
	ns := len(t.shards)
	sc := applyScratchPool.Get().(*applyScratch)
	if cap(sc.instr) < n {
		sc.instr = make([]uint64, n)
		sc.shard = make([]int32, n)
		sc.idx = make([]int32, n)
	}
	sc.instr = sc.instr[:n]
	sc.shard = sc.shard[:n]
	sc.idx = sc.idx[:n]
	if cap(sc.bucket) < ns {
		sc.bucket = make([]int32, ns)
	}
	sc.bucket = sc.bucket[:ns]
	for i := range sc.bucket {
		sc.bucket[i] = 0
	}

	instr := startInstr
	for i := range events {
		instr += uint64(events[i].Gap)
		sc.instr[i] = instr
		si := int32(t.shardIndex(ph, events[i].Branch))
		sc.shard[i] = si
		sc.bucket[si]++
	}
	off := int32(0)
	for s := range sc.bucket {
		c := sc.bucket[s]
		sc.bucket[s] = off
		off += c
	}
	for i := 0; i < n; i++ {
		s := sc.shard[i]
		sc.idx[sc.bucket[s]] = int32(i)
		sc.bucket[s]++
	}

	// Reserve the decision bytes up front so pass two can write each one at
	// its event's original position; after the counting sort, bucket[s] is
	// shard s's end offset in idx.
	base := len(dst)
	if cap(dst) < base+n {
		nd := make([]byte, base, base+n)
		copy(nd, dst)
		dst = nd
	}
	dst = dst[:base+n]
	out := dst[base:]

	start := int32(0)
	for s := 0; s < ns; s++ {
		end := sc.bucket[s]
		if end == start {
			continue
		}
		sh := &t.shards[s]
		sh.mu.Lock()
		var (
			lastBranch trace.BranchID
			lastEntry  *tableEntry
		)
		m := &sh.metrics
		for _, i := range sc.idx[start:end] {
			ev := events[i]
			e := lastEntry
			if e == nil || ev.Branch != lastBranch {
				e = sh.getLocked(tableKey{program, ev.Branch}, t)
				lastBranch, lastEntry = ev.Branch, e
			}
			out[i] = applyOne(e, m, ev, sc.instr[i])
		}
		sh.mu.Unlock()
		start = end
	}
	applyScratchPool.Put(sc)
	return dst, instr
}

// frameEventsPool holds the reusable []trace.Event scratch ApplyFrame
// decodes payloads into; steady state it allocates nothing.
var frameEventsPool = sync.Pool{New: func() any { return new([]trace.Event) }}

// ApplyFrame is ApplyBatch over a validated wire frame payload: it decodes
// the payload into a pooled scratch slice (amortized zero-alloc — the
// events never escape the call) and applies it as one batch, so large
// frames get ApplyBatch's two-pass shard schedule instead of a lock cycle
// per branch hop. The payload must already have passed trace.ValidateFrame
// — rejection happens before any state mutates, exactly like the decoding
// path.
//
// The decisions, the final instruction count, and every shard counter are
// bit-for-bit what ApplyBatch(program, DecodeFrame(payload), ...) would
// produce (TestApplyFrameMatchesApplyBatch pins this).
func (t *Table) ApplyFrame(program string, payload []byte, startInstr uint64, dst []byte) ([]byte, uint64) {
	evp := frameEventsPool.Get().(*[]trace.Event)
	evs, err := trace.DecodeFrameAppend(payload, (*evp)[:0])
	if err != nil {
		// Unreachable for validated payloads; fail loudly rather than
		// apply a prefix of a corrupt frame.
		frameEventsPool.Put(evp)
		panic("server: ApplyFrame on unvalidated payload: " + err.Error())
	}
	dst, instr := t.ApplyBatch(program, evs, startInstr, dst)
	*evp = evs[:0]
	frameEventsPool.Put(evp)
	return dst, instr
}

// Decide returns the unit's current classification without observing an
// event. Unknown keys report the Monitor default (and are not created).
// It takes only the shard's read lock, so concurrent deciders never
// serialize against each other — only against writers on the same shard.
func (t *Table) Decide(program string, id trace.BranchID) Decision {
	sh := t.shardFor(program, id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.entries[tableKey{program, id}]
	if e == nil {
		return Decision{State: core.Monitor}
	}
	return e.decide()
}

// DecideKind is Decide with an explicit speculation kind.
func (t *Table) DecideKind(program string, kind trace.Kind, id trace.BranchID) Decision {
	return t.Decide(trace.EncodeKindProgram(kind, program), id)
}

// Metrics returns a copy of every shard's counters, indexed by shard. Like
// Decide it is a pure read-lock path: metric scrapes never stall ingest
// writers behind each other.
func (t *Table) Metrics() []ShardMetrics {
	out := make([]ShardMetrics, len(t.shards))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		out[i] = sh.metrics
		out[i].Entries = uint64(len(sh.entries))
		sh.mu.RUnlock()
	}
	return out
}

// EntrySnapshot is the serialized state of one (program, branch) entry. The
// Program field is the table key — for non-branch kinds, the encoded
// kind-program.
type EntrySnapshot struct {
	Program string
	Branch  trace.BranchID
	State   core.BranchState
	Stats   core.Stats
}

// SnapshotEntries exports every touched entry, sorted by (program, branch)
// so snapshots are deterministic. Each shard is captured atomically under
// its lock; concurrent ingest interleaving between shards yields per-entry
// (not cross-entry) consistency, which is sufficient because entries never
// observe each other. The daemon's shutdown snapshot runs after the drain,
// so it is fully consistent.
func (t *Table) SnapshotEntries() []EntrySnapshot {
	var out []EntrySnapshot
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			st, stats, ok := e.export()
			if !ok {
				continue
			}
			out = append(out, EntrySnapshot{
				Program: key.program,
				Branch:  key.branch,
				State:   st,
				Stats:   stats,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Program != out[j].Program {
			return out[i].Program < out[j].Program
		}
		return out[i].Branch < out[j].Branch
	})
	return out
}

// RestoreEntries imports previously exported entries, overwriting any
// existing state for the same keys.
func (t *Table) RestoreEntries(entries []EntrySnapshot) {
	for _, es := range entries {
		sh := t.shardFor(es.Program, es.Branch)
		sh.mu.Lock()
		e := sh.getLocked(tableKey{es.Program, es.Branch}, t)
		e.restore(es.State, es.Stats)
		sh.mu.Unlock()
	}
}
