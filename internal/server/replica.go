package server

import (
	"fmt"
	"net/http"
	"time"

	"reactivespec/internal/trace"
)

// Replica mode: a server started with Config.Replica set rejects every client
// write (POST ingest and stream sessions answer with the read_only code) and
// advances state only through ApplyReplicated — records a replication
// follower received from a primary's WAL. Each replicated record runs the
// same log-before-apply path as primary ingest, so the replica's own WAL and
// snapshots stay exactly as trustworthy as a primary's, and promotion is just
// "stop following, go writable": seal the follower (SetSealFunc), flip the
// read-only bit, and the daemon serves ingest with cursors, table state, and
// WAL numbering continuing the primary's sequence.

// ReadOnly reports whether the server is currently rejecting client writes
// (replica mode, before promotion).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Mode names the server's role: "replica" while read-only, "primary" once
// writable.
func (s *Server) Mode() string {
	if s.readOnly.Load() {
		return "replica"
	}
	return "primary"
}

// SetSealFunc installs the hook Promote calls to stop replication before the
// server goes writable. The hook must block until no further ApplyReplicated
// call can arrive and return the last applied WAL sequence (the follower's
// Seal method does exactly this).
func (s *Server) SetSealFunc(f func() (uint64, error)) {
	s.promoteMu.Lock()
	s.sealFn = f
	s.promoteMu.Unlock()
}

// PromoteResult is the JSON answer of POST /v1/promote.
type PromoteResult struct {
	// Mode is the post-promotion role, always "primary".
	Mode string `json:"mode"`
	// LastAppliedSeq is the WAL sequence the sealed follower stopped at: the
	// first sequence the promoted daemon will assign to fresh ingest.
	LastAppliedSeq uint64 `json:"last_applied_seq"`
}

// Promote seals replication and makes the replica writable. It is the one-way
// door of failover: the follower is stopped first (no replicated record can
// land after the flip), then the read-only bit clears and client ingest
// proceeds from the replicated state. A second Promote — or a Promote on a
// daemon that never was a replica — fails with ErrNotReplica.
func (s *Server) Promote() (PromoteResult, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if !s.readOnly.Load() {
		return PromoteResult{}, ErrNotReplica
	}
	start := time.Now()
	var last uint64
	if s.sealFn != nil {
		var err error
		if last, err = s.sealFn(); err != nil {
			return PromoteResult{}, fmt.Errorf("server: sealing replication: %w", err)
		}
	}
	s.readOnly.Store(false)
	s.ins.promotions.Inc()
	// Promotion is rare and operationally interesting: record it whenever a
	// tracer is attached, without burning a sampling slot.
	s.cfg.Trace.RecordInfra("promote", start, time.Since(start))
	s.logf("replica: promoted to primary at wal seq %d", last)
	return PromoteResult{Mode: "primary", LastAppliedSeq: last}, nil
}

// ApplyReplicated applies one record shipped from the primary's WAL: append
// it to the replica's own log, commit, then train the table — the same
// log-before-apply contract as handleIngest, under the same locks, so
// snapshots taken on the replica carry exact WAL anchors and replay after a
// replica crash reproduces the same decisions. Callers (the replication
// follower) deliver records in WAL-sequence order; the per-program cursor
// lock preserves that order against the table. traceID, when non-zero, is the
// trace the record's originating batch was sampled into on the primary; the
// replica closes the cross-node chain with a follower_apply span under it.
func (s *Server) ApplyReplicated(program string, events []trace.Event, traceID uint64) error {
	if !s.readOnly.Load() {
		return ErrNotReplica
	}
	start := time.Now()
	cur := s.cursorFor(program)
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	s.applyMu.RLock()
	cur.mu.Lock()
	var walErr error
	var seq uint64
	if wlog := s.cfg.WAL; wlog != nil {
		if seq, walErr = wlog.Append(program, events); walErr == nil {
			walErr = wlog.Commit()
		}
	}
	if walErr == nil {
		s.replicaScratch, cur.instr = s.table.ApplyBatch(program, events, cur.instr, s.replicaScratch[:0])
		cur.events += uint64(len(events))
	}
	cur.mu.Unlock()
	s.applyMu.RUnlock()
	if walErr != nil {
		s.ins.walAppendErrors.Inc()
		return fmt.Errorf("server: replica wal append: %w", walErr)
	}
	s.ins.replicatedRecords.Inc()
	s.ins.replicatedEvents.Add(uint64(len(events)))
	s.cfg.Trace.NoteSeq(seq, traceID)
	s.cfg.Trace.RecordStage(traceID, 0, "follower_apply", program, len(events), seq, start, time.Since(start))
	return nil
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	res, err := s.Promote()
	if err == ErrNotReplica {
		writeError(w, http.StatusConflict, CodeNotReplica,
			"not a replica (already promoted, or never one)")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, res)
}

// CursorResponse is the JSON answer of GET /v1/cursor: one program's ingest
// position. Failover clients read Events off a freshly promoted replica to
// learn how many of their events survived, and resume sending from there.
type CursorResponse struct {
	Program string `json:"program"`
	// Instr is the cumulative dynamic instruction count.
	Instr uint64 `json:"instr"`
	// Events is the number of events applied for the program.
	Events uint64 `json:"events"`
}

func (s *Server) handleCursor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	program := r.URL.Query().Get("program")
	if program == "" {
		writeError(w, http.StatusBadRequest, CodeMalformed, "missing program parameter")
		return
	}
	resp := CursorResponse{Program: program}
	s.cursorsMu.Lock()
	c := s.cursors[program]
	s.cursorsMu.Unlock()
	if c != nil {
		c.mu.Lock()
		resp.Instr, resp.Events = c.instr, c.events
		c.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}
