package server

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"reactivespec/internal/wal"
)

// newReplicaServer builds a read-only replica over its own WAL directory.
func newReplicaServer(t *testing.T, shards int) (*Server, *Client) {
	t.Helper()
	env := newWALEnv(t, shards)
	l := env.openLog(t, wal.SyncAlways)
	t.Cleanup(func() { l.Close() })
	return newTestServer(t, Config{Shards: shards, SnapshotDir: env.snapDir, WAL: l, Replica: true})
}

// TestReplicaRejectsWrites pins the read-only contract on every write
// transport: POST ingest and stream handshakes answer with the read_only
// code, reads keep working, and the mode is visible in /v1/info and
// /metrics.
func TestReplicaRejectsWrites(t *testing.T) {
	s, c := newReplicaServer(t, 4)

	if _, err := c.Ingest(context.Background(), "gzip", synthEvents(10, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest on a replica: %v, want ErrReadOnly", err)
	}
	var apiErr *APIError
	if _, err := c.Ingest(context.Background(), "gzip", synthEvents(10, 1)); !errors.As(err, &apiErr) ||
		apiErr.Status != 403 || apiErr.Code != CodeReadOnly {
		t.Fatalf("ingest envelope: %v", err)
	}
	if _, err := c.OpenStream(context.Background(), "gzip"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("stream handshake on a replica: %v, want ErrReadOnly", err)
	}

	// Reads still serve.
	if _, err := c.Decide(context.Background(), "gzip", 0); err != nil {
		t.Fatalf("decide on a replica: %v", err)
	}
	info, err := c.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != "replica" {
		t.Fatalf("info mode %q, want replica", info.Mode)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "reactived_replica 1") {
		t.Fatal("metrics missing reactived_replica 1")
	}
	if s.Mode() != "replica" || !s.ReadOnly() {
		t.Fatalf("Mode=%q ReadOnly=%v", s.Mode(), s.ReadOnly())
	}
}

// TestApplyReplicatedThenPromote replays batches through ApplyReplicated,
// promotes, and pins the state, cursor accounting, and decision stream
// against a plain primary that ingested the same events.
func TestApplyReplicatedThenPromote(t *testing.T) {
	batches := []walBatch{
		{"gzip", 400, 1}, {"vpr", 300, 2}, {"gzip", 500, 3}, {"mcf", 200, 4},
	}
	control, _ := controlState(t, 4, batches, len(batches))

	s, c := newReplicaServer(t, 4)
	var total uint64
	for _, b := range batches {
		if err := s.ApplyReplicated(b.program, synthEvents(b.n, b.seed), 0); err != nil {
			t.Fatalf("ApplyReplicated: %v", err)
		}
		total += uint64(b.n)
	}

	// The cursor endpoint reports the replicated position per program.
	cr, err := c.Cursor(context.Background(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Events != 900 {
		t.Fatalf("gzip cursor events %d, want 900", cr.Events)
	}
	if cr, err = c.Cursor(context.Background(), "never-seen"); err != nil || cr.Events != 0 || cr.Instr != 0 {
		t.Fatalf("unknown-program cursor = %+v, %v", cr, err)
	}

	res, err := c.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if res.Mode != "primary" {
		t.Fatalf("promote result %+v", res)
	}
	if s.ReadOnly() || s.Mode() != "primary" {
		t.Fatal("promotion did not flip the server writable")
	}

	// The promoted state is byte-identical to a primary that ingested the
	// same batches.
	if got := s.table.SnapshotEntries(); !reflect.DeepEqual(got, control) {
		t.Fatal("promoted replica state diverges from the control primary")
	}

	// Writes now land; replication applies no longer do.
	if _, err := c.Ingest(context.Background(), "gzip", synthEvents(50, 9)); err != nil {
		t.Fatalf("ingest after promote: %v", err)
	}
	if err := s.ApplyReplicated("gzip", synthEvents(5, 1), 0); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("ApplyReplicated after promote: %v, want ErrNotReplica", err)
	}

	// Double promote is a typed conflict.
	if _, err := c.Promote(context.Background()); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("second promote: %v, want ErrNotReplica", err)
	}
	var apiErr *APIError
	if _, err := c.Promote(context.Background()); !errors.As(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != CodeNotReplica {
		t.Fatalf("second promote envelope: %v", err)
	}
}

// TestPromoteRunsSealFunc pins the ordering contract: the seal hook runs
// while the server is still read-only, and its sequence lands in the result.
func TestPromoteRunsSealFunc(t *testing.T) {
	s, _ := newReplicaServer(t, 2)
	sealed := false
	s.SetSealFunc(func() (uint64, error) {
		if !s.ReadOnly() {
			t.Error("seal ran after the server went writable")
		}
		sealed = true
		return 42, nil
	})
	res, err := s.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !sealed || res.LastAppliedSeq != 42 {
		t.Fatalf("sealed=%v result=%+v", sealed, res)
	}
}

// TestPromoteOnPrimary pins that a daemon that never was a replica rejects
// promotion.
func TestPromoteOnPrimary(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 2})
	if _, err := s.Promote(); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("Promote on a primary: %v, want ErrNotReplica", err)
	}
}

// TestReplicaCursorSurvivesSnapshotRestore pins the Events field through the
// snapshot/restore cycle: a recovered daemon reports the same cursor the
// crashed one acknowledged.
func TestReplicaCursorSurvivesSnapshotRestore(t *testing.T) {
	env := newWALEnv(t, 4)
	l := env.openLog(t, wal.SyncAlways)
	s, c := env.newServer(t, l)
	if _, err := c.Ingest(context.Background(), "gzip", synthEvents(123, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := env.openLog(t, wal.SyncAlways)
	defer l2.Close()
	s2, c2 := env.newServer(t, l2)
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	cr, err := c2.Cursor(context.Background(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if cr.Events != 123 {
		t.Fatalf("restored cursor events %d, want 123", cr.Events)
	}
}
