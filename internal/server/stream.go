package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
)

// Streaming ingest sessions: instead of one HTTP POST per batch, a client
// performs one handshake and then pipelines event frames over a long-lived
// connection, receiving decision frames back on the same connection
// (internal/trace stream.go defines the wire format). Two transports reach
// the same session loop:
//
//   - POST /v1/stream on the serving address: the handler hijacks the
//     connection, answers "101 Switching Protocols", and hands the raw
//     socket to the session;
//   - a dedicated raw TCP listener (reactived -stream-addr) where the
//     session protocol starts immediately after connect.
//
// Decisions are byte-identical to the /v1/ingest path: both train the same
// Table under the same per-program cursor lock — the stream side through
// ApplyFrame, pinned bit-identical to ApplyBatch — so a program's event
// order, and therefore its decision sequence, is independent of the
// transport (TestStreamMatchesIngest pins this).
//
// Backpressure is window-based: the handshake ack advertises how many event
// frames may be in flight, each decision (or reject) frame implicitly
// returns one credit, and the client blocks sending when the window is
// exhausted. The server answers frames strictly in order.
//
// Lifecycle: BeginDrain asks every session to finish its current frame,
// write a terminal "draining" frame, and close — the client observes a typed
// ErrDraining, never a bare connection reset. Snapshots interleave freely
// with active sessions: the cursor and shard locks are only held per frame,
// so SnapshotNow sees a per-entry-consistent state exactly as it does under
// POST ingest.

const (
	// DefaultStreamWindow is the pipeline window granted when the
	// handshake does not request one.
	DefaultStreamWindow = 32
	// MaxStreamWindow caps the grantable window.
	MaxStreamWindow = 1024
	// streamHandshakeTimeout bounds how long a new connection may take to
	// present its handshake before the server hangs up.
	streamHandshakeTimeout = 10 * time.Second
	// streamWriteTimeout bounds every server-side frame write so a stalled
	// client cannot pin a session goroutine (or block drain) forever.
	streamWriteTimeout = 30 * time.Second
)

// streamSession is one live streaming connection's server-side handle; the
// registry uses it to nudge the session during drain.
type streamSession struct {
	conn     net.Conn
	draining atomic.Bool
}

// nudge asks the session to stop: the read deadline wakes a blocked frame
// read, whose error path then sees the draining flag.
func (ss *streamSession) nudge() {
	ss.draining.Store(true)
	ss.conn.SetReadDeadline(time.Now())
}

// streamRegistry tracks live sessions so BeginDrain can reach them.
type streamRegistry struct {
	mu       sync.Mutex
	sessions map[*streamSession]struct{}
	draining bool
}

// add registers a session; it fails when the registry is already draining
// (the caller answers with a terminal frame instead of serving).
func (r *streamRegistry) add(ss *streamSession) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return false
	}
	r.sessions[ss] = struct{}{}
	return true
}

func (r *streamRegistry) remove(ss *streamSession) {
	r.mu.Lock()
	delete(r.sessions, ss)
	r.mu.Unlock()
}

func (r *streamRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// drainAll marks the registry draining and nudges every live session.
func (r *streamRegistry) drainAll() {
	r.mu.Lock()
	r.draining = true
	for ss := range r.sessions {
		ss.nudge()
	}
	r.mu.Unlock()
}

// ActiveStreams reports how many streaming sessions are currently live.
func (s *Server) ActiveStreams() int { return s.streams.count() }

// WaitStreams blocks until every streaming session has closed or ctx
// expires. Call it after BeginDrain during shutdown, alongside
// http.Server.Shutdown.
func (s *Server) WaitStreams(ctx context.Context) error {
	for s.streams.count() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: %d stream sessions still open: %w",
				s.streams.count(), ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// ServeStream accepts raw TCP streaming sessions on ln until the listener
// closes (reactived -stream-addr). Each connection speaks the session
// protocol immediately — no HTTP preamble.
func (s *Server) ServeStream(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.serveStreamConn(conn,
			bufio.NewReaderSize(conn, 1<<16), bufio.NewWriterSize(conn, 1<<16))
	}
}

// handleStream upgrades POST /v1/stream into a streaming session: the
// connection is hijacked from the HTTP server, answered with 101 Switching
// Protocols, and handed to the session loop.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal,
			"transport does not support connection hijacking")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	if _, werr := bufrw.WriteString("HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: reactived-stream/1\r\nConnection: Upgrade\r\n\r\n"); werr != nil {
		conn.Close()
		return
	}
	if werr := bufrw.Flush(); werr != nil {
		conn.Close()
		return
	}
	s.serveStreamConn(conn, bufrw.Reader, bufrw.Writer)
}

// serveStreamConn runs one streaming session to completion: handshake,
// event/decision frame loop, terminal frame. It owns conn and closes it.
func (s *Server) serveStreamConn(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	defer conn.Close()

	// A write shared by every outbound frame: bounded by a write deadline
	// so a stalled client cannot pin the goroutine.
	var wireBuf []byte
	writeWire := func(b []byte) error {
		conn.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return nil
	}

	// Handshake, under its own deadline.
	conn.SetReadDeadline(time.Now().Add(streamHandshakeTimeout))
	hs, err := trace.ReadHandshake(br)
	if err != nil {
		// The peer never presented a coherent handshake; there is no
		// protocol to answer in.
		return
	}
	reject := func(code, msg string) {
		wireBuf = trace.AppendAck(wireBuf[:0], trace.Ack{Err: &trace.StreamError{Code: code, Msg: msg}})
		if writeWire(wireBuf) == nil {
			bw.Flush()
		}
	}
	proto, protoOK := trace.NegotiateStreamProto(hs.Proto)
	flags := trace.NegotiateStreamFlags(proto, hs.Flags)
	switch {
	case !protoOK:
		reject(trace.StreamCodeProtoMismatch, fmt.Sprintf(
			"client speaks stream protocol %d, server supports %d..%d",
			hs.Proto, trace.StreamProtoMin, trace.StreamProtoVersion))
		return
	case hs.Program == "":
		reject(trace.StreamCodeMalformed, "missing program name")
		return
	case !trace.ValidProgramName(hs.Program):
		reject(trace.StreamCodeMalformed, "program name contains a NUL byte")
		return
	case hs.ParamsHash != s.paramsHash:
		reject(trace.StreamCodeParamMismatch, fmt.Sprintf(
			"client controller params hash %s != server %s",
			formatParamsHash(hs.ParamsHash), formatParamsHash(s.paramsHash)))
		return
	case s.readOnly.Load():
		// Both transports (hijacked /v1/stream and the raw TCP listener)
		// funnel through here, so one check covers replica mode for all
		// streaming ingest.
		reject(trace.StreamCodeReadOnly,
			"replica is read-only; ingest on the primary, or promote this replica first")
		return
	}
	window := hs.Window
	if window == 0 {
		window = DefaultStreamWindow
	}
	if window > MaxStreamWindow {
		window = MaxStreamWindow
	}

	ss := &streamSession{conn: conn}
	if !s.streams.add(ss) {
		reject(trace.StreamCodeDraining, "draining")
		return
	}
	defer s.streams.remove(ss)
	s.ins.streamSessions.Inc()

	wireBuf = trace.AppendAck(wireBuf[:0], trace.Ack{
		Proto: proto, Flags: flags, Window: window, ParamsHash: s.paramsHash,
	})
	if writeWire(wireBuf) != nil || bw.Flush() != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	// The frame loop runs inside a pprof-labeled region so profiles split
	// stream ingest work by program and role.
	pprof.Do(context.Background(), pprof.Labels(
		"program", hs.Program, "transport", "stream", "role", s.Mode(),
	), func(context.Context) {
		s.streamFrameLoop(conn, br, bw, ss, hs.Program, proto, flags, writeWire)
	})
}

// streamFrameLoop runs one established session's event/decision loop to
// completion: event frames in, decision (or reject) frames out, terminal
// frame last. proto is the negotiated session protocol; at 2 every event
// frame payload starts with a trace context; at 3 decision frames may be
// coalesced per flags; at 4 a speculation-kind tag follows the trace
// context, routing each frame to its own (program, kind) cursor and table
// keys. Below proto 4 every frame is implicitly kind=branch and the session
// is byte-identical to the pre-kind protocol. A frame tagged with a kind the
// daemon does not serve is rejected per-frame ('R'), like a corrupt payload:
// the session survives, and the other kinds' frames keep applying.
//
// The read path is zero-copy at the byte level: ReadSessionFrameBuffered
// hands back a payload aliasing the connection read buffer, the frame is
// validated in place (trace.ValidateFrame — identical accept/reject set
// and diagnostics to the old decode), the WAL splices the validated bytes
// verbatim (wal.AppendPayload writes the same record bytes Append would),
// and Table.ApplyFrame decodes into a pooled scratch that never escapes
// it. Steady state allocates nothing per frame, and the payload is fully
// consumed before the next read invalidates it.
func (s *Server) streamFrameLoop(conn net.Conn, br *bufio.Reader, bw *bufio.Writer,
	ss *streamSession, program string, proto, flags uint32, writeWire func([]byte) error) {
	// terminal ends the session with a typed frame; the client surfaces
	// the code (ErrDraining for "draining", io.EOF for "bye") instead of a
	// bare connection reset.
	var wireBuf []byte
	terminal := func(code, msg string) {
		wireBuf = trace.AppendSessionFrame(wireBuf[:0], trace.StreamFrameTerminal,
			trace.AppendStreamError(nil, trace.StreamError{Code: code, Msg: msg}))
		if writeWire(wireBuf) == nil {
			bw.Flush()
		}
	}

	// Session-local scratch, reused across frames: the steady-state loop
	// allocates nothing. The cursor and table key are per (program, kind);
	// both are resolved lazily per kind and cached for the session, so a
	// branch-only session (every session below proto 4) pays exactly the old
	// single-cursor cost.
	var (
		payloadScratch []byte
		decisions      []byte
		decScratch     []byte
		payload        []byte
		err            error
		keys           [trace.KindCount]string
		curs           [trace.KindCount]*cursor
	)
	keys[trace.KindBranch] = program
	curs[trace.KindBranch] = s.cursorFor(program)
	for {
		var typ byte
		typ, payload, payloadScratch, err = trace.ReadSessionFrameBuffered(br, payloadScratch)
		if err != nil {
			if ss.draining.Load() {
				conn.SetReadDeadline(time.Time{})
				terminal(trace.StreamCodeDraining, "server draining; session closed after the current frame")
				return
			}
			// io.EOF without a close frame, or damaged framing: the
			// connection is unusable either way; say why if we can.
			terminal(trace.StreamCodeBadFrame, fmt.Sprintf("reading session frame: %v", err))
			return
		}
		switch typ {
		case trace.StreamFrameEvents:
			s.ins.streamFrames.Inc()
			batchStart := time.Now()
			// At proto 2 the payload leads with a trace context: a non-zero
			// ID joins the frame to the client's trace, zero means untraced
			// and the server's own sampler gets its say.
			var traceID uint64
			body := payload
			if proto >= 2 {
				traceID, body, err = trace.CutTraceContext(payload)
			}
			// At proto 4 a kind tag follows the trace context; older
			// sessions carry branches only.
			kind := trace.KindBranch
			if err == nil && proto >= 4 {
				kind, body, err = trace.CutKind(body)
				if err == nil && (!kind.Valid() || !s.kinds[kind]) {
					err = fmt.Errorf("kind %s is not served by this daemon", kind)
				}
			}
			if err == nil && traceID == 0 {
				traceID = s.cfg.Trace.SampleBatch()
			}
			decodeStart := time.Now()
			var nEvents int
			if err == nil {
				nEvents, err = trace.ValidateFrame(body)
			}
			decodeDur := time.Since(decodeStart)
			if err != nil {
				// The session framing is intact — reject this frame
				// alone and keep the session, mirroring the POST
				// path's per-frame rejection.
				s.ins.rejectedFrames.Inc()
				wireBuf = trace.AppendSessionFrame(wireBuf[:0], trace.StreamFrameReject,
					[]byte(err.Error()))
				err = nil
				if writeWire(wireBuf) != nil {
					return
				}
			} else {
				key := keys[kind]
				cur := curs[kind]
				if cur == nil {
					key = trace.EncodeKindProgram(kind, program)
					cur = s.cursorFor(key)
					keys[kind], curs[kind] = key, cur
				}
				applyStart := time.Now()
				s.applyMu.RLock()
				cur.mu.Lock()
				var walErr error
				var seq uint64
				walStart := time.Now()
				fsyncStart := walStart
				var fsyncDur time.Duration
				if wlog := s.cfg.WAL; wlog != nil {
					// Same contract as the POST path: the frame is logged
					// under the cursor lock (WAL order == apply order) and
					// committed before it trains the table. The validated
					// wire payload is spliced in verbatim — the record
					// bytes match what Append would have written for the
					// decoded events.
					seq, walErr = wlog.AppendPayload(key, body)
					if walErr == nil {
						s.cfg.Trace.NoteSeq(seq, traceID)
					}
					fsyncStart = time.Now()
					if walErr == nil {
						walErr = wlog.Commit()
					}
					fsyncDur = time.Since(fsyncStart)
				}
				walDur := fsyncStart.Sub(walStart)
				tableStart := time.Now()
				if walErr == nil {
					decisions, cur.instr = s.table.ApplyFrame(key, body, cur.instr, decisions[:0])
				}
				tableDur := time.Since(tableStart)
				cur.mu.Unlock()
				s.applyMu.RUnlock()
				if walErr != nil {
					// The frame was not applied; end the session with a
					// typed server-side error rather than acknowledging
					// events that were never durably logged.
					s.ins.walAppendErrors.Inc()
					terminal(trace.StreamCodeInternal, "wal append: "+walErr.Error())
					return
				}
				s.ins.applyLat.Observe(time.Since(applyStart).Seconds())
				s.ins.batchEvents.Observe(float64(nEvents))
				respondStart := time.Now()
				wireBuf, decScratch = appendDecisionsFrameCoalesced(wireBuf[:0], decisions, proto, flags, decScratch)
				if writeWire(wireBuf) != nil {
					return
				}
				if traceID != 0 {
					tr := s.cfg.Trace
					end := time.Now()
					root := tr.SpanID()
					tr.Record(obs.Span{Trace: traceID, Span: root, Stage: "batch", Program: program,
						Events: nEvents, Seq: seq, Start: batchStart.UnixNano(), Dur: int64(end.Sub(batchStart))})
					tr.RecordStage(traceID, root, "decode", program, nEvents, 0, decodeStart, decodeDur)
					tr.RecordStage(traceID, root, "wal_append", program, nEvents, seq, walStart, walDur)
					tr.RecordStage(traceID, root, "fsync", program, 0, seq, fsyncStart, fsyncDur)
					tr.RecordStage(traceID, root, "apply", program, nEvents, 0, tableStart, tableDur)
					tr.RecordStage(traceID, root, "respond", program, 0, 0, respondStart, end.Sub(respondStart))
				}
			}
			// Flush only when no further frame is already buffered: a
			// pipelining client keeps the session busy, and its credits
			// come back in one flush when the server catches up.
			if br.Buffered() == 0 {
				if bw.Flush() != nil {
					return
				}
			}
		case trace.StreamFrameClose:
			terminal(trace.StreamCodeBye, "")
			return
		default:
			terminal(trace.StreamCodeBadFrame, fmt.Sprintf("unexpected session frame type %q", typ))
			return
		}
	}
}

// appendDecisionsFrame appends one 'D' session frame carrying the decision
// bytes (count uvarint + one byte per event) to dst. The header is built in
// place — the payload length is computable without staging the payload — so
// the hot respond path allocates nothing.
func appendDecisionsFrame(dst, decisions []byte) []byte {
	dst = append(dst, trace.StreamFrameDecisions)
	countLen := uvarintLen(uint64(len(decisions)))
	dst = appendUvarint(dst, uint64(countLen+len(decisions)))
	dst = appendUvarint(dst, uint64(len(decisions)))
	return append(dst, decisions...)
}

// appendDecisionsFrameCoalesced appends the session frame answering one
// applied event frame, in the encoding the session negotiated: plain 'D'
// below proto 3, run-length 'd' at proto 3, change-list 'x' when the
// change-only flag was granted. Either coalesced form falls back to the
// plain frame whenever it does not strictly shrink the payload, so the wire
// cost is bounded by today's encoding. scratch stages the candidate payload
// and is returned for reuse.
func appendDecisionsFrameCoalesced(dst, decisions []byte, proto, flags uint32, scratch []byte) (wire, newScratch []byte) {
	if proto < 3 {
		return appendDecisionsFrame(dst, decisions), scratch
	}
	typ := trace.StreamFrameDecisionsRLE
	if flags&trace.StreamFlagChangeOnly != 0 {
		typ = trace.StreamFrameDecisionsChanges
		scratch = trace.AppendDecisionsChanges(scratch[:0], decisions)
	} else {
		scratch = trace.AppendDecisionsRLE(scratch[:0], decisions)
	}
	if len(scratch) >= uvarintLen(uint64(len(decisions)))+len(decisions) {
		return appendDecisionsFrame(dst, decisions), scratch
	}
	return trace.AppendSessionFrame(dst, typ, scratch), scratch
}

// uvarintLen returns how many bytes v's uvarint encoding takes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendUvarint appends v's uvarint encoding to dst.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
