//go:build race

package server

// raceEnabled reports whether this test binary was built with the race
// detector, which makes sync.Pool drop items on purpose and so voids
// steady-state allocation pins.
const raceEnabled = true
