package server

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"reactivespec/internal/trace"
)

// applyAllBatched drives events through the table with ApplyBatch in chunks
// of batch, returning the encoded decision sequence.
func applyAllBatched(t *Table, program string, evs []trace.Event, instr *uint64, batch int) []byte {
	out := make([]byte, 0, len(evs))
	for off := 0; off < len(evs); off += batch {
		end := off + batch
		if end > len(evs) {
			end = len(evs)
		}
		out, *instr = t.ApplyBatch(program, evs[off:end], *instr, out)
	}
	return out
}

// TestApplyBatchMatchesApply is the batching equivalence pin: across shard
// counts, seeds, and batch sizes, the batched path must produce the
// byte-identical decision stream and identical shard metrics (including
// transition counts and entry counts) as per-event Apply.
func TestApplyBatchMatchesApply(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, seed := range []uint64{1, 7, 42} {
			for _, batch := range []int{1, 13, 1024, 60_000} {
				t.Run(fmt.Sprintf("shards=%d/seed=%d/batch=%d", shards, seed, batch), func(t *testing.T) {
					evs := synthEvents(30_000, seed)

					perEvent := NewTable(testParams(), shards)
					var instrA uint64
					want := applyAll(perEvent, "prog", evs, &instrA)

					batched := NewTable(testParams(), shards)
					var instrB uint64
					got := applyAllBatched(batched, "prog", evs, &instrB, batch)

					if instrA != instrB {
						t.Fatalf("final instruction count %d, want %d", instrB, instrA)
					}
					if len(got) != len(want) {
						t.Fatalf("%d decisions, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							gd, _ := DecodeDecision(got[i])
							wd, _ := DecodeDecision(want[i])
							t.Fatalf("event %d (branch %d): batched %v, per-event %v",
								i, evs[i].Branch, gd, wd)
						}
					}
					if gm, wm := batched.Metrics(), perEvent.Metrics(); !reflect.DeepEqual(gm, wm) {
						t.Fatalf("shard metrics diverge:\nbatched:   %+v\nper-event: %+v", gm, wm)
					}
				})
			}
		}
	}
}

// TestApplyBatchTightLoop exercises the last-entry cache: long runs of a
// single branch must still match per-event Apply exactly.
func TestApplyBatchTightLoop(t *testing.T) {
	evs := make([]trace.Event, 0, 40_000)
	state := uint64(3)
	for len(evs) < cap(evs) {
		state = state*6364136223846793005 + 1442695040888963407
		id := trace.BranchID(state >> 58) // few distinct branches
		burst := 16 + int(state>>32&127)  // long single-branch runs
		for k := 0; k < burst && len(evs) < cap(evs); k++ {
			evs = append(evs, trace.Event{Branch: id, Taken: state>>(k&31)&1 == 0, Gap: uint32(1 + k&7)})
		}
	}

	perEvent := NewTable(testParams(), 4)
	var instrA uint64
	want := applyAll(perEvent, "loop", evs, &instrA)

	batched := NewTable(testParams(), 4)
	var instrB uint64
	got := applyAllBatched(batched, "loop", evs, &instrB, 4096)

	if string(got) != string(want) {
		t.Fatal("tight-loop decision stream differs between batched and per-event paths")
	}
	if !reflect.DeepEqual(batched.Metrics(), perEvent.Metrics()) {
		t.Fatal("tight-loop shard metrics differ between batched and per-event paths")
	}
}

// TestApplyBatchEmpty checks the trivial cases: no events, and a batch that
// only advances dst.
func TestApplyBatchEmpty(t *testing.T) {
	tab := NewTable(testParams(), 4)
	dst, instr := tab.ApplyBatch("p", nil, 17, nil)
	if len(dst) != 0 || instr != 17 {
		t.Fatalf("empty batch: %d decisions, instr %d", len(dst), instr)
	}
	dst, instr = tab.ApplyBatch("p", []trace.Event{{Branch: 1, Taken: true, Gap: 5}}, instr, dst)
	if len(dst) != 1 || instr != 22 {
		t.Fatalf("one-event batch: %d decisions, instr %d", len(dst), instr)
	}
}

// TestApplyBatchConcurrentWithReaders drives concurrent ApplyBatch calls for
// distinct programs while Decide and Metrics readers spin (the race detector
// validates the RWMutex discipline), then asserts every program's decision
// stream and the aggregate counters match a serial replay.
func TestApplyBatchConcurrentWithReaders(t *testing.T) {
	const (
		programs = 8
		events   = 20_000
		batch    = 777
	)
	tab := NewTable(testParams(), 8)

	var done atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; !done.Load(); i++ {
				program := fmt.Sprintf("prog-%d", i%programs)
				tab.Decide(program, trace.BranchID(i%24))
				if i%16 == 0 {
					tab.Metrics()
				}
			}
		}(r)
	}

	streams := make([][]trace.Event, programs)
	decisions := make([][]byte, programs)
	var writers sync.WaitGroup
	for p := 0; p < programs; p++ {
		streams[p] = synthEvents(events, uint64(p)*1315423911+5)
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			var instr uint64
			decisions[p] = applyAllBatched(tab, fmt.Sprintf("prog-%d", p), streams[p], &instr, batch)
		}(p)
	}
	writers.Wait()
	done.Store(true)
	readers.Wait()

	// Serial replay: a fresh table fed the same per-program streams must
	// produce the same decision bytes and the same aggregate totals.
	serial := NewTable(testParams(), 8)
	var serialTotal, concurrentTotal ShardMetrics
	for p := 0; p < programs; p++ {
		var instr uint64
		want := applyAll(serial, fmt.Sprintf("prog-%d", p), streams[p], &instr)
		if string(decisions[p]) != string(want) {
			t.Fatalf("program %d: concurrent batched decisions diverge from serial replay", p)
		}
	}
	for _, m := range serial.Metrics() {
		serialTotal.Add(m)
	}
	for _, m := range tab.Metrics() {
		concurrentTotal.Add(m)
	}
	if serialTotal != concurrentTotal {
		t.Fatalf("aggregate metrics: concurrent %+v, serial %+v", concurrentTotal, serialTotal)
	}
	if concurrentTotal.Events != programs*events {
		t.Fatalf("total events %d, want %d", concurrentTotal.Events, programs*events)
	}
}

// TestApplyShardedMatchesApply pins the two-pass shard schedule directly,
// bypassing the hop-density heuristic that normally routes batches to it:
// for branch-hopping and run-heavy traces alike it must produce the
// byte-identical decision stream, final instruction count, and shard
// metrics as per-event Apply. (TestApplyBatchMatchesApply covers the
// dispatcher; this covers the schedule the heuristic might not pick.)
func TestApplyShardedMatchesApply(t *testing.T) {
	runs := make([]trace.Event, 0, 20_000)
	for i := 0; len(runs) < 20_000; i++ {
		b := trace.BranchID(i % 7)
		for j := 0; j < 500 && len(runs) < 20_000; j++ {
			runs = append(runs, trace.Event{Branch: b, Taken: j%3 != 0, Gap: uint32(1 + j%5)})
		}
	}
	traces := map[string][]trace.Event{
		"hopping": synthEvents(20_000, 3),
		"runs":    runs,
	}
	for name, evs := range traces {
		for _, shards := range []int{2, 16} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				perEvent := NewTable(testParams(), shards)
				var instrA uint64
				want := applyAll(perEvent, "prog", evs, &instrA)

				sharded := NewTable(testParams(), shards)
				got, instrB := sharded.applySharded(programHash("prog"), "prog", evs, 0, nil)

				if instrA != instrB {
					t.Fatalf("final instruction count %d, want %d", instrB, instrA)
				}
				if len(got) != len(want) {
					t.Fatalf("%d decisions, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						gd, _ := DecodeDecision(got[i])
						wd, _ := DecodeDecision(want[i])
						t.Fatalf("event %d (branch %d): sharded %v, per-event %v",
							i, evs[i].Branch, gd, wd)
					}
				}
				if gm, wm := sharded.Metrics(), perEvent.Metrics(); !reflect.DeepEqual(gm, wm) {
					t.Fatalf("shard metrics diverge:\nsharded:   %+v\nper-event: %+v", gm, wm)
				}
			})
		}
	}
}
