package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Params == (core.Params{}) {
		cfg.Params = testParams()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL, ts.Client())
}

func TestIngestAndDecide(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 4})
	evs := synthEvents(30_000, 3)

	// Ingest in several batches; decisions must match a direct table run.
	want := func() []byte {
		tab := NewTable(s.cfg.Params, 1)
		var instr uint64
		return applyAll(tab, "gzip", evs, &instr)
	}()
	var got []byte
	for off := 0; off < len(evs); off += 7000 {
		end := off + 7000
		if end > len(evs) {
			end = len(evs)
		}
		ds, err := c.Ingest(context.Background(), "gzip", evs[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			got = append(got, d.Encode())
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("networked decisions differ from direct table decisions")
	}

	// Decide must agree with the table's view.
	dr, err := c.Decide(context.Background(), "gzip", 0)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Table().Decide("gzip", 0)
	if (dr.State != d.State.String()) || dr.Live != d.Live {
		t.Fatalf("decide %+v, table %v", dr, d)
	}

	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Events != uint64(len(evs)) || h.Programs != 1 {
		t.Fatalf("health %+v", h)
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"reactived_events_total{shard=\"0\"}",
		"reactived_misspec_rate",
		"reactived_transitions_total",
		"reactived_batch_latency_seconds{quantile=\"0.99\"}",
		"reactived_batches_total 5",
		"reactived_table_events_total 30000",
		"reactived_ingest_decode_seconds{quantile=\"0.99\"}",
		"reactived_ingest_apply_seconds_count 5",
		"reactived_ingest_respond_seconds_count 5",
		"reactived_ingest_batch_events{quantile=\"0.5\"}",
		"reactived_uptime_seconds",
		"reactived_draining 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every sample line belongs to a family that declared # HELP/# TYPE
	// metadata under the uniform reactived_ prefix (the registry's
	// exposition writer guarantees this; pin it end to end).
	typed := map[string]bool{}
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
		}
	}
	for _, line := range strings.Split(m, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !strings.HasPrefix(name, "reactived_") {
			t.Errorf("metric %q lacks the reactived_ prefix", name)
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")
		if !typed[name] && !typed[family] {
			t.Errorf("sample %q has no # TYPE metadata", name)
		}
	}
}

// TestIngestRejectsBadFramePerBatch sends [good, corrupt, good] frames in one
// request: the corrupt frame must be rejected alone, with both good frames
// applied.
func TestIngestRejectsBadFramePerBatch(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 4})

	good1 := synthEvents(500, 11)
	good2 := synthEvents(500, 13)
	corrupt, err := trace.EncodeFrame(synthEvents(400, 12))
	if err != nil {
		t.Fatal(err)
	}
	corrupt[len(corrupt)/2] ^= 0xff

	var body bytes.Buffer
	if err := trace.WriteFrame(&body, good1); err != nil {
		t.Fatal(err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(corrupt)))
	body.Write(hdr[:n])
	body.Write(corrupt)
	if err := trace.WriteFrame(&body, good2); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest?program=p", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s, want 200 (per-batch rejection, not per-connection)", resp.Status)
	}
	results, truncated, err := parseIngestResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if truncated != "" {
		t.Fatalf("unexpected truncation record: %q", truncated)
	}
	if len(results) != 3 {
		t.Fatalf("%d frame results, want 3", len(results))
	}
	if results[0].Err != nil || len(results[0].Decisions) != len(good1) {
		t.Fatalf("frame 0: %+v", results[0])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "rejected") {
		t.Fatalf("frame 1 not rejected: %+v", results[1])
	}
	if results[2].Err != nil || len(results[2].Decisions) != len(good2) {
		t.Fatalf("frame 2: %+v", results[2])
	}

	// Only the good frames' events must have been applied.
	var total ShardMetrics
	for _, m := range s.Table().Metrics() {
		total.Add(m)
	}
	if want := uint64(len(good1) + len(good2)); total.Events != want {
		t.Fatalf("applied %d events, want %d", total.Events, want)
	}

	// The service stays up for the next batch (per-batch, not per-connection).
	if _, err := c.Ingest(context.Background(), "p", good1); err != nil {
		t.Fatalf("follow-up batch failed: %v", err)
	}
}

// TestIngestBadQueryAndMethod checks request validation.
func TestIngestBadQueryAndMethod(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing program: status %s, want 400", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/v1/ingest?program=p")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: status %s, want 405", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/v1/decide?program=p&branch=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad branch: status %s, want 400", resp.Status)
	}
}

// TestDrainRejectsNewIngest checks the graceful-shutdown gate.
func TestDrainRejectsNewIngest(t *testing.T) {
	s, c := newTestServer(t, Config{})
	if _, err := c.Ingest(context.Background(), "p", synthEvents(100, 1)); err != nil {
		t.Fatal(err)
	}
	s.BeginDrain()
	if _, err := c.Ingest(context.Background(), "p", synthEvents(100, 2)); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("ingest while draining: err = %v, want 503", err)
	}
	// Read-only endpoints keep serving.
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining {
		t.Fatal("health must report draining")
	}
	if _, err := c.Decide(context.Background(), "p", 0); err != nil {
		t.Fatalf("decide while draining: %v", err)
	}
}

// TestConcurrentIngestDistinctPrograms checks the serving path under the
// race detector with parallel clients.
func TestConcurrentIngestDistinctPrograms(t *testing.T) {
	s, c := newTestServer(t, Config{Shards: 8})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			evs := synthEvents(5_000, uint64(w)*31)
			program := "prog-" + string(rune('a'+w))
			for off := 0; off < len(evs); off += 1000 {
				if _, err := c.Ingest(context.Background(), program, evs[off:off+1000]); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total ShardMetrics
	for _, m := range s.Table().Metrics() {
		total.Add(m)
	}
	if want := uint64(workers * 5_000); total.Events != want {
		t.Fatalf("total events %d, want %d", total.Events, want)
	}
}
