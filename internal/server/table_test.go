package server

import (
	"sync"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

func testParams() core.Params { return core.DefaultParams().Scaled(200) }

// synthEvents builds a deterministic mixed stream exercising selections,
// evictions, revisits, and retirals.
func synthEvents(n int, seed uint64) []trace.Event {
	evs := make([]trace.Event, 0, n)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		r := next()
		id := trace.BranchID(r % 24)
		var taken bool
		switch {
		case id < 8:
			taken = next()%500 != 0
		case id < 16:
			taken = (i/700)%2 == 0
		default:
			taken = next()%2 == 0
		}
		evs = append(evs, trace.Event{Branch: id, Taken: taken, Gap: uint32(1 + r%9)})
	}
	return evs
}

// applyAll drives events through the table for one program, returning the
// encoded decision sequence.
func applyAll(t *Table, program string, evs []trace.Event, instr *uint64) []byte {
	out := make([]byte, 0, len(evs))
	for _, ev := range evs {
		*instr += uint64(ev.Gap)
		out = append(out, t.Apply(program, ev, *instr).Encode())
	}
	return out
}

// TestTableMatchesInProcessController checks the central equivalence claim:
// the table's per-event decisions are bitwise-identical to a single
// in-process core.Controller observing the same stream.
func TestTableMatchesInProcessController(t *testing.T) {
	params := testParams()
	evs := synthEvents(60_000, 7)

	tab := NewTable(params, 16)
	var instr uint64
	got := applyAll(tab, "prog", evs, &instr)

	ctl := core.New(params)
	instr = 0
	for i, ev := range evs {
		instr += uint64(ev.Gap)
		v := ctl.OnBranch(ev.Branch, ev.Taken, instr)
		dir, live := ctl.Speculating(ev.Branch)
		want := Decision{Verdict: v, State: ctl.BranchState(ev.Branch), Dir: dir, Live: live}
		if got[i] != want.Encode() {
			gd, _ := DecodeDecision(got[i])
			t.Fatalf("event %d (branch %d): table %v, in-process %v", i, ev.Branch, gd, want)
		}
	}

	// The aggregate shard counters must add up to the controller's stats.
	var total ShardMetrics
	for _, m := range tab.Metrics() {
		total.Add(m)
	}
	st := ctl.Stats()
	if total.Events != st.Events || total.Correct != st.Correct ||
		total.Misspec != st.Misspec || total.NotSpec != st.NotSpec {
		t.Fatalf("table totals %+v, controller stats %+v", total, st)
	}
	if total.Entries == 0 || total.Transitions[core.Biased] == 0 {
		t.Fatalf("expected resident entries and biased transitions, got %+v", total)
	}
}

// TestTableProgramsAreIndependent checks that the same branch ID under two
// programs is tracked separately.
func TestTableProgramsAreIndependent(t *testing.T) {
	tab := NewTable(testParams(), 4)
	var instrA, instrB uint64
	// Program A sees branch 0 always-taken; program B sees it never-taken.
	for i := 0; i < 5000; i++ {
		instrA += 3
		tab.Apply("a", trace.Event{Branch: 0, Taken: true, Gap: 3}, instrA)
		instrB += 3
		tab.Apply("b", trace.Event{Branch: 0, Taken: false, Gap: 3}, instrB)
	}
	da := tab.Decide("a", 0)
	db := tab.Decide("b", 0)
	if da.State != core.Biased || db.State != core.Biased {
		t.Fatalf("states %v / %v, want biased / biased", da.State, db.State)
	}
	if !da.Dir || db.Dir {
		t.Fatalf("directions %v / %v, want taken / not-taken", da.Dir, db.Dir)
	}
	if d := tab.Decide("c", 0); d.State != core.Monitor || d.Live {
		t.Fatalf("unknown program decision %v, want monitor/idle", d)
	}
}

// TestTableConcurrentApply hammers the table from many goroutines (the race
// detector validates the striping; the totals validate no event is lost).
func TestTableConcurrentApply(t *testing.T) {
	tab := NewTable(testParams(), 8)
	const (
		workers = 16
		perW    = 20_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			program := string(rune('a' + w%4))
			evs := synthEvents(perW, uint64(w)*977)
			var instr uint64
			for _, ev := range evs {
				instr += uint64(ev.Gap)
				tab.Apply(program, ev, instr)
				// Interleave reads to exercise Decide under contention.
				if instr%4096 == 0 {
					tab.Decide(program, ev.Branch)
				}
			}
		}(w)
	}
	wg.Wait()
	var total ShardMetrics
	for _, m := range tab.Metrics() {
		total.Add(m)
	}
	if want := uint64(workers * perW); total.Events != want {
		t.Fatalf("total events %d, want %d", total.Events, want)
	}
}

// TestDecisionEncodeDecode round-trips every representable decision byte.
func TestDecisionEncodeDecode(t *testing.T) {
	for v := core.Verdict(0); v <= core.Misspec; v++ {
		for st := core.Monitor; st <= core.Retired; st++ {
			for _, dir := range []bool{false, true} {
				for _, live := range []bool{false, true} {
					d := Decision{Verdict: v, State: st, Dir: dir, Live: live}
					got, err := DecodeDecision(d.Encode())
					if err != nil {
						t.Fatalf("%v: %v", d, err)
					}
					if got != d {
						t.Fatalf("round trip %v -> %v", d, got)
					}
				}
			}
		}
	}
	if _, err := DecodeDecision(0xff); err == nil {
		t.Fatal("invalid decision byte accepted")
	}
	if _, err := DecodeDecision(0x03); err == nil {
		t.Fatal("invalid verdict accepted")
	}
}
