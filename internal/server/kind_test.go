package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

// TestMixedKindIsolationSameProgram pins the core serving-table claim of the
// kind-generic API: four kinds under the same program name are four
// independent unit populations in one table. Each kind's decision sequence
// matches its own in-process mirror over its own event stream, and reading
// one kind's state never shows another's.
func TestMixedKindIsolationSameProgram(t *testing.T) {
	_, c := newTestServer(t, Config{Shards: 4})
	const program = "gzip"

	kinds := []trace.Kind{trace.KindBranch, trace.KindValue, trace.KindMemdep, trace.KindTLSpec}
	type side struct {
		set   *core.PolicySet
		instr uint64
	}
	mirrors := map[trace.Kind]*side{}
	for _, k := range kinds {
		set, err := core.NewPolicySet(core.PolicyReactive, testParams())
		if err != nil {
			t.Fatal(err)
		}
		mirrors[k] = &side{set: set}
	}

	// Interleave batches across kinds so the streams advance together; the
	// per-kind event sequences differ (distinct seeds), so any cross-kind
	// state bleed would surface as a mirror mismatch.
	for round := 0; round < 4; round++ {
		for i, k := range kinds {
			evs := synthEvents(1500, uint64(100*i+round))
			ds, err := c.IngestKind(context.Background(), program, k, evs)
			if err != nil {
				t.Fatalf("round %d kind %s: %v", round, k, err)
			}
			if len(ds) != len(evs) {
				t.Fatalf("kind %s: %d decisions for %d events", k, len(ds), len(evs))
			}
			m := mirrors[k]
			for j, ev := range evs {
				m.instr += uint64(ev.Gap)
				v, st, dir, live := m.set.OnEvent(ev.Branch, ev.Taken, m.instr)
				want := Decision{Verdict: v, State: st, Dir: dir, Live: live}
				if ds[j] != want {
					t.Fatalf("round %d kind %s event %d: daemon %v, mirror %v", round, k, j, ds[j], want)
				}
			}
		}
	}

	// Point reads are isolated the same way: each kind's unit 0 reports its
	// own mirror's state under the shared program name.
	for _, k := range kinds {
		d, err := c.DecideKind(context.Background(), program, k, 0)
		if err != nil {
			t.Fatalf("DecideKind %s: %v", k, err)
		}
		m := mirrors[k]
		dir, live := m.set.Speculating(0)
		if d.State != m.set.UnitState(0).String() || d.Dir != dir || d.Live != live {
			t.Fatalf("kind %s decide = %+v, mirror state %s dir=%v live=%v",
				k, d, m.set.UnitState(0), dir, live)
		}
		if d.Kind != k.String() || d.Program != program {
			t.Fatalf("kind %s decide echoes %q/%q", k, d.Program, d.Kind)
		}
	}
}

// TestV1V2ByteExactBranch pins the migration contract for kind=branch: a /v2
// ingest with kind=branch produces byte-identical response bodies to the
// same events POSTed to /v1/ingest, and both endpoints drive the same table
// entry (the branch kind-program key is the plain program name).
func TestV1V2ByteExactBranch(t *testing.T) {
	post := func(c *Client, path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(c.base+path, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	evs := synthEvents(6000, 9)
	var body []byte
	for _, b := range streamBatches(evs, 1500) {
		body = trace.AppendFrame(nil, b)

		// Fresh server per endpoint: identical inputs from identical state.
		_, v1c := newTestServer(t, Config{Shards: 4})
		_, v2c := newTestServer(t, Config{Shards: 4})
		s1, b1 := post(v1c, "/v1/ingest?program=gzip", body)
		s2, b2 := post(v2c, "/v2/ingest?program=gzip&kind=branch", body)
		if s1 != http.StatusOK || s2 != http.StatusOK {
			t.Fatalf("status v1=%d v2=%d", s1, s2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("v1 and v2 response bodies differ for kind=branch:\n v1 %x\n v2 %x", b1, b2)
		}
	}

	// Same server: alternating endpoints continue one decision stream, so
	// the two surfaces are views of one entry, not parallel copies.
	_, c := newTestServer(t, Config{Shards: 4})
	var mixed []Decision
	for i, b := range streamBatches(evs, 1500) {
		var (
			ds  []Decision
			err error
		)
		if i%2 == 0 {
			ds, err = c.Ingest(context.Background(), "gzip", b)
		} else {
			ds, err = c.IngestKind(context.Background(), "gzip", trace.KindBranch, b)
		}
		if err != nil {
			t.Fatal(err)
		}
		mixed = append(mixed, ds...)
	}
	_, ref := newTestServer(t, Config{Shards: 4})
	var want []Decision
	for _, b := range streamBatches(evs, 1500) {
		ds, err := ref.Ingest(context.Background(), "gzip", b)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ds...)
	}
	if !reflect.DeepEqual(mixed, want) {
		t.Fatal("alternating v1/v2 ingest diverged from a pure v1 stream")
	}
}

// TestStreamProto3Proto4InteropByteExact is the cross-version stream matrix:
// a proto-3 session (no kind tag) and a proto-4 session carrying the
// explicit kind=branch tag must receive byte-identical ack tails and
// byte-identical decision frames for the same events. The only permitted
// wire difference is the negotiated proto number itself.
func TestStreamProto3Proto4InteropByteExact(t *testing.T) {
	type session struct {
		conn net.Conn
		br   *bufio.Reader
	}
	open := func(proto uint32) (*session, trace.Ack) {
		t.Helper()
		s, _ := newTestServer(t, Config{Shards: 4})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go s.ServeStream(ln)
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		hs := trace.Handshake{Proto: proto, ParamsHash: s.paramsHash, Window: 4, Program: "gzip"}
		if _, err := conn.Write(trace.AppendHandshake(nil, hs)); err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		ack, err := trace.ReadAck(br)
		if err != nil {
			t.Fatalf("proto %d ack: %v", proto, err)
		}
		if ack.Err != nil {
			t.Fatalf("proto %d rejected: %v", proto, ack.Err)
		}
		if ack.Proto != proto {
			t.Fatalf("proto %d negotiated %d", proto, ack.Proto)
		}
		return &session{conn: conn, br: br}, ack
	}

	s3, ack3 := open(3)
	s4, ack4 := open(4)
	if ack3.Window != ack4.Window || ack3.Flags != ack4.Flags || ack3.ParamsHash != ack4.ParamsHash {
		t.Fatalf("ack tails diverge: proto3 %+v proto4 %+v", ack3, ack4)
	}

	evs := synthEvents(8000, 13)
	var scratch3, scratch4 []byte
	for i, b := range streamBatches(evs, 1000) {
		p3 := trace.EncodeFrameAppend(trace.AppendTraceContext(nil, 0), b)
		p4 := trace.EncodeFrameAppend(trace.AppendKind(trace.AppendTraceContext(nil, 0), trace.KindBranch), b)
		if _, err := s3.conn.Write(trace.AppendSessionFrame(nil, trace.StreamFrameEvents, p3)); err != nil {
			t.Fatal(err)
		}
		if _, err := s4.conn.Write(trace.AppendSessionFrame(nil, trace.StreamFrameEvents, p4)); err != nil {
			t.Fatal(err)
		}
		typ3, pay3, sc3, err := trace.ReadSessionFrame(s3.br, scratch3)
		if err != nil {
			t.Fatalf("batch %d proto3: %v", i, err)
		}
		scratch3 = sc3
		typ4, pay4, sc4, err := trace.ReadSessionFrame(s4.br, scratch4)
		if err != nil {
			t.Fatalf("batch %d proto4: %v", i, err)
		}
		scratch4 = sc4
		if typ3 != typ4 || !bytes.Equal(pay3, pay4) {
			t.Fatalf("batch %d: proto-3 and proto-4 decision frames diverge:\n p3 %c %x\n p4 %c %x",
				i, typ3, pay3, typ4, pay4)
		}
	}
}

// TestWALKindTransparentRecovery pins that the WAL treats kind-encoded
// program keys as opaque: a crash after mixed-kind ingest recovers to the
// exact controller state of the crashed server, including the non-branch
// entries, with no WAL format change (branch records still carry the plain
// program name a pre-kind build wrote).
func TestWALKindTransparentRecovery(t *testing.T) {
	env := newWALEnv(t, 4)
	l := env.openLog(t, wal.SyncAlways)
	victim, vc := env.newServer(t, l)

	type kindBatch struct {
		program string
		kind    trace.Kind
		n       int
		seed    uint64
	}
	batches := []kindBatch{
		{"gzip", trace.KindBranch, 3000, 1},
		{"gzip", trace.KindValue, 2500, 2},
		{"vpr", trace.KindMemdep, 2000, 3},
		{"gzip", trace.KindTLSpec, 1500, 4},
		{"gzip", trace.KindBranch, 1000, 5},
		{"vpr", trace.KindValue, 500, 6},
	}
	for _, b := range batches {
		if _, err := vc.IngestKind(context.Background(), b.program, b.kind, synthEvents(b.n, b.seed)); err != nil {
			t.Fatalf("%s/%s: %v", b.program, b.kind, err)
		}
	}
	crashed := victim.table.SnapshotEntries()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := env.openLog(t, wal.SyncAlways)
	recovered, _ := env.newServer(t, l2)
	res, err := recovered.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.ReplayedRecords == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if got := recovered.table.SnapshotEntries(); !reflect.DeepEqual(got, crashed) {
		t.Fatal("recovered mixed-kind entries differ from the crashed server's")
	}

	// The WAL's branch records carry the plain program name — what a
	// pre-kind daemon wrote — so a pre-refactor log is just the branch-only
	// special case of this replay.
	for _, b := range batches {
		want := trace.EncodeKindProgram(b.kind, b.program)
		d := recovered.table.DecideKind(b.program, b.kind, 0)
		if d == (Decision{}) && b.kind == trace.KindBranch {
			t.Fatalf("no recovered state under key %q", want)
		}
	}
}

// TestSnapshotPolicyRoundTripAndMismatch pins the snapshot policy contract:
// a snapshot restores into a server running the same policy (resuming the
// identical decision stream), and a server running a different policy
// rejects it with ErrSnapshotMismatch instead of silently reinterpreting
// the frozen state under different transition rules.
func TestSnapshotPolicyRoundTripAndMismatch(t *testing.T) {
	for _, policy := range core.PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			s, c := newTestServer(t, Config{SnapshotDir: dir, Shards: 2, Policy: policy})
			evs := synthEvents(4000, 7)
			if _, err := c.IngestKind(context.Background(), "p", trace.KindValue, evs[:2000]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.SnapshotNow(); err != nil {
				t.Fatal(err)
			}

			same := New(Config{Params: testParams(), SnapshotDir: dir, Shards: 2, Policy: policy})
			if _, err := same.RestoreFromDisk(); err != nil {
				t.Fatalf("restore into same policy: %v", err)
			}
			key := trace.EncodeKindProgram(trace.KindValue, "p")
			wantTail, _ := s.table.ApplyBatchKind("p", trace.KindValue, evs[2000:], s.cursorFor(key).instr, nil)
			gotTail, _ := same.table.ApplyBatchKind("p", trace.KindValue, evs[2000:], s.cursorFor(key).instr, nil)
			if !bytes.Equal(gotTail, wantTail) {
				t.Fatal("restored server's future decisions diverge from the snapshotted one's")
			}

			for _, other := range core.PolicyNames() {
				if other == policy {
					continue
				}
				mismatched := New(Config{Params: testParams(), SnapshotDir: dir, Shards: 2, Policy: other})
				if _, err := mismatched.RestoreFromDisk(); !errors.Is(err, ErrSnapshotMismatch) {
					t.Fatalf("restore of %s snapshot into %s server = %v, want ErrSnapshotMismatch",
						policy, other, err)
				}
			}
		})
	}
}

// TestParamsPolicyHash pins the compatibility-critical hash property: the
// reactive policy (and the empty legacy spelling) leaves ParamsHash
// untouched, so every pre-policy artifact keeps verifying, while each other
// registered policy produces a distinct hash under identical parameters.
func TestParamsPolicyHash(t *testing.T) {
	p := testParams()
	if ParamsPolicyHash(p, "") != ParamsHash(p) || ParamsPolicyHash(p, core.PolicyReactive) != ParamsHash(p) {
		t.Fatal("reactive/empty policy perturbs the params hash")
	}
	seen := map[uint64]string{ParamsHash(p): core.PolicyReactive}
	for _, name := range core.PolicyNames() {
		if name == core.PolicyReactive {
			continue
		}
		h := ParamsPolicyHash(p, name)
		if prev, dup := seen[h]; dup {
			t.Fatalf("policies %q and %q collide at %016x", prev, name, h)
		}
		seen[h] = name
	}
}

// TestPolicyServerMatchesPolicySet drives a non-reactive daemon end to end
// and checks its decisions against the in-process PolicySet — the serving
// path and the experiment/verification path agree for every policy, not
// just the fast-path reactive one.
func TestPolicyServerMatchesPolicySet(t *testing.T) {
	for _, policy := range core.PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			_, c := newTestServer(t, Config{Shards: 4, Policy: policy})
			set, err := core.NewPolicySet(policy, testParams())
			if err != nil {
				t.Fatal(err)
			}
			var instr uint64
			for _, b := range streamBatches(synthEvents(6000, 17), 1200) {
				ds, err := c.IngestKind(context.Background(), "p", trace.KindMemdep, b)
				if err != nil {
					t.Fatal(err)
				}
				for j, ev := range b {
					instr += uint64(ev.Gap)
					v, st, dir, live := set.OnEvent(ev.Branch, ev.Taken, instr)
					want := Decision{Verdict: v, State: st, Dir: dir, Live: live}
					if ds[j] != want {
						t.Fatalf("event %d: daemon %v, policy set %v", j, ds[j], want)
					}
				}
			}
		})
	}
}

// TestServesKindConfig pins the -kinds restriction surface: a configured
// subset is what /v1/info advertises and what ServesKind answers.
func TestServesKindConfig(t *testing.T) {
	s := New(Config{Params: testParams(), Shards: 2, Kinds: []trace.Kind{trace.KindBranch, trace.KindTLSpec}})
	for _, tc := range []struct {
		kind trace.Kind
		want bool
	}{
		{trace.KindBranch, true},
		{trace.KindValue, false},
		{trace.KindMemdep, false},
		{trace.KindTLSpec, true},
	} {
		if got := s.ServesKind(tc.kind); got != tc.want {
			t.Errorf("ServesKind(%s) = %v, want %v", tc.kind, got, tc.want)
		}
	}
	if names := s.KindNames(); !reflect.DeepEqual(names, []string{"branch", "tlspec"}) {
		t.Fatalf("KindNames() = %v", names)
	}
	if s.ServesKind(trace.Kind(99)) {
		t.Fatal("an invalid kind reports as served")
	}
	if fmt.Sprint(New(Config{Params: testParams(), Shards: 2}).KindNames()) != fmt.Sprint(trace.KindNames()) {
		t.Fatal("an empty Kinds config does not default to serving every kind")
	}
}
