package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
)

// Client is a Go client for the reactived HTTP API. Construct it with
// Connect and functional options:
//
//	c := server.Connect("http://127.0.0.1:8344",
//	    server.WithTimeout(10*time.Second),
//	    server.WithRetry(3, 100*time.Millisecond))
//
// Every method takes a context.Context governing that call's lifetime. The
// client is safe for concurrent use by multiple goroutines, but batches for
// the same program should be sent by one goroutine at a time (the server
// serializes them anyway; interleaving would make the decision order
// nondeterministic).
type Client struct {
	base string
	// unixPath is set when base was a unix:// target: HTTP requests dial
	// the socket file through a custom transport, and OpenStream upgrades
	// over the same socket.
	unixPath string
	hc       *http.Client
	retries int           // extra attempts after the first, transport errors only
	backoff time.Duration // sleep between attempts, doubled each retry
	// paramsPin, when non-empty, is appended as the params= query pin on
	// every ingest request and checked against /v1/info by VerifyParams.
	paramsPin string
	// policyPin, when non-empty, is appended as the policy= query pin on
	// every /v2 request (the /v1 compatibility endpoints have no policy
	// parameter; the params pin's ParamsPolicyHash digest covers them).
	policyPin string
	// tracer, when non-nil, samples ingest batches into client-side spans
	// (client_encode, client_network) and propagates the trace ID to the
	// server via the X-Reactive-Trace header.
	tracer *obs.Tracer
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient uses hc for every request instead of the default client
// (60s timeout). Later options may still adjust it (WithTimeout copies).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithTimeout bounds every request with d. It applies on top of
// WithHTTPClient by copying the supplied client rather than mutating it.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// WithRetry retries idempotent requests (decide, healthz, metrics, info) up
// to n extra times on transport errors, sleeping backoff before the first
// retry and doubling it each attempt. Ingest and snapshot are never retried:
// the events (or the snapshot) may have landed even when the response was
// lost, and replaying them would double-apply.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.retries = n
		c.backoff = backoff
	}
}

// WithParamsHash pins every ingest request to the given controller-parameter
// hash (see ParamsHash): the daemon rejects the batch with a typed
// ErrParamsMismatch error (HTTP 409) instead of computing silently diverging
// decisions.
func WithParamsHash(h uint64) Option {
	return func(c *Client) { c.paramsPin = formatParamsHash(h) }
}

// WithPolicy pins every /v2 request to the named decision policy: a daemon
// serving a different one rejects the request up front — with an error
// satisfying errors.Is(err, ErrUnknownPolicy) when the name is not
// registered there at all, ErrParamsMismatch when it is registered but not
// the policy being served. The /v1 kind=branch compatibility endpoints carry
// no policy parameter; pin them through WithParamsHash with a
// ParamsPolicyHash digest, which covers the policy.
func WithPolicy(name string) Option {
	return func(c *Client) { c.policyPin = name }
}

// WithTracer samples this client's ingest batches into t: a sampled batch
// records client_encode and client_network spans and ships its trace ID to
// the server (X-Reactive-Trace header on POST, trace context on stream
// frames), so the server's batch spans join the client's trace.
func WithTracer(t *obs.Tracer) Option {
	return func(c *Client) { c.tracer = t }
}

// Connect returns a client for the daemon at base: "http://127.0.0.1:8344"
// for TCP, or "unix:///path/to.sock" for a daemon whose HTTP API listens on
// a unix-domain socket — every request (and an OpenStream upgrade) then
// dials the socket file instead of a TCP address. It performs no I/O — the
// name records intent, not a dial; the first request finds out whether the
// daemon is there.
func Connect(base string, opts ...Option) *Client {
	c := &Client{
		base: base,
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
	if path, ok := cutUnixTarget(base); ok {
		// HTTP plumbing needs a URL with a host; the socket path does the
		// real addressing through the transport's dialer.
		c.unixPath = path
		c.base = "http://unix"
		var d net.Dialer
		c.hc = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
					return d.DialContext(ctx, "unix", path)
				},
			},
		}
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewClient returns a client for the daemon at base. A nil hc uses the
// default client with a 60s timeout.
//
// Deprecated: use Connect with WithHTTPClient; NewClient remains for callers
// of the pre-options API.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		return Connect(base)
	}
	return Connect(base, WithHTTPClient(hc))
}

// get performs one GET round trip with the retry policy (GETs here are all
// idempotent reads).
func (c *Client) get(ctx context.Context, op, url string) (*http.Response, error) {
	var lastErr error
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, fmt.Errorf("server: %s: %w", op, err)
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt == c.retries || ctx.Err() != nil {
			return nil, fmt.Errorf("server: %s: %w", op, lastErr)
		}
		if backoff > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("server: %s: %w", op, ctx.Err())
			}
			backoff *= 2
		}
	}
}

// getJSON performs a GET and decodes a JSON body into out.
func (c *Client) getJSON(ctx context.Context, op, url string, out any) error {
	resp, err := c.get(ctx, op, url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(op, resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// IngestResult is the per-frame outcome of one ingest batch.
type IngestResult struct {
	// Decisions holds one entry per event of an applied frame; nil for a
	// rejected frame.
	Decisions []Decision
	// Err is the server's rejection diagnostic for a rejected frame.
	Err error
}

// BatchTruncatedError reports a batch whose framing the server lost
// mid-body: the first Applied of Sent frames were applied to the table and
// their results are returned alongside this error; the remainder of the
// batch was discarded. The per-program cursor has advanced past the applied
// frames, so a client that re-sends the whole batch would double-apply the
// prefix — resume from frame Applied instead.
type BatchTruncatedError struct {
	// Applied counts the frame results the server returned (applied or
	// individually rejected) before the framing was lost.
	Applied int
	// Sent counts the frames the client put in the request.
	Sent int
	// Msg is the server's framing diagnostic.
	Msg string
}

func (e *BatchTruncatedError) Error() string {
	return fmt.Sprintf("server: batch truncated: applied %d of %d frames: %s", e.Applied, e.Sent, e.Msg)
}

// encodeBufPool recycles request-body buffers across Ingest calls so the
// steady-state encode path does not allocate per batch.
var encodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// IngestTiming partitions one ingest round trip into client-side phases,
// for callers (cmd/reactiveload) that report where batch latency goes.
type IngestTiming struct {
	// Encode is the time spent building the frame bytes.
	Encode time.Duration
	// Network is the HTTP round trip, including reading the full response
	// body (so it covers the server's decode/apply/respond work too).
	Network time.Duration
	// Decode is the time spent parsing decisions out of the response.
	Decode time.Duration
}

// Ingest sends one batch of events as a single frame and returns the
// per-event decisions. A rejected frame (corrupt on the wire) surfaces as an
// error.
//
// Ingest is the kind=branch compatibility surface: it always posts to
// /v1/ingest, so it works against every daemon generation. Kind-aware
// callers use IngestKind.
func (c *Client) Ingest(ctx context.Context, program string, events []trace.Event) ([]Decision, error) {
	ds, _, err := c.IngestTimed(ctx, program, events)
	return ds, err
}

// IngestKind is Ingest for an explicit speculation kind. kind=branch posts to
// /v1/ingest — byte-identical to Ingest, so it works against pre-kind
// daemons; other kinds post to /v2/ingest, where a daemon that does not
// recognize or serve the kind answers with an error satisfying
// errors.Is(err, ErrUnsupportedKind).
func (c *Client) IngestKind(ctx context.Context, program string, kind trace.Kind, events []trace.Event) ([]Decision, error) {
	results, _, err := c.ingestFramesTimed(ctx, c.ingestURLKind(program, kind), program, [][]trace.Event{events})
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, fmt.Errorf("server: %d frame results for 1 frame", len(results))
	}
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	return results[0].Decisions, nil
}

// IngestTimed is Ingest with a per-phase latency breakdown.
func (c *Client) IngestTimed(ctx context.Context, program string, events []trace.Event) ([]Decision, IngestTiming, error) {
	results, tm, err := c.IngestFramesTimed(ctx, program, [][]trace.Event{events})
	if err != nil {
		return nil, tm, err
	}
	if len(results) != 1 {
		return nil, tm, fmt.Errorf("server: %d frame results for 1 frame", len(results))
	}
	if results[0].Err != nil {
		return nil, tm, results[0].Err
	}
	return results[0].Decisions, tm, nil
}

// IngestFrames sends several frames in one batch request. The returned slice
// has one entry per frame, in order; frames the server rejected carry an Err
// instead of decisions. The error return covers transport- and batch-level
// failures, with one partial-success case: a *BatchTruncatedError is
// returned alongside the results for the frames the server did apply before
// its framing was lost ("applied N of M frames").
func (c *Client) IngestFrames(ctx context.Context, program string, frames [][]trace.Event) ([]IngestResult, error) {
	results, _, err := c.IngestFramesTimed(ctx, program, frames)
	return results, err
}

// ingestURL builds the ingest endpoint URL for program, including the
// params pin when the client carries one.
func (c *Client) ingestURL(program string) string {
	u := c.base + "/v1/ingest?program=" + url.QueryEscape(program)
	if c.paramsPin != "" {
		u += "&params=" + c.paramsPin
	}
	return u
}

// ingestURLKind is ingestURL routed by kind: branch stays on the /v1
// compatibility endpoint, every other kind goes to /v2/ingest with its kind
// tag.
func (c *Client) ingestURLKind(program string, kind trace.Kind) string {
	if kind == trace.KindBranch {
		return c.ingestURL(program)
	}
	u := c.base + "/v2/ingest?program=" + url.QueryEscape(program) + "&kind=" + kind.String()
	if c.paramsPin != "" {
		u += "&params=" + c.paramsPin
	}
	if c.policyPin != "" {
		u += "&policy=" + url.QueryEscape(c.policyPin)
	}
	return u
}

// IngestFramesTimed is IngestFrames with a per-phase latency breakdown.
func (c *Client) IngestFramesTimed(ctx context.Context, program string, frames [][]trace.Event) ([]IngestResult, IngestTiming, error) {
	return c.ingestFramesTimed(ctx, c.ingestURL(program), program, frames)
}

// IngestKindTimed is IngestKind with a per-phase latency breakdown.
func (c *Client) IngestKindTimed(ctx context.Context, program string, kind trace.Kind, events []trace.Event) ([]Decision, IngestTiming, error) {
	results, tm, err := c.ingestFramesTimed(ctx, c.ingestURLKind(program, kind), program, [][]trace.Event{events})
	if err != nil {
		return nil, tm, err
	}
	if len(results) != 1 {
		return nil, tm, fmt.Errorf("server: %d frame results for 1 frame", len(results))
	}
	if results[0].Err != nil {
		return nil, tm, results[0].Err
	}
	return results[0].Decisions, tm, nil
}

// IngestFramesKindTimed is IngestFramesTimed routed by kind: branch posts to
// /v1/ingest (byte-identical to IngestFramesTimed, so it works against
// pre-kind daemons), every other kind to /v2/ingest.
func (c *Client) IngestFramesKindTimed(ctx context.Context, program string, kind trace.Kind, frames [][]trace.Event) ([]IngestResult, IngestTiming, error) {
	return c.ingestFramesTimed(ctx, c.ingestURLKind(program, kind), program, frames)
}

// ingestFramesTimed posts frames to an already-built ingest URL (v1 or v2 —
// the body and response bytes are identical on both).
func (c *Client) ingestFramesTimed(ctx context.Context, ingestURL, program string, frames [][]trace.Event) ([]IngestResult, IngestTiming, error) {
	var tm IngestTiming
	traceID := c.tracer.SampleBatch()
	nEvents := 0
	encodeStart := time.Now()
	bufp := encodeBufPool.Get().(*[]byte)
	defer func() { encodeBufPool.Put(bufp) }()
	body := (*bufp)[:0]
	for _, events := range frames {
		body = trace.AppendFrame(body, events)
		nEvents += len(events)
	}
	*bufp = body
	tm.Encode = time.Since(encodeStart)
	c.tracer.RecordStage(traceID, 0, "client_encode", program, nEvents, 0, encodeStart, tm.Encode)

	netStart := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ingestURL, bytes.NewReader(body))
	if err != nil {
		return nil, tm, fmt.Errorf("server: ingest: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if traceID != 0 {
		req.Header.Set(TraceHeader, strconv.FormatUint(traceID, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, tm, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tm.Network = time.Since(netStart)
		return nil, tm, httpError("ingest", resp)
	}
	raw, err := io.ReadAll(resp.Body)
	tm.Network = time.Since(netStart)
	c.tracer.RecordStage(traceID, 0, "client_network", program, nEvents, 0, netStart, tm.Network)
	if err != nil {
		return nil, tm, fmt.Errorf("server: reading ingest response: %w", err)
	}

	decodeStart := time.Now()
	results, truncMsg, err := parseIngestResponse(bytes.NewReader(raw))
	tm.Decode = time.Since(decodeStart)
	if err != nil {
		return nil, tm, err
	}
	if truncMsg == "" && len(results) != len(frames) {
		return nil, tm, fmt.Errorf("server: %d frame results for %d frames", len(results), len(frames))
	}
	if len(results) > len(frames) {
		return nil, tm, fmt.Errorf("server: %d frame results for %d frames", len(results), len(frames))
	}
	for i, r := range results {
		if r.Err == nil && len(r.Decisions) != len(frames[i]) {
			return nil, tm, fmt.Errorf("server: frame %d: %d decisions for %d events",
				i, len(r.Decisions), len(frames[i]))
		}
	}
	if truncMsg != "" {
		return results, tm, &BatchTruncatedError{Applied: len(results), Sent: len(frames), Msg: truncMsg}
	}
	return results, tm, nil
}

// parseIngestResponse decodes the binary ingest response body. A trailing
// truncation record (status 2) is returned as a non-empty truncated message
// alongside the frame results that preceded it.
func parseIngestResponse(body io.Reader) (results []IngestResult, truncated string, err error) {
	br := bufio.NewReader(body)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, "", fmt.Errorf("server: reading response magic: %w", err)
	}
	if magic != respMagic {
		return nil, "", fmt.Errorf("server: bad response magic %q", magic[:])
	}
	frames, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, "", fmt.Errorf("server: reading frame count: %w", err)
	}
	results = make([]IngestResult, 0, frames)
	for i := uint64(0); i < frames; i++ {
		status, err := br.ReadByte()
		if err != nil {
			return nil, "", fmt.Errorf("server: reading frame %d status: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, "", fmt.Errorf("server: reading frame %d length: %w", i, err)
		}
		switch status {
		case ingestApplied:
			decisions := make([]Decision, n)
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, "", fmt.Errorf("server: reading frame %d decisions: %w", i, err)
			}
			for j, b := range buf {
				if decisions[j], err = DecodeDecision(b); err != nil {
					return nil, "", fmt.Errorf("server: frame %d event %d: %w", i, j, err)
				}
			}
			results = append(results, IngestResult{Decisions: decisions})
		case ingestRejected:
			msg := make([]byte, n)
			if _, err := io.ReadFull(br, msg); err != nil {
				return nil, "", fmt.Errorf("server: reading frame %d error: %w", i, err)
			}
			results = append(results, IngestResult{Err: fmt.Errorf("server: frame rejected: %s", msg)})
		default:
			return nil, "", fmt.Errorf("server: unknown frame status %d", status)
		}
	}
	// A truncation record may follow the per-frame results.
	status, err := br.ReadByte()
	if err == io.EOF {
		return results, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("server: reading truncation record: %w", err)
	}
	if status != ingestTruncated {
		return nil, "", fmt.Errorf("server: unexpected trailing status %d", status)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, "", fmt.Errorf("server: reading truncation length: %w", err)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return nil, "", fmt.Errorf("server: reading truncation message: %w", err)
	}
	return results, string(msg), nil
}

// Decide queries a branch's current classification.
//
// Decide is the kind=branch compatibility surface (it always queries
// /v1/decide); kind-aware callers use DecideKind.
func (c *Client) Decide(ctx context.Context, program string, id trace.BranchID) (DecideResponse, error) {
	var out DecideResponse
	u := c.base + "/v1/decide?program=" + url.QueryEscape(program) +
		"&branch=" + strconv.FormatUint(uint64(id), 10)
	return out, c.getJSON(ctx, "decide", u, &out)
}

// DecideKind queries a unit's current classification for an explicit
// speculation kind. kind=branch queries the /v1 compatibility endpoint (so
// it works against pre-kind daemons) and adapts the answer; other kinds
// query /v2/decide.
func (c *Client) DecideKind(ctx context.Context, program string, kind trace.Kind, id trace.BranchID) (DecideV2Response, error) {
	if kind == trace.KindBranch {
		v1, err := c.Decide(ctx, program, id)
		if err != nil {
			return DecideV2Response{}, err
		}
		return DecideV2Response{
			Program: v1.Program,
			Kind:    trace.KindBranch.String(),
			ID:      v1.Branch,
			State:   v1.State,
			Dir:     v1.Direction == "taken",
			Live:    v1.Live,
		}, nil
	}
	var out DecideV2Response
	u := c.base + "/v2/decide?program=" + url.QueryEscape(program) +
		"&kind=" + kind.String() + "&id=" + strconv.FormatUint(uint64(id), 10)
	if c.policyPin != "" {
		u += "&policy=" + url.QueryEscape(c.policyPin)
	}
	return out, c.getJSON(ctx, "decide", u, &out)
}

// Healthz fetches the daemon's health summary.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	return out, c.getJSON(ctx, "healthz", c.base+"/healthz", &out)
}

// Info fetches the daemon's API/protocol identity (GET /v1/info).
func (c *Client) Info(ctx context.Context) (Info, error) {
	var out Info
	return out, c.getJSON(ctx, "info", c.base+"/v1/info", &out)
}

// VerifyParams checks the daemon's controller-parameter hash against params
// and fails with a typed ErrParamsMismatch error on skew, so callers that
// mirror decisions locally (reactiveload -verify) reject a misconfigured
// pairing up front instead of diverging mid-run.
func (c *Client) VerifyParams(ctx context.Context, params uint64) (Info, error) {
	info, err := c.Info(ctx)
	if err != nil {
		return info, err
	}
	if info.ParamsHash != formatParamsHash(params) {
		return info, fmt.Errorf("%w: client hash %s, daemon hash %s (differing -param-scale?)",
			ErrParamsMismatch, formatParamsHash(params), info.ParamsHash)
	}
	return info, nil
}

// Snapshot asks the daemon to persist a snapshot now.
func (c *Client) Snapshot(ctx context.Context) (SnapshotResult, error) {
	var out SnapshotResult
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/snapshot", nil)
	if err != nil {
		return out, fmt.Errorf("server: snapshot: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError("snapshot", resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Promote asks a replica daemon to seal replication and go writable
// (POST /v1/promote). A daemon that is not a replica — including one already
// promoted — answers with an error satisfying errors.Is(err, ErrNotReplica).
func (c *Client) Promote(ctx context.Context) (PromoteResult, error) {
	var out PromoteResult
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/promote", nil)
	if err != nil {
		return out, fmt.Errorf("server: promote: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError("promote", resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Cursor fetches one program's ingest position (GET /v1/cursor) — after a
// failover, Events tells the client how many of its events the promoted
// daemon holds, so it can resume sending from exactly there.
func (c *Client) Cursor(ctx context.Context, program string) (CursorResponse, error) {
	var out CursorResponse
	u := c.base + "/v1/cursor?program=" + url.QueryEscape(program)
	return out, c.getJSON(ctx, "cursor", u, &out)
}

// Metrics fetches the raw /metrics Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "metrics", c.base+"/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpError("metrics", resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// MetricsText fetches the raw /metrics exposition.
//
// Deprecated: use Metrics; MetricsText remains for callers of the
// pre-context API.
func (c *Client) MetricsText(ctx context.Context) (string, error) { return c.Metrics(ctx) }

// httpError decodes a non-200 response into an *APIError. Responses carrying
// the unified JSON envelope keep their machine-readable code (and map onto
// the ErrDraining / ErrParamsMismatch sentinels via APIError.Is); anything
// else is preserved as an "unknown"-code error with the raw body.
func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		return &APIError{Op: op, Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	return &APIError{Op: op, Status: resp.StatusCode, Code: "unknown",
		Message: string(bytes.TrimSpace(body))}
}
