package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"reactivespec/internal/trace"
)

// Client is a Go client for the reactived HTTP API. It is safe for
// concurrent use by multiple goroutines, but batches for the same program
// should be sent by one goroutine at a time (the server serializes them
// anyway; interleaving would make the decision order nondeterministic).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8344"). A nil hc uses a dedicated client with a 60s
// timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{base: base, hc: hc}
}

// IngestResult is the per-frame outcome of one ingest batch.
type IngestResult struct {
	// Decisions holds one entry per event of an applied frame; nil for a
	// rejected frame.
	Decisions []Decision
	// Err is the server's rejection diagnostic for a rejected frame.
	Err error
}

// BatchTruncatedError reports a batch whose framing the server lost
// mid-body: the first Applied of Sent frames were applied to the table and
// their results are returned alongside this error; the remainder of the
// batch was discarded. The per-program cursor has advanced past the applied
// frames, so a client that re-sends the whole batch would double-apply the
// prefix — resume from frame Applied instead.
type BatchTruncatedError struct {
	// Applied counts the frame results the server returned (applied or
	// individually rejected) before the framing was lost.
	Applied int
	// Sent counts the frames the client put in the request.
	Sent int
	// Msg is the server's framing diagnostic.
	Msg string
}

func (e *BatchTruncatedError) Error() string {
	return fmt.Sprintf("server: batch truncated: applied %d of %d frames: %s", e.Applied, e.Sent, e.Msg)
}

// encodeBufPool recycles request-body buffers across Ingest calls so the
// steady-state encode path does not allocate per batch.
var encodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// IngestTiming partitions one ingest round trip into client-side phases,
// for callers (cmd/reactiveload) that report where batch latency goes.
type IngestTiming struct {
	// Encode is the time spent building the frame bytes.
	Encode time.Duration
	// Network is the HTTP round trip, including reading the full response
	// body (so it covers the server's decode/apply/respond work too).
	Network time.Duration
	// Decode is the time spent parsing decisions out of the response.
	Decode time.Duration
}

// Ingest sends one batch of events as a single frame and returns the
// per-event decisions. A rejected frame (corrupt on the wire) surfaces as an
// error.
func (c *Client) Ingest(program string, events []trace.Event) ([]Decision, error) {
	ds, _, err := c.IngestTimed(program, events)
	return ds, err
}

// IngestTimed is Ingest with a per-phase latency breakdown.
func (c *Client) IngestTimed(program string, events []trace.Event) ([]Decision, IngestTiming, error) {
	results, tm, err := c.IngestFramesTimed(program, [][]trace.Event{events})
	if err != nil {
		return nil, tm, err
	}
	if len(results) != 1 {
		return nil, tm, fmt.Errorf("server: %d frame results for 1 frame", len(results))
	}
	if results[0].Err != nil {
		return nil, tm, results[0].Err
	}
	return results[0].Decisions, tm, nil
}

// IngestFrames sends several frames in one batch request. The returned slice
// has one entry per frame, in order; frames the server rejected carry an Err
// instead of decisions. The error return covers transport- and batch-level
// failures, with one partial-success case: a *BatchTruncatedError is
// returned alongside the results for the frames the server did apply before
// its framing was lost ("applied N of M frames").
func (c *Client) IngestFrames(program string, frames [][]trace.Event) ([]IngestResult, error) {
	results, _, err := c.IngestFramesTimed(program, frames)
	return results, err
}

// IngestFramesTimed is IngestFrames with a per-phase latency breakdown.
func (c *Client) IngestFramesTimed(program string, frames [][]trace.Event) ([]IngestResult, IngestTiming, error) {
	var tm IngestTiming
	encodeStart := time.Now()
	bufp := encodeBufPool.Get().(*[]byte)
	defer func() { encodeBufPool.Put(bufp) }()
	body := (*bufp)[:0]
	for _, events := range frames {
		body = trace.AppendFrame(body, events)
	}
	*bufp = body
	tm.Encode = time.Since(encodeStart)

	netStart := time.Now()
	resp, err := c.hc.Post(c.base+"/v1/ingest?program="+url.QueryEscape(program),
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, tm, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tm.Network = time.Since(netStart)
		return nil, tm, httpError("ingest", resp)
	}
	raw, err := io.ReadAll(resp.Body)
	tm.Network = time.Since(netStart)
	if err != nil {
		return nil, tm, fmt.Errorf("server: reading ingest response: %w", err)
	}

	decodeStart := time.Now()
	results, truncMsg, err := parseIngestResponse(bytes.NewReader(raw))
	tm.Decode = time.Since(decodeStart)
	if err != nil {
		return nil, tm, err
	}
	if truncMsg == "" && len(results) != len(frames) {
		return nil, tm, fmt.Errorf("server: %d frame results for %d frames", len(results), len(frames))
	}
	if len(results) > len(frames) {
		return nil, tm, fmt.Errorf("server: %d frame results for %d frames", len(results), len(frames))
	}
	for i, r := range results {
		if r.Err == nil && len(r.Decisions) != len(frames[i]) {
			return nil, tm, fmt.Errorf("server: frame %d: %d decisions for %d events",
				i, len(r.Decisions), len(frames[i]))
		}
	}
	if truncMsg != "" {
		return results, tm, &BatchTruncatedError{Applied: len(results), Sent: len(frames), Msg: truncMsg}
	}
	return results, tm, nil
}

// parseIngestResponse decodes the binary ingest response body. A trailing
// truncation record (status 2) is returned as a non-empty truncated message
// alongside the frame results that preceded it.
func parseIngestResponse(body io.Reader) (results []IngestResult, truncated string, err error) {
	br := bufio.NewReader(body)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, "", fmt.Errorf("server: reading response magic: %w", err)
	}
	if magic != respMagic {
		return nil, "", fmt.Errorf("server: bad response magic %q", magic[:])
	}
	frames, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, "", fmt.Errorf("server: reading frame count: %w", err)
	}
	results = make([]IngestResult, 0, frames)
	for i := uint64(0); i < frames; i++ {
		status, err := br.ReadByte()
		if err != nil {
			return nil, "", fmt.Errorf("server: reading frame %d status: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, "", fmt.Errorf("server: reading frame %d length: %w", i, err)
		}
		switch status {
		case ingestApplied:
			decisions := make([]Decision, n)
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, "", fmt.Errorf("server: reading frame %d decisions: %w", i, err)
			}
			for j, b := range buf {
				if decisions[j], err = DecodeDecision(b); err != nil {
					return nil, "", fmt.Errorf("server: frame %d event %d: %w", i, j, err)
				}
			}
			results = append(results, IngestResult{Decisions: decisions})
		case ingestRejected:
			msg := make([]byte, n)
			if _, err := io.ReadFull(br, msg); err != nil {
				return nil, "", fmt.Errorf("server: reading frame %d error: %w", i, err)
			}
			results = append(results, IngestResult{Err: fmt.Errorf("server: frame rejected: %s", msg)})
		default:
			return nil, "", fmt.Errorf("server: unknown frame status %d", status)
		}
	}
	// A truncation record may follow the per-frame results.
	status, err := br.ReadByte()
	if err == io.EOF {
		return results, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("server: reading truncation record: %w", err)
	}
	if status != ingestTruncated {
		return nil, "", fmt.Errorf("server: unexpected trailing status %d", status)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, "", fmt.Errorf("server: reading truncation length: %w", err)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return nil, "", fmt.Errorf("server: reading truncation message: %w", err)
	}
	return results, string(msg), nil
}

// Decide queries a branch's current classification.
func (c *Client) Decide(program string, id trace.BranchID) (DecideResponse, error) {
	var out DecideResponse
	u := c.base + "/v1/decide?program=" + url.QueryEscape(program) +
		"&branch=" + strconv.FormatUint(uint64(id), 10)
	resp, err := c.hc.Get(u)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError("decide", resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Healthz fetches the daemon's health summary.
func (c *Client) Healthz() (Health, error) {
	var out Health
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError("healthz", resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Snapshot asks the daemon to persist a snapshot now.
func (c *Client) Snapshot() (SnapshotResult, error) {
	var out SnapshotResult
	resp, err := c.hc.Post(c.base+"/v1/snapshot", "", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, httpError("snapshot", resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// MetricsText fetches the raw /metrics exposition.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpError("metrics", resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// httpError summarizes a non-200 response, including its (truncated) body.
func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("server: %s: %s: %s", op, resp.Status, bytes.TrimSpace(body))
}
