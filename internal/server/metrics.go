package server

import (
	"strconv"

	"reactivespec/internal/core"
	"reactivespec/internal/obs"
	"reactivespec/internal/wal"
)

// ShardMetrics are one shard's lifetime counters. Counters reset on process
// restart (they describe this serving session, not the snapshotted
// controller state).
type ShardMetrics struct {
	// Events and Instrs count the dynamic branch instances and
	// instructions ingested into this shard.
	Events uint64
	Instrs uint64
	// Correct, Misspec and NotSpec partition Events by verdict.
	Correct uint64
	Misspec uint64
	NotSpec uint64
	// Transitions counts classification transitions into each state.
	Transitions [4]uint64
	// Entries is the number of (program, branch) keys resident.
	Entries uint64
}

// MisspecRate returns misspeculations as a fraction of ingested events.
func (m ShardMetrics) MisspecRate() float64 {
	if m.Events == 0 {
		return 0
	}
	return float64(m.Misspec) / float64(m.Events)
}

// Add folds o into m (for whole-table totals).
func (m *ShardMetrics) Add(o ShardMetrics) {
	m.Events += o.Events
	m.Instrs += o.Instrs
	m.Correct += o.Correct
	m.Misspec += o.Misspec
	m.NotSpec += o.NotSpec
	for i := range m.Transitions {
		m.Transitions[i] += o.Transitions[i]
	}
	m.Entries += o.Entries
}

// batchLatencyQuantiles are the quantiles /metrics exposes for every
// latency summary.
var batchLatencyQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// serverInstruments are the server's direct registry instruments: cheap
// atomic counters on the ingest path plus the latency and batch-size
// summaries. The per-shard counters live under the shard locks instead and
// are exported through a collector (registerTableCollector) so the ingest
// hot path pays no extra synchronization for them.
type serverInstruments struct {
	batches          *obs.Counter
	rejectedFrames   *obs.Counter
	truncatedBatches *obs.Counter
	responseErrors   *obs.Counter
	snapshots        *obs.Counter
	streamSessions   *obs.Counter
	streamFrames     *obs.Counter

	walAppendErrors    *obs.Counter
	walReplayedRecords *obs.Counter
	walReplayedEvents  *obs.Counter

	replicatedRecords *obs.Counter
	replicatedEvents  *obs.Counter
	promotions        *obs.Counter

	batchLat    *obs.Histogram
	decodeLat   *obs.Histogram
	applyLat    *obs.Histogram
	respondLat  *obs.Histogram
	batchEvents *obs.Histogram
	walFsyncLat *obs.Histogram
}

// newServerInstruments registers the server's direct metrics, all under the
// uniform reactived_ prefix with # HELP/# TYPE metadata supplied by the
// registry's exposition writer.
func newServerInstruments(reg *obs.Registry) serverInstruments {
	lat := func(name, help string) *obs.Histogram {
		return reg.NewHistogram(name, help, 1e-6, 60, 30, batchLatencyQuantiles...)
	}
	return serverInstruments{
		batches:        reg.NewCounter("reactived_batches_total", "Ingest batches processed."),
		rejectedFrames: reg.NewCounter("reactived_frames_rejected_total", "Corrupt frames rejected per-batch."),
		truncatedBatches: reg.NewCounter("reactived_batches_truncated_total",
			"Ingest batches whose framing was lost mid-body (decoded prefix applied)."),
		responseErrors: reg.NewCounter("reactived_ingest_response_errors_total",
			"Ingest responses that failed to write back to the client."),
		snapshots: reg.NewCounter("reactived_snapshots_total", "Snapshots written."),
		streamSessions: reg.NewCounter("reactived_stream_sessions_total",
			"Streaming ingest sessions accepted."),
		streamFrames: reg.NewCounter("reactived_stream_frames_total",
			"Event frames received over streaming sessions."),
		walAppendErrors: reg.NewCounter("reactived_wal_append_errors_total",
			"Ingest batches rejected because the write-ahead log could not append them."),
		walReplayedRecords: reg.NewCounter("reactived_wal_replayed_records_total",
			"WAL records replayed during recovery."),
		walReplayedEvents: reg.NewCounter("reactived_wal_replayed_events_total",
			"Events replayed from the WAL during recovery."),
		replicatedRecords: reg.NewCounter("reactived_replication_applied_records_total",
			"Records applied from a primary's shipped WAL (replica mode)."),
		replicatedEvents: reg.NewCounter("reactived_replication_applied_events_total",
			"Events applied from a primary's shipped WAL (replica mode)."),
		promotions: reg.NewCounter("reactived_replication_promotions_total",
			"Replica-to-primary promotions."),
		batchLat:   lat("reactived_batch_latency_seconds", "Ingest batch handling latency."),
		decodeLat:  lat("reactived_ingest_decode_seconds", "Per-batch time decoding trace frames."),
		applyLat:   lat("reactived_ingest_apply_seconds", "Per-batch time applying events to the controller table."),
		respondLat: lat("reactived_ingest_respond_seconds", "Per-batch time encoding and writing the decision response."),
		batchEvents: reg.NewHistogram("reactived_ingest_batch_events",
			"Events per ingest batch.", 1, 1e8, 10, batchLatencyQuantiles...),
		walFsyncLat: lat("reactived_wal_fsync_seconds", "WAL fsync latency."),
	}
}

// registerWALCollector exposes the write-ahead log's internal counters —
// which live behind the log's own mutex, not in registry instruments — as
// computed families.
func registerWALCollector(reg *obs.Registry, l *wal.Log) {
	reg.RegisterCollector("reactived_wal", func(e *obs.Emitter) {
		st := l.Stats()
		e.Family("reactived_wal_appended_records_total", "counter", "Records appended to the WAL.")
		e.SampleUint(st.AppendedRecords)
		e.Family("reactived_wal_appended_bytes_total", "counter", "Bytes appended to the WAL.")
		e.SampleUint(st.AppendedBytes)
		e.Family("reactived_wal_fsyncs_total", "counter", "WAL segment fsyncs.")
		e.SampleUint(st.Fsyncs)
		e.Family("reactived_wal_segments", "gauge", "On-disk WAL segment files.")
		e.SampleUint(uint64(st.Segments))
		e.Family("reactived_wal_active_segment_bytes", "gauge", "Size of the WAL segment being appended to.")
		e.SampleUint(uint64(st.ActiveSegmentBytes))
		e.Family("reactived_wal_next_seq", "gauge", "Sequence number the next WAL record will get.")
		e.SampleUint(st.NextSeq)
		e.Family("reactived_wal_oldest_seq", "gauge", "Oldest retained WAL sequence number.")
		e.SampleUint(st.OldestSeq)
	})
}

// registerTableCollector exposes the sharded table's counters — which live
// under the shard locks, not in registry instruments — as computed families:
// per-shard events/instructions/verdicts/transitions/entries plus
// whole-table totals.
func registerTableCollector(reg *obs.Registry, t *Table) {
	reg.RegisterCollector("reactived_table", func(e *obs.Emitter) {
		shards := t.Metrics()

		perShard := func(name, help string, get func(ShardMetrics) uint64) {
			e.Family(name, "counter", help)
			for i, m := range shards {
				e.SampleUint(get(m), "shard", strconv.Itoa(i))
			}
		}
		perShard("reactived_events_total", "Dynamic branch instances ingested.",
			func(m ShardMetrics) uint64 { return m.Events })
		perShard("reactived_instructions_total", "Dynamic instructions ingested.",
			func(m ShardMetrics) uint64 { return m.Instrs })
		perShard("reactived_correct_total", "Correct speculations.",
			func(m ShardMetrics) uint64 { return m.Correct })
		perShard("reactived_misspec_total", "Misspeculations.",
			func(m ShardMetrics) uint64 { return m.Misspec })
		perShard("reactived_notspec_total", "Instances not covered by live speculation.",
			func(m ShardMetrics) uint64 { return m.NotSpec })

		e.Family("reactived_misspec_rate", "gauge", "Misspeculations per ingested event.")
		for i, m := range shards {
			e.Sample(m.MisspecRate(), "shard", strconv.Itoa(i))
		}

		e.Family("reactived_transitions_total", "counter", "Classification transitions into each state.")
		for i, m := range shards {
			for st, n := range m.Transitions {
				e.SampleUint(n, "shard", strconv.Itoa(i), "state", core.State(st).String())
			}
		}

		e.Family("reactived_entries", "gauge", "Resident (program, branch) controller entries.")
		for i, m := range shards {
			e.SampleUint(m.Entries, "shard", strconv.Itoa(i))
		}

		var total ShardMetrics
		for _, m := range shards {
			total.Add(m)
		}
		e.Family("reactived_table_events_total", "counter", "Events ingested across all shards.")
		e.SampleUint(total.Events)
		e.Family("reactived_table_misspec_rate", "gauge", "Misspeculations per event across all shards.")
		e.Sample(total.MisspecRate())
	})
}
