package server

import (
	"fmt"
	"io"
	"sort"

	"reactivespec/internal/core"
	"reactivespec/internal/stats"
)

// ShardMetrics are one shard's lifetime counters. Counters reset on process
// restart (they describe this serving session, not the snapshotted
// controller state).
type ShardMetrics struct {
	// Events and Instrs count the dynamic branch instances and
	// instructions ingested into this shard.
	Events uint64
	Instrs uint64
	// Correct, Misspec and NotSpec partition Events by verdict.
	Correct uint64
	Misspec uint64
	NotSpec uint64
	// Transitions counts classification transitions into each state.
	Transitions [4]uint64
	// Entries is the number of (program, branch) keys resident.
	Entries uint64
}

// MisspecRate returns misspeculations as a fraction of ingested events.
func (m ShardMetrics) MisspecRate() float64 {
	if m.Events == 0 {
		return 0
	}
	return float64(m.Misspec) / float64(m.Events)
}

// Add folds o into m (for whole-table totals).
func (m *ShardMetrics) Add(o ShardMetrics) {
	m.Events += o.Events
	m.Instrs += o.Instrs
	m.Correct += o.Correct
	m.Misspec += o.Misspec
	m.NotSpec += o.NotSpec
	for i := range m.Transitions {
		m.Transitions[i] += o.Transitions[i]
	}
	m.Entries += o.Entries
}

// batchLatencyQuantiles are the quantiles /metrics exposes.
var batchLatencyQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// writeMetrics renders the Prometheus text exposition: per-shard counters,
// whole-table totals, ingest counters, and the batch-latency quantiles.
func writeMetrics(w io.Writer, shards []ShardMetrics, ingest ingestMetrics, lat *stats.LogHist, uptimeSec float64) error {
	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	appendf("# HELP reactived_uptime_seconds Time since the daemon started.\n")
	appendf("# TYPE reactived_uptime_seconds gauge\n")
	appendf("reactived_uptime_seconds %g\n", uptimeSec)

	perShard := func(name, help string, get func(ShardMetrics) uint64) {
		appendf("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, m := range shards {
			appendf("%s{shard=\"%d\"} %d\n", name, i, get(m))
		}
	}
	perShard("reactived_events_total", "Dynamic branch instances ingested.",
		func(m ShardMetrics) uint64 { return m.Events })
	perShard("reactived_instructions_total", "Dynamic instructions ingested.",
		func(m ShardMetrics) uint64 { return m.Instrs })
	perShard("reactived_correct_total", "Correct speculations.",
		func(m ShardMetrics) uint64 { return m.Correct })
	perShard("reactived_misspec_total", "Misspeculations.",
		func(m ShardMetrics) uint64 { return m.Misspec })
	perShard("reactived_notspec_total", "Instances not covered by live speculation.",
		func(m ShardMetrics) uint64 { return m.NotSpec })

	appendf("# HELP reactived_misspec_rate Misspeculations per ingested event.\n")
	appendf("# TYPE reactived_misspec_rate gauge\n")
	for i, m := range shards {
		appendf("reactived_misspec_rate{shard=\"%d\"} %g\n", i, m.MisspecRate())
	}

	appendf("# HELP reactived_transitions_total Classification transitions into each state.\n")
	appendf("# TYPE reactived_transitions_total counter\n")
	for i, m := range shards {
		for st, n := range m.Transitions {
			appendf("reactived_transitions_total{shard=\"%d\",state=%q} %d\n",
				i, core.State(st).String(), n)
		}
	}

	appendf("# HELP reactived_entries Resident (program, branch) controller entries.\n")
	appendf("# TYPE reactived_entries gauge\n")
	for i, m := range shards {
		appendf("reactived_entries{shard=\"%d\"} %d\n", i, m.Entries)
	}

	var total ShardMetrics
	for _, m := range shards {
		total.Add(m)
	}
	appendf("# HELP reactived_table_events_total Events ingested across all shards.\n")
	appendf("# TYPE reactived_table_events_total counter\n")
	appendf("reactived_table_events_total %d\n", total.Events)
	appendf("# HELP reactived_table_misspec_rate Misspeculations per event across all shards.\n")
	appendf("# TYPE reactived_table_misspec_rate gauge\n")
	appendf("reactived_table_misspec_rate %g\n", total.MisspecRate())

	appendf("# HELP reactived_batches_total Ingest batches processed.\n")
	appendf("# TYPE reactived_batches_total counter\n")
	appendf("reactived_batches_total %d\n", ingest.Batches)
	appendf("# HELP reactived_frames_rejected_total Corrupt frames rejected per-batch.\n")
	appendf("# TYPE reactived_frames_rejected_total counter\n")
	appendf("reactived_frames_rejected_total %d\n", ingest.RejectedFrames)
	appendf("# HELP reactived_snapshots_total Snapshots written.\n")
	appendf("# TYPE reactived_snapshots_total counter\n")
	appendf("reactived_snapshots_total %d\n", ingest.Snapshots)

	appendf("# HELP reactived_batch_latency_seconds Ingest batch handling latency.\n")
	appendf("# TYPE reactived_batch_latency_seconds summary\n")
	qs := append([]float64(nil), batchLatencyQuantiles...)
	sort.Float64s(qs)
	for _, q := range qs {
		appendf("reactived_batch_latency_seconds{quantile=\"%g\"} %g\n", q, lat.Quantile(q))
	}
	appendf("reactived_batch_latency_seconds_count %d\n", lat.Total())

	_, err := w.Write(b)
	return err
}

// ingestMetrics are the server-level (non-shard) ingest counters.
type ingestMetrics struct {
	Batches        uint64
	RejectedFrames uint64
	Snapshots      uint64
}
