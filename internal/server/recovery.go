package server

import (
	"fmt"
	"io"

	"reactivespec/internal/wal"
)

// RecoveryResult summarizes what Recover rebuilt.
type RecoveryResult struct {
	// SnapshotRestored reports whether a snapshot was loaded.
	SnapshotRestored bool
	// WALSeq is the replay anchor: the restored snapshot's WAL sequence
	// number (0 when starting fresh).
	WALSeq uint64
	// ReplayedRecords and ReplayedEvents count what the WAL tail replay
	// applied on top of the snapshot.
	ReplayedRecords uint64
	ReplayedEvents  uint64
	// Truncation describes the torn tail the WAL cut off when it was
	// opened, if any.
	Truncation *wal.TailTruncation
}

// Recover rebuilds the server's state from disk: restore the latest
// snapshot, replay the write-ahead log from the snapshot's anchor, resume.
// Controllers are deterministic functions of their per-program event
// streams, so the result is byte-identical to the pre-crash state for every
// durably logged record (TestRecoverMatchesUncrashed pins this). Call it
// once, before serving — replay drives the table directly and takes no
// ingest locks.
func (s *Server) Recover() (RecoveryResult, error) {
	var res RecoveryResult
	restored, err := s.RestoreFromDisk()
	if err != nil {
		return res, err
	}
	res.SnapshotRestored = restored
	if s.cfg.WAL == nil {
		return res, nil
	}
	res.WALSeq = s.restoredWALSeq
	res.Truncation = s.cfg.WAL.Recovery()

	// Under fsync policies weaker than "always", a crash can shave WAL
	// records the latest durable snapshot had already absorbed: the
	// snapshot anchor then sits past the log's end. Jump the log's
	// numbering to the anchor so new records continue the sequence the
	// snapshot pinned instead of renumbering the lost range.
	if err := s.cfg.WAL.AlignSeq(res.WALSeq); err != nil {
		return res, fmt.Errorf("server: aligning wal to snapshot anchor: %w", err)
	}

	r, err := wal.NewReader(wal.ReaderOptions{
		Dir:        s.cfg.WAL.Dir(),
		ParamsHash: s.cfg.WAL.ParamsHash(),
		From:       res.WALSeq,
	})
	if err != nil {
		return res, fmt.Errorf("server: opening wal for replay: %w", err)
	}
	defer r.Close()
	var discard []byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, fmt.Errorf("server: replaying wal record %d: %w", r.NextSeq(), err)
		}
		cur := s.cursorFor(rec.Program)
		discard, cur.instr = s.table.ApplyBatch(rec.Program, rec.Events, cur.instr, discard[:0])
		cur.events += uint64(len(rec.Events))
		res.ReplayedRecords++
		res.ReplayedEvents += uint64(len(rec.Events))
	}
	s.ins.walReplayedRecords.Add(res.ReplayedRecords)
	s.ins.walReplayedEvents.Add(res.ReplayedEvents)
	if res.ReplayedRecords > 0 || res.Truncation != nil {
		s.logf("wal: replayed %d records (%d events) from sequence %d",
			res.ReplayedRecords, res.ReplayedEvents, res.WALSeq)
	}
	return res, nil
}
