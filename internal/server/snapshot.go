package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"reactivespec/internal/core"
)

// Snapshot layout: a single file, <dir>/current.snap, holding a gob-encoded
// snapshotFile. Writes go to <dir>/current.snap.tmp first and are renamed
// into place after a successful fsync, so a crash mid-write leaves the
// previous complete snapshot loadable — readers only ever see either the old
// file or the new one, never a torn mix. Stray .tmp files from a crashed
// writer are ignored (and overwritten by the next snapshot).

// snapshotName and snapshotTmpName are the on-disk file names.
const (
	snapshotName    = "current.snap"
	snapshotTmpName = "current.snap.tmp"
)

// snapshotVersion guards the gob payload layout.
const snapshotVersion = 1

// ErrSnapshotMismatch reports a snapshot whose controller parameters differ
// from the server's configuration; restoring it would change decisions
// mid-stream.
var ErrSnapshotMismatch = errors.New("server: snapshot parameters do not match configuration")

// Snapshot is the full serializable service state: controller parameters,
// per-program instruction cursors, and every touched table entry. Cursors
// and Entries are sorted so identical states serialize to identical bytes.
type Snapshot struct {
	Version int
	Params  core.Params
	// Policy is the registered policy name the entries were trained under.
	// Empty means the reactive default: gob zero-fills it when decoding
	// snapshots written before policies existed, and those were all
	// reactive, so the layout stays at snapshotVersion 1.
	Policy  string
	Cursors []CursorSnapshot
	Entries []EntrySnapshot
	// WALSeq anchors the snapshot in the write-ahead log: every WAL record
	// with a lower sequence number is fully reflected in Entries/Cursors,
	// none at or above it is. Zero for snapshots taken without a WAL (gob
	// also decodes pre-WAL snapshots to zero, so the layout stays at
	// snapshotVersion 1).
	WALSeq uint64
}

// CursorSnapshot is one program's ingest position. Events counts the events
// applied for the program (gob decodes pre-Events snapshots to zero, so the
// layout stays at snapshotVersion 1; a restored zero only costs failover
// clients a full re-verify, never a double apply).
type CursorSnapshot struct {
	Program string
	Instr   uint64
	Events  uint64
}

// snapshotPath returns the snapshot file path for dir.
func snapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }

// WriteSnapshot atomically persists snap under dir, creating dir if needed.
func WriteSnapshot(dir string, snap *Snapshot) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: creating snapshot dir: %w", err)
	}
	tmp := filepath.Join(dir, snapshotTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: creating snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = gob.NewEncoder(f).Encode(snap); err != nil {
		return fmt.Errorf("server: encoding snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("server: syncing snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("server: closing snapshot: %w", err)
	}
	if err = os.Rename(tmp, snapshotPath(dir)); err != nil {
		return fmt.Errorf("server: installing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads the current snapshot under dir. A missing snapshot (or
// missing dir) returns (nil, nil): a fresh start, not an error.
func LoadSnapshot(dir string) (*Snapshot, error) {
	f, err := os.Open(snapshotPath(dir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: opening snapshot: %w", err)
	}
	defer f.Close()
	var snap Snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: decoding snapshot %s: %w", snapshotPath(dir), err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("server: snapshot version %d unsupported (want %d)",
			snap.Version, snapshotVersion)
	}
	return &snap, nil
}
