package server

import (
	"fmt"
	"reflect"
	"testing"

	"reactivespec/internal/trace"
)

// applyAllFramed drives events through the table with ApplyFrame in chunks of
// batch, encoding each chunk into a wire frame payload first, and returns the
// encoded decision sequence.
func applyAllFramed(tb testing.TB, t *Table, program string, evs []trace.Event, instr *uint64, batch int) []byte {
	out := make([]byte, 0, len(evs))
	var payload []byte
	for off := 0; off < len(evs); off += batch {
		end := off + batch
		if end > len(evs) {
			end = len(evs)
		}
		payload = trace.EncodeFrameAppend(payload[:0], evs[off:end])
		if _, err := trace.ValidateFrame(payload); err != nil {
			tb.Fatalf("encoded frame failed validation: %v", err)
		}
		out, *instr = t.ApplyFrame(program, payload, *instr, out)
	}
	return out
}

// TestApplyFrameMatchesApplyBatch is the zero-copy apply equivalence pin:
// across shard counts, seeds, and frame sizes, decoding-while-applying a wire
// payload must produce the byte-identical decision stream, final instruction
// count, and shard metrics as ApplyBatch over the decoded events.
func TestApplyFrameMatchesApplyBatch(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, seed := range []uint64{1, 7, 42} {
			for _, batch := range []int{1, 13, 1024, 30_000} {
				t.Run(fmt.Sprintf("shards=%d/seed=%d/batch=%d", shards, seed, batch), func(t *testing.T) {
					evs := synthEvents(30_000, seed)

					batched := NewTable(testParams(), shards)
					var instrA uint64
					want := applyAllBatched(batched, "prog", evs, &instrA, batch)

					framed := NewTable(testParams(), shards)
					var instrB uint64
					got := applyAllFramed(t, framed, "prog", evs, &instrB, batch)

					if instrA != instrB {
						t.Fatalf("final instruction count %d, want %d", instrB, instrA)
					}
					if string(got) != string(want) {
						t.Fatalf("framed decision stream differs from batched (lengths %d, %d)",
							len(got), len(want))
					}
					if gm, wm := framed.Metrics(), batched.Metrics(); !reflect.DeepEqual(gm, wm) {
						t.Fatalf("shard metrics diverge:\nframed:  %+v\nbatched: %+v", gm, wm)
					}
				})
			}
		}
	}
}

// TestApplyFrameEmpty covers the degenerate frames: zero events, and a
// payload applied into a pre-populated dst.
func TestApplyFrameEmpty(t *testing.T) {
	tab := NewTable(testParams(), 4)
	empty := trace.EncodeFrameAppend(nil, nil)
	dst, instr := tab.ApplyFrame("p", empty, 17, nil)
	if len(dst) != 0 || instr != 17 {
		t.Fatalf("empty frame: %d decisions, instr %d", len(dst), instr)
	}
	one := trace.EncodeFrameAppend(nil, []trace.Event{{Branch: 1, Taken: true, Gap: 5}})
	dst = append(dst, 0xEE)
	dst, instr = tab.ApplyFrame("p", one, instr, dst)
	if len(dst) != 2 || dst[0] != 0xEE || instr != 22 {
		t.Fatalf("one-event frame: dst %v, instr %d", dst, instr)
	}
}

// TestApplyFrameSteadyStateAllocs pins the zero-copy claim at the apply
// layer: once the table entries and dst exist, applying a frame allocates
// nothing.
func TestApplyFrameSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race builds make sync.Pool drop items on purpose; the zero-alloc pin only holds in a normal build")
	}
	evs := synthEvents(4096, 9)
	payload := trace.EncodeFrameAppend(nil, evs)
	tab := NewTable(testParams(), 8)
	dst := make([]byte, 0, len(evs))
	var instr uint64
	// Warm up: create every (program, branch) entry.
	dst, instr = tab.ApplyFrame("p", payload, instr, dst[:0])
	if len(dst) != len(evs) {
		t.Fatalf("warmup applied %d of %d events", len(dst), len(evs))
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst, instr = tab.ApplyFrame("p", payload, instr, dst[:0])
	})
	if allocs > 0 {
		t.Fatalf("ApplyFrame allocated %.1f objects per frame in steady state; want 0", allocs)
	}
}
