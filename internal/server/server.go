package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"reactivespec/internal/core"
	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

// HTTP API:
//
//	POST /v1/ingest?program=P
//	  Body: one or more trace frames (trace.WriteFrame). Events are applied
//	  in order; the per-program instruction cursor advances by each event's
//	  gap. A corrupt frame is rejected and skipped — the rest of the batch
//	  still applies (per-batch corruption handling, not per-connection).
//	  Response (application/octet-stream, Content-Length always set):
//	    magic  "RSPD" [4]byte
//	    frames uvarint
//	    per frame:
//	      status byte      0 = applied, 1 = rejected
//	      applied:  n uvarint, then n decision bytes (Decision.Encode)
//	      rejected: len uvarint, then len bytes of error text
//	    optionally, after the last frame record:
//	      status byte 2    = batch truncated: len uvarint, then len bytes
//	                         of error text
//	  Partial-apply contract: when the framing itself is damaged mid-body
//	  (a corrupt length prefix, a truncated payload), every frame decoded
//	  before that point has already been applied to the table and is
//	  answered normally; the response then carries a trailing truncation
//	  record (status 2) instead of discarding the applied prefix, and the
//	  rest of the body is ignored. Clients see "applied N of M frames" plus
//	  the framing diagnostic (server.BatchTruncatedError).
//	  Concurrent batches for the same program serialize (the cursor defines
//	  the program's event order); different programs proceed in parallel.
//	  The body is fully read and decoded *before* the program cursor is
//	  taken, so a slow client cannot stall other ingesters for its program.
//
//	  An optional params=<hex hash> query pins the request to a controller
//	  parameter hash (see ParamsHash); a mismatch is rejected with 409
//	  before any event is applied.
//
//	GET  /v1/decide?program=P&branch=N   → JSON DecideResponse
//	GET  /v1/info                        → JSON Info (API/proto version, params hash)
//	POST /v1/stream                      → upgrade to a streaming ingest session (stream.go)
//	GET  /healthz                        → JSON health summary
//	GET  /metrics                        → Prometheus text exposition
//	POST /v1/snapshot                    → force a snapshot, JSON result
//
//	POST /v2/ingest?program=P&kind=K     → kind-aware ingest; body and response
//	  format are byte-identical to /v1/ingest. kind names a speculation kind
//	  (trace.ParseKind); kind=branch lands on exactly the table keys /v1/ingest
//	  uses, so a program can migrate endpoint by endpoint without resetting
//	  its state. An unknown kind name, or a kind the daemon is not serving, is
//	  rejected with the unsupported_kind code before any event applies. An
//	  optional policy=<name> query pins the request to the daemon's policy the
//	  way params= pins the parameter hash: an unregistered name is rejected
//	  with unknown_policy (400), a registered-but-different one with
//	  param_mismatch (409).
//	GET  /v2/decide?program=P&kind=K&id=N → JSON DecideV2Response; same kind
//	  and policy validation as /v2/ingest.
//
// The /v1/* endpoints are the compatibility surface: they serve kind=branch
// exactly as they did before kinds existed, byte for byte. Program names
// containing a NUL byte are rejected on every path (NUL introduces the
// internal kind-key encoding, trace.EncodeKindProgram).
//
// Every failure path answers with the unified JSON error envelope
// {"error": ..., "code": ...} defined in errors.go.

// Ingest response per-frame status bytes.
const (
	ingestApplied   = 0 // frame applied; decision bytes follow
	ingestRejected  = 1 // frame payload corrupt; error text follows
	ingestTruncated = 2 // batch framing lost after the preceding frames
)

// respMagic introduces an ingest response.
var respMagic = [4]byte{'R', 'S', 'P', 'D'}

// TraceHeader is the optional POST /v1/ingest request header carrying a
// client-minted trace ID (decimal). A batch arriving with it joins that trace
// instead of rolling the server's sampler, so client-side encode/network
// spans and the server's batch spans line up under one ID.
const TraceHeader = "X-Reactive-Trace"

// Config configures a Server.
type Config struct {
	// Params are the reactive-controller parameters every table entry is
	// created with.
	Params core.Params
	// Policy is the registered policy name every table entry runs ("" =
	// core.PolicyReactive). The policy is mixed into the params hash
	// (ParamsPolicyHash), so clients pinned to one policy's decisions are
	// rejected by a daemon running another. The name must be registered
	// (core.ValidPolicy): New panics on an unknown one — the daemon binary
	// validates its -policy flag before constructing the server.
	Policy string
	// Kinds lists the speculation kinds this daemon serves; nil or empty
	// means all of them. Ingest and decide requests for an unserved kind are
	// rejected with the unsupported_kind code.
	Kinds []trace.Kind
	// Shards is the lock-stripe count (default 16).
	Shards int
	// SnapshotDir, when non-empty, enables snapshot/restore.
	SnapshotDir string
	// WAL, when non-nil, is the write-ahead event log: every ingested frame
	// (POST and streaming) is appended to it *before* it is applied to the
	// table, and Recover replays its tail over the restored snapshot. The
	// log must be opened with ParamsHash(Params).
	WAL *wal.Log
	// Replica starts the server read-only: client ingest (POST and stream)
	// is rejected with the read_only code, and state advances only through
	// ApplyReplicated — records shipped from a primary's WAL. Promote flips
	// the server writable. Replica mode requires a WAL: the replica logs
	// shipped records through the same log-before-apply path as a primary,
	// so after promotion its durability story is identical.
	Replica bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Trace, when non-nil, records sampled end-to-end batch spans (obs.Tracer).
	// A nil tracer is the off switch: every call site nil-checks and pays one
	// predictable branch.
	Trace *obs.Tracer
}

// Server is the speculation-control service. Create with New, expose via
// Handler, and drive shutdown with BeginDrain + (optionally) SnapshotNow.
type Server struct {
	cfg        Config
	table      *Table
	start      time.Time
	paramsHash uint64
	// kinds is the served-kind mask, indexed by trace.Kind.
	kinds [trace.KindCount]bool

	cursorsMu sync.Mutex
	cursors   map[string]*cursor

	reg *obs.Registry
	ins serverInstruments

	streams streamRegistry

	draining atomic.Bool
	snapMu   sync.Mutex // serializes snapshot writes

	// readOnly is set while the server runs as a replica; Promote clears
	// it. Checked on every ingest path before any event is accepted.
	readOnly atomic.Bool
	// promoteMu serializes Promote against itself; sealFn (installed by the
	// replication follower via SetSealFunc) stops the follower and returns
	// the last applied sequence before the server goes writable.
	promoteMu sync.Mutex
	sealFn    func() (uint64, error)
	// replicaMu serializes ApplyReplicated's use of replicaScratch (shipped
	// records already arrive in per-connection order; the cursor lock, not
	// this one, is the ordering guarantee).
	replicaMu      sync.Mutex
	replicaScratch []byte

	// applyMu fences WAL-append-plus-apply sections (read side) against
	// snapshot capture (write side): a snapshot's WAL anchor is taken while
	// no batch is between its WAL append and its table apply, so every
	// record below the anchor is fully applied and none above it is. Lock
	// order: applyMu before cursorsMu before cursor.mu.
	applyMu sync.RWMutex
	// restoredWALSeq is the WAL anchor of the snapshot RestoreFromDisk
	// loaded (0 when none): the sequence number replay resumes from.
	restoredWALSeq uint64
}

// cursor is one program's ingest position: the cumulative dynamic
// instruction count and the number of events applied. Holding mu across a
// whole batch serializes same-program batches, preserving the event order the
// controller's latency model needs. The event count is what failover clients
// resume from: after promoting a replica, /v1/cursor tells them exactly how
// many of their events survived, so they re-send from there and nothing is
// double-applied.
type cursor struct {
	mu     sync.Mutex
	instr  uint64
	events uint64
}

// New returns a server with an empty table.
func New(cfg Config) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 16
	}
	table, err := NewTablePolicy(cfg.Params, cfg.Shards, cfg.Policy)
	if err != nil {
		// Config.Policy documents the contract: validate the name before
		// constructing a server.
		panic("server: " + err.Error())
	}
	s := &Server{
		cfg:        cfg,
		table:      table,
		start:      time.Now(),
		paramsHash: ParamsPolicyHash(cfg.Params, cfg.Policy),
		cursors:    make(map[string]*cursor),
		reg:        obs.NewRegistry(),
	}
	if len(cfg.Kinds) == 0 {
		for k := range s.kinds {
			s.kinds[k] = true
		}
	} else {
		for _, k := range cfg.Kinds {
			if !k.Valid() {
				panic(fmt.Sprintf("server: invalid kind %d in Config.Kinds", k))
			}
			s.kinds[k] = true
		}
	}
	s.streams.sessions = make(map[*streamSession]struct{})
	s.readOnly.Store(cfg.Replica)
	s.ins = newServerInstruments(s.reg)
	registerTableCollector(s.reg, s.table)
	if cfg.WAL != nil {
		cfg.WAL.OnFsync = func(d time.Duration) { s.ins.walFsyncLat.Observe(d.Seconds()) }
		registerWALCollector(s.reg, cfg.WAL)
	}
	s.reg.NewGaugeFunc("reactived_uptime_seconds", "Time since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.NewGaugeFunc("reactived_stream_sessions", "Live streaming ingest sessions.",
		func() float64 { return float64(s.streams.count()) })
	s.reg.NewGaugeFunc("reactived_draining", "1 while the daemon is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.reg.NewGaugeFunc("reactived_replica", "1 while the daemon is a read-only replica.",
		func() float64 {
			if s.readOnly.Load() {
				return 1
			}
			return 0
		})
	return s
}

// Table returns the underlying sharded table (tests and tooling).
func (s *Server) Table() *Table { return s.table }

// ServesKind reports whether the daemon serves the speculation kind.
func (s *Server) ServesKind(k trace.Kind) bool {
	return k.Valid() && s.kinds[k]
}

// KindNames returns the served speculation kinds' names, in trace.Kind order
// (what /v1/info advertises as "kinds").
func (s *Server) KindNames() []string {
	out := make([]string, 0, trace.KindCount)
	for k := trace.Kind(0); k < trace.KindCount; k++ {
		if s.kinds[k] {
			out = append(out, k.String())
		}
	}
	return out
}

// WAL returns the configured write-ahead log, or nil when durability is
// disabled (debug pages and tooling).
func (s *Server) WAL() *wal.Log { return s.cfg.WAL }

// Registry returns the server's metrics registry so the embedding binary can
// register daemon-level metrics into the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// cursorFor returns program's cursor, creating it on first sight.
func (s *Server) cursorFor(program string) *cursor {
	s.cursorsMu.Lock()
	defer s.cursorsMu.Unlock()
	c := s.cursors[program]
	if c == nil {
		c = &cursor{}
		s.cursors[program] = c
	}
	return c
}

// BeginDrain makes subsequent ingest and snapshot requests fail with 503
// while in-flight ones complete (http.Server.Shutdown waits for those), and
// asks every active stream session to finish its current frame, send a
// terminal "draining" frame, and close (the client surfaces ErrDraining, not
// a connection reset). Read-only endpoints keep working.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.streams.drainAll()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v2/ingest", s.handleIngestV2)
	mux.HandleFunc("/v2/decide", s.handleDecideV2)
	mux.HandleFunc("/v1/info", s.handleInfo)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/promote", s.handlePromote)
	mux.HandleFunc("/v1/cursor", s.handleCursor)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// frameSpan locates one frame of a batch inside the shared payload and
// decision buffers: applied frames own [pstart, pend) of the raw payload
// bytes and [dstart, dend) of the decisions, with events counting the
// frame's validated records; rejected frames are empty spans carrying the
// rejection diagnostic.
type frameSpan struct {
	pstart, pend int
	dstart, dend int
	events       int
	errMsg       string
}

// ingestScratch is the pooled per-request working set of the ingest hot
// path: the validated raw payload bytes of every applied frame (one shared
// buffer, frames as spans over it — events are never materialized into
// structs; ApplyFrame decodes them in place), the per-event decision bytes,
// and the encoded response. Pooling these — plus the FrameReader's internal
// read buffer — makes the steady-state handler allocation-free.
type ingestScratch struct {
	payload   []byte
	frames    []frameSpan
	decisions []byte
	resp      []byte
	fr        *trace.FrameReader
}

var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, CodeReadOnly,
			"replica is read-only; ingest on the primary, or promote this replica first")
		return
	}
	q := r.URL.Query()
	program := q.Get("program")
	if !checkProgram(w, program) {
		return
	}
	if !s.checkParamsPin(w, q.Get("params")) {
		return
	}
	// pprof labels let a CPU profile split ingest work by program, transport
	// and role; the body runs inside the labeled region so decode/apply
	// samples carry them.
	pprof.Do(r.Context(), pprof.Labels(
		"program", program, "transport", "post", "role", s.Mode(),
	), func(context.Context) {
		s.ingestBatch(w, r, program)
	})
}

// checkProgram validates an ingest/decide program parameter, answering the
// request itself when the name is missing or carries a NUL byte (NUL
// introduces the internal kind-key encoding and is never a legal name).
func checkProgram(w http.ResponseWriter, program string) bool {
	if program == "" {
		writeError(w, http.StatusBadRequest, CodeMalformed, "missing program parameter")
		return false
	}
	if !trace.ValidProgramName(program) {
		writeError(w, http.StatusBadRequest, CodeMalformed, "program name contains a NUL byte")
		return false
	}
	return true
}

// checkParamsPin validates an optional params=<hex hash> pin against the
// daemon's params hash, answering the request itself on failure.
func (s *Server) checkParamsPin(w http.ResponseWriter, pin string) bool {
	if pin == "" {
		return true
	}
	h, err := parseParamsHash(pin)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "bad params parameter: "+err.Error())
		return false
	}
	if h != s.paramsHash {
		writeError(w, http.StatusConflict, CodeParamMismatch, fmt.Sprintf(
			"client controller params hash %s != server %s",
			formatParamsHash(h), formatParamsHash(s.paramsHash)))
		return false
	}
	return true
}

// checkKindPolicy validates a /v2 request's kind parameter and optional
// policy pin, answering the request itself on failure. It returns the parsed
// kind.
func (s *Server) checkKindPolicy(w http.ResponseWriter, q map[string][]string) (trace.Kind, bool) {
	get := func(name string) string {
		if v := q[name]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	ks := get("kind")
	if ks == "" {
		writeError(w, http.StatusBadRequest, CodeMalformed, "missing kind parameter")
		return 0, false
	}
	kind, err := trace.ParseKind(ks)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeUnsupportedKind, err.Error())
		return 0, false
	}
	if !s.kinds[kind] {
		writeError(w, http.StatusBadRequest, CodeUnsupportedKind, fmt.Sprintf(
			"kind %q is not served by this daemon (serving %v)", kind, s.KindNames()))
		return 0, false
	}
	if pin := get("policy"); pin != "" {
		if !core.ValidPolicy(pin) {
			writeError(w, http.StatusBadRequest, CodeUnknownPolicy, fmt.Sprintf(
				"unknown policy %q (registered: %v)", pin, core.PolicyNames()))
			return 0, false
		}
		if pin != s.table.Policy() {
			writeError(w, http.StatusConflict, CodeParamMismatch, fmt.Sprintf(
				"client pinned policy %q != server policy %q", pin, s.table.Policy()))
			return 0, false
		}
	}
	return kind, true
}

func (s *Server) handleIngestV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	if s.readOnly.Load() {
		writeError(w, http.StatusForbidden, CodeReadOnly,
			"replica is read-only; ingest on the primary, or promote this replica first")
		return
	}
	q := r.URL.Query()
	program := q.Get("program")
	if !checkProgram(w, program) {
		return
	}
	kind, ok := s.checkKindPolicy(w, q)
	if !ok {
		return
	}
	if !s.checkParamsPin(w, q.Get("params")) {
		return
	}
	// Everything below /v2 validation is the /v1 batch path on the encoded
	// kind-program key: the WAL record, the cursor, the table keys, and the
	// response bytes are exactly what a /v1 ingest of the same body would
	// produce for kind=branch (the key is the plain name then).
	pprof.Do(r.Context(), pprof.Labels(
		"program", program, "kind", kind.String(), "transport", "post", "role", s.Mode(),
	), func(context.Context) {
		s.ingestBatch(w, r, trace.EncodeKindProgram(kind, program))
	})
}

// ingestBatch is handleIngest's validated body: decode, log, apply, respond.
func (s *Server) ingestBatch(w http.ResponseWriter, r *http.Request, program string) {
	start := time.Now()

	// An X-Reactive-Trace header joins this batch to a trace the client
	// started (its encode and network spans share the ID); otherwise the
	// server's own 1-in-N sampler decides.
	traceID := s.cfg.Trace.SampleBatch()
	if h := r.Header.Get(TraceHeader); h != "" {
		if id, err := strconv.ParseUint(h, 10, 64); err == nil && id != 0 {
			traceID = id
		}
	}

	sc := ingestScratchPool.Get().(*ingestScratch)
	defer func() {
		sc.payload = sc.payload[:0]
		sc.frames = sc.frames[:0]
		sc.decisions = sc.decisions[:0]
		sc.resp = sc.resp[:0]
		ingestScratchPool.Put(sc)
	}()

	// Stage 1 — read + validate, no locks held. The whole body is consumed
	// into pooled buffers before the program cursor is taken, so a client
	// trickling bytes over a slow socket cannot stall other ingesters for
	// the same program the way the old decode-under-lock loop could. Frames
	// are validated (same accept/reject set and diagnostics as decoding) but
	// kept as raw payload bytes: the WAL splices them in verbatim and
	// ApplyFrame decodes them in place, so no []trace.Event is materialized.
	decodeStart := time.Now()
	var truncated error
	if sc.fr == nil {
		sc.fr = trace.NewFrameReader(r.Body)
	} else {
		sc.fr.Reset(r.Body)
	}
	fr := sc.fr
	for {
		p0 := len(sc.payload)
		payload, nEvents, err := fr.NextPayloadAppend(sc.payload)
		if err == io.EOF {
			break
		}
		var fe *trace.FrameError
		if errors.As(err, &fe) {
			// The frame is corrupt but the framing survived: reject
			// this frame only and keep consuming the batch.
			s.ins.rejectedFrames.Inc()
			sc.frames = append(sc.frames, frameSpan{pstart: p0, pend: p0, errMsg: fe.Error()})
			continue
		}
		if err != nil {
			// Framing lost: nothing after this point can be trusted.
			// The frames decoded so far still apply (partial-apply
			// contract); the response ends with a truncation record.
			truncated = err
			break
		}
		sc.payload = payload
		sc.frames = append(sc.frames, frameSpan{pstart: p0, pend: len(payload), events: nEvents})
	}
	decodeDur := time.Since(decodeStart)

	// Stage 2 — log, then ordered apply. The WAL append runs under the same
	// cursor lock as the apply so a program's WAL record order is exactly
	// its apply order (replay reproduces the same decisions), and one Commit
	// covers the whole batch. Only the controller updates and the WAL append
	// run under the lock, batched per frame so the table can amortize
	// hashing and shard locking across each frame's events.
	applyStart := time.Now()
	cur := s.cursorFor(program)
	s.applyMu.RLock()
	cur.mu.Lock()
	var walErr error
	var firstSeq uint64
	walStart := time.Now()
	fsyncStart := walStart
	var fsyncDur time.Duration
	if wlog := s.cfg.WAL; wlog != nil {
		for _, f := range sc.frames {
			if f.errMsg != "" {
				continue
			}
			var seq uint64
			if seq, walErr = wlog.AppendPayload(program, sc.payload[f.pstart:f.pend]); walErr != nil {
				break
			}
			if firstSeq == 0 {
				firstSeq = seq
			}
			// The WAL stores no trace context; the seq→trace side table is
			// how the replication shipper re-attaches the trace when it
			// reads this record back off the log.
			s.cfg.Trace.NoteSeq(seq, traceID)
		}
		fsyncStart = time.Now()
		if walErr == nil {
			walErr = wlog.Commit()
		}
		fsyncDur = time.Since(fsyncStart)
	}
	walDur := fsyncStart.Sub(walStart)
	tableStart := time.Now()
	var totalEvents int
	if walErr == nil {
		for i := range sc.frames {
			f := &sc.frames[i]
			if f.errMsg != "" {
				continue
			}
			f.dstart = len(sc.decisions)
			sc.decisions, cur.instr = s.table.ApplyFrame(program, sc.payload[f.pstart:f.pend], cur.instr, sc.decisions)
			f.dend = len(sc.decisions)
			totalEvents += f.events
		}
		cur.events += uint64(totalEvents)
	}
	tableDur := time.Since(tableStart)
	cur.mu.Unlock()
	s.applyMu.RUnlock()
	if walErr != nil {
		// Nothing was applied: a client that cannot durably log must not
		// train the live table, or recovery would diverge from the state it
		// acknowledged. (Frames appended before the failure may survive in
		// the log; replaying unacknowledged events is safe — the client saw
		// an error, not an ack.)
		s.ins.walAppendErrors.Inc()
		writeError(w, http.StatusInternalServerError, CodeInternal, "wal append: "+walErr.Error())
		return
	}
	applyDur := time.Since(applyStart)

	// Stage 3 — encode and write the response from a pooled buffer. Each
	// applied frame recorded its span of the shared decision buffer while
	// applying, one byte per event.
	respondStart := time.Now()
	resp := sc.resp[:0]
	resp = append(resp, respMagic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { resp = append(resp, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putUvarint(uint64(len(sc.frames)))
	for _, f := range sc.frames {
		if f.errMsg == "" {
			resp = append(resp, ingestApplied)
			putUvarint(uint64(f.events))
			resp = append(resp, sc.decisions[f.dstart:f.dend]...)
		} else {
			resp = append(resp, ingestRejected)
			putUvarint(uint64(len(f.errMsg)))
			resp = append(resp, f.errMsg...)
		}
	}
	if truncated != nil {
		s.ins.truncatedBatches.Inc()
		msg := truncated.Error()
		resp = append(resp, ingestTruncated)
		putUvarint(uint64(len(msg)))
		resp = append(resp, msg...)
	}
	sc.resp = resp
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	if _, err := w.Write(resp); err != nil {
		// The response is lost (client gone, connection reset): the events
		// are already applied, so all we can do is count it.
		s.ins.responseErrors.Inc()
	}
	respondDur := time.Since(respondStart)
	end := time.Now()

	s.ins.batches.Inc()
	s.ins.batchLat.Observe(end.Sub(start).Seconds())
	s.ins.decodeLat.Observe(decodeDur.Seconds())
	s.ins.applyLat.Observe(applyDur.Seconds())
	s.ins.respondLat.Observe(respondDur.Seconds())
	s.ins.batchEvents.Observe(float64(totalEvents))

	if traceID != 0 {
		// The batch root plus its contiguous children (decode through
		// respond) is what `reactivespec spans` attributes wall time over;
		// the children cover the root by construction.
		tr := s.cfg.Trace
		root := tr.SpanID()
		tr.Record(obs.Span{Trace: traceID, Span: root, Stage: "batch", Program: program,
			Events: totalEvents, Seq: firstSeq, Start: start.UnixNano(), Dur: int64(end.Sub(start))})
		tr.RecordStage(traceID, root, "decode", program, totalEvents, 0, decodeStart, decodeDur)
		tr.RecordStage(traceID, root, "wal_append", program, totalEvents, firstSeq, walStart, walDur)
		tr.RecordStage(traceID, root, "fsync", program, 0, firstSeq, fsyncStart, fsyncDur)
		tr.RecordStage(traceID, root, "apply", program, totalEvents, 0, tableStart, tableDur)
		tr.RecordStage(traceID, root, "respond", program, 0, 0, respondStart, respondDur)
	}
}

// DecideResponse is the JSON answer of /v1/decide.
type DecideResponse struct {
	Program   string `json:"program"`
	Branch    uint32 `json:"branch"`
	State     string `json:"state"`
	Direction string `json:"direction"` // "taken" or "not-taken"
	Live      bool   `json:"live"`
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	program := r.URL.Query().Get("program")
	if !checkProgram(w, program) {
		return
	}
	branch, err := strconv.ParseUint(r.URL.Query().Get("branch"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "bad branch parameter: "+err.Error())
		return
	}
	d := s.table.Decide(program, trace.BranchID(branch))
	dir := "not-taken"
	if d.Dir {
		dir = "taken"
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, DecideResponse{
		Program:   program,
		Branch:    uint32(branch),
		State:     d.State.String(),
		Direction: dir,
		Live:      d.Live,
	})
}

// DecideV2Response is the JSON answer of /v2/decide. Unlike the v1 response
// it carries the raw speculation direction as a boolean — "taken" wording
// only makes sense for branches.
type DecideV2Response struct {
	Program string `json:"program"`
	Kind    string `json:"kind"`
	ID      uint32 `json:"id"`
	State   string `json:"state"`
	Dir     bool   `json:"dir"`
	Live    bool   `json:"live"`
}

func (s *Server) handleDecideV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	program := q.Get("program")
	if !checkProgram(w, program) {
		return
	}
	kind, ok := s.checkKindPolicy(w, q)
	if !ok {
		return
	}
	id, err := strconv.ParseUint(q.Get("id"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "bad id parameter: "+err.Error())
		return
	}
	d := s.table.DecideKind(program, kind, trace.BranchID(id))
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, DecideV2Response{
		Program: program,
		Kind:    kind.String(),
		ID:      uint32(id),
		State:   d.State.String(),
		Dir:     d.Dir,
		Live:    d.Live,
	})
}

// Health is the JSON answer of /healthz.
type Health struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`
	Shards    int     `json:"shards"`
	Programs  int     `json:"programs"`
	Events    uint64  `json:"events"`
	Draining  bool    `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var total ShardMetrics
	for _, m := range s.table.Metrics() {
		total.Add(m)
	}
	s.cursorsMu.Lock()
	programs := len(s.cursors)
	s.cursorsMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, Health{
		Status:    "ok",
		UptimeSec: time.Since(s.start).Seconds(),
		Shards:    s.table.Shards(),
		Programs:  programs,
		Events:    total.Events,
		Draining:  s.draining.Load(),
	})
}

// writeJSON encodes v onto an already-200 response.
func writeJSON(w http.ResponseWriter, v any) { json.NewEncoder(w).Encode(v) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// SnapshotResult is the JSON answer of /v1/snapshot.
type SnapshotResult struct {
	Entries  int    `json:"entries"`
	Programs int    `json:"programs"`
	WALSeq   uint64 `json:"wal_seq"`
	Path     string `json:"path"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	res, err := s.SnapshotNow()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, res)
}

// SnapshotNow persists the full service state to the configured snapshot
// directory. Concurrent calls serialize. Without a WAL, concurrent ingest
// yields per-entry consistency (see Table.SnapshotEntries); with one, the
// capture excludes in-flight apply sections (applyMu) so the snapshot's WAL
// anchor is exact — every record below it is fully applied, none above it —
// and segments wholly below the anchor are compacted away once the snapshot
// is durably installed.
func (s *Server) SnapshotNow() (SnapshotResult, error) {
	if s.cfg.SnapshotDir == "" {
		return SnapshotResult{}, fmt.Errorf("server: no snapshot directory configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snapStart := time.Now()
	if s.cfg.WAL != nil {
		s.applyMu.Lock()
	}
	snap := &Snapshot{
		Version: snapshotVersion,
		Params:  s.cfg.Params,
		Policy:  s.table.Policy(),
		Cursors: s.exportCursors(),
		Entries: s.table.SnapshotEntries(),
	}
	if s.cfg.WAL != nil {
		snap.WALSeq = s.cfg.WAL.NextSeq()
		s.applyMu.Unlock()
	}
	if err := WriteSnapshot(s.cfg.SnapshotDir, snap); err != nil {
		return SnapshotResult{}, err
	}
	s.ins.snapshots.Inc()
	if s.cfg.WAL != nil {
		// The snapshot is durable: everything below its anchor is dead
		// weight. A compaction failure does not invalidate the snapshot.
		if _, err := s.cfg.WAL.CompactTo(snap.WALSeq); err != nil {
			s.logf("wal: compaction after snapshot: %v", err)
		}
	}
	// Snapshots are rare and stall-prone (they hold applyMu): always span
	// them when a tracer is attached, no sampling.
	s.cfg.Trace.RecordInfra("snapshot", snapStart, time.Since(snapStart))
	s.logf("snapshot: %d entries, %d programs, wal seq %d -> %s",
		len(snap.Entries), len(snap.Cursors), snap.WALSeq, snapshotPath(s.cfg.SnapshotDir))
	return SnapshotResult{
		Entries:  len(snap.Entries),
		Programs: len(snap.Cursors),
		WALSeq:   snap.WALSeq,
		Path:     snapshotPath(s.cfg.SnapshotDir),
	}, nil
}

// exportCursors copies every program's instruction cursor, sorted by name.
func (s *Server) exportCursors() []CursorSnapshot {
	s.cursorsMu.Lock()
	defer s.cursorsMu.Unlock()
	out := make([]CursorSnapshot, 0, len(s.cursors))
	for name, c := range s.cursors {
		c.mu.Lock()
		out = append(out, CursorSnapshot{Program: name, Instr: c.instr, Events: c.events})
		c.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Program < out[j].Program })
	return out
}

// RestoreFromDisk loads the configured snapshot directory's current
// snapshot, if any, and imports it. It returns whether a snapshot was
// restored. Restoring a snapshot whose controller parameters differ from the
// server's fails with ErrSnapshotMismatch (decisions would diverge
// mid-stream otherwise).
func (s *Server) RestoreFromDisk() (bool, error) {
	if s.cfg.SnapshotDir == "" {
		return false, nil
	}
	snap, err := LoadSnapshot(s.cfg.SnapshotDir)
	if err != nil {
		return false, err
	}
	if snap == nil {
		return false, nil
	}
	if snap.Params != s.cfg.Params {
		return false, fmt.Errorf("%w: snapshot %+v vs configured %+v",
			ErrSnapshotMismatch, snap.Params, s.cfg.Params)
	}
	// Pre-policy snapshots carry "" — they were all written by reactive
	// daemons, so "" compares as the reactive default.
	snapPolicy := snap.Policy
	if snapPolicy == "" {
		snapPolicy = core.PolicyReactive
	}
	if snapPolicy != s.table.Policy() {
		return false, fmt.Errorf("%w: snapshot policy %q vs configured %q",
			ErrSnapshotMismatch, snapPolicy, s.table.Policy())
	}
	s.table.RestoreEntries(snap.Entries)
	s.cursorsMu.Lock()
	for _, cs := range snap.Cursors {
		s.cursors[cs.Program] = &cursor{instr: cs.Instr, events: cs.Events}
	}
	s.cursorsMu.Unlock()
	s.restoredWALSeq = snap.WALSeq
	s.logf("restored snapshot: %d entries, %d programs, wal seq %d",
		len(snap.Entries), len(snap.Cursors), snap.WALSeq)
	return true, nil
}
