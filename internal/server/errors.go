package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Every /v1/* failure path answers with one JSON envelope:
//
//	{"error": "<human diagnostic>", "code": "<machine code>"}
//
// under a consistent status-code policy: 400 for malformed requests, 405 for
// a wrong method, 409 for a controller-parameter mismatch, 503 while
// draining, 500 for internal faults. The Go client decodes the envelope into
// an *APIError, and maps the draining and param-mismatch codes onto the
// ErrDraining and ErrParamsMismatch sentinels so callers can errors.Is them
// without string matching.

// Machine-readable error codes carried by the envelope. The stream handshake
// reuses the mismatch codes (trace.StreamCodeParamMismatch etc.) so both
// transports name the same failure the same way.
const (
	// CodeMalformed labels a request the server could not parse: missing
	// or invalid parameters, bad query values.
	CodeMalformed = "malformed"
	// CodeMethodNotAllowed labels a request with the wrong HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeParamMismatch labels a request pinned to a controller-parameter
	// hash that differs from the server's configuration.
	CodeParamMismatch = "param_mismatch"
	// CodeDraining labels a request rejected because the server is
	// draining for shutdown.
	CodeDraining = "draining"
	// CodeReadOnly labels a write rejected because the daemon is running
	// as a read-only replica; ingest on the primary, or promote first.
	// Stream handshakes carry the same code (trace.StreamCodeReadOnly).
	CodeReadOnly = "read_only"
	// CodeNotReplica labels a promote request sent to a daemon that is not
	// (or is no longer) a replica — including a second promote.
	CodeNotReplica = "not_replica"
	// CodeUnsupportedKind labels a /v2 request naming a speculation kind the
	// daemon does not recognize or is not serving.
	CodeUnsupportedKind = "unsupported_kind"
	// CodeUnknownPolicy labels a request pinned to a policy name that is not
	// registered at all. (A registered-but-different policy is a
	// param_mismatch: the daemon could serve it, just isn't.)
	CodeUnknownPolicy = "unknown_policy"
	// CodeInternal labels a server-side failure.
	CodeInternal = "internal"
)

// ErrDraining reports an operation rejected (or a stream session terminated)
// because the daemon is draining for shutdown.
var ErrDraining = errors.New("server: draining")

// ErrParamsMismatch reports a controller-parameter hash that differs between
// client and server: proceeding would produce silently diverging decisions.
var ErrParamsMismatch = errors.New("server: controller parameters mismatch")

// ErrReadOnly reports a write rejected by a read-only replica.
var ErrReadOnly = errors.New("server: replica is read-only")

// ErrNotReplica reports a promote request to a daemon that is not a replica
// (or was already promoted).
var ErrNotReplica = errors.New("server: not a replica")

// ErrUnsupportedKind reports a request for a speculation kind the daemon does
// not recognize or is not serving.
var ErrUnsupportedKind = errors.New("server: unsupported speculation kind")

// ErrUnknownPolicy reports a request pinned to an unregistered policy name.
var ErrUnknownPolicy = errors.New("server: unknown policy")

// errorEnvelope is the JSON wire form of every /v1/* failure.
type errorEnvelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError answers a request with the unified JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{Error: msg, Code: code})
}

// APIError is a non-2xx daemon response decoded from the unified envelope.
type APIError struct {
	// Op names the client operation that failed ("ingest", "decide", ...).
	Op string
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's machine-readable code.
	Code string
	// Message is the envelope's human diagnostic (or the raw body for a
	// legacy non-JSON error).
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s: %d %s: %s", e.Op, e.Status, e.Code, e.Message)
}

// Is maps envelope codes onto the package's error sentinels, so
// errors.Is(err, ErrDraining) works on any client method's failure.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrDraining:
		return e.Code == CodeDraining
	case ErrParamsMismatch:
		return e.Code == CodeParamMismatch
	case ErrReadOnly:
		return e.Code == CodeReadOnly
	case ErrNotReplica:
		return e.Code == CodeNotReplica
	case ErrUnsupportedKind:
		return e.Code == CodeUnsupportedKind
	case ErrUnknownPolicy:
		return e.Code == CodeUnknownPolicy
	}
	return false
}
