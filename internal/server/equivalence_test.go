package server

import (
	"context"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/faults"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// expectedDecisions replays a stream through a fresh in-process controller
// (the way internal/harness drives it) and records the per-event decision.
func expectedDecisions(params core.Params, s trace.Stream) []Decision {
	ctl := core.New(params)
	var out []Decision
	var instr uint64
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		instr += uint64(ev.Gap)
		ctl.AddInstrs(uint64(ev.Gap))
		v := ctl.OnBranch(ev.Branch, ev.Taken, instr)
		dir, live := ctl.Speculating(ev.Branch)
		out = append(out, Decision{Verdict: v, State: ctl.BranchState(ev.Branch), Dir: dir, Live: live})
	}
}

// TestEndToEndEquivalenceWithHarness is the tentpole acceptance check at the
// package level: a calibrated workload replayed over HTTP produces the same
// controller decisions as the in-process replay of the identical trace
// (bitwise-equal decision sequence). cmd/reactiveload -verify repeats this
// across real sockets.
func TestEndToEndEquivalenceWithHarness(t *testing.T) {
	params := core.DefaultParams().Scaled(100)
	spec := workload.MustBuild("gzip", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.02,
	})
	_, c := newTestServer(t, Config{Params: params, Shards: 16})

	want := expectedDecisions(params, workload.NewGenerator(spec))

	gen := workload.NewGenerator(spec)
	buf := make([]trace.Event, 2048)
	var got []Decision
	for {
		n := gen.NextBatch(buf)
		if n == 0 {
			break
		}
		ds, err := c.Ingest(context.Background(), spec.Name, buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ds...)
	}

	if len(got) != len(want) {
		t.Fatalf("%d networked decisions, %d in-process", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: networked %v, in-process %v", i, got[i], want[i])
		}
	}
}

// TestEndToEndEquivalenceUnderFaults repeats the equivalence check with a
// hostile (faulted) stream: the service must track the same decisions the
// in-process controller makes for the identical perturbed trace.
func TestEndToEndEquivalenceUnderFaults(t *testing.T) {
	params := core.DefaultParams().Scaled(100)
	spec := workload.MustBuild("mcf", workload.InputEval, workload.Options{
		EventScale: workload.DefaultEventScale * 0.01,
	})
	mix := faults.IntensityMix(0.4, spec.Events, trace.BranchID(len(spec.Branches)), spec.Seed^0xfa)
	_, c := newTestServer(t, Config{Params: params, Shards: 16})

	want := expectedDecisions(params, mix.Apply(workload.NewGenerator(spec), spec.Events))

	faulted := mix.Apply(workload.NewGenerator(spec), spec.Events)
	var got []Decision
	batch := make([]trace.Event, 0, 1500)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		ds, err := c.Ingest(context.Background(), spec.Name, batch)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ds...)
		batch = batch[:0]
	}
	for {
		ev, ok := faulted.Next()
		if !ok {
			break
		}
		batch = append(batch, ev)
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()

	if len(got) != len(want) {
		t.Fatalf("%d networked decisions, %d in-process", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: networked %v, in-process %v", i, got[i], want[i])
		}
	}
}
