package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"reactivespec/internal/obs"
	"reactivespec/internal/wal"
)

// traceEqResult is one scenario run's observable output: every networked
// decision byte in ingest order, plus all counter-typed reactived_* samples
// from the primary's and the replica's registries.
type traceEqResult struct {
	decisions []byte
	counters  map[string]string
}

// counterSamples scrapes reg and returns sample-line → value for every
// family typed "counter" (gauges like uptime vary run to run; summaries
// carry timings that tracing legitimately does not change).
func counterSamples(t *testing.T, prefix string, reg *obs.Registry, into map[string]string) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	counter := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			counter[fields[2]] = fields[3] == "counter"
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			sp := strings.LastIndexByte(line, ' ')
			if counter[name] {
				into[prefix+line[:sp]] = line[sp+1:]
			}
		}
	}
}

// runTraceEquivalence drives identical traffic down all three ingest paths —
// per-batch POST, a streaming session, and direct replicated apply — against
// servers configured with the given tracer (nil = tracing off).
func runTraceEquivalence(t *testing.T, tracer *obs.Tracer, replicaTrace uint64) traceEqResult {
	t.Helper()
	ctx := context.Background()
	wlog, err := wal.Open(wal.Options{Dir: t.TempDir(), ParamsHash: ParamsHash(testParams()), Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	s := New(Config{Params: testParams(), Shards: 4, WAL: wlog, Trace: tracer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := Connect(ts.URL, WithHTTPClient(ts.Client()), WithTracer(tracer))

	evs := synthEvents(9000, 11)
	const chunk = 1500
	res := traceEqResult{counters: map[string]string{}}
	tally := func(ds []Decision) {
		for _, d := range ds {
			res.decisions = append(res.decisions, d.Encode())
		}
	}

	for off := 0; off < len(evs); off += chunk {
		ds, err := c.Ingest(ctx, "post-prog", evs[off:off+chunk])
		if err != nil {
			t.Fatal(err)
		}
		tally(ds)
	}

	st, err := c.OpenStream(ctx, "stream-prog")
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(evs); off += chunk {
		if err := st.Send(ctx, evs[off:off+chunk]); err != nil {
			t.Fatal(err)
		}
		ds, err := st.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		tally(ds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rlog, err := wal.Open(wal.Options{Dir: t.TempDir(), ParamsHash: ParamsHash(testParams()), Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	r := New(Config{Params: testParams(), Shards: 4, WAL: rlog, Replica: true, Trace: tracer})
	for off := 0; off < len(evs); off += chunk {
		if err := r.ApplyReplicated("repl-prog", evs[off:off+chunk], replicaTrace); err != nil {
			t.Fatal(err)
		}
	}

	counterSamples(t, "primary/", s.Registry(), res.counters)
	counterSamples(t, "replica/", r.Registry(), res.counters)
	return res
}

// TestTracingEquivalence pins the zero-interference contract of the span
// tracer: with every batch sampled (1 in 1), decisions are byte-identical
// and every counter-typed reactived_* family lands on exactly the same
// values as a run with tracing compiled out (nil tracer), across the POST,
// stream, and replication apply paths.
func TestTracingEquivalence(t *testing.T) {
	off := runTraceEquivalence(t, nil, 0)

	tracer := obs.NewTracer("primary", 1)
	tracer.SetOutput(io.Discard) // exercise the encode+write path too
	defer tracer.Close()
	on := runTraceEquivalence(t, tracer, 42)

	if !bytes.Equal(off.decisions, on.decisions) {
		t.Errorf("decision bytes differ with tracing on: %d vs %d bytes", len(on.decisions), len(off.decisions))
	}
	var diffs []string
	for k, v := range off.counters {
		if ov, ok := on.counters[k]; !ok || ov != v {
			diffs = append(diffs, fmt.Sprintf("%s: off=%s on=%s", k, v, ov))
		}
	}
	for k := range on.counters {
		if _, ok := off.counters[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: only present with tracing on", k))
		}
	}
	if len(diffs) > 0 {
		t.Errorf("counters drift with tracing on:\n  %s", strings.Join(diffs, "\n  "))
	}
	if tracer.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans with an unbounded sink", tracer.Dropped())
	}
}
