package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"reactivespec/internal/trace"
)

// TestIngestTruncatedBatchPartialApply damages the framing mid-body: the
// frames decoded before the damage must be applied and answered (status 200
// with a trailing truncation record), not discarded behind a bare 400.
func TestIngestTruncatedBatchPartialApply(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 4})
	good := synthEvents(800, 21)

	var body bytes.Buffer
	if err := trace.WriteFrame(&body, good); err != nil {
		t.Fatal(err)
	}
	// Second frame: length prefix promising more bytes than the body holds.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 1<<20)
	body.Write(hdr[:n])
	body.WriteString("short")

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest?program=p", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s, want 200 (partial-apply, not wholesale rejection)", resp.Status)
	}
	if resp.ContentLength < 0 {
		t.Fatal("Content-Length not set on ingest response")
	}

	results, truncated, err := parseIngestResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if truncated == "" {
		t.Fatal("no truncation record in response")
	}
	if !strings.Contains(truncated, "truncated") {
		t.Fatalf("truncation message %q does not name the failure", truncated)
	}
	if len(results) != 1 || results[0].Err != nil || len(results[0].Decisions) != len(good) {
		t.Fatalf("expected 1 applied frame of %d decisions, got %+v", len(good), results)
	}

	// Exactly the first frame's events were applied.
	var total ShardMetrics
	for _, m := range s.Table().Metrics() {
		total.Add(m)
	}
	if total.Events != uint64(len(good)) {
		t.Fatalf("applied %d events, want %d", total.Events, len(good))
	}

	// The truncation is counted.
	m, err := NewClient(ts.URL, ts.Client()).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "reactived_batches_truncated_total 1") {
		t.Error("reactived_batches_truncated_total not incremented")
	}
	if !strings.Contains(m, "reactived_ingest_response_errors_total 0") {
		t.Error("reactived_ingest_response_errors_total missing from exposition")
	}
}

// TestClientSurfacesBatchTruncation pins the client-side contract: a
// truncated batch yields the applied prefix's results plus a
// *BatchTruncatedError saying "applied N of M frames".
func TestClientSurfacesBatchTruncation(t *testing.T) {
	// A canned daemon that decodes only the first frame, then claims the
	// framing was lost.
	canned := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fr := trace.NewFrameReader(r.Body)
		events, err := fr.Next()
		if err != nil {
			t.Errorf("canned daemon: %v", err)
		}
		var resp []byte
		resp = append(resp, respMagic[:]...)
		var tmp [binary.MaxVarintLen64]byte
		put := func(v uint64) { resp = append(resp, tmp[:binary.PutUvarint(tmp[:], v)]...) }
		put(1)
		resp = append(resp, ingestApplied)
		put(uint64(len(events)))
		for range events {
			resp = append(resp, Decision{}.Encode())
		}
		const msg = "trace: malformed frame: frame 1 truncated"
		resp = append(resp, ingestTruncated)
		put(uint64(len(msg)))
		resp = append(resp, msg...)
		w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
		w.Write(resp)
	}))
	defer canned.Close()

	c := NewClient(canned.URL, canned.Client())
	frames := [][]trace.Event{synthEvents(10, 1), synthEvents(20, 2), synthEvents(30, 3)}
	results, err := c.IngestFrames(context.Background(), "p", frames)
	var te *BatchTruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *BatchTruncatedError", err)
	}
	if te.Applied != 1 || te.Sent != 3 {
		t.Fatalf("Applied/Sent = %d/%d, want 1/3", te.Applied, te.Sent)
	}
	if !strings.Contains(err.Error(), "applied 1 of 3 frames") {
		t.Fatalf("error %q does not surface the applied/sent counts", err)
	}
	if len(results) != 1 || len(results[0].Decisions) != len(frames[0]) {
		t.Fatalf("expected the applied frame's results alongside the error, got %+v", results)
	}
}

// TestIngestResponseContentLength checks the exact header value on a normal
// batch.
func TestIngestResponseContentLength(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 2})
	evs := synthEvents(100, 9)
	var body bytes.Buffer
	if err := trace.WriteFrame(&body, evs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest?program=p", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != int64(buf.Len()) {
		t.Fatalf("Content-Length %d, body %d bytes", resp.ContentLength, buf.Len())
	}
}
