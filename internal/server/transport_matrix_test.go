package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"reactivespec/internal/trace"
)

// TestTransportDecisionModeMatrix is the cross-transport, cross-encoding
// equivalence pin: every transport (per-batch POST, HTTP-upgraded stream, raw
// TCP stream, unix-domain stream) crossed with every decision encoding
// (plain, RLE, change-only) must produce byte-identical decisions for the
// same event sequence, across seeds and windows. Run it with -race to cover
// the concurrency claim too.
func TestTransportDecisionModeMatrix(t *testing.T) {
	const batch = 900
	modes := map[string]StreamDecisions{
		"plain":  StreamDecisionsPlain,
		"rle":    StreamDecisionsRLE,
		"change": StreamDecisionsChangeOnly,
	}
	for _, seed := range []uint64{3, 21} {
		evs := synthEvents(12_000, seed)
		// The POST reference for this seed.
		_, postC := newTestServer(t, Config{Shards: 8})
		var want []Decision
		for _, b := range streamBatches(evs, batch) {
			ds, err := postC.Ingest(context.Background(), "gzip", b)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ds...)
		}

		check := func(t *testing.T, got []Decision) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%d decisions, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("decision %d = %v, want %v", i, got[i], want[i])
				}
			}
		}

		for modeName, mode := range modes {
			for _, window := range []int{1, 16} {
				opts := []StreamOption{WithStreamWindow(window), WithStreamDecisions(mode)}

				t.Run(fmt.Sprintf("seed=%d/http-stream/%s/w=%d", seed, modeName, window), func(t *testing.T) {
					_, c := newTestServer(t, Config{Shards: 8})
					st, err := c.OpenStream(context.Background(), "gzip", opts...)
					if err != nil {
						t.Fatal(err)
					}
					got := runSession(t, st, streamBatches(evs, batch))
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					check(t, got)
				})

				t.Run(fmt.Sprintf("seed=%d/tcp-stream/%s/w=%d", seed, modeName, window), func(t *testing.T) {
					s, _ := newTestServer(t, Config{Shards: 8})
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						t.Fatal(err)
					}
					defer ln.Close()
					go s.ServeStream(ln)
					st, err := DialStream(context.Background(), ln.Addr().String(), "gzip", s.paramsHash, opts...)
					if err != nil {
						t.Fatal(err)
					}
					got := runSession(t, st, streamBatches(evs, batch))
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					check(t, got)
				})

				t.Run(fmt.Sprintf("seed=%d/unix-stream/%s/w=%d", seed, modeName, window), func(t *testing.T) {
					s, _ := newTestServer(t, Config{Shards: 8})
					sock := filepath.Join(t.TempDir(), "s.sock")
					ln, err := net.Listen("unix", sock)
					if err != nil {
						t.Fatal(err)
					}
					defer ln.Close()
					go s.ServeStream(ln)
					st, err := DialStream(context.Background(), "unix://"+sock, "gzip", s.paramsHash, opts...)
					if err != nil {
						t.Fatal(err)
					}
					got := runSession(t, st, streamBatches(evs, batch))
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					check(t, got)
				})
			}
		}
	}
}

// TestStreamProto2InteropByteExact drives the raw wire as a proto-2 client
// against today's proto-3 server and pins the backward-compatibility claim
// byte for byte: the ack is exactly the pre-flag encoding, and every decision
// frame is a plain 'D' whose payload matches what the pre-coalescing server
// sent.
func TestStreamProto2InteropByteExact(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.ServeStream(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// The handshake a proto-2 build emits, assembled by hand.
	var wire []byte
	wire = append(wire, 'R', 'S', 'H', 'S')
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { wire = append(wire, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(2) // proto 2, no flag bits
	put(s.paramsHash)
	put(4) // window
	put(uint64(len("old")))
	wire = append(wire, "old"...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}

	// The ack bytes a proto-2 server would have written for this handshake.
	wantAck := []byte{'R', 'S', 'H', 'A', 0}
	putAck := func(v uint64) { wantAck = append(wantAck, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putAck(2)
	putAck(4)
	putAck(s.paramsHash)
	gotAck := make([]byte, len(wantAck))
	if _, err := readFull(br, gotAck); err != nil {
		t.Fatalf("reading ack: %v", err)
	}
	if !bytes.Equal(gotAck, wantAck) {
		t.Fatalf("proto-2 ack bytes changed:\n got %x\nwant %x", gotAck, wantAck)
	}

	// Two event frames; every response must be a plain 'D' frame whose
	// payload is the exact pre-coalescing encoding.
	evs := synthEvents(2000, 5)
	tab := NewTable(s.cfg.Params, 1)
	var instr uint64
	for i, b := range streamBatches(evs, 500) {
		payload := trace.EncodeFrameAppend(trace.AppendTraceContext(nil, 0), b)
		if _, err := conn.Write(trace.AppendSessionFrame(nil, trace.StreamFrameEvents, payload)); err != nil {
			t.Fatal(err)
		}
		var wantDecisions []byte
		wantDecisions, instr = tab.ApplyBatch("old", b, instr, nil)
		wantFrame := trace.AppendSessionFrame(nil, trace.StreamFrameDecisions,
			trace.AppendDecisionsPlain(nil, wantDecisions))
		gotFrame := make([]byte, len(wantFrame))
		if _, err := readFull(br, gotFrame); err != nil {
			t.Fatalf("batch %d: reading decisions: %v", i, err)
		}
		if !bytes.Equal(gotFrame, wantFrame) {
			t.Fatalf("batch %d: proto-2 decision frame bytes changed:\n got %x\nwant %x",
				i, gotFrame, wantFrame)
		}
	}
}

// readFull is io.ReadFull over the session reader, kept local so byte-exact
// comparisons read raw wire without the frame parser's help.
func readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
