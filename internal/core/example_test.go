package core_test

import (
	"fmt"

	"reactivespec/internal/core"
)

// Example demonstrates the controller's lifecycle on one reversing branch:
// monitored, selected, evicted at the reversal, and re-selected in the new
// direction.
func Example() {
	params := core.Params{
		MonitorPeriod:    100,
		SelectThreshold:  0.995,
		EvictThreshold:   1_000,
		MisspecStep:      50,
		CorrectStep:      1,
		WaitPeriod:       1_000,
		MaxOptimizations: 5,
	}
	ctl := core.New(params)
	ctl.OnTransition = func(tr core.Transition) {
		fmt.Printf("execution %d: %s -> %s\n", tr.Exec, tr.From, tr.To)
	}

	var instr uint64
	observe := func(taken bool, n int) {
		for i := 0; i < n; i++ {
			instr += 6
			ctl.OnBranch(0, taken, instr)
		}
	}
	observe(true, 5_000)  // stably taken: selected after one monitor window
	observe(false, 2_000) // reverses: evicted, re-monitored, re-selected

	st := ctl.Stats()
	fmt.Printf("correct %.1f%%, incorrect %.2f%%\n",
		100*st.CorrectFrac(), 100*st.MisspecFrac())
	// Output:
	// execution 100: monitor -> biased
	// execution 5020: biased -> monitor
	// execution 5120: monitor -> biased
	// correct 96.9%, incorrect 0.29%
}
