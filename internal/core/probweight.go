package core

// probWeightPolicy estimates the unit's outcome probability with an
// exponential moving average and deploys speculation while the estimate's
// confidence stays inside a hysteresis band — a probabilistic-dataflow-style
// weighting (after Di Pierro & Wiklicky: program behavior as a probability
// distribution rather than a sampled window) in place of the paper's
// windowed monitor.
//
// Mechanics: est tracks P(outcome=true) as an EWMA with a fixed power-of-two
// step (probAlpha), seeded at 0.5. The first MonitorPeriod events only warm
// the estimate. After warmup, the unit deploys the likelier direction when
// its confidence max(est, 1-est) reaches SelectThreshold, and undeploys when
// confidence falls below EvictBias — both through the same
// optimization-latency deployment machinery as the reactive FSM, so deployed
// code goes live (and lame-ducks out) OptLatency instructions later.
// MaxOptimizations retires oscillating units exactly like the paper's model.
//
// The policy is a pure function of the event sequence (the EWMA uses a fixed
// step, never a clock or RNG), so replay and replication reproduce it
// bit-exactly.
type probWeightPolicy struct {
	params Params

	state State
	dep   deployment

	est  float64 // EWMA estimate of P(outcome=true)
	warm uint64  // events consumed of the warmup window

	direction  bool
	execs      uint64
	optCount   uint32
	evictions  uint32
	everBiased bool

	stats      Stats
	transition func(Transition)
}

// probAlpha is the EWMA step. A power of two keeps the float arithmetic
// exactly reproducible across platforms (every operation is an IEEE-exact
// multiply-add on well-scaled values).
const probAlpha = 1.0 / 32

func newProbWeightPolicy(params Params) *probWeightPolicy {
	return &probWeightPolicy{params: params, est: 0.5}
}

func (p *probWeightPolicy) OnEvent(outcome bool, instr uint64) (Verdict, State, bool, bool) {
	p.execs++
	p.stats.Events++

	p.dep.tick(instr)
	verdict := NotSpeculated
	if p.dep.live() {
		if outcome == p.dep.liveDir {
			verdict = Correct
			p.stats.Correct++
		} else {
			verdict = Misspec
			p.stats.Misspec++
		}
	} else {
		p.stats.NotSpec++
	}

	x := 0.0
	if outcome {
		x = 1.0
	}
	p.est += probAlpha * (x - p.est)

	if p.state == Retired {
		return verdict, p.state, p.dep.liveDir, p.dep.live()
	}
	if p.warm < p.params.MonitorPeriod {
		p.warm++
		return verdict, p.state, p.dep.liveDir, p.dep.live()
	}

	dir := p.est >= 0.5
	conf := p.est
	if !dir {
		conf = 1 - p.est
	}
	switch p.state {
	case Monitor:
		if conf >= p.params.SelectThreshold {
			if p.optCount >= p.params.MaxOptimizations {
				p.stats.Retirals++
				p.setState(Retired, instr)
				break
			}
			p.optCount++
			p.direction = dir
			p.everBiased = true
			p.stats.Selections++
			p.dep.deploy(dir, instr+p.params.OptLatency)
			p.setState(Biased, instr)
		}
	case Biased:
		if p.params.NoEviction {
			break
		}
		// Like the reactive FSM, outcomes only count against the deployed
		// code once it is actually live in the classified direction.
		if !p.dep.live() || p.dep.liveDir != p.direction {
			break
		}
		if dir != p.direction || conf < p.params.EvictBias {
			p.evictions++
			p.stats.Evictions++
			p.dep.undeploy(instr + p.params.OptLatency)
			p.setState(Monitor, instr)
		}
	}
	return verdict, p.state, p.dep.liveDir, p.dep.live()
}

func (p *probWeightPolicy) setState(to State, instr uint64) {
	from := p.state
	p.state = to
	if p.transition != nil {
		p.transition(Transition{From: from, To: to, Instr: instr, Exec: p.execs})
	}
}

func (p *probWeightPolicy) AddInstrs(n uint64)        { p.stats.Instrs += n }
func (p *probWeightPolicy) State() State              { return p.state }
func (p *probWeightPolicy) Speculating() (bool, bool) { return p.dep.liveDir, p.dep.live() }
func (p *probWeightPolicy) Stats() Stats              { return p.stats }
func (p *probWeightPolicy) SetStats(s Stats)          { p.stats = s }

func (p *probWeightPolicy) Export() (BranchState, bool) {
	if p.execs == 0 && p.state == Monitor {
		return BranchState{}, false
	}
	return BranchState{
		State:      p.state,
		LiveDir:    p.dep.liveDir,
		LiveUntil:  p.dep.liveUntil,
		NextDir:    p.dep.nextDir,
		NextAt:     p.dep.nextAt,
		MonSeen:    p.warm,
		Direction:  p.direction,
		Execs:      p.execs,
		OptCount:   p.optCount,
		Evictions:  p.evictions,
		EverBiased: p.everBiased,
		ProbEst:    p.est,
	}, true
}

func (p *probWeightPolicy) Import(st BranchState) {
	p.state = st.State
	p.dep = deployment{
		liveDir:   st.LiveDir,
		liveUntil: st.LiveUntil,
		nextDir:   st.NextDir,
		nextAt:    st.NextAt,
	}
	p.warm = st.MonSeen
	p.direction = st.Direction
	p.execs = st.Execs
	p.optCount = st.OptCount
	p.evictions = st.Evictions
	p.everBiased = st.EverBiased
	p.est = st.ProbEst
}

func (p *probWeightPolicy) OnTransition(f func(Transition)) { p.transition = f }
