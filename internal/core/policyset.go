package core

import "reactivespec/internal/trace"

// PolicySet drives one policy instance per tracked unit, presenting the same
// multi-unit surface as Controller so any registered policy can ride the
// harness, the experiments, and reactiveload's verification mirror. For the
// reactive policy a PolicySet behaves identically to one multi-branch
// Controller, because the controller already tracks each branch
// independently.
//
// PolicySet is not safe for concurrent use.
type PolicySet struct {
	name   string
	params Params
	units  []Policy
	stats  Stats
}

// NewPolicySet builds a per-unit policy set for the registered policy name
// ("" = reactive).
func NewPolicySet(name string, params Params) (*PolicySet, error) {
	// Validate the name once up front so unitFor can't fail later.
	if _, err := NewPolicy(name, params); err != nil {
		return nil, err
	}
	return &PolicySet{name: name, params: params}, nil
}

// Name returns the set's registered policy name ("" normalizes to reactive).
func (s *PolicySet) Name() string {
	if s.name == "" {
		return PolicyReactive
	}
	return s.name
}

func (s *PolicySet) unitFor(id trace.BranchID) Policy {
	if int(id) >= len(s.units) {
		grown := make([]Policy, int(id)+1+int(id)/2)
		copy(grown, s.units)
		s.units = grown
	}
	if s.units[id] == nil {
		p, err := NewPolicy(s.name, s.params)
		if err != nil {
			// NewPolicySet validated the name; this cannot happen.
			panic(err)
		}
		s.units[id] = p
	}
	return s.units[id]
}

// OnBranch observes one dynamic event for the unit and returns the verdict —
// the harness.Controller surface, serving every kind's boolean outcome.
func (s *PolicySet) OnBranch(id trace.BranchID, outcome bool, instr uint64) Verdict {
	v, _, _, _ := s.unitFor(id).OnEvent(outcome, instr)
	s.tally(v)
	return v
}

// OnEvent observes one dynamic event and returns the full decision tuple,
// mirroring what a serving-table entry encodes.
func (s *PolicySet) OnEvent(id trace.BranchID, outcome bool, instr uint64) (Verdict, State, bool, bool) {
	v, st, dir, live := s.unitFor(id).OnEvent(outcome, instr)
	s.tally(v)
	return v, st, dir, live
}

func (s *PolicySet) tally(v Verdict) {
	s.stats.Events++
	switch v {
	case Correct:
		s.stats.Correct++
	case Misspec:
		s.stats.Misspec++
	default:
		s.stats.NotSpec++
	}
}

// AddInstrs accounts dynamic instructions at the set level.
func (s *PolicySet) AddInstrs(n uint64) { s.stats.Instrs += n }

// UnitState returns the unit's classification state (Monitor when unseen).
func (s *PolicySet) UnitState(id trace.BranchID) State {
	if int(id) >= len(s.units) || s.units[id] == nil {
		return Monitor
	}
	return s.units[id].State()
}

// Speculating reports whether speculation is live for the unit and its
// direction.
func (s *PolicySet) Speculating(id trace.BranchID) (dir, live bool) {
	if int(id) >= len(s.units) || s.units[id] == nil {
		return false, false
	}
	return s.units[id].Speculating()
}

// Stats returns the set-level counters. Events/Correct/Misspec/NotSpec and
// Instrs are accounted here; the selection/eviction/retiral counters are
// summed from the live units.
func (s *PolicySet) Stats() Stats {
	out := s.stats
	for _, u := range s.units {
		if u == nil {
			continue
		}
		us := u.Stats()
		out.Selections += us.Selections
		out.Evictions += us.Evictions
		out.Retirals += us.Retirals
	}
	return out
}
