// Package core implements the paper's primary contribution: the reactive
// speculation-control model of Section 3 (Figure 4b).
//
// Each static behavior (a conditional branch in the paper's study) is tracked
// by a three-state classifier:
//
//	monitor  — observe a window of executions and measure bias;
//	biased   — speculate in the majority direction; a saturating counter
//	           (+50 on misspeculation, −1 on correct speculation) provides
//	           hysteresis, and reaching the eviction threshold sends the
//	           branch back to monitor ("eviction");
//	unbiased — do not speculate; after a wait period, return to monitor
//	           ("revisit").
//
// The two reactive arcs — eviction and revisit — are the paper's key claim:
// their presence is fundamental, nearly everything else is a tunable detail.
// Transitions into and out of the biased state correspond to code
// (re-)optimization and therefore take effect only after a configurable
// optimization latency, modeled in instructions; the controller keeps
// counting the speculation outcomes of evicted-but-not-yet-repaired code
// ("lame duck" deployments), exactly as Section 3.1 describes.
package core

// Params configures the reactive model. The zero value is not meaningful;
// start from DefaultParams.
type Params struct {
	// MonitorPeriod is the number of executions observed in the monitor
	// state before a classification decision (Table 2: 10,000).
	MonitorPeriod uint64
	// SelectThreshold is the observed bias required to enter the biased
	// state (Table 2: 99.5%).
	SelectThreshold float64
	// EvictThreshold is the saturating-counter ceiling that triggers
	// eviction from the biased state (Table 2: 10,000).
	EvictThreshold uint32
	// MisspecStep is the counter increment on a misspeculation (50).
	MisspecStep uint32
	// CorrectStep is the counter decrement on a correct speculation (1).
	CorrectStep uint32
	// WaitPeriod is the number of executions spent in the unbiased state
	// before revisiting the monitor state (Table 2: 1,000,000).
	WaitPeriod uint64
	// MaxOptimizations caps how many times a branch may enter the biased
	// state; per Table 2 the model "will not optimize a sixth time" (5).
	MaxOptimizations uint32
	// OptLatency is the (re-)optimization latency in dynamic instructions
	// (Table 2: 1,000,000). Entering the biased state deploys speculation
	// OptLatency instructions later; eviction leaves the stale speculative
	// code live for OptLatency further instructions.
	OptLatency uint64

	// NoEviction removes the biased→monitor arc (open-loop speculation;
	// the Figure 5 "x" configuration).
	NoEviction bool
	// NoRevisit removes the unbiased→monitor arc (the Figure 5 "+"
	// configuration).
	NoRevisit bool

	// EvictBySampling replaces the continuous saturating counter with
	// periodic bias re-sampling: every SamplePeriod executions, the bias
	// over SampleLen executions is measured and the branch evicted if it
	// falls below EvictBias (Section 3.3, "evicting by sampling").
	EvictBySampling bool
	// SampleLen is the sampled executions per eviction-sampling cycle.
	SampleLen uint64
	// SamplePeriod is the eviction-sampling cycle length (a 10% duty
	// cycle in the paper: 1,000 of every 10,000 executions).
	SamplePeriod uint64
	// EvictBias is the sampled-bias floor below which a sampled branch is
	// evicted (98%).
	EvictBias float64

	// MonitorSampleRate, when ≥ 2, observes only one in every
	// MonitorSampleRate executions during the monitor state
	// (Section 3.3, "sampling in monitor state": 1-in-8).
	MonitorSampleRate uint32
}

// DefaultParams returns the paper's Table 2 parameters.
func DefaultParams() Params {
	return Params{
		MonitorPeriod:    10_000,
		SelectThreshold:  0.995,
		EvictThreshold:   10_000,
		MisspecStep:      50,
		CorrectStep:      1,
		WaitPeriod:       1_000_000,
		MaxOptimizations: 5,
		OptLatency:       1_000_000,
		SampleLen:        1_000,
		SamplePeriod:     10_000,
		EvictBias:        0.98,
	}
}

// Scaled returns a copy with every count-based parameter divided by k,
// preserving all the model's rate semantics (selection and eviction bias
// thresholds, counter step ratio) while shifting the absolute counts to
// match runs k× shorter than the paper's. The experiment harness uses k=10
// together with workloads at 1/250 of the paper's instruction counts; the
// paper itself uses a 1,000-execution monitor period for its short timing
// runs (Section 4.2).
func (p Params) Scaled(k uint64) Params {
	if k <= 1 {
		return p
	}
	div := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		s := v / k
		if s == 0 {
			s = 1
		}
		return s
	}
	p.MonitorPeriod = div(p.MonitorPeriod)
	p.EvictThreshold = uint32(div(uint64(p.EvictThreshold)))
	p.WaitPeriod = div(p.WaitPeriod)
	p.OptLatency = div(p.OptLatency)
	p.SampleLen = div(p.SampleLen)
	p.SamplePeriod = div(p.SamplePeriod)
	return p
}

// WithNoEviction returns a copy without the biased→monitor arc.
func (p Params) WithNoEviction() Params { p.NoEviction = true; return p }

// WithNoRevisit returns a copy without the unbiased→monitor arc.
func (p Params) WithNoRevisit() Params { p.NoRevisit = true; return p }

// WithSamplingEviction returns a copy that evicts by periodic bias sampling.
func (p Params) WithSamplingEviction() Params { p.EvictBySampling = true; return p }

// WithMonitorSampling returns a copy that samples one in n executions while
// monitoring.
func (p Params) WithMonitorSampling(n uint32) Params { p.MonitorSampleRate = n; return p }

// WithWaitPeriod returns a copy with the given revisit wait period.
func (p Params) WithWaitPeriod(w uint64) Params { p.WaitPeriod = w; return p }

// WithEvictThreshold returns a copy with the given eviction threshold.
func (p Params) WithEvictThreshold(t uint32) Params { p.EvictThreshold = t; return p }

// WithOptLatency returns a copy with the given optimization latency.
func (p Params) WithOptLatency(l uint64) Params { p.OptLatency = l; return p }
