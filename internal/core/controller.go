package core

import (
	"fmt"
	"math"

	"reactivespec/internal/trace"
)

// State is a branch's classification state.
type State uint8

const (
	// Monitor means the branch's bias is being measured.
	Monitor State = iota
	// Biased means the branch is selected for speculation.
	Biased
	// Unbiased means the branch is not worth speculating on for now.
	Unbiased
	// Retired means the branch exceeded the oscillation limit and will
	// never be speculated on again.
	Retired
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Monitor:
		return "monitor"
	case Biased:
		return "biased"
	case Unbiased:
		return "unbiased"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Verdict reports how one dynamic branch instance interacted with the
// currently deployed speculative code.
type Verdict uint8

const (
	// NotSpeculated means no speculation covered this instance.
	NotSpeculated Verdict = iota
	// Correct means the instance matched the speculated direction.
	Correct
	// Misspec means the instance contradicted the speculated direction.
	Misspec
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case NotSpeculated:
		return "not-speculated"
	case Correct:
		return "correct"
	case Misspec:
		return "misspec"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Transition describes one classification change, delivered to the optional
// transition hook. Instr is the global dynamic instruction count and Exec the
// branch's execution index at the transition. Counter is the branch's
// saturating eviction counter at the instant of the transition: the eviction
// threshold on a squash-triggered demotion (biased→monitor), and typically
// zero elsewhere.
type Transition struct {
	Branch   trace.BranchID
	From, To State
	Instr    uint64
	Exec     uint64
	Counter  uint32
}

// deployment tracks the lifecycle of the speculative code generated for one
// branch, independent of its classification state: selections become live
// OptLatency instructions later, and evicted code stays live ("lame duck")
// for OptLatency instructions until the repaired code is deployed.
type deployment struct {
	liveDir   bool
	liveUntil uint64 // 0 = not live; math.MaxUint64 = live indefinitely
	nextDir   bool
	nextAt    uint64 // 0 = nothing pending
}

func (d *deployment) tick(instr uint64) {
	if d.liveUntil != 0 && instr >= d.liveUntil {
		d.liveUntil = 0
	}
	if d.nextAt != 0 && instr >= d.nextAt {
		d.liveDir = d.nextDir
		d.liveUntil = math.MaxUint64
		d.nextAt = 0
	}
}

func (d *deployment) live() bool { return d.liveUntil != 0 }

// deploy schedules speculation in direction dir to become live at instant at.
func (d *deployment) deploy(dir bool, at uint64) {
	if at == 0 {
		at = 1
	}
	d.nextDir = dir
	d.nextAt = at
}

// undeploy schedules the currently live speculation to be removed at instant
// at.
func (d *deployment) undeploy(at uint64) {
	if at == 0 {
		at = 1
	}
	if d.liveUntil != 0 && at < d.liveUntil {
		d.liveUntil = at
	}
	d.nextAt = 0
}

// branch is the per-branch classifier state.
type branch struct {
	state State
	dep   deployment

	// Monitor-state window.
	monSeen  uint64 // executions elapsed in the current window
	monExecs uint64 // sampled executions
	monTaken uint64 // sampled taken outcomes

	// Biased-state bookkeeping.
	direction bool
	counter   uint32
	cyclePos  uint64 // eviction-by-sampling cycle position
	smpExecs  uint64
	smpWrong  uint64

	// Unbiased-state bookkeeping.
	waitLeft uint64

	// Lifecycle statistics.
	execs      uint64
	optCount   uint32
	evictions  uint32
	everBiased bool
}

// Controller is the reactive speculation controller. It tracks every static
// branch independently (Section 3.2) and reports, for each dynamic instance,
// whether it was covered by live speculative code and with what outcome.
//
// Controller is not safe for concurrent use; drive it from one goroutine.
type Controller struct {
	params   Params
	branches []branch

	// OnTransition, if non-nil, is invoked after every classification
	// change. It must not call back into the controller.
	OnTransition func(Transition)

	stats Stats
}

// Stats aggregates a controller's lifetime counters.
type Stats struct {
	// Events is the number of dynamic branch instances observed.
	Events uint64
	// Instrs is the number of dynamic instructions observed.
	Instrs uint64
	// Correct and Misspec count speculation outcomes; NotSpec counts
	// instances not covered by live speculation.
	Correct, Misspec, NotSpec uint64
	// Selections counts entries into the biased state; Evictions counts
	// biased→monitor transitions; Retirals counts branches hitting the
	// oscillation limit.
	Selections, Evictions, Retirals uint64
}

// CorrectFrac returns correct speculations as a fraction of all events.
func (s Stats) CorrectFrac() float64 { return frac(s.Correct, s.Events) }

// MisspecFrac returns misspeculations as a fraction of all events.
func (s Stats) MisspecFrac() float64 { return frac(s.Misspec, s.Events) }

// MisspecDistance returns the mean dynamic instructions between
// misspeculations (+Inf if none occurred).
func (s Stats) MisspecDistance() float64 {
	if s.Misspec == 0 {
		return math.Inf(1)
	}
	return float64(s.Instrs) / float64(s.Misspec)
}

func frac(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// New returns a controller with the given parameters.
func New(params Params) *Controller {
	return &Controller{params: params}
}

// Params returns the controller's configuration.
func (c *Controller) Params() Params { return c.params }

func (c *Controller) branchFor(id trace.BranchID) *branch {
	if int(id) >= len(c.branches) {
		grown := make([]branch, int(id)+1+int(id)/2)
		copy(grown, c.branches)
		c.branches = grown
	}
	return &c.branches[id]
}

// OnBranch observes one dynamic branch instance. instr is the global dynamic
// instruction count at the instance (monotonically non-decreasing across
// calls). The returned verdict reflects the speculative code live at this
// instant, which — because of optimization latency — may lag the branch's
// classification state.
func (c *Controller) OnBranch(id trace.BranchID, taken bool, instr uint64) Verdict {
	b := c.branchFor(id)
	b.execs++
	c.stats.Events++

	b.dep.tick(instr)
	verdict := NotSpeculated
	if b.dep.live() {
		if taken == b.dep.liveDir {
			verdict = Correct
			c.stats.Correct++
		} else {
			verdict = Misspec
			c.stats.Misspec++
		}
	} else {
		c.stats.NotSpec++
	}

	switch b.state {
	case Monitor:
		c.onMonitor(id, b, taken, instr)
	case Biased:
		c.onBiased(id, b, taken, instr)
	case Unbiased:
		c.onUnbiased(id, b, instr)
	case Retired:
		// Terminal; nothing to update.
	}
	return verdict
}

// AddInstrs accounts dynamic instructions (the gaps between branch events).
func (c *Controller) AddInstrs(n uint64) { c.stats.Instrs += n }

func (c *Controller) onMonitor(id trace.BranchID, b *branch, taken bool, instr uint64) {
	b.monSeen++
	rate := uint64(c.params.MonitorSampleRate)
	if rate < 2 || b.monSeen%rate == 0 {
		b.monExecs++
		if taken {
			b.monTaken++
		}
	}
	if b.monSeen < c.params.MonitorPeriod {
		return
	}
	// Window complete: classify.
	taken64, execs := b.monTaken, b.monExecs
	b.monSeen, b.monExecs, b.monTaken = 0, 0, 0
	if execs == 0 {
		c.transition(id, b, Unbiased, instr)
		b.waitLeft = c.params.WaitPeriod
		return
	}
	majTaken := taken64*2 >= execs
	maj := taken64
	if !majTaken {
		maj = execs - taken64
	}
	if float64(maj) >= c.params.SelectThreshold*float64(execs) {
		if b.optCount >= c.params.MaxOptimizations {
			// The oscillation limit: conservatively never
			// speculate on this branch again.
			c.stats.Retirals++
			c.transition(id, b, Retired, instr)
			return
		}
		b.optCount++
		b.direction = majTaken
		b.counter = 0
		b.cyclePos = 0
		b.smpExecs, b.smpWrong = 0, 0
		b.everBiased = true
		c.stats.Selections++
		b.dep.deploy(majTaken, instr+c.params.OptLatency)
		c.transition(id, b, Biased, instr)
		return
	}
	c.transition(id, b, Unbiased, instr)
	b.waitLeft = c.params.WaitPeriod
}

func (c *Controller) onBiased(id trace.BranchID, b *branch, taken bool, instr uint64) {
	if c.params.NoEviction {
		return
	}
	// Only count outcomes once the speculative code is actually live and
	// matches this classification (Section 3.1: counting starts after the
	// optimization latency has elapsed).
	if !b.dep.live() || b.dep.liveDir != b.direction {
		return
	}
	if c.params.EvictBySampling {
		c.onBiasedSampling(id, b, taken, instr)
		return
	}
	if taken != b.direction {
		next := b.counter + c.params.MisspecStep
		if next > c.params.EvictThreshold {
			next = c.params.EvictThreshold
		}
		b.counter = next
	} else if b.counter >= c.params.CorrectStep {
		b.counter -= c.params.CorrectStep
	} else {
		b.counter = 0
	}
	if b.counter >= c.params.EvictThreshold {
		c.evict(id, b, instr)
	}
}

func (c *Controller) onBiasedSampling(id trace.BranchID, b *branch, taken bool, instr uint64) {
	if b.cyclePos < c.params.SampleLen {
		b.smpExecs++
		if taken != b.direction {
			b.smpWrong++
		}
	}
	b.cyclePos++
	if b.cyclePos == c.params.SampleLen {
		// Sample complete: evaluate.
		if b.smpExecs > 0 {
			correct := float64(b.smpExecs-b.smpWrong) / float64(b.smpExecs)
			if correct < c.params.EvictBias {
				c.evict(id, b, instr)
				return
			}
		}
		b.smpExecs, b.smpWrong = 0, 0
	}
	if b.cyclePos >= c.params.SamplePeriod {
		b.cyclePos = 0
	}
}

func (c *Controller) evict(id trace.BranchID, b *branch, instr uint64) {
	b.evictions++
	c.stats.Evictions++
	// The stale speculative code remains deployed until the repaired
	// fragment is ready; its outcomes keep being counted.
	b.dep.undeploy(instr + c.params.OptLatency)
	b.monSeen, b.monExecs, b.monTaken = 0, 0, 0
	c.transition(id, b, Monitor, instr)
}

func (c *Controller) onUnbiased(id trace.BranchID, b *branch, instr uint64) {
	if c.params.NoRevisit {
		return
	}
	if b.waitLeft > 0 {
		b.waitLeft--
	}
	if b.waitLeft == 0 {
		b.monSeen, b.monExecs, b.monTaken = 0, 0, 0
		c.transition(id, b, Monitor, instr)
	}
}

func (c *Controller) transition(id trace.BranchID, b *branch, to State, instr uint64) {
	from := b.state
	b.state = to
	if c.OnTransition != nil {
		c.OnTransition(Transition{Branch: id, From: from, To: to, Instr: instr, Exec: b.execs, Counter: b.counter})
	}
}

// Stats returns the aggregate counters so far.
func (c *Controller) Stats() Stats { return c.stats }

// BranchState returns the classification state of a branch (Monitor for a
// branch never seen).
func (c *Controller) BranchState(id trace.BranchID) State {
	if int(id) >= len(c.branches) {
		return Monitor
	}
	return c.branches[id].state
}

// Speculating reports whether speculation is currently live for the branch
// and, if so, its direction. Note that, because of optimization latency,
// this can disagree with BranchState around transitions.
func (c *Controller) Speculating(id trace.BranchID) (dir, live bool) {
	if int(id) >= len(c.branches) {
		return false, false
	}
	b := &c.branches[id]
	return b.dep.liveDir, b.dep.live()
}

// StaticCounts summarizes per-branch lifecycle statistics: how many static
// branches were touched, how many ever entered the biased state, how many
// were ever evicted, and how many were retired by the oscillation limit
// (the Table 3 static columns).
func (c *Controller) StaticCounts() (touched, everBiased, everEvicted, retired int) {
	for i := range c.branches {
		b := &c.branches[i]
		if b.execs == 0 {
			continue
		}
		touched++
		if b.everBiased {
			everBiased++
		}
		if b.evictions > 0 {
			everEvicted++
		}
		if b.state == Retired {
			retired++
		}
	}
	return touched, everBiased, everEvicted, retired
}

// Evictions returns how many times the branch has been evicted.
func (c *Controller) Evictions(id trace.BranchID) uint32 {
	if int(id) >= len(c.branches) {
		return 0
	}
	return c.branches[id].evictions
}

// Optimizations returns how many times the branch entered the biased state.
func (c *Controller) Optimizations(id trace.BranchID) uint32 {
	if int(id) >= len(c.branches) {
		return 0
	}
	return c.branches[id].optCount
}
