package core

// selfTrainPolicy is the self-training profile applied online: observe the
// unit's first MonitorPeriod events, then decide once — deploy the majority
// direction permanently when its bias clears SelectThreshold, otherwise never
// speculate. There is no eviction and no revisit; both outcomes are terminal.
//
// This is the open-loop baseline the paper's Figure 5 plots as
// "self-train-99": it captures initial behavior perfectly and reacts to
// nothing, which is exactly the contrast the reactive arcs exist to fix.
type selfTrainPolicy struct {
	params Params

	state State
	dep   deployment

	monSeen  uint64
	monTaken uint64

	direction  bool
	execs      uint64
	everBiased bool

	stats      Stats
	transition func(Transition)
}

func (p *selfTrainPolicy) OnEvent(outcome bool, instr uint64) (Verdict, State, bool, bool) {
	p.execs++
	p.stats.Events++

	p.dep.tick(instr)
	verdict := NotSpeculated
	if p.dep.live() {
		if outcome == p.dep.liveDir {
			verdict = Correct
			p.stats.Correct++
		} else {
			verdict = Misspec
			p.stats.Misspec++
		}
	} else {
		p.stats.NotSpec++
	}

	if p.state == Monitor {
		p.monSeen++
		if outcome {
			p.monTaken++
		}
		if p.monSeen >= p.params.MonitorPeriod {
			p.classify(instr)
		}
	}
	return verdict, p.state, p.dep.liveDir, p.dep.live()
}

// classify makes the one-shot training decision at the end of the window.
func (p *selfTrainPolicy) classify(instr uint64) {
	majTaken := p.monTaken*2 >= p.monSeen
	maj := p.monTaken
	if !majTaken {
		maj = p.monSeen - p.monTaken
	}
	if float64(maj) >= p.params.SelectThreshold*float64(p.monSeen) {
		p.direction = majTaken
		p.everBiased = true
		p.stats.Selections++
		p.dep.deploy(majTaken, instr+p.params.OptLatency)
		p.setState(Biased, instr)
		return
	}
	p.setState(Unbiased, instr)
}

func (p *selfTrainPolicy) setState(to State, instr uint64) {
	from := p.state
	p.state = to
	if p.transition != nil {
		p.transition(Transition{From: from, To: to, Instr: instr, Exec: p.execs})
	}
}

func (p *selfTrainPolicy) AddInstrs(n uint64)        { p.stats.Instrs += n }
func (p *selfTrainPolicy) State() State              { return p.state }
func (p *selfTrainPolicy) Speculating() (bool, bool) { return p.dep.liveDir, p.dep.live() }
func (p *selfTrainPolicy) Stats() Stats              { return p.stats }
func (p *selfTrainPolicy) SetStats(s Stats)          { p.stats = s }

func (p *selfTrainPolicy) Export() (BranchState, bool) {
	if p.execs == 0 && p.state == Monitor {
		return BranchState{}, false
	}
	return BranchState{
		State:      p.state,
		LiveDir:    p.dep.liveDir,
		LiveUntil:  p.dep.liveUntil,
		NextDir:    p.dep.nextDir,
		NextAt:     p.dep.nextAt,
		MonSeen:    p.monSeen,
		MonTaken:   p.monTaken,
		Direction:  p.direction,
		Execs:      p.execs,
		EverBiased: p.everBiased,
	}, true
}

func (p *selfTrainPolicy) Import(st BranchState) {
	p.state = st.State
	p.dep = deployment{
		liveDir:   st.LiveDir,
		liveUntil: st.LiveUntil,
		nextDir:   st.NextDir,
		nextAt:    st.NextAt,
	}
	p.monSeen = st.MonSeen
	p.monTaken = st.MonTaken
	p.direction = st.Direction
	p.execs = st.Execs
	p.everBiased = st.EverBiased
}

func (p *selfTrainPolicy) OnTransition(f func(Transition)) { p.transition = f }
