package core

import (
	"testing"

	"reactivespec/internal/trace"
)

// FuzzController drives the controller with arbitrary event streams and
// checks its structural invariants: the verdict partition covers every
// event, per-branch counters respect their bounds, and retired branches
// never come back.
func FuzzController(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 0xff, 3, 3, 3}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nBranches uint8) {
		if nBranches == 0 {
			nBranches = 1
		}
		p := Params{
			MonitorPeriod:    4,
			SelectThreshold:  0.75,
			EvictThreshold:   60,
			MisspecStep:      50,
			CorrectStep:      1,
			WaitPeriod:       6,
			MaxOptimizations: 2,
			OptLatency:       uint64(len(data) % 17),
		}
		ctl := New(p)
		retiredAt := make(map[trace.BranchID]bool)
		instr := uint64(0)
		for _, b := range data {
			id := trace.BranchID(b % nBranches)
			taken := b&0x80 != 0
			instr += 1 + uint64(b%7)
			ctl.OnBranch(id, taken, instr)
			if ctl.BranchState(id) == Retired {
				retiredAt[id] = true
			} else if retiredAt[id] {
				t.Fatalf("branch %d left the retired state", id)
			}
		}
		st := ctl.Stats()
		if st.Correct+st.Misspec+st.NotSpec != st.Events {
			t.Fatalf("verdict partition broken: %+v", st)
		}
		if st.Events != uint64(len(data)) {
			t.Fatalf("Events = %d, want %d", st.Events, len(data))
		}
		for id := trace.BranchID(0); id < trace.BranchID(nBranches); id++ {
			if ctl.Optimizations(id) > p.MaxOptimizations {
				t.Fatalf("branch %d optimized %d times (limit %d)",
					id, ctl.Optimizations(id), p.MaxOptimizations)
			}
			if ctl.Evictions(id) > ctl.Optimizations(id) {
				t.Fatalf("branch %d evicted more than selected", id)
			}
		}
	})
}
