package core

import (
	"testing"

	"reactivespec/internal/trace"
)

func TestPolicyRegistry(t *testing.T) {
	for _, name := range append([]string{""}, PolicyNames()...) {
		if !ValidPolicy(name) {
			t.Errorf("ValidPolicy(%q) = false", name)
		}
		if _, err := NewPolicy(name, testParams()); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if ValidPolicy("zzz") {
		t.Error(`ValidPolicy("zzz") = true`)
	}
	if _, err := NewPolicy("zzz", testParams()); err == nil {
		t.Error(`NewPolicy("zzz") built something`)
	}
	if PolicyNames()[0] != PolicyReactive {
		t.Errorf("PolicyNames()[0] = %q, want the default first", PolicyNames()[0])
	}
}

// policyFeeder drives one policy instance the way a table entry does: a
// fixed gap per event, instruction count accumulated before OnEvent.
type policyFeeder struct {
	pol   Policy
	instr uint64
}

func (f *policyFeeder) event(outcome bool) (Verdict, State, bool, bool) {
	f.instr += 5
	f.pol.AddInstrs(5)
	return f.pol.OnEvent(outcome, f.instr)
}

func (f *policyFeeder) repeat(outcome bool, n int) (last State) {
	for i := 0; i < n; i++ {
		_, last, _, _ = f.event(outcome)
	}
	return last
}

// TestSelfTrainTerminalStates pins the one-shot classifier: a unit biased
// through its monitoring window deploys permanently (no eviction, however
// wrong it becomes), and an unbiased unit never speculates again.
func TestSelfTrainTerminalStates(t *testing.T) {
	// testParams: MonitorPeriod 10, SelectThreshold 0.9.
	biased := &policyFeeder{pol: mustPolicy(t, PolicySelfTrain)}
	biased.repeat(true, 10)
	if st := biased.pol.State(); st != Biased {
		t.Fatalf("state after an all-taken window = %v, want Biased", st)
	}
	// The deployment activates at the next event's tick (OptLatency 0 means
	// "ready now", applied when the next event advances the clock).
	if v, _, dir, live := biased.event(true); v != Correct || !live || !dir {
		t.Fatalf("first deployed event = %v dir=%v live=%v, want Correct/taken/live", v, dir, live)
	}
	// Self-training is open loop: a flipped workload misspeculates forever
	// rather than evicting.
	for i := 0; i < 200; i++ {
		v, st, _, _ := biased.event(false)
		if v != Misspec || st != Biased {
			t.Fatalf("event %d after flip: verdict %v state %v, want Misspec/Biased", i, v, st)
		}
	}
	if biased.pol.Stats().Evictions != 0 {
		t.Fatal("self-training policy evicted")
	}

	unbiased := &policyFeeder{pol: mustPolicy(t, PolicySelfTrain)}
	for i := 0; i < 10; i++ {
		unbiased.event(i%2 == 0) // 50/50: under the 90% threshold
	}
	if st := unbiased.pol.State(); st != Unbiased {
		t.Fatalf("state after a 50/50 window = %v, want Unbiased", st)
	}
	unbiased.repeat(true, 500)
	if st := unbiased.pol.State(); st != Unbiased {
		t.Fatalf("Unbiased is terminal, but state became %v", st)
	}
	if _, live := unbiased.pol.Speculating(); live {
		t.Fatal("unbiased unit is speculating")
	}
	if s := unbiased.pol.Stats(); s.Correct != 0 && s.Misspec != 0 {
		t.Fatalf("unbiased unit accumulated speculation verdicts: %+v", s)
	}
}

// TestProbWeightDeployEvictRetire walks the EWMA policy through its whole
// lifecycle: warmup, deploy on confidence, evict on a behavior flip, and
// retire after MaxOptimizations oscillations.
func TestProbWeightDeployEvictRetire(t *testing.T) {
	f := &policyFeeder{pol: mustPolicy(t, PolicyProbWeight)}

	// Warmup: MonitorPeriod (10) events never change state, whatever the
	// confidence.
	if st := f.repeat(true, 10); st != Monitor {
		t.Fatalf("state during warmup = %v, want Monitor", st)
	}
	// The EWMA needs confidence >= 0.9; keep feeding taken until it
	// deploys (alpha 1/32 from 0.5 crosses 0.9 in well under 100 events).
	deployed := false
	for i := 0; i < 200 && !deployed; i++ {
		_, st, _, _ := f.event(true)
		deployed = st == Biased
	}
	if !deployed {
		t.Fatal("probweight never deployed on a constant stream")
	}
	if v, _, dir, live := f.event(true); v != Correct || !live || !dir {
		t.Fatalf("first deployed event = %v dir=%v live=%v, want Correct/taken/live", v, dir, live)
	}

	// A flipped stream first misspeculates, then confidence collapses
	// below EvictBias and the unit evicts back to Monitor.
	evicted := false
	for i := 0; i < 400 && !evicted; i++ {
		_, st, _, _ := f.event(false)
		evicted = st == Monitor
	}
	if !evicted {
		t.Fatal("probweight never evicted after the behavior flip")
	}
	if f.pol.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", f.pol.Stats().Evictions)
	}

	// Drive deploy/evict oscillations until MaxOptimizations (2) is spent:
	// the next selection attempt retires the unit permanently.
	outcome := false
	for i := 0; i < 4000 && f.pol.State() != Retired; i++ {
		if i%300 == 0 {
			outcome = !outcome
		}
		f.event(outcome)
	}
	if st := f.pol.State(); st != Retired {
		t.Fatalf("state after oscillating past MaxOptimizations = %v, want Retired", st)
	}
	if f.pol.Stats().Retirals != 1 {
		t.Fatalf("Retirals = %d, want 1", f.pol.Stats().Retirals)
	}
	if st := f.repeat(true, 500); st != Retired {
		t.Fatalf("Retired is terminal, but state became %v", st)
	}
}

// TestPolicyExportImportRoundTrip pins the snapshot contract for every
// registered policy: exporting mid-stream and importing into a fresh
// instance reproduces the identical decision tuples for the identical tail.
func TestPolicyExportImportRoundTrip(t *testing.T) {
	outcomes := func(i int) bool { return (i/7+i/13)%2 == 0 } // aperiodic mix
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			orig := &policyFeeder{pol: mustPolicy(t, name)}
			for i := 0; i < 500; i++ {
				orig.event(outcomes(i))
			}
			st, ok := orig.pol.Export()
			if !ok {
				t.Fatal("a touched unit exported ok=false")
			}

			clone := &policyFeeder{pol: mustPolicy(t, name), instr: orig.instr}
			clone.pol.Import(st)
			clone.pol.SetStats(orig.pol.Stats())
			for i := 500; i < 1500; i++ {
				v1, s1, d1, l1 := orig.event(outcomes(i))
				v2, s2, d2, l2 := clone.event(outcomes(i))
				if v1 != v2 || s1 != s2 || d1 != d2 || l1 != l2 {
					t.Fatalf("event %d diverges after round trip: orig (%v %v %v %v), clone (%v %v %v %v)",
						i, v1, s1, d1, l1, v2, s2, d2, l2)
				}
			}
			if orig.pol.Stats() != clone.pol.Stats() {
				t.Fatalf("stats diverge: orig %+v clone %+v", orig.pol.Stats(), clone.pol.Stats())
			}
		})
	}

	// An untouched unit exports nothing, for every policy.
	for _, name := range PolicyNames() {
		if _, ok := mustPolicy(t, name).Export(); ok {
			t.Fatalf("%s: untouched unit exported ok=true", name)
		}
	}
}

// TestPolicySetMatchesController pins PolicySet's equivalence claim for the
// reactive policy: a multi-unit PolicySet and one multi-branch Controller
// produce identical decision tuples over an interleaved stream.
func TestPolicySetMatchesController(t *testing.T) {
	set, err := NewPolicySet(PolicyReactive, testParams())
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(testParams())
	var instr uint64
	for i := 0; i < 5000; i++ {
		id := trace.BranchID(i % 7)
		outcome := (i/11+int(id))%3 != 0
		instr += 5
		ctl.AddInstrs(5)
		set.AddInstrs(5)
		v1, s1, d1, l1 := set.OnEvent(id, outcome, instr)
		v2 := ctl.OnBranch(id, outcome, instr)
		d2, l2 := ctl.Speculating(id)
		s2 := ctl.BranchState(id)
		if v1 != v2 || s1 != s2 || d1 != d2 || l1 != l2 {
			t.Fatalf("event %d unit %d diverges: set (%v %v %v %v), controller (%v %v %v %v)",
				i, id, v1, s1, d1, l1, v2, s2, d2, l2)
		}
	}
	if set.Stats() != ctl.Stats() {
		t.Fatalf("stats diverge: set %+v controller %+v", set.Stats(), ctl.Stats())
	}
}

// TestPolicySetDeterminism: two sets of the same policy fed the same stream
// agree tuple-for-tuple — the property reactiveload's mirror relies on.
func TestPolicySetDeterminism(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			a, err := NewPolicySet(name, testParams())
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewPolicySet(name, testParams())
			if err != nil {
				t.Fatal(err)
			}
			var instr uint64
			for i := 0; i < 3000; i++ {
				id := trace.BranchID(i % 5)
				outcome := (i*i)%7 < 4
				instr += 3
				v1, s1, d1, l1 := a.OnEvent(id, outcome, instr)
				v2, s2, d2, l2 := b.OnEvent(id, outcome, instr)
				if v1 != v2 || s1 != s2 || d1 != d2 || l1 != l2 {
					t.Fatalf("event %d diverges between identical sets", i)
				}
			}
		})
	}
}

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, err := NewPolicy(name, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}
