package core

import (
	"testing"

	"reactivespec/internal/trace"
)

// synthEvents builds a deterministic mixed stream that drives branches
// through selections, evictions, revisits, and retirals.
func synthEvents(n int) []trace.Event {
	evs := make([]trace.Event, 0, n)
	state := uint64(12345)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		r := next()
		id := trace.BranchID(r % 24)
		// Low IDs are strongly biased, middle IDs oscillate slowly with
		// the event index, high IDs are noisy.
		var taken bool
		switch {
		case id < 8:
			taken = next()%1000 != 0
		case id < 16:
			taken = (i/800)%2 == 0
		default:
			taken = next()%2 == 0
		}
		evs = append(evs, trace.Event{Branch: id, Taken: taken, Gap: uint32(1 + r%9)})
	}
	return evs
}

func driveEvents(c *Controller, evs []trace.Event, instr *uint64) []Verdict {
	out := make([]Verdict, 0, len(evs))
	for _, ev := range evs {
		*instr += uint64(ev.Gap)
		c.AddInstrs(uint64(ev.Gap))
		out = append(out, c.OnBranch(ev.Branch, ev.Taken, *instr))
	}
	return out
}

// TestSnapshotRoundTrip checks that exporting every touched branch into a
// fresh controller reproduces the original's future decisions exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	params := DefaultParams().Scaled(100)
	evs := synthEvents(40_000)
	half := len(evs) / 2

	orig := New(params)
	var instrOrig uint64
	driveEvents(orig, evs[:half], &instrOrig)

	restored := New(params)
	ids := orig.TouchedBranches()
	if len(ids) == 0 {
		t.Fatal("no branches touched; stream too short")
	}
	for _, id := range ids {
		st, ok := orig.ExportBranch(id)
		if !ok {
			t.Fatalf("branch %d in TouchedBranches but ExportBranch reports untouched", id)
		}
		restored.ImportBranch(id, st)
	}
	restored.SetStats(orig.Stats())
	if restored.Stats() != orig.Stats() {
		t.Fatalf("SetStats: got %+v, want %+v", restored.Stats(), orig.Stats())
	}

	instrRestored := instrOrig
	wantVerdicts := driveEvents(orig, evs[half:], &instrOrig)
	gotVerdicts := driveEvents(restored, evs[half:], &instrRestored)
	for i := range wantVerdicts {
		if gotVerdicts[i] != wantVerdicts[i] {
			t.Fatalf("event %d: verdict %v after restore, want %v", i, gotVerdicts[i], wantVerdicts[i])
		}
	}
	for _, id := range ids {
		if g, w := restored.BranchState(id), orig.BranchState(id); g != w {
			t.Fatalf("branch %d: state %v after replay, want %v", id, g, w)
		}
		gd, gl := restored.Speculating(id)
		wd, wl := orig.Speculating(id)
		if gd != wd || gl != wl {
			t.Fatalf("branch %d: speculating (%v,%v), want (%v,%v)", id, gd, gl, wd, wl)
		}
	}
	if restored.Stats() != orig.Stats() {
		t.Fatalf("stats diverged after replay: %+v vs %+v", restored.Stats(), orig.Stats())
	}
}

// TestExportBranchUntouched checks the untouched-branch contract.
func TestExportBranchUntouched(t *testing.T) {
	c := New(DefaultParams())
	if _, ok := c.ExportBranch(5); ok {
		t.Fatal("unseen branch exported as touched")
	}
	c.OnBranch(3, true, 10)
	if _, ok := c.ExportBranch(3); !ok {
		t.Fatal("executed branch not exported")
	}
	if _, ok := c.ExportBranch(2); ok {
		t.Fatal("grown-but-unexecuted branch exported as touched")
	}
	ids := c.TouchedBranches()
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("TouchedBranches = %v, want [3]", ids)
	}
}
