package core

import (
	"math"
	"testing"

	"reactivespec/internal/trace"
)

// TestEvictThenReselectOverlap exercises the deployment lifecycle across an
// eviction followed by a re-selection in the opposite direction while the
// stale code is still deployed: the verdicts must follow the *deployed*
// code at every instant, not the classification state.
func TestEvictThenReselectOverlap(t *testing.T) {
	p := testParams()
	p.OptLatency = 100 // 20 events at 5 instructions each
	f := &feeder{ctl: New(p)}
	const id = trace.BranchID(0)

	f.repeat(id, true, 10) // monitor → biased (taken), live at +100
	f.repeat(id, true, 25) // deployed; correct

	// Reversal: two misspecs evict; the stale taken-speculation stays
	// live for 100 instructions (20 events).
	f.repeat(id, false, 2)
	if got := f.ctl.BranchState(id); got != Monitor {
		t.Fatalf("state = %v, want monitor", got)
	}
	// Next 10 not-taken events complete the re-monitor window and
	// re-select not-taken, while the stale code still misspeculates.
	_, misspec, _ := f.repeat(id, false, 10)
	if misspec != 10 {
		t.Fatalf("lame-duck misspecs = %d, want 10", misspec)
	}
	if got := f.ctl.BranchState(id); got != Biased {
		t.Fatalf("state after re-monitor = %v, want biased", got)
	}
	// Events until the stale code is undeployed: eviction happened at
	// instruction 185, so the code stays live through instruction 284 —
	// 9 more events after the 12 already counted.
	_, misspec, _ = f.repeat(id, false, 9)
	if misspec != 9 {
		t.Fatalf("remaining lame-duck misspecs = %d, want 9", misspec)
	}
	// Window between undeploy and the new deployment: unspeculated.
	correct, misspec, notspec := f.repeat(id, false, 10)
	if misspec != 0 || correct != 0 || notspec != 10 {
		t.Fatalf("between deployments: correct=%d misspec=%d notspec=%d", correct, misspec, notspec)
	}
	// The not-taken speculation eventually goes live.
	correct, _, _ = f.repeat(id, false, 30)
	if correct < 25 {
		t.Fatalf("new-direction corrects = %d, want most of 30", correct)
	}
	dir, live := f.ctl.Speculating(id)
	if !live || dir {
		t.Fatalf("Speculating = (%v, %v), want (false, true)", dir, live)
	}
}

// TestDeploymentPrimitive tests the deployment state machine directly.
func TestDeploymentPrimitive(t *testing.T) {
	var d deployment
	if d.live() {
		t.Fatal("zero deployment is live")
	}
	d.deploy(true, 100)
	d.tick(99)
	if d.live() {
		t.Fatal("live before activation instant")
	}
	d.tick(100)
	if !d.live() || !d.liveDir {
		t.Fatal("not live at activation instant")
	}
	d.undeploy(200)
	d.tick(199)
	if !d.live() {
		t.Fatal("undeployed early")
	}
	d.tick(200)
	if d.live() {
		t.Fatal("still live after undeploy instant")
	}
}

func TestDeploymentReplacePending(t *testing.T) {
	var d deployment
	d.deploy(true, 100)
	d.deploy(false, 150) // replaces the pending deployment
	d.tick(120)
	if d.live() {
		t.Fatal("replaced deployment went live")
	}
	d.tick(150)
	if !d.live() || d.liveDir {
		t.Fatal("replacement not live in new direction")
	}
	if d.liveUntil != math.MaxUint64 {
		t.Fatal("live deployment should be unbounded")
	}
}

func TestDeploymentUndeployCancelsPending(t *testing.T) {
	var d deployment
	d.deploy(true, 50)
	d.tick(50)
	d.deploy(false, 200)
	d.undeploy(100) // eviction also cancels any pending deployment
	d.tick(100)
	if d.live() {
		t.Fatal("live after undeploy")
	}
	d.tick(250)
	if d.live() {
		t.Fatal("cancelled pending deployment went live")
	}
}

func TestDeploymentZeroInstantClamped(t *testing.T) {
	var d deployment
	d.deploy(true, 0) // 0 is the "nothing pending" sentinel; must clamp
	d.tick(1)
	if !d.live() {
		t.Fatal("zero-instant deployment never activated")
	}
	d.undeploy(0)
	d.tick(1)
	if d.live() {
		t.Fatal("zero-instant undeploy never applied")
	}
}
