package core

import (
	"testing"
	"testing/quick"

	"reactivespec/internal/trace"
)

// testParams returns small-scale parameters that exercise every transition
// quickly: 10-execution monitor, 90% selection, eviction after two quick
// misspeculations, 20-execution wait, two optimizations max.
func testParams() Params {
	return Params{
		MonitorPeriod:    10,
		SelectThreshold:  0.9,
		EvictThreshold:   100,
		MisspecStep:      50,
		CorrectStep:      1,
		WaitPeriod:       20,
		MaxOptimizations: 2,
		OptLatency:       0,
		SampleLen:        5,
		SamplePeriod:     20,
		EvictBias:        0.95,
	}
}

// feeder drives a controller with a synthetic single-branch stream.
type feeder struct {
	ctl   *Controller
	instr uint64
}

func (f *feeder) branch(id trace.BranchID, taken bool) Verdict {
	f.instr += 5
	f.ctl.AddInstrs(5)
	return f.ctl.OnBranch(id, taken, f.instr)
}

func (f *feeder) repeat(id trace.BranchID, taken bool, n int) (correct, misspec, notspec int) {
	for i := 0; i < n; i++ {
		switch f.branch(id, taken) {
		case Correct:
			correct++
		case Misspec:
			misspec++
		default:
			notspec++
		}
	}
	return correct, misspec, notspec
}

func TestMonitorToBiased(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	f.repeat(0, true, 9)
	if got := f.ctl.BranchState(0); got != Monitor {
		t.Fatalf("state after 9 execs = %v, want monitor", got)
	}
	f.branch(0, true) // completes the monitor window
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("state after monitor window = %v, want biased", got)
	}
	dir, live := f.ctl.Speculating(0)
	if live && !dir {
		t.Fatal("speculation live in wrong direction")
	}
	// With zero latency, speculation is live from the next event.
	if v := f.branch(0, true); v != Correct {
		t.Fatalf("verdict after selection = %v, want correct", v)
	}
}

func TestMonitorToUnbiased(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	for i := 0; i < 10; i++ {
		f.branch(0, i%2 == 0)
	}
	if got := f.ctl.BranchState(0); got != Unbiased {
		t.Fatalf("state for 50/50 branch = %v, want unbiased", got)
	}
}

func TestNotTakenDirection(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	f.repeat(0, false, 10)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("state = %v, want biased", got)
	}
	if v := f.branch(0, false); v != Correct {
		t.Fatalf("not-taken-biased verdict = %v, want correct", v)
	}
	if v := f.branch(0, true); v != Misspec {
		t.Fatalf("contrary outcome verdict = %v, want misspec", v)
	}
}

func TestEvictionOnReversal(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	f.repeat(0, true, 11) // monitor + first speculated event
	// Reverse: two misspecs ramp the counter (2×50 = 100 = threshold).
	f.repeat(0, false, 2)
	if got := f.ctl.BranchState(0); got != Monitor {
		t.Fatalf("state after reversal = %v, want monitor (evicted)", got)
	}
	if f.ctl.Evictions(0) != 1 {
		t.Fatalf("Evictions = %d, want 1", f.ctl.Evictions(0))
	}
	if f.ctl.Stats().Evictions != 1 {
		t.Fatalf("stats.Evictions = %d, want 1", f.ctl.Stats().Evictions)
	}
}

func TestEvictionHysteresisToleratesBursts(t *testing.T) {
	p := testParams()
	p.EvictThreshold = 1_000
	f := &feeder{ctl: New(p)}
	f.repeat(0, true, 10)
	// Alternate short bursts of misspeculation with long correct runs:
	// +50 per misspec, −1 per correct; 5 misspecs then 300 corrects stays
	// well under 1,000.
	for round := 0; round < 20; round++ {
		f.repeat(0, false, 5)
		f.repeat(0, true, 300)
	}
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("bursty-but-biased branch evicted (state %v)", got)
	}
}

func TestReselectionAfterReversal(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	f.repeat(0, true, 11)
	f.repeat(0, false, 2) // evicted
	// The branch is now consistently not-taken: one monitor window
	// re-selects it in the other direction.
	f.repeat(0, false, 10)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("state after re-monitor = %v, want biased", got)
	}
	if v := f.branch(0, false); v != Correct {
		t.Fatalf("re-selected direction verdict = %v, want correct", v)
	}
	if f.ctl.Optimizations(0) != 2 {
		t.Fatalf("Optimizations = %d, want 2", f.ctl.Optimizations(0))
	}
}

func TestRevisitFromUnbiased(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	for i := 0; i < 10; i++ {
		f.branch(0, i%2 == 0) // unbiased
	}
	for i := 0; i < 19; i++ {
		f.branch(0, i%2 == 0)
	}
	if got := f.ctl.BranchState(0); got != Unbiased {
		t.Fatalf("state during wait = %v, want unbiased", got)
	}
	f.branch(0, true) // completes the wait period
	if got := f.ctl.BranchState(0); got != Monitor {
		t.Fatalf("state after wait = %v, want monitor (revisit)", got)
	}
	// Now biased: the revisit lets it be discovered.
	f.repeat(0, true, 10)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("late-onset branch state = %v, want biased", got)
	}
}

func TestNoRevisitVariant(t *testing.T) {
	f := &feeder{ctl: New(testParams().WithNoRevisit())}
	for i := 0; i < 10; i++ {
		f.branch(0, i%2 == 0)
	}
	f.repeat(0, true, 500)
	if got := f.ctl.BranchState(0); got != Unbiased {
		t.Fatalf("no-revisit state = %v, want unbiased forever", got)
	}
}

func TestNoEvictionVariant(t *testing.T) {
	f := &feeder{ctl: New(testParams().WithNoEviction())}
	f.repeat(0, true, 10)
	_, misspec, _ := f.repeat(0, false, 500)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("no-eviction state = %v, want biased forever", got)
	}
	if misspec != 500 {
		t.Fatalf("misspec count = %d, want 500", misspec)
	}
}

func TestOscillationLimitRetires(t *testing.T) {
	f := &feeder{ctl: New(testParams())} // MaxOptimizations = 2
	dir := true
	for opt := 0; opt < 2; opt++ {
		f.repeat(0, dir, 10) // monitor → biased
		f.repeat(0, !dir, 3) // evict
		dir = !dir
	}
	// Third selection attempt must retire instead.
	f.repeat(0, dir, 10)
	if got := f.ctl.BranchState(0); got != Retired {
		t.Fatalf("state after third selection attempt = %v, want retired", got)
	}
	_, _, everEvicted, retired := f.ctl.StaticCounts()
	if everEvicted != 1 || retired != 1 {
		t.Fatalf("StaticCounts evicted=%d retired=%d", everEvicted, retired)
	}
	// Retired branches never speculate again.
	if _, live := f.ctl.Speculating(0); live {
		t.Fatal("retired branch still has live speculation")
	}
	_, misspec, _ := f.repeat(0, dir, 100)
	if misspec != 0 {
		t.Fatalf("retired branch produced %d misspecs", misspec)
	}
}

func TestOptimizationLatencyDelaysDeployment(t *testing.T) {
	p := testParams()
	p.OptLatency = 100 // instructions; feeder advances 5 per event
	f := &feeder{ctl: New(p)}
	f.repeat(0, true, 10) // selected at instr 50, live at 150
	correct, _, notspec := f.repeat(0, true, 19)
	// Events at instr 55..145 (19 events): all before deployment.
	if correct != 0 || notspec != 19 {
		t.Fatalf("before deployment: correct=%d notspec=%d", correct, notspec)
	}
	if v := f.branch(0, true); v != Correct {
		t.Fatalf("verdict at deployment instant = %v, want correct", v)
	}
}

func TestEvictionLameDuckKeepsCounting(t *testing.T) {
	p := testParams()
	p.OptLatency = 100
	f := &feeder{ctl: New(p)}
	f.repeat(0, true, 10)
	f.repeat(0, true, 25) // deployed and correct
	// Reverse. Eviction needs two misspecs; the stale code stays
	// deployed for 100 more instructions (20 events).
	f.repeat(0, false, 2)
	if got := f.ctl.BranchState(0); got != Monitor {
		t.Fatalf("state = %v, want monitor", got)
	}
	_, misspec, _ := f.repeat(0, false, 19)
	if misspec != 19 {
		t.Fatalf("lame-duck misspecs = %d, want 19", misspec)
	}
	_, misspec, _ = f.repeat(0, false, 5)
	if misspec != 0 {
		t.Fatalf("post-undeploy misspecs = %d, want 0", misspec)
	}
}

func TestMonitorSampling(t *testing.T) {
	f := &feeder{ctl: New(testParams().WithMonitorSampling(2))}
	// Period counts executions (10); samples are 1-in-2. An all-taken
	// stream still classifies as biased.
	f.repeat(0, true, 10)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("sampled monitor state = %v, want biased", got)
	}
}

func TestEvictBySampling(t *testing.T) {
	f := &feeder{ctl: New(testParams().WithSamplingEviction())}
	f.repeat(0, true, 10) // biased
	// Fully reversed: the first 5-execution sample reads 0% correct,
	// below the 95% eviction floor.
	f.repeat(0, false, 5)
	if got := f.ctl.BranchState(0); got != Monitor {
		t.Fatalf("sampling eviction state = %v, want monitor", got)
	}
}

func TestEvictBySamplingIgnoresOffCycleNoise(t *testing.T) {
	f := &feeder{ctl: New(testParams().WithSamplingEviction())}
	f.repeat(0, true, 10)
	f.repeat(0, true, 5) // clean sample (cycle positions 0–4)
	// Noise entirely within the off-duty part of the cycle (positions
	// 5–19) is not observed.
	f.repeat(0, false, 15)
	if got := f.ctl.BranchState(0); got != Biased {
		t.Fatalf("off-cycle noise evicted the branch (state %v)", got)
	}
}

func TestStatsPartitionEvents(t *testing.T) {
	f := &feeder{ctl: New(testParams())}
	f.repeat(0, true, 500)
	for i := 0; i < 500; i++ {
		f.branch(1, i%3 == 0)
	}
	st := f.ctl.Stats()
	if st.Events != 1_000 {
		t.Fatalf("Events = %d", st.Events)
	}
	if st.Correct+st.Misspec+st.NotSpec != st.Events {
		t.Fatalf("verdict partition %d+%d+%d != %d", st.Correct, st.Misspec, st.NotSpec, st.Events)
	}
	if st.Instrs != 5_000 {
		t.Fatalf("Instrs = %d", st.Instrs)
	}
}

func TestTransitionHook(t *testing.T) {
	ctl := New(testParams())
	var transitions []Transition
	ctl.OnTransition = func(tr Transition) { transitions = append(transitions, tr) }
	f := &feeder{ctl: ctl}
	f.repeat(0, true, 10)
	f.repeat(0, false, 3)
	if len(transitions) < 2 {
		t.Fatalf("expected at least 2 transitions, got %d", len(transitions))
	}
	if transitions[0].From != Monitor || transitions[0].To != Biased {
		t.Fatalf("first transition = %+v", transitions[0])
	}
	if transitions[1].From != Biased || transitions[1].To != Monitor {
		t.Fatalf("second transition = %+v", transitions[1])
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		f := &feeder{ctl: New(testParams())}
		for i := 0; i < 5_000; i++ {
			f.branch(trace.BranchID(i%13), (i*2654435761)%7 < 3)
		}
		return f.ctl.Stats()
	}
	if run() != run() {
		t.Fatal("identical streams produced different statistics")
	}
}

func TestScaledParams(t *testing.T) {
	p := DefaultParams().Scaled(10)
	if p.MonitorPeriod != 1_000 || p.WaitPeriod != 100_000 ||
		p.OptLatency != 100_000 || p.EvictThreshold != 1_000 {
		t.Fatalf("Scaled(10) = %+v", p)
	}
	if p.SelectThreshold != 0.995 || p.MisspecStep != 50 {
		t.Fatal("Scaled must not change rate semantics")
	}
	if q := DefaultParams().Scaled(1); q != DefaultParams() {
		t.Fatal("Scaled(1) should be the identity")
	}
}

func TestParamBuilders(t *testing.T) {
	p := DefaultParams()
	if !p.WithNoEviction().NoEviction || !p.WithNoRevisit().NoRevisit ||
		!p.WithSamplingEviction().EvictBySampling {
		t.Fatal("builder flags not set")
	}
	if p.WithWaitPeriod(7).WaitPeriod != 7 || p.WithEvictThreshold(9).EvictThreshold != 9 ||
		p.WithOptLatency(3).OptLatency != 3 || p.WithMonitorSampling(8).MonitorSampleRate != 8 {
		t.Fatal("builder values not set")
	}
	if p.NoEviction || p.NoRevisit {
		t.Fatal("builders must not mutate the receiver")
	}
}

func TestStateAndVerdictStrings(t *testing.T) {
	for s, want := range map[State]string{Monitor: "monitor", Biased: "biased", Unbiased: "unbiased", Retired: "retired"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
	for v, want := range map[Verdict]string{NotSpeculated: "not-speculated", Correct: "correct", Misspec: "misspec"} {
		if v.String() != want {
			t.Fatalf("Verdict(%d).String() = %q", v, v.String())
		}
	}
	if State(99).String() == "" || Verdict(99).String() == "" {
		t.Fatal("unknown values should still format")
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Events: 1000, Instrs: 6000, Correct: 400, Misspec: 2}
	if s.CorrectFrac() != 0.4 {
		t.Fatalf("CorrectFrac = %v", s.CorrectFrac())
	}
	if s.MisspecFrac() != 0.002 {
		t.Fatalf("MisspecFrac = %v", s.MisspecFrac())
	}
	if s.MisspecDistance() != 3000 {
		t.Fatalf("MisspecDistance = %v", s.MisspecDistance())
	}
	var zero Stats
	if zero.CorrectFrac() != 0 {
		t.Fatal("zero stats CorrectFrac should be 0")
	}
}

func TestControllerInvariantsProperty(t *testing.T) {
	// Property: for arbitrary streams, the verdict partition always
	// covers every event, per-branch optimizations never exceed the
	// limit, and eviction counts never exceed optimization counts.
	f := func(outcomes []bool, ids []uint8) bool {
		p := testParams()
		ctl := New(p)
		instr := uint64(0)
		for i, taken := range outcomes {
			id := trace.BranchID(0)
			if i < len(ids) {
				id = trace.BranchID(ids[i] % 5)
			}
			instr += 3
			ctl.OnBranch(id, taken, instr)
		}
		st := ctl.Stats()
		if st.Correct+st.Misspec+st.NotSpec != st.Events {
			return false
		}
		for id := trace.BranchID(0); id < 5; id++ {
			if ctl.Optimizations(id) > p.MaxOptimizations {
				return false
			}
			if ctl.Evictions(id) > ctl.Optimizations(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
