package core

import "fmt"

// Policy is one speculation-control policy driving a single tracked unit (a
// static branch, load, dependence pair, …). It is the pluggable abstraction
// behind the serving table: each table entry owns one Policy instance, and
// the paper's reactive FSM is just the default implementation.
//
// All four speculation kinds are boolean-outcome streams, so the policy sees
// the same shape regardless of kind: one outcome per dynamic event at a
// global instruction count. Implementations must be deterministic — the same
// event sequence must yield the same decisions — because snapshot restore,
// WAL replay and replica failover all rely on bit-exact reproduction.
//
// A Policy is not safe for concurrent use; drive it from one goroutine.
type Policy interface {
	// OnEvent observes one dynamic event and returns the speculation
	// verdict together with the unit's resulting classification state and
	// live-deployment status — everything a serving decision encodes.
	OnEvent(outcome bool, instr uint64) (v Verdict, st State, dir, live bool)
	// AddInstrs accounts dynamic instructions (the gaps between events).
	AddInstrs(n uint64)
	// State returns the unit's classification state.
	State() State
	// Speculating reports whether speculation is live and its direction.
	Speculating() (dir, live bool)
	// Stats returns the policy's aggregate counters.
	Stats() Stats
	// SetStats overwrites the aggregate counters (snapshot restore).
	SetStats(Stats)
	// Export returns the unit's full serializable state and whether the
	// unit has been touched; Import restores it. Policies reuse
	// BranchState as the common snapshot container so the serving layer's
	// snapshot format is policy-independent.
	Export() (BranchState, bool)
	Import(BranchState)
	// OnTransition registers a hook invoked after every classification
	// change (nil unregisters). The hook must not call back into the
	// policy.
	OnTransition(func(Transition))
}

// Registered policy names. PolicyReactive is the default everywhere a policy
// name is optional.
const (
	// PolicyReactive is the paper's closed-loop FSM (Section 3): monitor,
	// select, evict, revisit.
	PolicyReactive = "reactive"
	// PolicySelfTrain decides once from initial behavior and never
	// revisits — the paper's self-training baseline (Figure 5's
	// self-train line) as an online policy.
	PolicySelfTrain = "selftrain"
	// PolicyProbWeight weighs outcomes with an exponential moving average
	// — a probabilistic-dataflow-style estimator (after Di Pierro &
	// Wiklicky) with deploy/undeploy hysteresis thresholds.
	PolicyProbWeight = "probweight"
)

// PolicyNames lists the registered policy names, default first.
func PolicyNames() []string {
	return []string{PolicyReactive, PolicySelfTrain, PolicyProbWeight}
}

// ValidPolicy reports whether name is a registered policy ("" counts as the
// default, PolicyReactive).
func ValidPolicy(name string) bool {
	switch name {
	case "", PolicyReactive, PolicySelfTrain, PolicyProbWeight:
		return true
	}
	return false
}

// NewPolicy builds one unit's policy instance by registered name. The empty
// name means PolicyReactive.
func NewPolicy(name string, params Params) (Policy, error) {
	switch name {
	case "", PolicyReactive:
		return &reactivePolicy{ctl: New(params)}, nil
	case PolicySelfTrain:
		return &selfTrainPolicy{params: params}, nil
	case PolicyProbWeight:
		return newProbWeightPolicy(params), nil
	}
	return nil, fmt.Errorf("core: unknown policy %q (want one of %v)", name, PolicyNames())
}

// reactivePolicy adapts a single-branch Controller (unit ID 0) to the Policy
// interface. The serving table bypasses this wrapper on its hot path — a
// table entry running the reactive policy calls the *Controller directly —
// so this adapter only carries the snapshot/metrics plumbing and the
// non-serving users (PolicySet, experiments).
type reactivePolicy struct {
	ctl *Controller
}

func (p *reactivePolicy) OnEvent(outcome bool, instr uint64) (Verdict, State, bool, bool) {
	v := p.ctl.OnBranch(0, outcome, instr)
	dir, live := p.ctl.Speculating(0)
	return v, p.ctl.BranchState(0), dir, live
}

func (p *reactivePolicy) AddInstrs(n uint64)            { p.ctl.AddInstrs(n) }
func (p *reactivePolicy) State() State                  { return p.ctl.BranchState(0) }
func (p *reactivePolicy) Speculating() (bool, bool)     { return p.ctl.Speculating(0) }
func (p *reactivePolicy) Stats() Stats                  { return p.ctl.Stats() }
func (p *reactivePolicy) SetStats(s Stats)              { p.ctl.SetStats(s) }
func (p *reactivePolicy) Export() (BranchState, bool)   { return p.ctl.ExportBranch(0) }
func (p *reactivePolicy) Import(st BranchState)         { p.ctl.ImportBranch(0, st) }
func (p *reactivePolicy) OnTransition(f func(Transition)) { p.ctl.OnTransition = f }

// Controller exposes the wrapped reactive controller, for callers (the
// serving table) that inline the hot path when the policy is reactive.
func (p *reactivePolicy) Controller() *Controller { return p.ctl }
