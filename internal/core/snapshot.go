package core

import "reactivespec/internal/trace"

// BranchState is the complete serializable state of one tracked branch:
// classification, deployment lifecycle, the monitor/sampling windows, and the
// lifetime counters. Exporting and re-importing a BranchState reproduces the
// branch's future decisions exactly, which is what the serving layer's
// snapshot/restore machinery (internal/server) relies on.
//
// All fields are exported so the struct round-trips through encoding/gob and
// encoding/json unchanged.
type BranchState struct {
	// State is the classification state (Figure 4b).
	State State

	// Deployment lifecycle (the optimization-latency machinery).
	LiveDir   bool
	LiveUntil uint64
	NextDir   bool
	NextAt    uint64

	// Monitor-state window.
	MonSeen  uint64
	MonExecs uint64
	MonTaken uint64

	// Biased-state bookkeeping.
	Direction bool
	Counter   uint32
	CyclePos  uint64
	SmpExecs  uint64
	SmpWrong  uint64

	// Unbiased-state bookkeeping.
	WaitLeft uint64

	// Lifecycle statistics.
	Execs      uint64
	OptCount   uint32
	Evictions  uint32
	EverBiased bool

	// ProbEst is the probweight policy's EWMA estimate. Unused (zero) for
	// the other policies; gob zero-fills it when decoding snapshots written
	// before the field existed.
	ProbEst float64
}

// ExportBranch returns the branch's full state and whether the branch has
// been touched (executed at least once or moved out of the default state).
// Untouched branches need no snapshot entry: a fresh controller already
// behaves identically for them.
func (c *Controller) ExportBranch(id trace.BranchID) (BranchState, bool) {
	if int(id) >= len(c.branches) {
		return BranchState{}, false
	}
	b := &c.branches[id]
	if b.execs == 0 && b.state == Monitor {
		return BranchState{}, false
	}
	return BranchState{
		State:      b.state,
		LiveDir:    b.dep.liveDir,
		LiveUntil:  b.dep.liveUntil,
		NextDir:    b.dep.nextDir,
		NextAt:     b.dep.nextAt,
		MonSeen:    b.monSeen,
		MonExecs:   b.monExecs,
		MonTaken:   b.monTaken,
		Direction:  b.direction,
		Counter:    b.counter,
		CyclePos:   b.cyclePos,
		SmpExecs:   b.smpExecs,
		SmpWrong:   b.smpWrong,
		WaitLeft:   b.waitLeft,
		Execs:      b.execs,
		OptCount:   b.optCount,
		Evictions:  b.evictions,
		EverBiased: b.everBiased,
	}, true
}

// ImportBranch overwrites the branch's state with a previously exported
// snapshot. The controller's aggregate Stats are not touched; restore them
// separately with SetStats.
func (c *Controller) ImportBranch(id trace.BranchID, st BranchState) {
	b := c.branchFor(id)
	b.state = st.State
	b.dep = deployment{
		liveDir:   st.LiveDir,
		liveUntil: st.LiveUntil,
		nextDir:   st.NextDir,
		nextAt:    st.NextAt,
	}
	b.monSeen, b.monExecs, b.monTaken = st.MonSeen, st.MonExecs, st.MonTaken
	b.direction = st.Direction
	b.counter = st.Counter
	b.cyclePos = st.CyclePos
	b.smpExecs, b.smpWrong = st.SmpExecs, st.SmpWrong
	b.waitLeft = st.WaitLeft
	b.execs = st.Execs
	b.optCount = st.OptCount
	b.evictions = st.Evictions
	b.everBiased = st.EverBiased
}

// TouchedBranches returns the IDs of every branch ExportBranch would report
// as touched, in increasing order.
func (c *Controller) TouchedBranches() []trace.BranchID {
	var ids []trace.BranchID
	for i := range c.branches {
		b := &c.branches[i]
		if b.execs == 0 && b.state == Monitor {
			continue
		}
		ids = append(ids, trace.BranchID(i))
	}
	return ids
}

// SetStats overwrites the aggregate counters (snapshot restore).
func (c *Controller) SetStats(s Stats) { c.stats = s }
