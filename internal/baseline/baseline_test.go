package baseline

import (
	"testing"

	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

func profileOf(events []trace.Event) *bias.Profile {
	return bias.FromStream(trace.NewSliceStream(events))
}

func TestStaticVerdicts(t *testing.T) {
	events := []trace.Event{
		{Branch: 0, Taken: true, Gap: 1},
		{Branch: 0, Taken: true, Gap: 1},
		{Branch: 1, Taken: false, Gap: 1},
	}
	sel := profileOf(events).Select(0.99, 1)
	s := NewStatic(sel)
	if v := s.OnBranch(0, true, 10); v != core.Correct {
		t.Fatalf("selected branch correct-direction verdict = %v", v)
	}
	if v := s.OnBranch(0, false, 20); v != core.Misspec {
		t.Fatalf("selected branch wrong-direction verdict = %v", v)
	}
	if v := s.OnBranch(5, true, 30); v != core.NotSpeculated {
		t.Fatalf("unselected branch verdict = %v", v)
	}
}

func TestStaticNotTakenDirection(t *testing.T) {
	events := []trace.Event{{Branch: 2, Taken: false, Gap: 1}}
	s := NewStatic(profileOf(events).Select(0.99, 1))
	if v := s.OnBranch(2, false, 1); v != core.Correct {
		t.Fatalf("not-taken selection verdict = %v", v)
	}
}

func TestInitialBehaviorTrainsThenSpeculates(t *testing.T) {
	c := NewInitialBehavior(10, 0.99)
	for i := 0; i < 10; i++ {
		if v := c.OnBranch(0, true, uint64(i)); v != core.NotSpeculated {
			t.Fatalf("training event %d verdict = %v", i, v)
		}
	}
	if v := c.OnBranch(0, true, 11); v != core.Correct {
		t.Fatalf("post-training verdict = %v", v)
	}
	if v := c.OnBranch(0, false, 12); v != core.Misspec {
		t.Fatalf("post-training contrary verdict = %v", v)
	}
	if c.Selected() != 1 {
		t.Fatalf("Selected = %d", c.Selected())
	}
}

func TestInitialBehaviorRejectsUnbiased(t *testing.T) {
	c := NewInitialBehavior(10, 0.99)
	for i := 0; i < 10; i++ {
		c.OnBranch(0, i%2 == 0, uint64(i))
	}
	if v := c.OnBranch(0, true, 11); v != core.NotSpeculated {
		t.Fatalf("unbiased branch verdict = %v", v)
	}
	if c.Selected() != 0 {
		t.Fatalf("Selected = %d", c.Selected())
	}
}

func TestInitialBehaviorNeverReconsiders(t *testing.T) {
	c := NewInitialBehavior(5, 0.99)
	for i := 0; i < 5; i++ {
		c.OnBranch(0, true, uint64(i))
	}
	// The branch fully reverses; the decision stands (that is the whole
	// problem the paper identifies with this mechanism).
	misspecs := 0
	for i := 0; i < 1000; i++ {
		if c.OnBranch(0, false, uint64(100+i)) == core.Misspec {
			misspecs++
		}
	}
	if misspecs != 1000 {
		t.Fatalf("reversed branch misspecs = %d, want 1000", misspecs)
	}
}

func TestInitialBehaviorDirectionFromMajority(t *testing.T) {
	c := NewInitialBehavior(100, 0.95)
	for i := 0; i < 100; i++ {
		c.OnBranch(0, i >= 3, uint64(i)) // 97% taken
	}
	if v := c.OnBranch(0, true, 200); v != core.Correct {
		t.Fatalf("majority-taken verdict = %v", v)
	}
}

func TestInitialBehaviorIndependentBranches(t *testing.T) {
	c := NewInitialBehavior(4, 0.99)
	for i := 0; i < 4; i++ {
		c.OnBranch(0, true, uint64(i))
		c.OnBranch(7, false, uint64(i))
	}
	if v := c.OnBranch(0, true, 50); v != core.Correct {
		t.Fatal("branch 0 should speculate taken")
	}
	if v := c.OnBranch(7, false, 51); v != core.Correct {
		t.Fatal("branch 7 should speculate not-taken")
	}
	if c.Selected() != 2 {
		t.Fatalf("Selected = %d", c.Selected())
	}
}

func TestFlushRelearnsAfterPhaseChange(t *testing.T) {
	// Train length 4, flush every 100 instructions.
	f := NewFlush(4, 0.99, 100)
	instr := uint64(0)
	feed := func(taken bool, n int) (misspec int) {
		for i := 0; i < n; i++ {
			instr += 5
			if f.OnBranch(0, taken, instr) == core.Misspec {
				misspec++
			}
		}
		return misspec
	}
	feed(true, 4) // trained taken
	if v := f.OnBranch(0, true, instr+1); v != core.Correct {
		t.Fatalf("post-training verdict = %v", v)
	}
	instr++
	// The branch reverses; the stale decision misspeculates until the
	// next flush re-trains it.
	m := feed(false, 100)
	if m == 0 {
		t.Fatal("no misspecs before flush")
	}
	if m >= 100-4 {
		t.Fatal("flush never relearned the branch")
	}
	if f.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	// After relearning, the branch speculates correctly again.
	if v := f.OnBranch(0, false, instr+1); v != core.Correct {
		t.Fatalf("post-flush verdict = %v", v)
	}
}

func TestFlushZeroPeriodNeverFlushes(t *testing.T) {
	f := NewFlush(4, 0.99, 0)
	for i := 0; i < 1000; i++ {
		f.OnBranch(0, true, uint64(i*5))
	}
	if f.Flushes != 0 {
		t.Fatalf("Flushes = %d with zero period", f.Flushes)
	}
}
