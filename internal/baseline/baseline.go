// Package baseline implements the non-reactive speculation-control
// mechanisms the paper compares against (Section 2.2): static selection from
// a profile (self-training or a differing training input) and selection from
// a run's initial behavior. Both decide once and never reconsider — the lack
// of robustness the reactive model repairs.
package baseline

import (
	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Static speculates on a fixed selection of branches, each in a fixed
// direction, from the first instruction of the run. This models offline
// profile-guided speculation: self-training when the selection comes from
// the evaluated run itself, and cross-input profiling when it comes from a
// different input's run.
type Static struct {
	sel *bias.Selection
}

// NewStatic returns a static controller for the given selection.
func NewStatic(sel *bias.Selection) *Static { return &Static{sel: sel} }

// OnBranch implements the harness Controller contract.
func (s *Static) OnBranch(id trace.BranchID, taken bool, _ uint64) core.Verdict {
	dir, ok := s.sel.Direction(id)
	if !ok {
		return core.NotSpeculated
	}
	if taken == dir {
		return core.Correct
	}
	return core.Misspec
}

// InitialBehavior speculates on branches whose bias over their first
// TrainLen executions meets Threshold, starting immediately after the
// training window and never reconsidering (the Figure 2 "+" mechanism).
type InitialBehavior struct {
	// TrainLen is the per-branch training length in executions.
	TrainLen uint64
	// Threshold is the required training-window bias (e.g. 0.99).
	Threshold float64

	branches []ibBranch
}

type ibBranch struct {
	execs, taken uint64
	decided      bool
	speculate    bool
	dir          bool
}

// NewInitialBehavior returns an initial-behavior controller.
func NewInitialBehavior(trainLen uint64, threshold float64) *InitialBehavior {
	return &InitialBehavior{TrainLen: trainLen, Threshold: threshold}
}

// OnBranch implements the harness Controller contract.
func (c *InitialBehavior) OnBranch(id trace.BranchID, taken bool, _ uint64) core.Verdict {
	if int(id) >= len(c.branches) {
		grown := make([]ibBranch, int(id)+1+int(id)/2)
		copy(grown, c.branches)
		c.branches = grown
	}
	b := &c.branches[id]
	if b.decided {
		if !b.speculate {
			return core.NotSpeculated
		}
		if taken == b.dir {
			return core.Correct
		}
		return core.Misspec
	}
	b.execs++
	if taken {
		b.taken++
	}
	if b.execs >= c.TrainLen {
		b.decided = true
		maj := b.taken
		b.dir = true
		if b.taken*2 < b.execs {
			maj = b.execs - b.taken
			b.dir = false
		}
		b.speculate = float64(maj) >= c.Threshold*float64(b.execs)
	}
	return core.NotSpeculated
}

// Selected returns how many branches the controller decided to speculate on.
func (c *InitialBehavior) Selected() int {
	n := 0
	for i := range c.branches {
		if c.branches[i].decided && c.branches[i].speculate {
			n++
		}
	}
	return n
}
