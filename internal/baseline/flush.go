package baseline

import (
	"reactivespec/internal/core"
	"reactivespec/internal/trace"
)

// Flush models the Dynamo-style policy discussed in the paper's related work:
// decisions are made from initial behavior, never individually reconsidered,
// but the whole fragment cache is preemptively flushed at a phase change —
// here, periodically — forcing every branch to be re-learned from scratch.
//
// The paper predicts this policy "will likely perform somewhere between
// closed-loop and open-loop policies"; the ablation-flush experiment checks
// that prediction.
type Flush struct {
	// TrainLen and Threshold are the per-branch relearning parameters
	// (as InitialBehavior).
	TrainLen  uint64
	Threshold float64
	// FlushPeriod is the global flush interval in dynamic instructions.
	FlushPeriod uint64

	inner     *InitialBehavior
	nextFlush uint64
	// Flushes counts cache flushes performed.
	Flushes uint64
}

// NewFlush returns a flush-policy controller.
func NewFlush(trainLen uint64, threshold float64, flushPeriod uint64) *Flush {
	return &Flush{
		TrainLen:    trainLen,
		Threshold:   threshold,
		FlushPeriod: flushPeriod,
		inner:       NewInitialBehavior(trainLen, threshold),
		nextFlush:   flushPeriod,
	}
}

// OnBranch implements the harness Controller contract.
func (f *Flush) OnBranch(id trace.BranchID, taken bool, instr uint64) core.Verdict {
	if f.FlushPeriod > 0 && instr >= f.nextFlush {
		f.inner = NewInitialBehavior(f.TrainLen, f.Threshold)
		f.nextFlush = instr + f.FlushPeriod
		f.Flushes++
	}
	return f.inner.OnBranch(id, taken, instr)
}
