// Package memdep extends the study to memory-dependence speculation — the
// third program behavior the paper reports its results generalize to
// (Section 2: "memory dependences").
//
// A static store→load pair either conflicts (the load must wait for the
// store) or not; speculating means reordering the load above the store,
// which is profitable exactly when conflicts are rare. The behavior is
// binary, so the pair populations reuse the behavior models and the core
// reactive controller directly: "taken" encodes "no conflict this instance".
// The population mix follows the memory-dependence characterizations the
// paper cites (Moshovos et al., reference [10]): most pairs never conflict,
// a minority conflict frequently, and some start conflict-free and begin
// conflicting when data structures grow into aliasing.
package memdep

import (
	"reactivespec/internal/behavior"
	"reactivespec/internal/workload"
)

// BuildSuite constructs the default dependence-pair workload at the given
// scale (1.0 ≈ 4 M dynamic pair instances) as a workload.Spec, so the whole
// branch tool chain (generator, harness, controllers, oracles) applies
// unchanged.
func BuildSuite(seed uint64, scale float64) *workload.Spec {
	if scale <= 0 {
		scale = 1
	}
	events := uint64(4_000_000 * scale)
	rnd := seed ^ 0x3e3d
	next := func() uint64 {
		rnd += 0x9e3779b97f4a7c15
		z := rnd
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	frand := func() float64 { return float64(next()>>11) / float64(1<<53) }

	spec := &workload.Spec{
		Name:    "memdep",
		Input:   workload.InputEval,
		Seed:    seed ^ 0xdef,
		Events:  events,
		MeanGap: 9, // dependence pairs are sparser than branches
	}
	add := func(n int, weightEach float64, class workload.BranchClass, mk func(i int) behavior.Model) {
		for i := 0; i < n; i++ {
			spec.Branches = append(spec.Branches, workload.BranchSpec{
				Weight: weightEach,
				Model:  mk(i),
				Class:  class,
				Group:  -1,
			})
		}
	}
	// ~55% of dynamic pair instances never conflict (independent
	// structures): safe reordering targets.
	add(70, 0.55/70, workload.ClassBiased, func(int) behavior.Model {
		return behavior.Bernoulli{Seed: next(), PTaken: 1 - 1e-4*(0.5+2*frand())}
	})
	// ~25% conflict often (producer/consumer through memory): must not be
	// reordered.
	add(40, 0.25/40, workload.ClassUnbiased, func(int) behavior.Model {
		return behavior.Bernoulli{Seed: next(), PTaken: 0.3 + 0.5*frand()}
	})
	// ~12% begin conflict-free and start aliasing when the data structure
	// grows (the dependence analog of a branch reversal).
	add(10, 0.12/10, workload.ClassSoftening, func(int) behavior.Model {
		execs := 0.12 / 10 * float64(events)
		at := uint64((0.3 + 0.4*frand()) * execs)
		return behavior.Segments{Seed: next(), Segs: []behavior.Segment{
			{Len: at, PTaken: 1 - 2e-4},
			{PTaken: 0.2 + 0.5*frand()},
		}}
	})
	// ~8% conflict in bursts (periodic rehash / GC-like episodes).
	add(6, 0.08/6, workload.ClassBursty, func(int) behavior.Model {
		return behavior.Bursty{Seed: next(), PTaken: 1 - 2e-4, PBurst: 0.004, BurstLen: 16, PInBurst: 0.5}
	})
	normalize(spec)
	return spec
}

func normalize(spec *workload.Spec) {
	sum := 0.0
	for _, b := range spec.Branches {
		sum += b.Weight
	}
	for i := range spec.Branches {
		spec.Branches[i].Weight /= sum
	}
}
