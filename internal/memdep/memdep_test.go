package memdep

import (
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/workload"
)

func TestSuiteShape(t *testing.T) {
	spec := BuildSuite(1, 0.1)
	if len(spec.Branches) == 0 || spec.Events == 0 {
		t.Fatal("empty suite")
	}
	sum := 0.0
	classes := map[workload.BranchClass]int{}
	for _, b := range spec.Branches {
		sum += b.Weight
		classes[b.Class]++
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v", sum)
	}
	for _, cl := range []workload.BranchClass{workload.ClassBiased, workload.ClassUnbiased,
		workload.ClassSoftening, workload.ClassBursty} {
		if classes[cl] == 0 {
			t.Fatalf("class %v missing", cl)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := workload.NewGenerator(BuildSuite(7, 0.05))
	b := workload.NewGenerator(BuildSuite(7, 0.05))
	for i := 0; i < 10_000; i++ {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if ea != eb || oka != okb {
			t.Fatalf("streams diverge at %d", i)
		}
		if !oka {
			break
		}
	}
}

func TestReactiveControlOnDependences(t *testing.T) {
	spec := BuildSuite(0, 0.2)
	params := core.DefaultParams().Scaled(50)
	params.WaitPeriod = 5_000

	ctl := core.New(params)
	st := harness.Run(workload.NewGenerator(spec), ctl)
	open := harness.Run(workload.NewGenerator(spec), core.New(params.WithNoEviction()))

	// Reordering must cover a majority of safe pairs with few conflicts.
	if st.CorrectFrac() < 0.35 {
		t.Fatalf("reactive correct fraction = %v", st.CorrectFrac())
	}
	if st.MisspecFrac() > 0.005 {
		t.Fatalf("reactive conflict fraction = %v", st.MisspecFrac())
	}
	// And the open loop must be much worse on the aliasing-onset pairs.
	if open.Misspec < 5*st.Misspec {
		t.Fatalf("open-loop conflicts %d not far above reactive %d", open.Misspec, st.Misspec)
	}
	if _, biased, evicted, _ := ctl.StaticCounts(); biased == 0 || evicted == 0 {
		t.Fatal("controller never classified or evicted a pair")
	}
}
