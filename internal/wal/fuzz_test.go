package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"reactivespec/internal/trace"
)

// validSegmentBytes builds one real segment file (header + records) and
// returns its raw bytes, for seeding the fuzz corpora.
func validSegmentBytes(f *testing.F, records int) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(Options{Dir: dir, ParamsHash: testHash, Policy: SyncAlways})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append("gzip", synthEvents(8+i, uint64(i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// scanRecords decodes a record stream (segment bytes *after* the header) and
// returns the record count and the byte length of the valid prefix.
func scanRecords(t *testing.T, data []byte) (records int, prefix int64) {
	t.Helper()
	d := newSegmentDecoder(bytes.NewReader(data), segHeaderSize+int64(len(data)))
	var dst []trace.Event
	for {
		_, _, events, err := d.next(dst[:0], true)
		if err != nil {
			if err == io.EOF && records == 0 && len(data) > 0 && d.off != segHeaderSize {
				t.Fatalf("EOF with non-boundary offset %d", d.off)
			}
			return records, d.off - segHeaderSize
		}
		dst = events
		records++
		if records > len(data) {
			t.Fatal("decoder produced more records than any input this size could encode")
		}
	}
}

// FuzzSegmentRecords feeds arbitrary bytes to the segment record decoder: it
// must never panic, and the valid prefix it reports must be stable — cutting
// the input at the reported boundary and re-scanning yields the same records
// with a clean end. That is the recovery contract: truncate a torn tail
// once, and the survivor replays cleanly forever after.
func FuzzSegmentRecords(f *testing.F) {
	valid := validSegmentBytes(f, 4)[segHeaderSize:]
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff))
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	// A huge declared record length over no payload.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// A zero-length record (CRC of empty payload is 0, frame decode fails).
	f.Add([]byte{0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, prefix := scanRecords(t, data)
		if prefix < 0 || prefix > int64(len(data)) {
			t.Fatalf("reported prefix %d outside [0, %d]", prefix, len(data))
		}
		again, againPrefix := scanRecords(t, data[:prefix])
		if again != records || againPrefix != prefix {
			t.Fatalf("re-scan of the reported prefix: %d records / %d bytes, want %d / %d",
				again, againPrefix, records, prefix)
		}
	})
}

// FuzzOpenSegment feeds arbitrary bytes to the full Open path as an on-disk
// segment: Open must never panic, must either reject the directory with a
// typed error or open it, and whatever it opens must replay exactly NextSeq
// records and reopen cleanly with no further truncation.
func FuzzOpenSegment(f *testing.F) {
	valid := validSegmentBytes(f, 4)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:segHeaderSize])
	f.Add(valid[:3]) // torn header
	f.Add([]byte{})
	badMagic := append([]byte{}, valid...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	badVersion := append([]byte{}, valid...)
	badVersion[4] = 99
	f.Add(badVersion)
	badHash := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(badHash[5:], testHash+1)
	f.Add(badHash)
	badBase := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(badBase[13:], 7)
	f.Add(badBase)
	tail := append([]byte{}, valid...)
	tail[len(tail)-2] ^= 0x08
	f.Add(tail)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(0))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, ParamsHash: testHash, Policy: SyncNever})
		if err != nil {
			if !errors.Is(err, ErrBadSegment) && !errors.Is(err, ErrParamsMismatch) {
				t.Fatalf("Open error %v wraps neither ErrBadSegment nor ErrParamsMismatch", err)
			}
			return
		}
		next := l.NextSeq()
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		r, err := NewReader(ReaderOptions{Dir: dir, ParamsHash: testHash})
		if err != nil {
			t.Fatalf("NewReader after successful Open: %v", err)
		}
		var got uint64
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("replay after Open truncation failed at record %d: %v", got, err)
			}
			got++
		}
		r.Close()
		if got != next {
			t.Fatalf("replayed %d records, Open promised %d", got, next)
		}

		// Idempotence: a second Open finds nothing left to repair.
		l, err = Open(Options{Dir: dir, ParamsHash: testHash, Policy: SyncNever})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if tr := l.Recovery(); tr != nil {
			t.Fatalf("second Open still truncating: %v", tr)
		}
		if l.NextSeq() != next {
			t.Fatalf("second Open NextSeq %d, want %d", l.NextSeq(), next)
		}
		l.Close()
	})
}
