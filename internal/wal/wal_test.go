package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"reactivespec/internal/trace"
)

const testHash = 0xfeedc0dedeadbeef

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:        t.TempDir(),
		ParamsHash: testHash,
		Policy:     SyncAlways,
	}
}

// synthEvents builds a small deterministic batch keyed by seed.
func synthEvents(n int, seed uint64) []trace.Event {
	events := make([]trace.Event, n)
	state := seed*2862933555777941757 + 3037000493
	for i := range events {
		state = state*2862933555777941757 + 3037000493
		events[i] = trace.Event{
			Branch: trace.BranchID(state % 512),
			Taken:  state&(1<<20) != 0,
			Gap:    uint32(state % 97),
		}
	}
	return events
}

// appendBatches appends n batches for program and returns them.
func appendBatches(t *testing.T, l *Log, program string, n int, seed uint64) [][]trace.Event {
	t.Helper()
	batches := make([][]trace.Event, n)
	for i := range batches {
		batches[i] = synthEvents(16+i, seed+uint64(i))
		if _, err := l.Append(program, batches[i]); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	return batches
}

// readAll replays every record at or past from.
func readAll(t *testing.T, dir string, from uint64) ([]Record, *TailTruncation) {
	t.Helper()
	r, err := NewReader(ReaderOptions{Dir: dir, ParamsHash: testHash, From: from})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, r.Truncation()
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(out), err)
		}
		cp := make([]trace.Event, len(rec.Events))
		copy(cp, rec.Events)
		rec.Events = cp
		out = append(out, rec)
	}
}

func TestRoundtrip(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := appendBatches(t, l, "gzip", 5, 1)
	more := appendBatches(t, l, "vpr", 3, 100)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, trunc := readAll(t, opts.Dir, 0)
	if trunc != nil {
		t.Fatalf("unexpected truncation: %v", trunc)
	}
	if len(recs) != 8 {
		t.Fatalf("replayed %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		wantProg, wantEvents := "gzip", want
		idx := i
		if i >= 5 {
			wantProg, wantEvents = "vpr", more
			idx = i - 5
		}
		if rec.Program != wantProg {
			t.Errorf("record %d program %q, want %q", i, rec.Program, wantProg)
		}
		if !reflect.DeepEqual(rec.Events, wantEvents[idx]) {
			t.Errorf("record %d events differ", i)
		}
	}
}

func TestReopenContinues(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "gzip", 3, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l, err = Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := l.NextSeq(); got != 3 {
		t.Fatalf("NextSeq after reopen = %d, want 3", got)
	}
	appendBatches(t, l, "gzip", 2, 50)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, _ := readAll(t, opts.Dir, 0)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records after reopen, want 5", len(recs))
	}
	if recs[4].Seq != 4 {
		t.Fatalf("last seq %d, want 4", recs[4].Seq)
	}
}

func TestRotationAndFrom(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 256 // force rotation every couple of records
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "mcf", 20, 7)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected >=3 segments after rotation, got %d", st.Segments)
	}
	if st.NextSeq != 20 {
		t.Fatalf("NextSeq = %d, want 20", st.NextSeq)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, _ := readAll(t, opts.Dir, 0)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
	// A mid-log From must seek to the covering segment and skip precisely.
	recs, _ = readAll(t, opts.Dir, 13)
	if len(recs) != 7 || recs[0].Seq != 13 {
		t.Fatalf("From=13 replayed %d records starting at %d, want 7 starting at 13",
			len(recs), recs[0].Seq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"partial-record", "garbage-suffix", "bit-flip"} {
		t.Run(cut, func(t *testing.T) {
			opts := testOptions(t)
			l, err := Open(opts)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			appendBatches(t, l, "gzip", 4, 9)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			segs, err := listSegments(opts.Dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("listSegments: %v (%d)", err, len(segs))
			}
			path := segs[0].path
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			switch cut {
			case "partial-record":
				// Drop the tail half of the final record: a torn write.
				data = data[:len(data)-9]
			case "garbage-suffix":
				// A record that began but never finished its length prefix.
				data = append(data, 0xff, 0xff)
			case "bit-flip":
				// Corrupt a payload byte of the final record: CRC must catch it.
				data[len(data)-3] ^= 0x40
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}

			// The standalone reader stops cleanly at the damage.
			wantRecs := 3
			if cut == "garbage-suffix" {
				wantRecs = 4
			}
			recs, trunc := readAll(t, opts.Dir, 0)
			if len(recs) != wantRecs {
				t.Fatalf("reader yielded %d records, want %d", len(recs), wantRecs)
			}
			if trunc == nil {
				t.Fatalf("reader reported no truncation")
			}

			// Reopening the log truncates the file at the same boundary and
			// resumes numbering after the surviving prefix.
			l, err = Open(opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			rec := l.Recovery()
			if rec == nil {
				t.Fatalf("Open reported no truncation")
			}
			if rec.Dropped <= 0 || rec.Reason == "" {
				t.Fatalf("truncation diagnostic incomplete: %+v", rec)
			}
			if got := l.NextSeq(); got != uint64(wantRecs) {
				t.Fatalf("NextSeq after truncation = %d, want %d", got, wantRecs)
			}
			appendBatches(t, l, "gzip", 1, 77)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			recs, trunc = readAll(t, opts.Dir, 0)
			if trunc != nil {
				t.Fatalf("truncation persists after repair: %v", trunc)
			}
			if len(recs) != wantRecs+1 {
				t.Fatalf("replayed %d records after repair, want %d", len(recs), wantRecs+1)
			}
		})
	}
}

func TestTornHeaderSegmentRemoved(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "gzip", 2, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash during rotation: the next segment's file exists but
	// its header never hit the disk.
	torn := filepath.Join(opts.Dir, segmentName(2))
	if err := os.WriteFile(torn, []byte("RSW"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	l, err = Open(opts)
	if err != nil {
		t.Fatalf("reopen with torn-header segment: %v", err)
	}
	defer l.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn-header segment not removed (stat err %v)", err)
	}
	if got := l.NextSeq(); got != 2 {
		t.Fatalf("NextSeq = %d, want 2", got)
	}
}

func TestParamsMismatch(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "gzip", 1, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	bad := opts
	bad.ParamsHash = testHash + 1
	if _, err := Open(bad); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("Open with wrong params hash: %v, want ErrParamsMismatch", err)
	}
	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash + 1})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("Next with wrong params hash: %v, want ErrParamsMismatch", err)
	}
}

func TestCompaction(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 256
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "mcf", 20, 5)
	segs := l.Stats().Segments
	if segs < 4 {
		t.Fatalf("expected >=4 segments, got %d", segs)
	}

	// Compacting to a mid-log anchor removes only wholly-covered segments.
	removed, err := l.CompactTo(10)
	if err != nil {
		t.Fatalf("CompactTo: %v", err)
	}
	if removed == 0 {
		t.Fatalf("CompactTo removed nothing")
	}
	st := l.Stats()
	if st.OldestSeq > 10 {
		t.Fatalf("compaction removed records at or past the anchor: oldest %d", st.OldestSeq)
	}
	if st.OldestSeq == 0 {
		t.Fatalf("compaction removed no prefix")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The retained range replays; a From below it is an explicit error.
	recs, _ := readAll(t, opts.Dir, st.OldestSeq)
	if len(recs) != int(20-st.OldestSeq) {
		t.Fatalf("replayed %d records, want %d", len(recs), 20-st.OldestSeq)
	}
	if _, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, From: st.OldestSeq - 1}); err == nil {
		t.Fatalf("NewReader below the retained range succeeded")
	}
}

// TestReaderReportsCompactionMidPass pins the one live-directory hazard of a
// point-in-time (non-follow) pass: a segment that was listed at open but
// compacted away before the reader reaches it fails with an error naming the
// remedy, not a raw missing-file error.
func TestReaderReportsCompactionMidPass(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 << 10 // rotate often so compaction has prey
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	appendBatches(t, l, "gcc", 30, 7)
	if l.OldestSeq() != 0 {
		t.Fatal("log unexpectedly compacted already")
	}

	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	// The reader holds its first segment open; compact everything else out
	// from under the snapshot it took of the directory.
	anchor := l.NextSeq() - 1
	if _, err := l.CompactTo(anchor); err != nil {
		t.Fatalf("CompactTo: %v", err)
	}
	if l.OldestSeq() == 0 {
		t.Fatal("CompactTo removed nothing; the hazard is not set up")
	}
	for {
		_, err := r.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("pass completed despite segments vanishing mid-pass")
		}
		if !strings.Contains(err.Error(), "compacted away mid-replay") {
			t.Fatalf("error %v does not name the mid-replay compaction", err)
		}
		break
	}
}

func TestCompactionNeverRemovesActiveSegment(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	appendBatches(t, l, "gzip", 3, 2)
	removed, err := l.CompactTo(1 << 60)
	if err != nil {
		t.Fatalf("CompactTo: %v", err)
	}
	if removed != 0 {
		t.Fatalf("CompactTo removed the active segment")
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1", st.Segments)
	}
}

func TestAlignSeq(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Empty log aligned to a snapshot anchor: numbering starts there.
	if err := l.AlignSeq(42); err != nil {
		t.Fatalf("AlignSeq: %v", err)
	}
	appendBatches(t, l, "gzip", 2, 1)
	// Aligning backwards is a no-op.
	if err := l.AlignSeq(10); err != nil {
		t.Fatalf("AlignSeq backwards: %v", err)
	}
	if got := l.NextSeq(); got != 44 {
		t.Fatalf("NextSeq = %d, want 44", got)
	}
	// Aligning forwards past appended records finishes the active segment
	// and restarts numbering at the anchor.
	if err := l.AlignSeq(100); err != nil {
		t.Fatalf("AlignSeq forward: %v", err)
	}
	appendBatches(t, l, "gzip", 1, 9)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, _ := readAll(t, opts.Dir, 100)
	if len(recs) != 1 || recs[0].Seq != 100 {
		t.Fatalf("replay from aligned anchor got %d records (first seq %v)", len(recs), recs)
	}
	// Replaying from *before* the alignment gap must fail loudly: the
	// records in [44, 100) are genuinely absent (only the snapshot covers
	// them), and replay must never silently skip missing history.
	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, From: 42})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	seen := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatalf("replay across the alignment gap reached EOF after %d records; want ErrBadSegment", seen)
		}
		if err != nil {
			if !errors.Is(err, ErrBadSegment) {
				t.Fatalf("replay across gap: %v, want ErrBadSegment", err)
			}
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("replayed %d records before the gap, want 2", seen)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	opts := testOptions(t)
	opts.Policy = SyncInterval
	opts.Interval = 5 * time.Millisecond
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append("gzip", synthEvents(8, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOnFsyncObserved(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var observed int
	l.OnFsync = func(d time.Duration) { observed++ }
	appendBatches(t, l, "gzip", 2, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if observed == 0 {
		t.Fatalf("OnFsync never fired under SyncAlways")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in       string
		policy   SyncPolicy
		interval time.Duration
		wantErr  bool
	}{
		{in: "always", policy: SyncAlways},
		{in: "never", policy: SyncNever},
		{in: "interval", policy: SyncInterval, interval: DefaultSyncInterval},
		{in: "interval=250ms", policy: SyncInterval, interval: 250 * time.Millisecond},
		{in: "interval=0s", wantErr: true},
		{in: "interval=bogus", wantErr: true},
		{in: "sometimes", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		p, d, err := ParseSyncPolicy(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", tc.in, err)
			continue
		}
		if p != tc.policy || d != tc.interval {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want (%v, %v)", tc.in, p, d, tc.policy, tc.interval)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append("gzip", synthEvents(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 256
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendBatches(t, l, "mcf", 12, 4)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	// Flip a payload byte in a *middle* segment: replay must refuse to skip
	// over missing history.
	mid := segs[len(segs)/2].path
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatalf("replay over mid-log corruption reached EOF; want ErrBadSegment")
		}
		if err != nil {
			if !errors.Is(err, ErrBadSegment) {
				t.Fatalf("replay error %v, want ErrBadSegment", err)
			}
			break
		}
	}
}
