package wal

import (
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"reactivespec/internal/trace"
)

// TestFollowReaderConcurrentAppend drives a follow reader against a live
// appender: small segments force rotations underneath the reader, and the
// reader must still yield every record exactly once, in order, staying at or
// below the durable boundary.
func TestFollowReaderConcurrentAppend(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 << 10 // rotate constantly
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	const batches = 200
	want := make([][]trace.Event, batches)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			want[i] = synthEvents(8+i%13, uint64(i))
			if _, err := l.Append("gzip", want[i]); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
			if err := l.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
		}
	}()

	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, Follow: true})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()

	notify, cancel := l.SubscribeDurable()
	defer cancel()
	got := make([][]trace.Event, 0, batches)
	deadline := time.After(30 * time.Second)
	for len(got) < batches {
		rec, err := r.Next()
		if err == io.EOF {
			// Not an end in follow mode: wait for durability to advance.
			select {
			case <-notify:
			case <-time.After(10 * time.Millisecond):
			case <-deadline:
				t.Fatalf("follow reader stalled at %d/%d records", len(got), batches)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(got), err)
		}
		if rec.Seq != uint64(len(got)) {
			t.Fatalf("record %d carries seq %d", len(got), rec.Seq)
		}
		if rec.Program != "gzip" {
			t.Fatalf("record %d program %q", len(got), rec.Program)
		}
		got = append(got, append([]trace.Event(nil), rec.Events...))
	}
	wg.Wait()
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d events diverge from what was appended", i)
		}
	}
	if tr := r.Truncation(); tr != nil {
		t.Fatalf("follow reader reported a truncation: %v", tr)
	}
}

// TestFollowReaderFrameOnly checks the shipper-side mode: raw frame payloads
// without event decoding must round-trip through the trace codec.
func TestFollowReaderFrameOnly(t *testing.T) {
	opts := testOptions(t)
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := appendBatches(t, l, "vpr", 5, 42)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, Follow: true, FrameOnly: true})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	for i := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if rec.Events != nil {
			t.Fatalf("record %d decoded events despite FrameOnly", i)
		}
		events, err := trace.DecodeFrameAppend(rec.Frame, nil)
		if err != nil {
			t.Fatalf("record %d frame does not decode: %v", i, err)
		}
		if !reflect.DeepEqual(events, want[i]) {
			t.Fatalf("record %d frame decodes to different events", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at the tail, got %v", err)
	}
	// Non-sticky: a second call still reports EOF rather than a sticky error.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("follow EOF is not retryable: %v", err)
	}
}

// TestFollowReaderStartsBeforeFirstSegment opens the follow reader on an
// empty directory; records appended afterwards must still arrive.
func TestFollowReaderStartsBeforeFirstSegment(t *testing.T) {
	opts := testOptions(t)
	r, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, Follow: true})
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	defer r.Close()
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF on the empty directory, got %v", err)
	}

	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	want := appendBatches(t, l, "mcf", 3, 7)
	for i := range want {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if rec.Seq != uint64(i) || !reflect.DeepEqual(rec.Events, want[i]) {
			t.Fatalf("record %d diverges (seq %d)", i, rec.Seq)
		}
	}
}

// TestFollowReaderCompactedBehind pins the fell-behind-compaction diagnosis:
// a follow reader positioned below the oldest retained record must fail with
// the full-resync message rather than silently skipping records.
func TestFollowReaderCompactedBehind(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 1 << 8
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	appendBatches(t, l, "gcc", 20, 3)
	if l.OldestSeq() == 0 {
		if _, err := l.CompactTo(l.NextSeq() - 1); err != nil {
			t.Fatalf("CompactTo: %v", err)
		}
	}
	if l.OldestSeq() == 0 {
		t.Fatal("compaction removed nothing; the test needs rotated segments")
	}
	if _, err := NewReader(ReaderOptions{Dir: opts.Dir, ParamsHash: testHash, From: 0, Follow: true}); err == nil {
		t.Fatal("want a compacted-away error, got a reader")
	}
}

// TestDurableSeqAndSubscribe pins the durability boundary bookkeeping under
// each sync policy.
func TestDurableSeqAndSubscribe(t *testing.T) {
	opts := testOptions(t)
	opts.Policy = SyncNever
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	notify, cancel := l.SubscribeDurable()
	defer cancel()

	if _, err := l.Append("twolf", synthEvents(4, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("SyncNever advanced DurableSeq to %d without an fsync", got)
	}
	select {
	case <-notify:
		t.Fatal("notified without a durability advance")
	default:
	}

	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := l.DurableSeq(); got != 1 {
		t.Fatalf("DurableSeq after Sync = %d, want 1", got)
	}
	select {
	case <-notify:
	default:
		t.Fatal("no durability notification after Sync")
	}
	if st := l.Stats(); st.DurableSeq != 1 {
		t.Fatalf("Stats.DurableSeq = %d, want 1", st.DurableSeq)
	}
}
