// Package wal is the daemon's write-ahead event log: a segmented,
// append-only record of every ingested trace frame, written *before* the
// frame is applied to the controller table. Controllers are deterministic
// functions of their event stream, so the log plus the latest gob snapshot
// gives exact point-in-time recovery — restore the snapshot, replay the log
// tail, resume — without consensus or per-entry journaling.
//
// On-disk layout: <dir>/wal-<base seq, 16 hex digits>.seg files. Each
// segment starts with a fixed header and carries length-prefixed,
// CRC-guarded records:
//
//	segment header (21 bytes):
//	  magic      "RSWL"  [4]byte
//	  version    byte    (1)
//	  paramsHash uint64  LE  — controller-parameter digest (server.ParamsHash)
//	  baseSeq    uint64  LE  — sequence number of the segment's first record
//
//	record:
//	  length  uvarint    (payload bytes)
//	  crc     uint32 LE  (CRC-32/IEEE over the payload)
//	  payload:
//	    programLen uvarint, program bytes
//	    frame      a complete trace frame payload (trace.EncodeFrame)
//
// Records are numbered consecutively from the segment's base, so a record's
// sequence number is derived, never stored: seq = baseSeq + index. Segment
// rotation closes and fsyncs the active file before opening the next, so
// only the *last* segment can ever hold a torn tail; Open scans it, truncates
// at the last valid record boundary, and reports the cut with a byte-offset
// diagnostic — the same contract as the trace codec's corruption detection.
//
// Durability is a policy knob, not a fixed cost: SyncAlways fsyncs on every
// Commit (no acknowledged event is ever lost), SyncInterval fsyncs on a
// background tick (bounded loss window, near-zero ingest overhead),
// SyncNever leaves flushing to the OS (snapshots remain the only durable
// anchor). Whatever survives on disk always replays deterministically; the
// policy only chooses how much tail a crash may shave off.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
)

const (
	segVersion    = 1
	segHeaderSize = 4 + 1 + 8 + 8

	// maxProgramLen bounds the program-name field of a record; anything
	// longer is corruption, not a workload.
	maxProgramLen = 1 << 12
	// maxRecordPayload bounds one record's payload the way
	// trace.MaxFramePayload bounds a wire frame: a corrupted length prefix
	// must be diagnosed, not swallowed as one giant bogus record.
	maxRecordPayload = trace.MaxFramePayload + maxProgramLen + 2*binary.MaxVarintLen64

	// DefaultSegmentBytes is the rotation threshold when the caller does
	// not choose one.
	DefaultSegmentBytes = 64 << 20
	// DefaultSyncInterval is the SyncInterval flush cadence when the
	// caller does not choose one.
	DefaultSyncInterval = 100 * time.Millisecond
)

var segMagic = [4]byte{'R', 'S', 'W', 'L'}

// ErrBadSegment reports a segment whose framing or header is damaged.
var ErrBadSegment = errors.New("wal: malformed segment")

// ErrParamsMismatch reports a segment written under different controller
// parameters; replaying it would produce different decisions.
var ErrParamsMismatch = errors.New("wal: segment controller parameters do not match")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncInterval flushes and fsyncs on a background tick
	// (Options.Interval): a crash loses at most one interval of tail.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every Commit: no acknowledged event is lost.
	SyncAlways
	// SyncNever leaves flushing to segment rotation, Close, and the OS.
	SyncNever
)

// String renders the policy the way the -wal-fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses a -wal-fsync flag value: "always", "never",
// "interval", or "interval=<duration>".
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch {
	case s == "always":
		return SyncAlways, 0, nil
	case s == "never":
		return SyncNever, 0, nil
	case s == "interval":
		return SyncInterval, DefaultSyncInterval, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad sync interval %q", s)
		}
		return SyncInterval, d, nil
	}
	return 0, 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval[=dur], or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// ParamsHash is the controller-parameter digest stamped into every
	// segment header; Open rejects segments written under a different one.
	ParamsHash uint64
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy selects the fsync policy (default SyncInterval).
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence (default
	// DefaultSyncInterval).
	Interval time.Duration
	// Logf, when non-nil, receives operational log lines (recovery
	// truncation, compaction).
	Logf func(format string, args ...any)
	// Trace, when non-nil, records sampled trace-less infrastructure spans
	// (wal_fsync, wal_rotate) so span files show where the fsync barrier's
	// time goes. Nil disables with a single branch per fsync.
	Trace *obs.Tracer
}

// TailTruncation describes a torn or corrupt tail Open cut off: the segment,
// the byte offset of the last valid record boundary, and why the next record
// was rejected.
type TailTruncation struct {
	Segment string
	// Offset is the byte offset the segment was truncated to — the end of
	// the last valid record.
	Offset int64
	// Dropped is how many bytes past Offset were discarded.
	Dropped int64
	Reason  string
}

func (t *TailTruncation) String() string {
	return fmt.Sprintf("%s truncated to byte offset %d (%d trailing bytes dropped): %s",
		t.Segment, t.Offset, t.Dropped, t.Reason)
}

// segmentRef locates one on-disk segment.
type segmentRef struct {
	base uint64
	path string
}

func segmentName(base uint64) string {
	return fmt.Sprintf("wal-%016x.seg", base)
}

// parseSegmentName extracts the base sequence number from a segment file
// name; ok is false for files that are not segments.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	base, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// Stats is a point-in-time summary of the log, for metrics exposition.
type Stats struct {
	// AppendedRecords and AppendedBytes count appends since Open.
	AppendedRecords uint64
	AppendedBytes   uint64
	// Fsyncs counts file syncs since Open.
	Fsyncs uint64
	// Segments is the number of on-disk segment files.
	Segments int
	// ActiveSegmentBytes is the size of the segment currently appended to
	// (0 when none is open yet).
	ActiveSegmentBytes int64
	// OldestSeq and NextSeq bound the retained record range:
	// [OldestSeq, NextSeq) is replayable.
	OldestSeq uint64
	NextSeq   uint64
	// DurableSeq is the end of the fsynced range: records
	// [OldestSeq, DurableSeq) are on stable storage.
	DurableSeq uint64
}

// Log is the append side of the write-ahead log. Append and Commit are safe
// for concurrent use; one Log owns its directory.
type Log struct {
	opts Options

	mu         sync.Mutex
	segments   []segmentRef // sorted by base; the last one is active when f != nil
	f          *os.File
	bw         *bufWriter
	nextSeq    uint64
	oldestSeq  uint64
	activeBase uint64
	bytes      int64 // size of the active segment
	dirty      bool  // unsynced data in the buffer or file
	closed     bool
	scratch    []byte
	truncation *TailTruncation

	appendedRecords atomic.Uint64
	appendedBytes   atomic.Uint64
	fsyncs          atomic.Uint64

	// durableSeq is the end of the fsynced range: every record with a
	// sequence number below it is on stable storage. It only advances on a
	// successful fsync (or when the next sequence is repositioned), so a
	// tail reader that stays below it never observes a torn record.
	durableSeq atomic.Uint64

	subMu sync.Mutex
	subs  map[chan struct{}]struct{}

	// OnFsync, when non-nil, observes every fsync's duration (wired to a
	// latency histogram by the server). Set it before the first Append.
	OnFsync func(time.Duration)

	stop chan struct{}
	done chan struct{}
}

// bufWriter is a minimal buffered writer: bufio.Writer plus a byte count so
// rotation thresholds see buffered bytes too.
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (w *bufWriter) Write(p []byte) error {
	if len(w.buf)+len(p) > cap(w.buf) {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if len(p) > cap(w.buf) {
		_, err := w.f.Write(p)
		return err
	}
	w.buf = append(w.buf, p...)
	return nil
}

func (w *bufWriter) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Open opens (or creates) the log under opts.Dir: it scans the existing
// segments, validates their headers against opts.ParamsHash, truncates a
// torn tail at the last valid record boundary, and positions the log to
// append after the last durable record. The first segment is created lazily
// on the first Append, so an empty directory stays empty until written to.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: no directory configured")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	segments, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:     opts,
		segments: segments,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := l.recoverTail(); err != nil {
		return nil, err
	}
	if len(l.segments) > 0 {
		l.oldestSeq = l.segments[0].base
	}
	// Everything recovery kept is on stable storage (rotation fsyncs
	// completed segments, and the torn tail was just cut at the last valid
	// boundary), so the durable range starts out equal to the full range.
	l.durableSeq.Store(l.nextSeq)
	go l.syncLoop()
	return l, nil
}

// listSegments enumerates and orders the directory's segment files.
func listSegments(dir string) ([]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading directory: %w", err)
	}
	var segs []segmentRef
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentRef{base: base, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for i := 1; i < len(segs); i++ {
		if segs[i].base == segs[i-1].base {
			return nil, fmt.Errorf("%w: duplicate base sequence %d", ErrBadSegment, segs[i].base)
		}
	}
	return segs, nil
}

// recoverTail validates the last segment and opens it for append. A final
// segment whose header never made it to disk (crash during rotation) is
// deleted; a torn record tail is truncated at the last valid boundary. The
// headers of earlier segments are validated too (cheap), but their records
// are only decoded at replay — rotation fsyncs every completed segment, so
// only the last can be torn.
func (l *Log) recoverTail() error {
	for i := 0; i < len(l.segments)-1; i++ {
		if _, err := readSegmentHeader(l.segments[i].path, l.opts.ParamsHash, l.segments[i].base); err != nil {
			return err
		}
	}
	for len(l.segments) > 0 {
		last := l.segments[len(l.segments)-1]
		if _, err := readSegmentHeader(last.path, l.opts.ParamsHash, last.base); err != nil {
			// Params and identity mismatches are hard errors everywhere;
			// only a header that never finished writing is recoverable,
			// and only on the final segment.
			if !errors.Is(err, ErrBadSegment) || !errors.Is(err, errTornHeader) {
				return err
			}
			if rmErr := os.Remove(last.path); rmErr != nil {
				return fmt.Errorf("wal: removing torn segment %s: %w", last.path, rmErr)
			}
			l.logf("wal: removed segment %s with torn header (%v)", filepath.Base(last.path), err)
			l.segments = l.segments[:len(l.segments)-1]
			continue
		}
		break
	}
	if len(l.segments) == 0 {
		return nil
	}
	last := l.segments[len(l.segments)-1]
	records, end, reason, err := scanSegmentFile(last.path)
	if err != nil {
		return err
	}
	size, err := fileSize(last.path)
	if err != nil {
		return err
	}
	if end < size {
		if err := os.Truncate(last.path, end); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
		}
		l.truncation = &TailTruncation{
			Segment: filepath.Base(last.path),
			Offset:  end,
			Dropped: size - end,
			Reason:  reason,
		}
		l.logf("wal: %s", l.truncation)
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment for append: %w", err)
	}
	l.f = f
	l.bw = &bufWriter{f: f, buf: make([]byte, 0, 1<<16)}
	l.activeBase = last.base
	l.bytes = end
	l.nextSeq = last.base + records
	return nil
}

func fileSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	return st.Size(), nil
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// Recovery returns the torn-tail truncation Open performed, if any.
func (l *Log) Recovery() *TailTruncation { return l.truncation }

// NextSeq returns the sequence number the next appended record will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// OldestSeq returns the sequence number of the oldest retained record; the
// replayable range is [OldestSeq, NextSeq).
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestSeq
}

// DurableSeq returns the end of the fsynced range: every record with a
// sequence number below it is on stable storage and safe to read while the
// log is live. Under SyncNever it only advances on rotation, Sync, and
// Close — a live tail reader (replication) effectively ships segment by
// segment under that policy.
func (l *Log) DurableSeq() uint64 { return l.durableSeq.Load() }

// SubscribeDurable registers for durability advances: the returned channel
// receives a (coalesced) signal whenever DurableSeq grows. Call cancel to
// unregister. The channel is never closed; select against it together with
// the subscriber's own shutdown signal.
func (l *Log) SubscribeDurable() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	l.subMu.Lock()
	if l.subs == nil {
		l.subs = make(map[chan struct{}]struct{})
	}
	l.subs[ch] = struct{}{}
	l.subMu.Unlock()
	cancel := func() {
		l.subMu.Lock()
		delete(l.subs, ch)
		l.subMu.Unlock()
	}
	return ch, cancel
}

// advanceDurable publishes a new durable boundary and nudges subscribers.
// Sends are non-blocking: each subscriber channel has one slot, so a slow
// subscriber coalesces bursts instead of stalling the fsync path.
func (l *Log) advanceDurable(seq uint64) {
	l.durableSeq.Store(seq)
	l.subMu.Lock()
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.subMu.Unlock()
}

// Dir returns the log's segment directory.
func (l *Log) Dir() string { return l.opts.Dir }

// ParamsHash returns the controller-parameter digest the log was opened
// with.
func (l *Log) ParamsHash() uint64 { return l.opts.ParamsHash }

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy { return l.opts.Policy }

// AlignSeq positions the log's next sequence number at least at seq. It is
// the recovery hook for a snapshot anchored past the log's durable end — a
// fresh directory next to an existing snapshot, or a SyncNever/SyncInterval
// crash that lost tail records the snapshot had already absorbed. The
// active segment (if any) is finished and the next append starts a new
// segment based at seq, so derived sequence numbers stay consistent and the
// skipped range is visibly absent rather than silently renumbered.
func (l *Log) AlignSeq(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.nextSeq >= seq {
		return nil
	}
	if l.f != nil {
		l.logf("wal: aligning next sequence %d -> %d (snapshot is newer than the durable tail)",
			l.nextSeq, seq)
		if err := l.finishSegmentLocked(); err != nil {
			return err
		}
	}
	if len(l.segments) == 0 {
		l.oldestSeq = seq
	}
	l.nextSeq = seq
	// The skipped range holds no records, so durability catches up for free.
	l.advanceDurable(seq)
	return nil
}

// Append encodes one record — program plus its event batch — into the
// active segment and returns the record's sequence number. Append only
// buffers; call Commit after the batch to apply the sync policy. Rotation
// happens transparently when the active segment exceeds the threshold.
func (l *Log) Append(program string, events []trace.Event) (uint64, error) {
	if len(program) > maxProgramLen {
		return 0, fmt.Errorf("wal: program name %d bytes exceeds the %d-byte cap", len(program), maxProgramLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return 0, err
		}
	}

	// payload: programLen, program, frame payload.
	var tmp [binary.MaxVarintLen64]byte
	payload := l.scratch[:0]
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(program)))]...)
	payload = append(payload, program...)
	payload = trace.EncodeFrameAppend(payload, events)
	l.scratch = payload
	return l.appendRecordLocked(payload)
}

// AppendPayload is Append for a pre-encoded event frame: framePayload must
// hold one complete trace frame payload (the bytes trace.EncodeFrameAppend
// produces; any frame that passed trace.ValidateFrame qualifies). The record
// stores the frame payload verbatim — exactly the bytes Append would have
// written for the decoded events — so the zero-copy ingest path can splice
// client wire bytes straight into the log without re-materializing events.
func (l *Log) AppendPayload(program string, framePayload []byte) (uint64, error) {
	if len(program) > maxProgramLen {
		return 0, fmt.Errorf("wal: program name %d bytes exceeds the %d-byte cap", len(program), maxProgramLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.f == nil {
		if err := l.createSegmentLocked(); err != nil {
			return 0, err
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	payload := l.scratch[:0]
	payload = append(payload, tmp[:binary.PutUvarint(tmp[:], uint64(len(program)))]...)
	payload = append(payload, program...)
	payload = append(payload, framePayload...)
	l.scratch = payload
	return l.appendRecordLocked(payload)
}

func (l *Log) appendRecordLocked(payload []byte) (uint64, error) {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	n += 4
	if err := l.bw.Write(hdr[:n]); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	if err := l.bw.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	written := int64(n + len(payload))
	l.bytes += written
	l.dirty = true
	seq := l.nextSeq
	l.nextSeq++
	l.appendedRecords.Add(1)
	l.appendedBytes.Add(uint64(written))

	if l.bytes >= l.opts.SegmentBytes {
		if err := l.finishSegmentLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Commit makes the records appended so far as durable as the sync policy
// promises: SyncAlways flushes and fsyncs now, SyncInterval leaves them for
// the background tick, SyncNever leaves them to the OS. Call it once per
// ingest batch, after the batch's Appends and before applying the events.
func (l *Log) Commit() error {
	if l.opts.Policy != SyncAlways {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushSyncLocked()
}

// Sync flushes and fsyncs the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushSyncLocked()
}

func (l *Log) flushSyncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	if l.OnFsync != nil {
		l.OnFsync(time.Since(start))
	}
	if l.opts.Trace.SampleInfra() {
		l.opts.Trace.RecordInfra("wal_fsync", start, time.Since(start))
	}
	l.fsyncs.Add(1)
	l.dirty = false
	l.advanceDurable(l.nextSeq)
	return nil
}

// createSegmentLocked starts a new active segment based at nextSeq.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.opts.Dir, segmentName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic[:])
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], l.opts.ParamsHash)
	binary.LittleEndian.PutUint64(hdr[13:], l.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	if l.bw == nil {
		l.bw = &bufWriter{f: f, buf: make([]byte, 0, 1<<16)}
	} else {
		l.bw.f = f
		l.bw.buf = l.bw.buf[:0]
	}
	l.activeBase = l.nextSeq
	l.bytes = segHeaderSize
	l.dirty = true
	l.segments = append(l.segments, segmentRef{base: l.nextSeq, path: path})
	if len(l.segments) == 1 {
		l.oldestSeq = l.nextSeq
	}
	return nil
}

// finishSegmentLocked flushes, fsyncs and closes the active segment. Every
// completed segment is durable regardless of sync policy — that is what
// confines torn tails to the final segment.
func (l *Log) finishSegmentLocked() error {
	if l.f == nil {
		return nil
	}
	rotStart := time.Now()
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flushing segment: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment: %w", err)
	}
	if l.OnFsync != nil {
		l.OnFsync(time.Since(start))
	}
	l.fsyncs.Add(1)
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	// Rotation is infrequent; a rotate span covers the whole flush + fsync
	// + close of the finished segment.
	if l.opts.Trace.SampleInfra() {
		l.opts.Trace.RecordInfra("wal_rotate", rotStart, time.Since(rotStart))
	}
	l.f = nil
	l.dirty = false
	l.bytes = 0
	l.advanceDurable(l.nextSeq)
	return nil
}

// CompactTo deletes segments every record of which has sequence number below
// seq — the snapshot-anchored compaction: after a snapshot anchored at seq
// is durably on disk, everything before it is dead weight. The active (last)
// segment is never deleted. Returns how many segments were removed.
func (l *Log) CompactTo(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segments) > 1 && l.segments[1].base <= seq {
		victim := l.segments[0]
		if err := os.Remove(victim.path); err != nil {
			return removed, fmt.Errorf("wal: removing compacted segment: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		l.oldestSeq = l.segments[0].base
		l.logf("wal: compacted %d segment(s) below sequence %d", removed, seq)
	}
	return removed, nil
}

// Stats returns a point-in-time summary for metrics exposition.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		AppendedRecords:    l.appendedRecords.Load(),
		AppendedBytes:      l.appendedBytes.Load(),
		Fsyncs:             l.fsyncs.Load(),
		Segments:           len(l.segments),
		ActiveSegmentBytes: l.bytes,
		OldestSeq:          l.oldestSeq,
		NextSeq:            l.nextSeq,
		DurableSeq:         l.durableSeq.Load(),
	}
}

// syncLoop is the SyncInterval background flusher. It runs for every policy
// (cheap when there is nothing dirty) so Close has one channel to drain, but
// only the interval policy relies on it for durability.
func (l *Log) syncLoop() {
	defer close(l.done)
	if l.opts.Policy != SyncInterval {
		<-l.stop
		return
	}
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.flushSyncLocked(); err != nil {
					l.logf("wal: background sync: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs and closes the active segment and stops the
// background flusher. The log cannot be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.finishSegmentLocked()
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}

// errTornHeader marks a segment header that is shorter than the fixed header
// size: a crash during segment creation, recoverable when it is the final
// segment.
var errTornHeader = errors.New("truncated header")

// readSegmentHeader validates one segment's header against the expected
// params hash and the base sequence its file name declares.
func readSegmentHeader(path string, wantHash, wantBase uint64) (headerInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return headerInfo{}, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return headerInfo{}, fmt.Errorf("%w: %s: %w (%v)", ErrBadSegment, filepath.Base(path), errTornHeader, err)
	}
	return parseSegmentHeader(hdr, filepath.Base(path), wantHash, wantBase)
}

type headerInfo struct {
	paramsHash uint64
	base       uint64
}

// parseSegmentHeader validates header bytes. wantBase is the base the file
// name (or caller) expects; pass ^uint64(0) to skip that check.
func parseSegmentHeader(hdr [segHeaderSize]byte, name string, wantHash, wantBase uint64) (headerInfo, error) {
	if *(*[4]byte)(hdr[:4]) != segMagic {
		return headerInfo{}, fmt.Errorf("%w: %s: bad magic %q at byte offset 0 (want %q)",
			ErrBadSegment, name, hdr[:4], segMagic[:])
	}
	if hdr[4] != segVersion {
		return headerInfo{}, fmt.Errorf("%w: %s: unsupported version %d (want %d)",
			ErrBadSegment, name, hdr[4], segVersion)
	}
	h := headerInfo{
		paramsHash: binary.LittleEndian.Uint64(hdr[5:]),
		base:       binary.LittleEndian.Uint64(hdr[13:]),
	}
	if h.paramsHash != wantHash {
		return headerInfo{}, fmt.Errorf("%w: %s carries params hash %016x, want %016x",
			ErrParamsMismatch, name, h.paramsHash, wantHash)
	}
	if wantBase != ^uint64(0) && h.base != wantBase {
		return headerInfo{}, fmt.Errorf("%w: %s header base sequence %d disagrees with its name",
			ErrBadSegment, name, h.base)
	}
	return h, nil
}
