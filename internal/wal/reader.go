package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"reactivespec/internal/trace"
)

// Record is one replayable WAL entry: the event batch one ingest appended
// for one program, with its derived sequence number.
type Record struct {
	Seq     uint64
	Program string
	Events  []trace.Event
}

// ReaderOptions configures a replay pass over a WAL directory.
type ReaderOptions struct {
	// Dir is the segment directory.
	Dir string
	// ParamsHash must match every segment header; replaying records written
	// under different controller parameters would produce different
	// decisions, so a mismatch is a hard error.
	ParamsHash uint64
	// From is the first sequence number to yield. Records below it are
	// skipped (the reader seeks to the covering segment, so skipping is
	// cheap). Zero replays everything retained.
	From uint64
}

// Reader replays WAL records in sequence order. It reads the directory
// as-is — it does not require (and must not race with) an open Log, so the
// same code path serves both daemon recovery and offline time-travel
// tooling. A torn tail on the *final* segment ends the replay cleanly and is
// reported via Truncation; corruption anywhere else is fatal, because
// rotation fsyncs completed segments and a hole mid-log means records are
// missing, not merely unfinished.
type Reader struct {
	opts     ReaderOptions
	segments []segmentRef
	segIdx   int
	f        *os.File
	dec      *segmentDecoder
	nextSeq  uint64 // seq the next decoded record will carry
	events   []trace.Event
	err      error
	trunc    *TailTruncation
}

// NewReader opens a replay pass over dir starting at opts.From. An empty or
// absent directory yields a reader that immediately reports io.EOF.
func NewReader(opts ReaderOptions) (*Reader, error) {
	segments, err := listSegments(opts.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			segments = nil
		} else {
			return nil, err
		}
	}
	// Seek: the covering segment is the last one based at or below From.
	// Earlier segments hold only records below From and are never opened.
	start := sort.Search(len(segments), func(i int) bool {
		return segments[i].base > opts.From
	})
	if start > 0 {
		start--
	}
	r := &Reader{opts: opts, segments: segments, segIdx: start}
	if len(segments) > 0 && opts.From < segments[0].base {
		return nil, fmt.Errorf("wal: replay from sequence %d is below the oldest retained record %d (compacted away)",
			opts.From, segments[0].base)
	}
	return r, nil
}

// Truncation reports the torn tail that ended the replay, if any.
func (r *Reader) Truncation() *TailTruncation { return r.trunc }

// NextSeq returns the sequence number the next yielded record will carry —
// after io.EOF, the end of the replayable range.
func (r *Reader) NextSeq() uint64 { return r.nextSeq }

// Next returns the next record at or past opts.From. io.EOF signals the end
// of the log (including a truncated final segment — check Truncation). The
// returned record's Events slice is reused by the following Next call; copy
// it to retain it.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for {
		if r.dec == nil {
			if err := r.openSegment(); err != nil {
				r.err = err
				r.closeFile()
				return Record{}, err
			}
		}
		program, events, err := r.dec.next(r.events[:0])
		if err == io.EOF {
			// Clean end of this segment at a record boundary.
			endSeq := r.nextSeq
			r.closeFile()
			r.segIdx++
			if r.segIdx >= len(r.segments) {
				r.err = io.EOF
				return Record{}, io.EOF
			}
			// Completed segments are fsynced before the next is created,
			// so consecutive bases must meet exactly; a gap means records
			// were lost mid-log and replay cannot be trusted.
			if next := r.segments[r.segIdx].base; next != endSeq {
				r.err = fmt.Errorf("%w: %s begins at sequence %d but the previous segment ends at %d",
					ErrBadSegment, filepath.Base(r.segments[r.segIdx].path), next, endSeq)
				return Record{}, r.err
			}
			continue
		}
		if err != nil {
			if r.segIdx == len(r.segments)-1 {
				// Torn tail on the final segment: everything before it
				// replayed fine; stop cleanly and report the cut.
				r.trunc = &TailTruncation{
					Segment: filepath.Base(r.segments[r.segIdx].path),
					Offset:  r.dec.off,
					Dropped: r.dec.size - r.dec.off,
					Reason:  err.Error(),
				}
				r.closeFile()
				r.err = io.EOF
				return Record{}, io.EOF
			}
			r.err = fmt.Errorf("%w: %s at byte offset %d: %v",
				ErrBadSegment, filepath.Base(r.segments[r.segIdx].path), r.dec.off, err)
			r.closeFile()
			return Record{}, r.err
		}
		seq := r.nextSeq
		r.nextSeq++
		r.events = events
		if seq < r.opts.From {
			continue
		}
		return Record{Seq: seq, Program: program, Events: events}, nil
	}
}

// openSegment opens segments[segIdx], validates its header, and positions
// nextSeq at its base.
func (r *Reader) openSegment() error {
	if r.segIdx >= len(r.segments) {
		return io.EOF
	}
	seg := r.segments[r.segIdx]
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat %s: %w", seg.path, err)
	}
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		if r.segIdx == len(r.segments)-1 {
			// A final segment whose header never hit the disk holds no
			// records; the replayable range simply ends before it.
			r.trunc = &TailTruncation{
				Segment: filepath.Base(seg.path),
				Offset:  0,
				Dropped: st.Size(),
				Reason:  "truncated header",
			}
			return io.EOF
		}
		return fmt.Errorf("%w: %s: truncated header: %v", ErrBadSegment, filepath.Base(seg.path), err)
	}
	if _, err := parseSegmentHeader(hdr, filepath.Base(seg.path), r.opts.ParamsHash, seg.base); err != nil {
		f.Close()
		return err
	}
	r.f = f
	r.dec = newSegmentDecoder(f, st.Size())
	r.nextSeq = seg.base
	return nil
}

func (r *Reader) closeFile() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.dec = nil
}

// Close releases the reader's open segment, if any.
func (r *Reader) Close() error {
	r.closeFile()
	if r.err == nil {
		r.err = ErrClosed
	}
	return nil
}

// segmentDecoder walks one segment's records after the header, tracking the
// byte offset of the last record boundary for truncation diagnostics.
type segmentDecoder struct {
	br      byteReader
	off     int64 // offset of the last valid record boundary
	size    int64
	payload []byte
}

// byteReader adapts an io.Reader for binary.ReadUvarint while counting
// consumed bytes. It reads one byte at a time; callers wrap the file in
// buffering via the payload reads being io.ReadFull over the same reader —
// so wrap the file once here instead.
type byteReader struct {
	r   io.Reader
	buf []byte
	pos int
	n   int
	off int64 // total bytes consumed from r
}

func (b *byteReader) ReadByte() (byte, error) {
	if b.pos >= b.n {
		if err := b.fill(); err != nil {
			return 0, err
		}
	}
	c := b.buf[b.pos]
	b.pos++
	return c, nil
}

func (b *byteReader) fill() error {
	n, err := b.r.Read(b.buf)
	if n == 0 {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	b.pos, b.n = 0, n
	b.off += int64(n)
	return nil
}

// Read drains the look-ahead buffer first, then the underlying reader.
func (b *byteReader) Read(p []byte) (int, error) {
	if b.pos < b.n {
		n := copy(p, b.buf[b.pos:b.n])
		b.pos += n
		return n, nil
	}
	n, err := b.r.Read(p)
	b.off += int64(n)
	return n, err
}

// consumed is how many bytes have been handed out (buffered bytes not yet
// read back are excluded).
func (b *byteReader) consumed() int64 {
	return b.off - int64(b.n-b.pos)
}

// newSegmentDecoder positions a decoder just past the segment header of r;
// size is the full segment file size (for truncation diagnostics).
func newSegmentDecoder(r io.Reader, size int64) *segmentDecoder {
	d := &segmentDecoder{size: size, off: segHeaderSize}
	d.br = byteReader{r: r, buf: make([]byte, 1<<16), off: segHeaderSize}
	return d
}

// next decodes one record, appending its events to dst. io.EOF means the
// segment ended cleanly at a record boundary; any other error describes why
// the bytes at offset d.off could not be a record.
func (d *segmentDecoder) next(dst []trace.Event) (string, []trace.Event, error) {
	length, err := binary.ReadUvarint(&d.br)
	if err != nil {
		if err == io.EOF && d.br.consumed() == d.off {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("truncated record length prefix: %v", err)
	}
	if length > maxRecordPayload {
		return "", nil, fmt.Errorf("record length %d exceeds the %d-byte cap", length, maxRecordPayload)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(&d.br, crcBuf[:]); err != nil {
		return "", nil, fmt.Errorf("truncated record checksum: %v", err)
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	if uint64(cap(d.payload)) < length {
		d.payload = make([]byte, length)
	}
	payload := d.payload[:length]
	if _, err := io.ReadFull(&d.br, payload); err != nil {
		return "", nil, fmt.Errorf("truncated record payload (%d bytes declared): %v", length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return "", nil, fmt.Errorf("record checksum mismatch: computed %08x, stored %08x", got, wantCRC)
	}
	// payload: programLen, program, frame payload.
	progLen, n := binary.Uvarint(payload)
	if n <= 0 || progLen > maxProgramLen || uint64(n)+progLen > uint64(len(payload)) {
		return "", nil, fmt.Errorf("record program field is malformed (declared length %d)", progLen)
	}
	program := string(payload[n : uint64(n)+progLen])
	events, err := trace.DecodeFrameAppend(payload[uint64(n)+progLen:], dst)
	if err != nil {
		return "", nil, fmt.Errorf("record frame payload: %v", err)
	}
	d.off = d.br.consumed()
	return program, events, nil
}

// scanSegmentFile walks every record of the segment at path and returns how
// many valid records it holds, the byte offset of the last valid record
// boundary, and — when the segment does not end cleanly — why the bytes past
// that offset were rejected. The header must already have been validated.
func scanSegmentFile(path string) (records uint64, end int64, reason string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, "", fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, "", fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return 0, 0, "", fmt.Errorf("wal: seeking past header: %w", err)
	}
	d := newSegmentDecoder(f, st.Size())
	var dst []trace.Event
	for {
		_, events, derr := d.next(dst[:0])
		if derr == io.EOF {
			return records, d.off, "", nil
		}
		if derr != nil {
			return records, d.off, derr.Error(), nil
		}
		dst = events
		records++
	}
}
