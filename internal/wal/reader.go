package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"reactivespec/internal/trace"
)

// Record is one replayable WAL entry: the event batch one ingest appended
// for one program, with its derived sequence number.
type Record struct {
	Seq     uint64
	Program string
	// Events is the decoded event batch; nil when ReaderOptions.FrameOnly
	// skipped decoding. Reused by the following Next call.
	Events []trace.Event
	// Frame is the raw trace frame payload exactly as stored (CRC-verified
	// but not decoded when FrameOnly). It aliases an internal buffer and is
	// only valid until the following Next call.
	Frame []byte
}

// ReaderOptions configures a replay pass over a WAL directory.
type ReaderOptions struct {
	// Dir is the segment directory.
	Dir string
	// ParamsHash must match every segment header; replaying records written
	// under different controller parameters would produce different
	// decisions, so a mismatch is a hard error.
	ParamsHash uint64
	// From is the first sequence number to yield. Records below it are
	// skipped (the reader seeks to the covering segment, so skipping is
	// cheap). Zero replays everything retained.
	From uint64
	// Follow makes the reader tolerate a live log growing underneath it:
	// instead of treating the in-progress tail as torn, Next returns a
	// non-sticky io.EOF and a later call resumes — picking up records
	// appended meanwhile, rotated-in segments, and compaction of segments
	// already consumed. The caller decides when the data is trustworthy
	// (pair it with Log.DurableSeq/SubscribeDurable to stay below the
	// fsynced boundary). Truncation is never reported in follow mode.
	Follow bool
	// FrameOnly skips event decoding: Record.Events stays nil and only
	// Record.Frame is populated. Integrity is still CRC-checked. The WAL
	// shipper uses this to forward records without paying a decode it does
	// not need.
	FrameOnly bool
}

// Reader replays WAL records in sequence order. It reads the directory
// as-is — it does not require an open Log, so the same code path serves
// daemon recovery, offline time-travel tooling, and (in follow mode) live
// replication. A torn tail on the *final* segment ends the replay cleanly and
// is reported via Truncation; corruption anywhere else is fatal, because
// rotation fsyncs completed segments and a hole mid-log means records are
// missing, not merely unfinished.
//
// Without Follow, the reader is a point-in-time pass: the segment list is
// snapshotted once at NewReader, so pointing it at a live daemon's directory
// is safe — records appended after the snapshot are simply not part of the
// pass, and a record mid-write when the pass reaches the tail reads as a
// clean truncation of the final segment. The one hazard on a live directory
// is compaction deleting a listed-but-unread segment mid-pass, which fails
// with an error naming the remedy (retry, or start past the retention
// horizon).
type Reader struct {
	opts     ReaderOptions
	segments []segmentRef
	segIdx   int
	f        *os.File
	dec      *segmentDecoder
	nextSeq  uint64 // seq the next decoded record will carry
	floor    uint64 // first seq not yet yielded: max(opts.From, last yielded + 1)
	events   []trace.Event
	err      error
	trunc    *TailTruncation

	// Follow-mode bookkeeping: retryOff remembers the boundary a decode
	// error was rewound to, so a repeat failure at the same offset on a
	// segment that is provably complete (a successor exists) is diagnosed
	// as corruption instead of retried forever.
	retryOff int64
	retried  bool
}

// NewReader opens a replay pass over dir starting at opts.From. An empty or
// absent directory yields a reader that immediately reports io.EOF.
func NewReader(opts ReaderOptions) (*Reader, error) {
	segments, err := listSegments(opts.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			segments = nil
		} else {
			return nil, err
		}
	}
	// Seek: the covering segment is the last one based at or below From.
	// Earlier segments hold only records below From and are never opened.
	start := sort.Search(len(segments), func(i int) bool {
		return segments[i].base > opts.From
	})
	if start > 0 {
		start--
	}
	r := &Reader{opts: opts, segments: segments, segIdx: start, floor: opts.From}
	if len(segments) > 0 && opts.From < segments[0].base {
		return nil, fmt.Errorf("wal: replay from sequence %d is below the oldest retained record %d (compacted away)",
			opts.From, segments[0].base)
	}
	return r, nil
}

// Truncation reports the torn tail that ended the replay, if any.
func (r *Reader) Truncation() *TailTruncation { return r.trunc }

// NextSeq returns the sequence number the next yielded record will carry —
// after io.EOF, the end of the replayable range.
func (r *Reader) NextSeq() uint64 { return r.nextSeq }

// Next returns the next record at or past opts.From. io.EOF signals the end
// of the log (including a truncated final segment — check Truncation). In
// follow mode io.EOF is non-sticky: it means "no complete record right now",
// and a later call resumes where this one stopped. The returned record's
// Events and Frame are reused by the following Next call; copy to retain.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for {
		if r.dec == nil {
			if err := r.openSegment(); err != nil {
				if r.opts.Follow && err == io.EOF {
					// Past the end of the known list: new segments may have
					// appeared since it was (re)listed.
					if ferr := r.relistBeyond(); ferr != nil {
						r.err = ferr
						return Record{}, ferr
					}
					if r.segIdx >= len(r.segments) {
						return Record{}, io.EOF // nothing yet; retry later
					}
					continue
				}
				if err == errTailPending {
					return Record{}, io.EOF // header still being written
				}
				r.err = err
				r.closeFile()
				return Record{}, err
			}
		}
		program, frame, events, err := r.dec.next(r.events[:0], !r.opts.FrameOnly)
		if err == io.EOF {
			// Clean end of this segment at a record boundary.
			endSeq := r.nextSeq
			if r.opts.Follow && r.segIdx == len(r.segments)-1 {
				advance, ferr := r.refreshTail(endSeq)
				if ferr != nil {
					r.err = ferr
					r.closeFile()
					return Record{}, ferr
				}
				if !advance {
					// Still the live tail (or the active segment grew in
					// place); the decoder stays at the boundary and the next
					// call re-reads from there.
					if r.segIdx < len(r.segments)-1 {
						continue // grew in place: data is on disk, decode now
					}
					return Record{}, io.EOF
				}
				// A successor based exactly at endSeq exists: fall through
				// to the normal advance below.
			}
			r.closeFile()
			r.segIdx++
			if r.segIdx >= len(r.segments) {
				if r.opts.Follow {
					continue // loops into the relistBeyond path above
				}
				r.err = io.EOF
				return Record{}, io.EOF
			}
			// Completed segments are fsynced before the next is created,
			// so consecutive bases must meet exactly; a gap means records
			// were lost mid-log and replay cannot be trusted.
			if next := r.segments[r.segIdx].base; next != endSeq {
				r.err = fmt.Errorf("%w: %s begins at sequence %d but the previous segment ends at %d",
					ErrBadSegment, filepath.Base(r.segments[r.segIdx].path), next, endSeq)
				return Record{}, r.err
			}
			continue
		}
		if err != nil {
			if r.opts.Follow && r.segIdx == len(r.segments)-1 {
				if rerr := r.retryTail(err); rerr != nil {
					r.err = rerr
					r.closeFile()
					return Record{}, rerr
				}
				return Record{}, io.EOF // partial tail; retry later
			}
			if r.segIdx == len(r.segments)-1 {
				// Torn tail on the final segment: everything before it
				// replayed fine; stop cleanly and report the cut.
				r.trunc = &TailTruncation{
					Segment: filepath.Base(r.segments[r.segIdx].path),
					Offset:  r.dec.off,
					Dropped: r.dec.size - r.dec.off,
					Reason:  err.Error(),
				}
				r.closeFile()
				r.err = io.EOF
				return Record{}, io.EOF
			}
			r.err = fmt.Errorf("%w: %s at byte offset %d: %v",
				ErrBadSegment, filepath.Base(r.segments[r.segIdx].path), r.dec.off, err)
			r.closeFile()
			return Record{}, r.err
		}
		r.retried = false
		seq := r.nextSeq
		r.nextSeq++
		r.events = events
		if seq < r.floor {
			continue
		}
		r.floor = seq + 1
		return Record{Seq: seq, Program: program, Events: events, Frame: frame}, nil
	}
}

// refreshTail re-lists the directory after a clean boundary EOF on the last
// known segment (follow mode). endSeq is the next expected sequence. It
// re-anchors the reader in the fresh list and reports whether a successor
// segment based exactly at endSeq exists (advance=true → the caller should
// move to it). advance=false with segIdx < last means the active segment
// grew in place; advance=false at the last index means nothing new yet.
func (r *Reader) refreshTail(endSeq uint64) (advance bool, err error) {
	segs, err := listSegments(r.opts.Dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, fmt.Errorf("%w: segment directory emptied under a follow reader", ErrBadSegment)
	}
	curBase := r.segments[r.segIdx].base
	// The segment covering endSeq is the last one based at or below it.
	idx := sort.Search(len(segs), func(i int) bool { return segs[i].base > endSeq })
	if idx == 0 {
		return false, fmt.Errorf("wal: follow reader at sequence %d fell behind compaction (oldest retained segment now begins at %d); a full resync is required",
			endSeq, segs[0].base)
	}
	idx--
	switch cover := segs[idx]; {
	case cover.base == curBase:
		// Same segment still covers our position; successors (if any) are
		// based above endSeq, which means the active segment has more
		// records for us first.
		r.segments = segs
		r.segIdx = idx
		return false, nil
	case cover.base == endSeq:
		// Rotation happened exactly at our boundary: our segment is
		// complete and the successor picks up at endSeq. Position just
		// before it (possibly index -1 if our segment was compacted away
		// meanwhile — it is fully consumed, and the caller's advance
		// increments before touching the list) so the normal advance and
		// its continuity check land on the successor.
		r.segments = segs
		r.segIdx = idx - 1
		return true, nil
	default:
		return false, fmt.Errorf("%w: segment layout changed under a follow reader at sequence %d (covering segment now %s)",
			ErrBadSegment, endSeq, filepath.Base(cover.path))
	}
}

// retryTail handles a decode error at the tail of the last known segment in
// follow mode: normally the record is simply still being written, so the
// reader rewinds to the last valid boundary and reports "nothing yet". A
// repeat failure at the same boundary after the segment has provably
// completed (a successor exists in a fresh listing) is real corruption.
func (r *Reader) retryTail(derr error) error {
	boundary := r.dec.off
	if r.retried && r.retryOff == boundary {
		segs, lerr := listSegments(r.opts.Dir)
		if lerr != nil {
			return lerr
		}
		if len(segs) > 0 && segs[len(segs)-1].base > r.segments[r.segIdx].base {
			return fmt.Errorf("%w: %s at byte offset %d: %v (segment is complete; this is corruption, not an in-progress tail)",
				ErrBadSegment, filepath.Base(r.segments[r.segIdx].path), boundary, derr)
		}
	}
	r.retried = true
	r.retryOff = boundary
	// Rewind: reposition the file at the boundary and restart the decoder
	// there, discarding the partial bytes it consumed.
	if _, err := r.f.Seek(boundary, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rewinding follow reader: %w", err)
	}
	st, err := r.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat during follow rewind: %w", err)
	}
	r.dec = newSegmentDecoderAt(r.f, st.Size(), boundary)
	return nil
}

// relistBeyond re-lists the directory when the reader has consumed every
// known segment (follow mode) and re-seeks to the segment covering the next
// wanted sequence, exactly like NewReader's initial positioning.
func (r *Reader) relistBeyond() error {
	segs, err := listSegments(r.opts.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // directory not created yet; retry later
		}
		return err
	}
	want := r.nextSeq
	if r.floor > want {
		want = r.floor
	}
	idx := sort.Search(len(segs), func(i int) bool { return segs[i].base > want })
	if idx > 0 {
		idx--
	}
	if len(segs) > 0 && want < segs[0].base {
		return fmt.Errorf("wal: replay from sequence %d is below the oldest retained record %d (compacted away)",
			want, segs[0].base)
	}
	r.segments = segs
	r.segIdx = idx
	return nil
}

// errTailPending marks a final segment whose header is still being written
// (follow mode): not yet readable, not torn either.
var errTailPending = errors.New("wal: tail segment header still being written")

// openSegment opens segments[segIdx], validates its header, and positions
// nextSeq at its base.
func (r *Reader) openSegment() error {
	if r.segIdx >= len(r.segments) {
		return io.EOF
	}
	seg := r.segments[r.segIdx]
	f, err := os.Open(seg.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// The segment was listed but compaction removed it before this
			// reader got there. In follow mode that means the reader fell
			// behind the retention horizon; in a one-shot replay it means the
			// log is live and the point-in-time pass lost part of its window.
			if r.opts.Follow {
				return fmt.Errorf("wal: follow reader fell behind compaction (%s, sequence %d, was removed); a full resync is required",
					filepath.Base(seg.path), seg.base)
			}
			return fmt.Errorf("wal: segment %s (sequence %d) was compacted away mid-replay; "+
				"the log is live — retry, or replay from a later sequence", filepath.Base(seg.path), seg.base)
		}
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat %s: %w", seg.path, err)
	}
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		if r.segIdx == len(r.segments)-1 {
			if r.opts.Follow {
				// The writer is mid-way through creating this segment;
				// its header will be complete shortly.
				return errTailPending
			}
			// A final segment whose header never hit the disk holds no
			// records; the replayable range simply ends before it.
			r.trunc = &TailTruncation{
				Segment: filepath.Base(seg.path),
				Offset:  0,
				Dropped: st.Size(),
				Reason:  "truncated header",
			}
			return io.EOF
		}
		return fmt.Errorf("%w: %s: truncated header: %v", ErrBadSegment, filepath.Base(seg.path), err)
	}
	if _, err := parseSegmentHeader(hdr, filepath.Base(seg.path), r.opts.ParamsHash, seg.base); err != nil {
		f.Close()
		return err
	}
	r.f = f
	r.dec = newSegmentDecoder(f, st.Size())
	r.nextSeq = seg.base
	r.retried = false
	return nil
}

func (r *Reader) closeFile() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.dec = nil
}

// Close releases the reader's open segment, if any.
func (r *Reader) Close() error {
	r.closeFile()
	if r.err == nil {
		r.err = ErrClosed
	}
	return nil
}

// segmentDecoder walks one segment's records after the header, tracking the
// byte offset of the last record boundary for truncation diagnostics.
type segmentDecoder struct {
	br      byteReader
	off     int64 // offset of the last valid record boundary
	size    int64
	payload []byte
}

// byteReader adapts an io.Reader for binary.ReadUvarint while counting
// consumed bytes. It reads one byte at a time; callers wrap the file in
// buffering via the payload reads being io.ReadFull over the same reader —
// so wrap the file once here instead.
type byteReader struct {
	r   io.Reader
	buf []byte
	pos int
	n   int
	off int64 // total bytes consumed from r
}

func (b *byteReader) ReadByte() (byte, error) {
	if b.pos >= b.n {
		if err := b.fill(); err != nil {
			return 0, err
		}
	}
	c := b.buf[b.pos]
	b.pos++
	return c, nil
}

func (b *byteReader) fill() error {
	n, err := b.r.Read(b.buf)
	if n == 0 {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	b.pos, b.n = 0, n
	b.off += int64(n)
	return nil
}

// Read drains the look-ahead buffer first, then the underlying reader.
func (b *byteReader) Read(p []byte) (int, error) {
	if b.pos < b.n {
		n := copy(p, b.buf[b.pos:b.n])
		b.pos += n
		return n, nil
	}
	n, err := b.r.Read(p)
	b.off += int64(n)
	return n, err
}

// consumed is how many bytes have been handed out (buffered bytes not yet
// read back are excluded).
func (b *byteReader) consumed() int64 {
	return b.off - int64(b.n-b.pos)
}

// newSegmentDecoder positions a decoder just past the segment header of r;
// size is the full segment file size (for truncation diagnostics).
func newSegmentDecoder(r io.Reader, size int64) *segmentDecoder {
	return newSegmentDecoderAt(r, size, segHeaderSize)
}

// newSegmentDecoderAt positions a decoder at an arbitrary record boundary —
// the follow reader's rewind point after a partial tail read.
func newSegmentDecoderAt(r io.Reader, size, off int64) *segmentDecoder {
	d := &segmentDecoder{size: size, off: off}
	d.br = byteReader{r: r, buf: make([]byte, 1<<16), off: off}
	return d
}

// next decodes one record, appending its events to dst when decode is true
// (the returned frame is the raw trace frame payload either way, CRC-checked
// but aliasing the decoder's buffer). io.EOF means the segment ended cleanly
// at a record boundary; any other error describes why the bytes at offset
// d.off could not be a record.
func (d *segmentDecoder) next(dst []trace.Event, decode bool) (string, []byte, []trace.Event, error) {
	length, err := binary.ReadUvarint(&d.br)
	if err != nil {
		if err == io.EOF && d.br.consumed() == d.off {
			return "", nil, nil, io.EOF
		}
		return "", nil, nil, fmt.Errorf("truncated record length prefix: %v", err)
	}
	if length > maxRecordPayload {
		return "", nil, nil, fmt.Errorf("record length %d exceeds the %d-byte cap", length, maxRecordPayload)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(&d.br, crcBuf[:]); err != nil {
		return "", nil, nil, fmt.Errorf("truncated record checksum: %v", err)
	}
	wantCRC := binary.LittleEndian.Uint32(crcBuf[:])
	if uint64(cap(d.payload)) < length {
		d.payload = make([]byte, length)
	}
	payload := d.payload[:length]
	if _, err := io.ReadFull(&d.br, payload); err != nil {
		return "", nil, nil, fmt.Errorf("truncated record payload (%d bytes declared): %v", length, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return "", nil, nil, fmt.Errorf("record checksum mismatch: computed %08x, stored %08x", got, wantCRC)
	}
	// payload: programLen, program, frame payload.
	progLen, n := binary.Uvarint(payload)
	if n <= 0 || progLen > maxProgramLen || uint64(n)+progLen > uint64(len(payload)) {
		return "", nil, nil, fmt.Errorf("record program field is malformed (declared length %d)", progLen)
	}
	program := string(payload[n : uint64(n)+progLen])
	frame := payload[uint64(n)+progLen:]
	var events []trace.Event
	if decode {
		events, err = trace.DecodeFrameAppend(frame, dst)
		if err != nil {
			return "", nil, nil, fmt.Errorf("record frame payload: %v", err)
		}
	}
	d.off = d.br.consumed()
	return program, frame, events, nil
}

// scanSegmentFile walks every record of the segment at path and returns how
// many valid records it holds, the byte offset of the last valid record
// boundary, and — when the segment does not end cleanly — why the bytes past
// that offset were rejected. The header must already have been validated.
func scanSegmentFile(path string) (records uint64, end int64, reason string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, "", fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, "", fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return 0, 0, "", fmt.Errorf("wal: seeking past header: %w", err)
	}
	d := newSegmentDecoder(f, st.Size())
	var dst []trace.Event
	for {
		_, _, events, derr := d.next(dst[:0], true)
		if derr == io.EOF {
			return records, d.off, "", nil
		}
		if derr != nil {
			return records, d.off, derr.Error(), nil
		}
		dst = events
		records++
	}
}
