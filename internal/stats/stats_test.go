package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if math.Abs(r.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", r.Var())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdDev() != 0 {
		t.Fatal("empty Running should be all-zero")
	}
	r.Add(3)
	if r.Var() != 0 {
		t.Fatal("single observation has zero variance")
	}
}

func TestRunningMatchesDirectComputationProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			r.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		mean := sum / float64(len(xs))
		return math.Abs(r.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, x := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.5} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 2 { // 0.05 and the clamped -0.5
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 {
		t.Fatalf("bucket 1 = %d", h.Buckets[1])
	}
	if h.Buckets[9] != 2 { // 0.95 and the clamped 1.5
		t.Fatalf("bucket 9 = %d", h.Buckets[9])
	}
	if math.Abs(h.Frac(0)-2.0/6) > 1e-12 {
		t.Fatalf("Frac(0) = %v", h.Frac(0))
	}
	if math.Abs(h.CumFrac(1)-4.0/6) > 1e-12 {
		t.Fatalf("CumFrac(1) = %v", h.CumFrac(1))
	}
	if h.CumFrac(9) != 1 {
		t.Fatalf("CumFrac(last) = %v", h.CumFrac(9))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Frac(0) != 0 || h.CumFrac(3) != 0 {
		t.Fatal("empty histogram fractions should be 0")
	}
}

func TestTableText(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("%s", "beta", "%d", 22)
	var b strings.Builder
	if err := tab.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"name", "value", "alpha", "beta", "22"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(`has,comma`, `has"quote`)
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestAddRowfPanicsOnOddArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("x").AddRowf("%s")
}

func TestPct(t *testing.T) {
	if got := Pct(0.4481, 1); got != "44.8%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(0.00023, 3); got != "0.023%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestCount(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		999:        "999",
		1_000:      "1,000",
		65_000:     "65,000",
		1_234_567:  "1,234,567",
		10_000_000: "10,000,000",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}
