// Package stats provides the small statistics and reporting utilities shared
// by the experiment drivers: streaming moments, histograms, and aligned
// table / CSV rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Running accumulates streaming mean/variance (Welford's algorithm).
type Running struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add observes one value.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		r.min = math.Min(r.min, x)
		r.max = math.Max(r.max, x)
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 with no observations).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 with no observations).
func (r *Running) Max() float64 { return r.max }

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values outside
// the range land in the first or last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add observes one value.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Frac returns the fraction of observations in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// CumFrac returns the fraction of observations in buckets [0, i].
func (h *Histogram) CumFrac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for j := 0; j <= i && j < len(h.Buckets); j++ {
		c += h.Buckets[j]
	}
	return float64(c) / float64(h.total)
}

// Table renders rows of cells as an aligned text table or as CSV.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given header.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row built from Sprintf specs alternating with values:
// AddRowf("%s", name, "%.2f", x).
func (t *Table) AddRowf(pairs ...interface{}) {
	if len(pairs)%2 != 0 {
		panic("stats: AddRowf needs format/value pairs")
	}
	row := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		row = append(row, fmt.Sprintf(pairs[i].(string), pairs[i+1]))
	}
	t.Rows = append(t.Rows, row)
}

// WriteText writes an aligned, human-readable rendering.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		if _, err := io.WriteString(w, strings.Repeat("-", total)+"\n"); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes an RFC-4180-ish CSV rendering (quoting cells containing
// commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage with the given decimals.
func Pct(f float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, f*100)
}

// Count formats a large count with thousands separators.
func Count(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
