package stats

import (
	"math"
	"testing"
)

func TestLogHistQuantiles(t *testing.T) {
	h := NewLogHist(1e-6, 10, 30) // 1µs .. 10s, ~8% relative error
	// 10,000 samples uniform in log-space between 100µs and 1s.
	n := 10_000
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		h.Add(math.Pow(10, -4+4*f)) // 1e-4 .. 1e0
	}
	if h.Total() != uint64(n) {
		t.Fatalf("Total = %d, want %d", h.Total(), n)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.5, math.Pow(10, -2)},  // log-uniform median
		{0.9, math.Pow(10, -.4)}, // 90th
		{0.99, math.Pow(10, -.04)},
	} {
		got := h.Quantile(tc.p)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.12 {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %.3f)", tc.p, got, tc.want, rel)
		}
	}
	if q := h.Quantile(0); q <= 0 {
		t.Errorf("Quantile(0) = %v, want > 0", q)
	}
	if q := h.Quantile(1); q < h.Quantile(0.999) {
		t.Errorf("Quantile(1) = %v below Quantile(0.999) = %v", q, h.Quantile(0.999))
	}
}

func TestLogHistEmptyAndClamping(t *testing.T) {
	h := NewLogHist(1e-3, 1, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must return 0")
	}
	h.Add(-5)   // below range (and negative)
	h.Add(1e-9) // below range
	h.Add(50)   // above range
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if q := h.Quantile(1); q > 1 {
		t.Fatalf("Quantile(1) = %v, want clamped to hi", q)
	}
	if q := h.Quantile(0.01); q < 1e-3 {
		t.Fatalf("Quantile(0.01) = %v, want clamped to lo", q)
	}
}

func TestLogHistMergeAndSnapshot(t *testing.T) {
	a := NewLogHist(1e-6, 10, 20)
	b := NewLogHist(1e-6, 10, 20)
	for i := 0; i < 1000; i++ {
		a.Add(1e-3)
		b.Add(1e-1)
	}
	snap := a.Snapshot()
	a.Merge(b)
	if a.Total() != 2000 {
		t.Fatalf("merged Total = %d, want 2000", a.Total())
	}
	if snap.Total() != 1000 {
		t.Fatalf("snapshot mutated by merge: Total = %d", snap.Total())
	}
	med := a.Quantile(0.5)
	if med < 5e-4 || med > 5e-3 {
		t.Fatalf("merged median %v, want ≈1e-3", med)
	}
	hi := a.Quantile(0.99)
	if hi < 5e-2 || hi > 5e-1 {
		t.Fatalf("merged p99 %v, want ≈1e-1", hi)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched shapes must panic")
		}
	}()
	a.Merge(NewLogHist(1e-6, 10, 5))
}
