package stats

import "math"

// LogHist is a logarithmically-bucketed histogram for positive values (most
// usefully latencies), supporting approximate quantiles with bounded
// relative error. Values are mapped to buckets whose widths grow
// geometrically between Lo and Hi; with b buckets per decade the relative
// quantile error is at most 10^(1/b)−1 (≈8% at b=30). Values below Lo or
// above Hi clamp to the first/last bucket.
//
// The zero value is not usable; construct with NewLogHist. LogHist is not
// safe for concurrent use; callers guard it (internal/server keeps one per
// metrics region under that region's lock).
type LogHist struct {
	lo, hi  float64
	logLo   float64
	scale   float64 // buckets per unit log10
	buckets []uint64
	total   uint64
}

// NewLogHist returns a histogram over [lo, hi] with perDecade buckets per
// factor of ten. lo and hi must be positive with lo < hi.
func NewLogHist(lo, hi float64, perDecade int) *LogHist {
	if !(lo > 0) || !(hi > lo) {
		panic("stats: NewLogHist needs 0 < lo < hi")
	}
	if perDecade < 1 {
		perDecade = 1
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades*float64(perDecade))) + 1
	return &LogHist{
		lo:      lo,
		hi:      hi,
		logLo:   math.Log10(lo),
		scale:   float64(perDecade),
		buckets: make([]uint64, n),
	}
}

// Add observes one value.
func (h *LogHist) Add(x float64) {
	h.buckets[h.bucket(x)]++
	h.total++
}

func (h *LogHist) bucket(x float64) int {
	if !(x > h.lo) || math.IsNaN(x) {
		return 0
	}
	i := int((math.Log10(x) - h.logLo) * h.scale)
	if i < 0 {
		return 0
	}
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// Total returns the number of observations.
func (h *LogHist) Total() uint64 { return h.total }

// Quantile returns an estimate of the p-quantile (p in [0, 1]): the upper
// edge of the bucket containing the p-th observation. With no observations
// it returns 0.
func (h *LogHist) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(math.Ceil(p * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return h.upperEdge(i)
		}
	}
	return h.hi
}

// upperEdge returns the value at the top of bucket i, clamped to [lo, hi].
func (h *LogHist) upperEdge(i int) float64 {
	v := math.Pow(10, h.logLo+float64(i+1)/h.scale)
	if v > h.hi {
		v = h.hi
	}
	if v < h.lo {
		v = h.lo
	}
	return v
}

// Merge folds o's observations into h. The two histograms must have been
// built with identical parameters.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil {
		return
	}
	if len(h.buckets) != len(o.buckets) || h.lo != o.lo || h.hi != o.hi {
		panic("stats: merging LogHists with different shapes")
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.total += o.total
}

// Snapshot returns an independent copy (for lock-free readers that want a
// consistent view rendered outside the writer's critical section).
func (h *LogHist) Snapshot() *LogHist {
	cp := *h
	cp.buckets = append([]uint64(nil), h.buckets...)
	return &cp
}
