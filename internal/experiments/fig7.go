package experiments

import (
	"io"
	"math"

	"reactivespec/internal/core"
	"reactivespec/internal/mssp"
	"reactivespec/internal/program"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// MSSPRunInstrs is the timing-simulation run length in original dynamic
// instructions. The paper uses 200 M-instruction runs from checkpoints;
// 16 M keeps every Figure 7 configuration meaningful (the 10,000-execution
// monitor-period configurations need hot branches to complete a window
// within the run).
const MSSPRunInstrs = 16_000_000

// msspProgram synthesizes the timing-simulation program for a benchmark,
// with the branch-population mix derived from the published Table 3 row.
func msspProgram(name string, seed, runInstrs uint64) (*program.Program, error) {
	paper, err := workload.PaperTable3(name)
	if err != nil {
		return nil, err
	}
	o := program.DefaultSynthOptions()
	o.Seed = seed
	o.RunInstrs = runInstrs
	o.Regions = paper.StaticTouch / 40
	if o.Regions < 12 {
		o.Regions = 12
	}
	if o.Regions > 48 {
		o.Regions = 48
	}
	o.BiasedFrac = float64(paper.Biased) / float64(paper.StaticTouch) * 1.5
	if o.BiasedFrac > 0.85 {
		o.BiasedFrac = 0.85
	}
	// Short timing runs are desensitized to behavior changes
	// (Section 4.2); amplify the changer fraction so that the same
	// number of changes land inside the shorter window.
	o.ChangerFrac = float64(paper.Evicted) / float64(paper.Biased) * 3.5
	if o.ChangerFrac > 0.5 {
		o.ChangerFrac = 0.5
	}
	if o.ChangerFrac < 0.06 {
		o.ChangerFrac = 0.06
	}
	switch name {
	case "mcf":
		o.MemFootprint = 64 << 20
		o.StreamFrac = 0.5
	case "twolf", "vpr":
		o.MemFootprint = 16 << 20
		o.StreamFrac = 0.25
	case "gcc", "crafty":
		o.MemFootprint = 24 << 20
		o.StreamFrac = 0.2
	}
	return program.Synthesize(name, o)
}

// Fig7Row is one benchmark's Figure 7 data: MSSP performance normalized to
// the superscalar baseline under closed- and open-loop control at two
// monitor periods.
type Fig7Row struct {
	Bench string
	// ClosedLoop / OpenLoop use a 1,000-execution monitor period
	// (the paper's "c"/"o" marks); the Long variants use 10,000
	// ("C"/"O").
	ClosedLoop, OpenLoop         float64
	ClosedLoopLong, OpenLoopLong float64
	// TaskMisspecs for the closed- and open-loop 1k configurations, to
	// show the robustness difference behind the performance gap.
	ClosedMisspecs, OpenMisspecs uint64
}

// fig7Controller builds the controller for one Figure 7 configuration.
func fig7Controller(cfg Config, monitor uint64, openLoop bool, optLatency uint64) *core.Controller {
	p := cfg.Params()
	p.MonitorPeriod = monitor
	p.OptLatency = optLatency
	if openLoop {
		p = p.WithNoEviction()
	}
	return core.New(p)
}

// Fig7 reproduces Figure 7: closed- vs. open-loop speculation control on the
// MSSP machine, with optimization latency zero (as in the paper's Figure 7
// experiments).
func Fig7(cfg Config) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	mcfg := mssp.DefaultConfig()
	mcfg.RunInstrs = uint64(float64(MSSPRunInstrs) * cfg.Scale)
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (Fig7Row, error) {
		prog, err := msspProgram(name, cfg.Seed, mcfg.RunInstrs)
		if err != nil {
			return Fig7Row{}, err
		}
		row := Fig7Row{Bench: name}
		base, _ := mssp.Baseline(prog, mcfg.RunInstrs)
		bcfg := mcfg
		bcfg.PrecomputedBaseline = base
		run := func(monitor uint64, open bool) mssp.Result {
			return mssp.Run(prog, fig7Controller(cfg, monitor, open, 0), bcfg)
		}
		rc := run(1_000, false)
		ro := run(1_000, true)
		rC := run(10_000, false)
		rO := run(10_000, true)
		row.ClosedLoop = rc.Speedup()
		row.OpenLoop = ro.Speedup()
		row.ClosedLoopLong = rC.Speedup()
		row.OpenLoopLong = rO.Speedup()
		row.ClosedMisspecs = rc.TaskMisspecs
		row.OpenMisspecs = ro.TaskMisspecs
		return row, nil
	})
}

// WriteFig7 renders Figure 7 with a geometric-mean summary row.
func WriteFig7(w io.Writer, rows []Fig7Row, csv bool) error {
	t := stats.NewTable("bench", "B", "c(closed,1k)", "o(open,1k)", "C(closed,10k)", "O(open,10k)", "misspec c", "misspec o")
	gmc, gmo, gmC, gmO := 1.0, 1.0, 1.0, 1.0
	for _, r := range rows {
		t.AddRowf("%s", r.Bench, "%.2f", 1.0,
			"%.3f", r.ClosedLoop, "%.3f", r.OpenLoop,
			"%.3f", r.ClosedLoopLong, "%.3f", r.OpenLoopLong,
			"%d", r.ClosedMisspecs, "%d", r.OpenMisspecs)
		gmc *= r.ClosedLoop
		gmo *= r.OpenLoop
		gmC *= r.ClosedLoopLong
		gmO *= r.OpenLoopLong
	}
	if n := float64(len(rows)); n > 0 {
		t.AddRowf("%s", "geomean", "%.2f", 1.0,
			"%.3f", pow1n(gmc, n), "%.3f", pow1n(gmo, n),
			"%.3f", pow1n(gmC, n), "%.3f", pow1n(gmO, n),
			"%s", "", "%s", "")
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

func pow1n(x, n float64) float64 {
	if x <= 0 || n <= 0 {
		return 0
	}
	return math.Exp(math.Log(x) / n)
}
