package experiments

import (
	"fmt"
	"io"
	"strings"

	"reactivespec/internal/stats"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// Fig9Track is one horizontal track of Figure 9: the time windows during
// which one static branch is characterized as highly biased (>99%).
type Fig9Track struct {
	Branch trace.BranchID
	Group  int // correlated group (−1 if none)
	// BiasedWindow[i] reports whether the branch's bias exceeded 99% in
	// run window i (windows of equal instruction length).
	BiasedWindow []bool
}

// Fig9Result is the Figure 9 characterization of one benchmark.
type Fig9Result struct {
	Bench string
	// Windows is the number of run windows.
	Windows int
	// Tracks are the branches that have significant periods both biased
	// and unbiased, ordered by group then branch ID (the paper found 139
	// such branches in vortex).
	Tracks []Fig9Track
}

// Fig9Windows is the run-window count used for the characterization.
const Fig9Windows = 60

// Fig9 reproduces Figure 9 for vortex.
func Fig9(cfg Config) (Fig9Result, error) { return Fig9For(cfg, "vortex") }

// Fig9For computes the Figure 9 characterization for any benchmark.
func Fig9For(cfg Config, bench string) (Fig9Result, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.build(bench, workload.InputEval)
	if err != nil {
		return Fig9Result{}, err
	}
	n := len(spec.Branches)
	type cell struct{ execs, taken uint32 }
	grid := make([]cell, n*Fig9Windows)
	gen := workload.NewGenerator(spec)
	winLen := spec.Events/Fig9Windows + 1
	var seen uint64
	for {
		ev, ok := gen.Next()
		if !ok {
			break
		}
		win := int(seen / winLen)
		seen++
		c := &grid[int(ev.Branch)*Fig9Windows+win]
		c.execs++
		if ev.Taken {
			c.taken++
		}
	}
	res := Fig9Result{Bench: bench, Windows: Fig9Windows}
	for id := 0; id < n; id++ {
		track := Fig9Track{Branch: trace.BranchID(id), Group: spec.Branches[id].Group,
			BiasedWindow: make([]bool, Fig9Windows)}
		biased, unbiased := 0, 0
		for w := 0; w < Fig9Windows; w++ {
			c := grid[id*Fig9Windows+w]
			if c.execs < 16 {
				continue // too few executions to characterize this window
			}
			maj := c.taken
			if c.execs-c.taken > maj {
				maj = c.execs - c.taken
			}
			if float64(maj) > 0.99*float64(c.execs) {
				track.BiasedWindow[w] = true
				biased++
			} else {
				unbiased++
			}
		}
		// "Significant periods of both": at least ~8% of windows each.
		if biased >= Fig9Windows/12 && unbiased >= Fig9Windows/12 {
			res.Tracks = append(res.Tracks, track)
		}
	}
	return res, nil
}

// WriteFig9 renders the tracks: one row per flipping branch, with '#' for
// biased windows.
func WriteFig9(w io.Writer, res Fig9Result, csv bool) error {
	if csv {
		t := stats.NewTable("branch", "group", "window", "biased")
		for _, tr := range res.Tracks {
			for i, b := range tr.BiasedWindow {
				v := 0
				if b {
					v = 1
				}
				t.AddRowf("%d", int(tr.Branch), "%d", tr.Group, "%d", i, "%d", v)
			}
		}
		return t.WriteCSV(w)
	}
	if _, err := fmt.Fprintf(w, "%s: %d branches flip between biased and unbiased characterization (paper: 139 in vortex at full scale)\n",
		res.Bench, len(res.Tracks)); err != nil {
		return err
	}
	t := stats.NewTable("branch", "group", "biased windows (time →)")
	for _, tr := range res.Tracks {
		var b strings.Builder
		for _, v := range tr.BiasedWindow {
			if v {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		t.AddRowf("%d", int(tr.Branch), "%d", tr.Group, "%s", b.String())
	}
	return t.WriteText(w)
}
