package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunParallelPreservesOrder(t *testing.T) {
	names := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	got, err := runParallel(context.Background(), names, func(name string) (int, error) {
		return len(name), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		if n != i+1 {
			t.Fatalf("result[%d] = %d, want %d", i, n, i+1)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := runParallel(context.Background(), []string{"x", "y"}, func(name string) (int, error) {
		if name == "y" {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunParallelAggregatesAllErrors(t *testing.T) {
	errA := errors.New("fail-a")
	errB := errors.New("fail-b")
	_, err := runParallel(context.Background(), []string{"a", "ok", "b"}, func(name string) (int, error) {
		switch name {
		case "a":
			return 0, errA
		case "b":
			return 0, errB
		}
		return 1, nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v missing one of the worker errors", err)
	}
}

func TestRunParallelRecoversPanicWithAttribution(t *testing.T) {
	got, err := runParallel(context.Background(), []string{"gzip", "explosive", "mcf"}, func(name string) (int, error) {
		if name == "explosive" {
			panic("kaboom")
		}
		return len(name), nil
	})
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if got != nil {
		t.Fatal("results returned despite failure")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"explosive"`) || !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic error lacks attribution: %v", err)
	}
	if strings.Contains(msg, `"gzip"`) || strings.Contains(msg, `"mcf"`) {
		t.Fatalf("panic error blames healthy workers: %v", err)
	}
}

func TestRunParallelNRecoversPanicWithIndex(t *testing.T) {
	_, err := runParallelN(context.Background(), 4, func(i int) (int, error) {
		if i == 2 {
			panic("index bomb")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "work unit 2") {
		t.Fatalf("panic error lacks index attribution: %v", err)
	}
}

func TestRunParallelCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := runParallel(ctx, []string{"a", "b", "c"}, func(string) (int, error) {
		ran++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d workers ran after cancelation", ran)
	}
	// A canceled context is reported once, not once per skipped unit.
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Fatalf("context error reported %d times:\n%v", n, err)
	}
}

func TestRunParallelNilContext(t *testing.T) {
	got, err := runParallel(nil, []string{"x"}, func(string) (int, error) { return 7, nil })
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("nil context run: %v %v", got, err)
	}
}

func TestRunParallelEmpty(t *testing.T) {
	got, err := runParallel(context.Background(), nil, func(string) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestRunParallelN(t *testing.T) {
	got, err := runParallelN(context.Background(), 7, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}
