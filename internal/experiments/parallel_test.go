package experiments

import (
	"errors"
	"testing"
)

func TestRunParallelPreservesOrder(t *testing.T) {
	names := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	got, err := runParallel(names, func(name string) (int, error) {
		return len(name), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		if n != i+1 {
			t.Fatalf("result[%d] = %d, want %d", i, n, i+1)
		}
	}
}

func TestRunParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := runParallel([]string{"x", "y"}, func(name string) (int, error) {
		if name == "y" {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunParallelEmpty(t *testing.T) {
	got, err := runParallel(nil, func(string) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestRunParallelN(t *testing.T) {
	got, err := runParallelN(7, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}
