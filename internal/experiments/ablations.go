package experiments

import (
	"io"

	"reactivespec/internal/baseline"
	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// This file holds the ablation studies that go beyond the paper's printed
// figures: data the paper describes but does not show (profile averaging,
// Section 2.2), predictions it makes about related work (the Dynamo-style
// flush policy, Section 5), and parameter sweeps around the design choices
// the sensitivity analysis (Section 3.3) samples at single points.

// AveragingRow is one row of the profile-averaging study: selection from the
// merged profile of K differing training inputs, evaluated on the evaluation
// input.
type AveragingRow struct {
	Bench      string
	Profiles   int
	CorrectPct float64
	WrongPct   float64
	Selected   int
}

// ProfileAveraging reproduces the paper's unshown Section 2.2 claim:
// averaging profiles reduces the misspeculation rate but also reduces
// opportunity, because input-dependent branches stop looking biased.
func ProfileAveraging(cfg Config, counts []int) ([]AveragingRow, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]AveragingRow, error) {
		eval, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return nil, err
		}
		maxK := 0
		for _, k := range counts {
			if k > maxK {
				maxK = k
			}
		}
		profiles := make([]*bias.Profile, maxK)
		for i := range profiles {
			spec, err := cfg.build(name, workload.InputVariant(i+1))
			if err != nil {
				return nil, err
			}
			profiles[i] = bias.FromStream(workload.NewGenerator(spec))
		}
		var rows []AveragingRow
		for _, k := range counts {
			merged := bias.Merge(profiles[:k]...)
			sel := merged.Select(0.99, 1)
			st := harness.Run(workload.NewGenerator(eval), baseline.NewStatic(sel))
			rows = append(rows, AveragingRow{
				Bench:      name,
				Profiles:   k,
				CorrectPct: st.CorrectFrac() * 100,
				WrongPct:   st.MisspecFrac() * 100,
				Selected:   sel.Len(),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AveragingRow
	for _, rs := range perBench {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// WriteAveraging renders the profile-averaging study.
func WriteAveraging(w io.Writer, rows []AveragingRow, csv bool) error {
	t := stats.NewTable("bench", "profiles", "correct%", "incorrect%", "selected")
	for _, r := range rows {
		t.AddRowf("%s", r.Bench, "%d", r.Profiles, "%.2f", r.CorrectPct, "%.4f", r.WrongPct, "%d", r.Selected)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

// FlushRow compares the reactive closed loop, the Dynamo-style periodic-flush
// policy, and the open loop on one benchmark.
type FlushRow struct {
	Bench string
	// CorrectPct / WrongPct per policy.
	Closed, Flush, Open struct {
		CorrectPct, WrongPct float64
	}
	Flushes uint64
}

// FlushPolicy tests the paper's Section 5 prediction that a preemptive
// fragment-cache flush lands between the closed- and open-loop policies.
func FlushPolicy(cfg Config) ([]FlushRow, error) {
	cfg = cfg.withDefaults()
	params := cfg.Params()
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (FlushRow, error) {
		spec, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return FlushRow{}, err
		}
		row := FlushRow{Bench: name}

		st := harness.Run(workload.NewGenerator(spec), core.New(params))
		row.Closed.CorrectPct = st.CorrectFrac() * 100
		row.Closed.WrongPct = st.MisspecFrac() * 100

		// Flush every ~1/6th of the run: a few phase-level flushes.
		fl := baseline.NewFlush(params.MonitorPeriod, 0.99, spec.Instructions()/6)
		st = harness.Run(workload.NewGenerator(spec), fl)
		row.Flush.CorrectPct = st.CorrectFrac() * 100
		row.Flush.WrongPct = st.MisspecFrac() * 100
		row.Flushes = fl.Flushes

		st = harness.Run(workload.NewGenerator(spec), core.New(params.WithNoEviction()))
		row.Open.CorrectPct = st.CorrectFrac() * 100
		row.Open.WrongPct = st.MisspecFrac() * 100

		return row, nil
	})
}

// WriteFlush renders the flush-policy comparison.
func WriteFlush(w io.Writer, rows []FlushRow, csv bool) error {
	t := stats.NewTable("bench", "closed corr%", "closed incor%",
		"flush corr%", "flush incor%", "open corr%", "open incor%", "flushes")
	for _, r := range rows {
		t.AddRowf("%s", r.Bench,
			"%.1f", r.Closed.CorrectPct, "%.4f", r.Closed.WrongPct,
			"%.1f", r.Flush.CorrectPct, "%.4f", r.Flush.WrongPct,
			"%.1f", r.Open.CorrectPct, "%.4f", r.Open.WrongPct,
			"%d", r.Flushes)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

// SweepPoint is one parameter setting's suite-average outcome.
type SweepPoint struct {
	Label      string
	Value      uint64
	CorrectPct float64
	WrongPct   float64
	Evictions  uint64
	Selections uint64
	Retired    int
}

// SweepKind names a parameter sweep.
type SweepKind string

// The supported sweeps. Each varies one Table 2 parameter around the
// experiment baseline; Section 3.3 samples most of these at a single
// alternative point, the sweeps fill in the curve.
const (
	SweepMonitor   SweepKind = "monitor"     // monitor period
	SweepEvict     SweepKind = "evict"       // eviction threshold
	SweepWait      SweepKind = "wait"        // revisit wait period
	SweepOscLimit  SweepKind = "oscillation" // oscillation limit
	SweepStep      SweepKind = "step"        // misspeculation counter step
	SweepThreshold SweepKind = "threshold"   // selection threshold (×1000)
)

// sweepValues returns the default sweep points for a kind, derived from the
// experiment-regime baseline.
func sweepValues(kind SweepKind, base core.Params) []uint64 {
	switch kind {
	case SweepMonitor:
		m := base.MonitorPeriod
		return []uint64{m / 4, m / 2, m, m * 2, m * 4}
	case SweepEvict:
		e := uint64(base.EvictThreshold)
		return []uint64{e / 10, e / 3, e, e * 3, e * 10}
	case SweepWait:
		w := base.WaitPeriod
		return []uint64{w / 10, w / 3, w, w * 3, w * 10}
	case SweepOscLimit:
		return []uint64{1, 2, 5, 20, 1 << 30}
	case SweepStep:
		return []uint64{10, 25, 50, 100, 200}
	case SweepThreshold:
		return []uint64{985, 990, 995, 998, 999}
	default:
		return nil
	}
}

func sweepApply(kind SweepKind, base core.Params, v uint64) core.Params {
	switch kind {
	case SweepMonitor:
		base.MonitorPeriod = v
	case SweepEvict:
		base.EvictThreshold = uint32(v)
	case SweepWait:
		base.WaitPeriod = v
	case SweepOscLimit:
		base.MaxOptimizations = uint32(v)
	case SweepStep:
		base.MisspecStep = uint32(v)
	case SweepThreshold:
		base.SelectThreshold = float64(v) / 1000
	}
	return base
}

// Sweep runs one parameter sweep over the configured benchmarks and returns
// suite-aggregate points.
func Sweep(cfg Config, kind SweepKind) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	base := cfg.Params()
	values := sweepValues(kind, base)
	if values == nil {
		return nil, errUnknownSweep(kind)
	}
	return runParallelN(cfg.ctx(), len(values), func(i int) (SweepPoint, error) {
		v := values[i]
		params := sweepApply(kind, base, v)
		var events, correct, wrong uint64
		var evictions, selections uint64
		retired := 0
		for _, name := range cfg.Benchmarks {
			spec, err := cfg.build(name, workload.InputEval)
			if err != nil {
				return SweepPoint{}, err
			}
			ctl := core.New(params)
			st := harness.Run(workload.NewGenerator(spec), ctl)
			events += st.Events
			correct += st.Correct
			wrong += st.Misspec
			cs := ctl.Stats()
			evictions += cs.Evictions
			selections += cs.Selections
			_, _, _, r := ctl.StaticCounts()
			retired += r
		}
		return SweepPoint{
			Label:      string(kind),
			Value:      v,
			CorrectPct: 100 * float64(correct) / float64(events),
			WrongPct:   100 * float64(wrong) / float64(events),
			Evictions:  evictions,
			Selections: selections,
			Retired:    retired,
		}, nil
	})
}

type errUnknownSweep SweepKind

func (e errUnknownSweep) Error() string { return "experiments: unknown sweep " + string(e) }

// WriteSweep renders sweep points.
func WriteSweep(w io.Writer, points []SweepPoint, csv bool) error {
	t := stats.NewTable("sweep", "value", "correct%", "incorrect%", "selections", "evictions", "retired")
	for _, p := range points {
		t.AddRowf("%s", p.Label, "%d", p.Value, "%.2f", p.CorrectPct, "%.4f", p.WrongPct,
			"%d", p.Selections, "%d", p.Evictions, "%d", p.Retired)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
