package experiments

import (
	"io"

	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// WriteTable1 renders Table 1: the profile and evaluation inputs of each
// benchmark with the run lengths, both the paper's (billions of
// instructions) and this reproduction's scaled runs.
func WriteTable1(w io.Writer, cfg Config, csv bool) error {
	cfg = cfg.withDefaults()
	t := stats.NewTable("bench", "profile input", "evaluation input", "paper len", "scaled instrs", "scaled branches")
	for _, row := range workload.Table1() {
		spec, err := cfg.build(row.Name, workload.InputEval)
		if err != nil {
			return err
		}
		t.AddRowf(
			"%s", row.Name,
			"%s", row.ProfileInput,
			"%s", row.EvalInput,
			"%.0fB", row.LenBInstr,
			"%s", stats.Count(spec.Instructions()),
			"%s", stats.Count(spec.Events),
		)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
