package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// runParallel maps fn over names with bounded concurrency, preserving input
// order in the result. Each benchmark's simulation is independent and
// deterministic, so parallel execution produces byte-identical results to a
// sequential run.
//
// The driver is hardened against misbehaving work units: a panic inside fn
// is recovered and converted into an error attributed to the benchmark that
// raised it (the process never crashes), and when several units fail, every
// failure is reported via errors.Join rather than only the first. Work units
// not yet started when ctx is canceled are skipped; the context error is
// reported once.
func runParallel[T any](ctx context.Context, names []string, fn func(name string) (T, error)) ([]T, error) {
	return runWorkers(ctx, len(names), func(i int) string { return fmt.Sprintf("benchmark %q", names[i]) },
		func(i int) (T, error) { return fn(names[i]) })
}

// runParallelN is runParallel over integer indices [0, n).
func runParallelN[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	return runWorkers(ctx, n, func(i int) string { return fmt.Sprintf("work unit %d", i) }, fn)
}

// runWorkers is the shared bounded-concurrency fan-out: n work units,
// labeled for error attribution by label(i).
func runWorkers[T any](ctx context.Context, n int, label func(i int) string, fn func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, n)
	errs := make([]error, n)
	sem := make(chan struct{}, maxWorkers())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("%s: panic: %v\n%s", label(i), r, debug.Stack())
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	// Aggregate every failure in input order; a canceled context produces
	// one error per unstarted unit, collapsed to a single report.
	var failures []error
	ctxReported := false
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if !ctxReported {
				failures = append(failures, err)
				ctxReported = true
			}
		default:
			failures = append(failures, err)
		}
	}
	if len(failures) > 0 {
		return nil, errors.Join(failures...)
	}
	return results, nil
}

func maxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}
