package experiments

import (
	"runtime"
	"sync"
)

// runParallel maps fn over names with bounded concurrency, preserving input
// order in the result. Each benchmark's simulation is independent and
// deterministic, so parallel execution produces byte-identical results to a
// sequential run.
func runParallel[T any](names []string, fn func(name string) (T, error)) ([]T, error) {
	results := make([]T, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, maxWorkers())
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runParallelN is runParallel over integer indices [0, n).
func runParallelN[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	sem := make(chan struct{}, maxWorkers())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func maxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}
