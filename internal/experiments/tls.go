package experiments

import (
	"io"

	"reactivespec/internal/core"
	"reactivespec/internal/stats"
	"reactivespec/internal/tlspec"
)

// TLSRow compares speculation-control policies in the thread-level-
// speculation consumer: the same first-order conclusion as Figure 7, in the
// paper's third named context (its reference [18]).
type TLSRow struct {
	Policy        string
	Speedup       float64
	ParallelIters uint64
	Violations    uint64
}

// TLS runs the synthetic loop suite under serial execution, reactive
// (closed-loop) control, and open-loop control on a 4-core TLS machine.
func TLS(cfg Config) ([]TLSRow, error) {
	cfg = cfg.withDefaults()
	// Loops execute orders of magnitude fewer times than hot branches, so
	// the controller windows are regime-matched to loop lifetimes (the
	// same scaling argument as EXPERIMENTS.md applies).
	params := cfg.Params()
	params.MonitorPeriod = 200
	params.OptLatency = 2_000
	params.WaitPeriod = 2_000
	mk := func() *tlspec.Suite { return tlspec.SynthSuite(cfg.Seed, cfg.Scale) }
	mcfg := tlspec.DefaultConfig()

	rows := make([]TLSRow, 0, 3)
	rows = append(rows, TLSRow{Policy: "serial", Speedup: 1.0})
	closed := tlspec.Run(mk(), core.New(params), mcfg)
	rows = append(rows, TLSRow{
		Policy:        "reactive (closed loop)",
		Speedup:       closed.Speedup(),
		ParallelIters: closed.ParallelIters,
		Violations:    closed.Violations,
	})
	open := tlspec.Run(mk(), core.New(params.WithNoEviction()), mcfg)
	rows = append(rows, TLSRow{
		Policy:        "open loop (no eviction)",
		Speedup:       open.Speedup(),
		ParallelIters: open.ParallelIters,
		Violations:    open.Violations,
	})
	return rows, nil
}

// WriteTLS renders the TLS comparison.
func WriteTLS(w io.Writer, rows []TLSRow, csv bool) error {
	t := stats.NewTable("policy", "speedup", "parallel iters", "violations")
	for _, r := range rows {
		t.AddRowf("%s", r.Policy, "%.3f", r.Speedup,
			"%s", stats.Count(r.ParallelIters), "%s", stats.Count(r.Violations))
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
