package experiments

import (
	"fmt"
	"io"
	"sort"

	"reactivespec/internal/baseline"
	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/faults"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// The chaos experiment replays the paper's Figure 5 comparison — the
// reactive controller against the non-reactive control mechanisms — under
// injected faults instead of the clean calibrated streams, sweeping a single
// hostility knob. The paper's robustness claim is that reactive control
// degrades gracefully when branch behavior turns hostile while decide-once
// mechanisms fall off a cliff; this driver makes that claim measurable.
//
// Profiles are gathered on the clean streams (profiling happened before the
// world turned hostile); evaluation runs on the faulted stream. The reactive
// controller and the initial-behavior mechanism see only the faulted stream.

// ChaosMechanisms lists the compared control mechanisms in presentation
// order.
var ChaosMechanisms = []string{
	"reactive",
	"self-train-99",
	"prev-profile-99",
	"initial-behavior",
}

// DefaultChaosIntensities is the default fault-intensity sweep (0 is the
// clean reference point).
var DefaultChaosIntensities = []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8}

// ChaosPoint is one mark: a mechanism's correct/incorrect speculation
// fractions on one benchmark at one fault intensity.
type ChaosPoint struct {
	Bench     string
	Intensity float64
	Mechanism string
	// CorrectPct and WrongPct are percentages of the faulted run's events.
	CorrectPct float64
	WrongPct   float64
	// Events is the faulted run's event count (drop/duplicate/truncate
	// change it).
	Events uint64
}

// chaosMix maps one intensity to a composite fault configuration: the
// canonical faults.IntensityMix keyed to this spec's population and seed.
func chaosMix(intensity float64, spec *workload.Spec) faults.Mix {
	return faults.IntensityMix(intensity, spec.Events,
		trace.BranchID(len(spec.Branches)), spec.Seed^0xc8a05_5eed)
}

// Chaos sweeps fault intensity across the configured benchmarks and
// mechanisms. A nil intensities slice runs DefaultChaosIntensities.
func Chaos(cfg Config, intensities []float64) ([]ChaosPoint, error) {
	cfg = cfg.withDefaults()
	if intensities == nil {
		intensities = DefaultChaosIntensities
	}
	for _, in := range intensities {
		if in < 0 || in > 1 {
			return nil, fmt.Errorf("chaos: intensity %v outside [0, 1]", in)
		}
	}
	params := cfg.Params()
	// Initial-behavior training length: the middle of the Figure 2 sweep
	// (100k executions at paper scale).
	trainLen := Fig2TrainLens(cfg.ParamScale)[2]
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]ChaosPoint, error) {
		eval, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return nil, err
		}
		prof, err := cfg.build(name, workload.InputProfile)
		if err != nil {
			return nil, err
		}
		// Clean-stream profiles: self-training from the evaluation input,
		// previous-run profile from the differing profiling input.
		selfSel := bias.FromStream(workload.NewGenerator(eval)).Select(0.99, 1)
		prevSel := bias.FromStream(workload.NewGenerator(prof)).Select(0.99, 1)

		var points []ChaosPoint
		for _, intensity := range intensities {
			mix := chaosMix(intensity, eval)
			faulted, ok := mix.Apply(workload.NewGenerator(eval), eval.Events).(trace.ResetStream)
			if !ok {
				return nil, fmt.Errorf("chaos: faulted %s stream lost resettability", name)
			}
			for _, mech := range ChaosMechanisms {
				var ctl harness.Controller
				switch mech {
				case "reactive":
					ctl = core.New(params)
				case "self-train-99":
					ctl = baseline.NewStatic(selfSel)
				case "prev-profile-99":
					ctl = baseline.NewStatic(prevSel)
				case "initial-behavior":
					ctl = baseline.NewInitialBehavior(trainLen, 0.99)
				}
				faulted.Reset()
				st, err := harness.RunContext(cfg.ctx(), faulted, ctl)
				if err != nil {
					return nil, fmt.Errorf("chaos %s intensity %v %s: %w", name, intensity, mech, err)
				}
				points = append(points, ChaosPoint{
					Bench:      name,
					Intensity:  intensity,
					Mechanism:  mech,
					CorrectPct: st.CorrectFrac() * 100,
					WrongPct:   st.MisspecFrac() * 100,
					Events:     st.Events,
				})
			}
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}
	var points []ChaosPoint
	for _, ps := range perBench {
		points = append(points, ps...)
	}
	return points, nil
}

// ChaosSummaryRow aggregates one (intensity, mechanism) cell across the
// benchmarks.
type ChaosSummaryRow struct {
	Intensity  float64
	Mechanism  string
	CorrectPct float64 // mean across benchmarks
	WrongPct   float64 // mean across benchmarks
	// WrongDelta is the misspeculation-rate degradation versus the same
	// mechanism's intensity-0 reference (percentage points).
	WrongDelta float64
}

// ChaosSummary aggregates per-benchmark points into the headline table:
// suite-mean correct/incorrect rates per mechanism and intensity, with each
// mechanism's degradation relative to its clean run.
func ChaosSummary(points []ChaosPoint) []ChaosSummaryRow {
	type cell struct{ c, w stats.Running }
	cells := map[float64]map[string]*cell{}
	var intensities []float64
	for _, p := range points {
		m, ok := cells[p.Intensity]
		if !ok {
			m = map[string]*cell{}
			cells[p.Intensity] = m
			intensities = append(intensities, p.Intensity)
		}
		cl, ok := m[p.Mechanism]
		if !ok {
			cl = &cell{}
			m[p.Mechanism] = cl
		}
		cl.c.Add(p.CorrectPct)
		cl.w.Add(p.WrongPct)
	}
	sort.Float64s(intensities)
	clean := map[string]float64{}
	if m, ok := cells[0]; ok {
		for mech, cl := range m {
			clean[mech] = cl.w.Mean()
		}
	}
	var rows []ChaosSummaryRow
	for _, in := range intensities {
		for _, mech := range ChaosMechanisms {
			cl, ok := cells[in][mech]
			if !ok {
				continue
			}
			rows = append(rows, ChaosSummaryRow{
				Intensity:  in,
				Mechanism:  mech,
				CorrectPct: cl.c.Mean(),
				WrongPct:   cl.w.Mean(),
				WrongDelta: cl.w.Mean() - clean[mech],
			})
		}
	}
	return rows
}

// WriteChaos renders the per-benchmark chaos points.
func WriteChaos(w io.Writer, points []ChaosPoint, csv bool) error {
	t := stats.NewTable("bench", "intensity", "mechanism", "correct%", "incorrect%", "events")
	for _, p := range points {
		t.AddRowf("%s", p.Bench, "%.2f", p.Intensity, "%s", p.Mechanism,
			"%.2f", p.CorrectPct, "%.4f", p.WrongPct, "%d", p.Events)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

// WriteChaosSummary renders the suite-aggregate degradation table.
func WriteChaosSummary(w io.Writer, rows []ChaosSummaryRow, csv bool) error {
	t := stats.NewTable("intensity", "mechanism", "correct%", "incorrect%", "incorrect-delta")
	for _, r := range rows {
		t.AddRowf("%.2f", r.Intensity, "%s", r.Mechanism,
			"%.2f", r.CorrectPct, "%.4f", r.WrongPct, "%+.4f", r.WrongDelta)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
