package experiments

import (
	"io"
	"sort"

	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// DescribeRow summarizes one behavior class of a workload's population.
type DescribeRow struct {
	Class       workload.BranchClass
	Static      int
	WeightPct   float64
	MinExecs    uint64
	MedianExecs uint64
	MaxExecs    uint64
}

// Describe summarizes the named benchmark's population: how many static
// branches of each behavior class it plants, their dynamic weight, and their
// expected execution counts. It makes the workload substitution auditable.
func Describe(cfg Config, name string, input workload.InputID) ([]DescribeRow, *workload.Spec, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.build(name, input)
	if err != nil {
		return nil, nil, err
	}
	type acc struct {
		n      int
		weight float64
		execs  []uint64
	}
	byClass := map[workload.BranchClass]*acc{}
	for _, b := range spec.Branches {
		a := byClass[b.Class]
		if a == nil {
			a = &acc{}
			byClass[b.Class] = a
		}
		a.n++
		a.weight += b.Weight
		a.execs = append(a.execs, uint64(b.Weight*float64(spec.Events)))
	}
	classes := make([]workload.BranchClass, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	rows := make([]DescribeRow, 0, len(classes))
	for _, c := range classes {
		a := byClass[c]
		sort.Slice(a.execs, func(i, j int) bool { return a.execs[i] < a.execs[j] })
		rows = append(rows, DescribeRow{
			Class:       c,
			Static:      a.n,
			WeightPct:   a.weight * 100,
			MinExecs:    a.execs[0],
			MedianExecs: a.execs[len(a.execs)/2],
			MaxExecs:    a.execs[len(a.execs)-1],
		})
	}
	return rows, spec, nil
}

// WriteDescribe renders a population summary.
func WriteDescribe(w io.Writer, spec *workload.Spec, rows []DescribeRow, csv bool) error {
	t := stats.NewTable("class", "static", "weight%", "min execs", "median execs", "max execs")
	for _, r := range rows {
		t.AddRowf("%s", r.Class.String(), "%d", r.Static, "%.2f", r.WeightPct,
			"%s", stats.Count(r.MinExecs), "%s", stats.Count(r.MedianExecs), "%s", stats.Count(r.MaxExecs))
	}
	if csv {
		return t.WriteCSV(w)
	}
	hdr := stats.NewTable("workload", "input", "events", "instructions", "static branches")
	hdr.AddRowf("%s", spec.Name, "%s", spec.Input.String(),
		"%s", stats.Count(spec.Events), "%s", stats.Count(spec.Instructions()), "%d", len(spec.Branches))
	if err := hdr.WriteText(w); err != nil {
		return err
	}
	return t.WriteText(w)
}
