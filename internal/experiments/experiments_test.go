package experiments

import (
	"strings"
	"testing"

	"reactivespec/internal/workload"
)

// quickCfg runs small: 1/20th of the calibrated workload scale with the
// controller parameters scaled to match.
func quickCfg(benches ...string) Config {
	return Config{Scale: 0.05, ParamScale: 50, Benchmarks: benches}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 1 || cfg.ParamScale != 10 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.Benchmarks) != 12 {
		t.Fatalf("default benchmarks = %v", cfg.Benchmarks)
	}
}

func TestConfigParamsRegime(t *testing.T) {
	p := Config{}.Params()
	if p.MonitorPeriod != 1_000 || p.WaitPeriod != ExperimentWaitPeriod || p.OptLatency != 100_000 {
		t.Fatalf("experiment params = %+v", p)
	}
	if q := (Config{ParamScale: 1}).Params(); q.MonitorPeriod != 10_000 || q.WaitPeriod != 1_000_000 {
		t.Fatalf("paper-scale params = %+v", q)
	}
}

func TestTable3Driver(t *testing.T) {
	rows, err := Table3(quickCfg("gzip", "eon"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Bench != "gzip" || rows[1].Bench != "eon" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Touched == 0 || r.Biased == 0 {
			t.Fatalf("%s: no branches classified (%+v)", r.Bench, r)
		}
		if r.Biased > r.Touched || r.Evicted > r.Biased {
			t.Fatalf("%s: inconsistent static counts %+v", r.Bench, r)
		}
		if r.SpecPct <= 0 || r.SpecPct >= 100 {
			t.Fatalf("%s: spec%% = %v", r.Bench, r.SpecPct)
		}
		if r.Paper.StaticTouch == 0 {
			t.Fatalf("%s: paper stats missing", r.Bench)
		}
	}
	var b strings.Builder
	if err := WriteTable3(&b, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gzip") {
		t.Fatal("rendering missing benchmark name")
	}
	b.Reset()
	if err := WriteTable3(&b, rows, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ",") {
		t.Fatal("CSV rendering has no commas")
	}
}

func TestFig5AndTable4Driver(t *testing.T) {
	// crafty at 1/5 scale retains hot late-onset branches (the revisit
	// arc's clientele); smaller benchmarks lose them below full scale.
	points, err := Fig5(Config{Scale: 0.2, Benchmarks: []string{"crafty"}})
	if err != nil {
		t.Fatal(err)
	}
	byConf := map[string]Fig5Point{}
	for _, p := range points {
		byConf[p.Config] = p
		if p.CorrectPct < 0 || p.CorrectPct > 100 || p.WrongPct < 0 {
			t.Fatalf("out-of-range point %+v", p)
		}
	}
	for _, conf := range Fig5ConfigNames {
		if _, ok := byConf[conf]; !ok {
			t.Fatalf("configuration %q missing", conf)
		}
	}
	// The paper's headline robustness result: removing the eviction arc
	// costs orders of magnitude in misspeculation rate.
	if byConf["no-evict"].WrongPct < 10*byConf["baseline"].WrongPct {
		t.Fatalf("no-evict misspec %v not far above baseline %v",
			byConf["no-evict"].WrongPct, byConf["baseline"].WrongPct)
	}
	// Removing the revisit arc costs correct speculation.
	if byConf["no-revisit"].CorrectPct >= byConf["baseline"].CorrectPct {
		t.Fatalf("no-revisit correct %v not below baseline %v",
			byConf["no-revisit"].CorrectPct, byConf["baseline"].CorrectPct)
	}

	rows := Table4(points)
	if len(rows) != len(Fig5ConfigNames) {
		t.Fatalf("Table4 rows = %d", len(rows))
	}
	var b strings.Builder
	if err := WriteTable4(&b, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no-evict") {
		t.Fatal("Table4 rendering incomplete")
	}
	b.Reset()
	if err := WriteFig5(&b, points, false); err != nil {
		t.Fatal(err)
	}
}

func TestFig2Driver(t *testing.T) {
	series, err := Fig2(quickCfg("crafty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if len(s.Pareto) == 0 {
		t.Fatal("empty Pareto curve")
	}
	// Pareto curve monotone.
	for i := 1; i < len(s.Pareto); i++ {
		if s.Pareto[i].CorrectF < s.Pareto[i-1].CorrectF {
			t.Fatal("Pareto curve not monotone")
		}
	}
	if len(s.Initial) != len(Fig2TrainLens(50)) {
		t.Fatalf("initial-behavior points = %d", len(s.Initial))
	}
	// Cross-input profiling on crafty (a worst offender) must show more
	// misspeculation than self-training at the same threshold.
	if s.TrainInput.WrongPct <= s.Knee99.WrongF*100 {
		t.Fatalf("train-input misspec %v not above self-training %v",
			s.TrainInput.WrongPct, s.Knee99.WrongF*100)
	}
	// Longer initial training reduces misspeculation.
	first, last := s.Initial[0], s.Initial[len(s.Initial)-1]
	if last.WrongPct > first.WrongPct {
		t.Fatalf("longer training increased misspec: %v -> %v", first.WrongPct, last.WrongPct)
	}
	var b strings.Builder
	if err := WriteFig2(&b, series, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "knee-99") {
		t.Fatal("Fig2 rendering incomplete")
	}
}

func TestFig2TrainLens(t *testing.T) {
	full := Fig2TrainLens(1)
	if len(full) != 5 || full[0] != 1_000 || full[4] != 1_000_000 {
		t.Fatalf("paper-scale train lens = %v", full)
	}
	scaled := Fig2TrainLens(10)
	if scaled[0] != 100 || scaled[4] != 100_000 {
		t.Fatalf("scaled train lens = %v", scaled)
	}
}

func TestFig3Driver(t *testing.T) {
	series, err := Fig3(Config{}) // needs the full-scale hot changers
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("Fig3 series = %d, want 5", len(series))
	}
	for _, s := range series {
		if len(s.BlockBias) < 20 {
			t.Fatalf("branch %d has only %d blocks", s.Branch, len(s.BlockBias))
		}
		// Initially invariant: the first blocks are highly biased
		// toward the initial direction.
		for i := 0; i < 5; i++ {
			if s.BlockBias[i] < 0.9 {
				t.Fatalf("branch %d (%v) not initially biased: block %d = %v",
					s.Branch, s.Class, i, s.BlockBias[i])
			}
		}
	}
	var b strings.Builder
	if err := WriteFig3(&b, series, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig3(&b, series, true); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Driver(t *testing.T) {
	res, err := Fig6(quickCfg("gap", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) == 0 {
		t.Fatal("no evictions observed")
	}
	for _, r := range res.Rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate %v out of range", r)
		}
	}
	if res.FracBelow30+res.FracReversed > 1 {
		t.Fatal("summary fractions exceed 1")
	}
	var b strings.Builder
	if err := WriteFig6(&b, res, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "softening") {
		t.Fatal("Fig6 rendering incomplete")
	}
}

func TestFig9Driver(t *testing.T) {
	res, err := Fig9For(Config{Scale: 0.2, ParamScale: 10}, "vortex")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) < 5 {
		t.Fatalf("only %d flipping branches", len(res.Tracks))
	}
	// Correlated-group members must appear among the flipping branches.
	grouped := 0
	for _, tr := range res.Tracks {
		if tr.Group >= 0 {
			grouped++
		}
	}
	if grouped == 0 {
		t.Fatal("no correlated-group members flip")
	}
	var b strings.Builder
	if err := WriteFig9(&b, res, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "#") {
		t.Fatal("Fig9 rendering has no biased windows")
	}
}

func TestFig7Driver(t *testing.T) {
	rows, err := Fig7(Config{Scale: 0.5, Benchmarks: []string{"crafty"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.ClosedLoop <= 0 || r.OpenLoop <= 0 {
		t.Fatalf("speedups %+v", r)
	}
	// The paper's Figure 7 claim: the open-loop policy trails closed-loop.
	if r.OpenLoop >= r.ClosedLoop {
		t.Fatalf("open-loop %v >= closed-loop %v", r.OpenLoop, r.ClosedLoop)
	}
	if r.OpenMisspecs <= r.ClosedMisspecs {
		t.Fatalf("open-loop misspecs %d <= closed %d", r.OpenMisspecs, r.ClosedMisspecs)
	}
	var b strings.Builder
	if err := WriteFig7(&b, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "geomean") {
		t.Fatal("Fig7 rendering incomplete")
	}
}

func TestFig8Driver(t *testing.T) {
	rows, err := Fig8(Config{Scale: 0.25, Benchmarks: []string{"bzip2"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.Speedups) != len(Fig8Latencies) {
		t.Fatalf("speedups = %v", r.Speedups)
	}
	// Latency insensitivity: the largest latency costs little.
	if r.Speedups[2] < r.Speedups[0]*0.85 {
		t.Fatalf("latency sensitivity too high: %v", r.Speedups)
	}
	var b strings.Builder
	if err := WriteFig8(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Driver(t *testing.T) {
	var b strings.Builder
	if err := WriteTable1(&b, quickCfg(), false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range workload.Suite() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table1 missing %s", name)
		}
	}
}

func TestUnknownBenchmarkPropagates(t *testing.T) {
	if _, err := Table3(Config{Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Fig2(Config{Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Fig7(Config{Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("expected error")
	}
}

// TestCalibrationTracksPaper is the headline integration test: at full scale,
// the baseline reactive controller's Table 3 row must land near the published
// values for a representative benchmark subset.
func TestCalibrationTracksPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration check")
	}
	rows, err := Table3(Config{Benchmarks: []string{"gzip", "mcf", "vortex"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		biasedPct := 100 * float64(r.Biased) / float64(r.Touched)
		paperBiased := 100 * float64(r.Paper.Biased) / float64(r.Paper.StaticTouch)
		if biasedPct < paperBiased-8 || biasedPct > paperBiased+8 {
			t.Errorf("%s: biased%% = %.1f, paper %.1f", r.Bench, biasedPct, paperBiased)
		}
		if r.SpecPct < r.Paper.SpecPct-8 || r.SpecPct > r.Paper.SpecPct+8 {
			t.Errorf("%s: spec%% = %.1f, paper %.1f", r.Bench, r.SpecPct, r.Paper.SpecPct)
		}
		// Misspeculation distances are scale-compressed (EXPERIMENTS.md);
		// require the same order of magnitude.
		if r.MisspecDist < r.Paper.MisspecDist/12 || r.MisspecDist > r.Paper.MisspecDist*12 {
			t.Errorf("%s: misspec distance = %.0f, paper %.0f", r.Bench, r.MisspecDist, r.Paper.MisspecDist)
		}
	}
}
