package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/obs"
	"reactivespec/internal/plot"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// TimelineResult is one traced run: the usual harness statistics plus the
// per-branch state trajectories reconstructed from the lifecycle sink. It is
// the software reproduction of the paper's per-branch classification views
// (Figures 3, 6 and 9, seen from the controller instead of the workload).
type TimelineResult struct {
	Bench string
	Input workload.InputID
	Stats harness.Stats
	// Transitions is the total number of lifecycle transitions observed;
	// Dropped counts the ones the ring buffer overwrote (0 at calibrated
	// scales with the default sink capacity).
	Transitions uint64
	Dropped     uint64
	Branches    []obs.BranchTimeline
}

// Timeline drives one benchmark through a reactive controller with an
// obs.Sink attached and reconstructs every branch's state trajectory. The
// sink observes without feeding back, so the run's statistics are bitwise
// identical to an untraced run (TestTimelineMatchesUntracedRun pins this).
func Timeline(cfg Config, bench string, input workload.InputID) (*TimelineResult, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.build(bench, input)
	if err != nil {
		return nil, err
	}
	ctl := core.New(cfg.Params())
	sink := obs.NewSink(0)
	sink.Attach(ctl)
	st, err := harness.RunContext(cfg.ctx(), workload.NewGenerator(spec), ctl)
	if err != nil {
		return nil, err
	}
	return &TimelineResult{
		Bench:       bench,
		Input:       input,
		Stats:       st,
		Transitions: sink.Total(),
		Dropped:     sink.Dropped(),
		Branches:    obs.BuildTimeline(sink.Records(), st.Instrs),
	}, nil
}

// timelineOrder ranks branches most-active-first (transition count
// descending, branch ID ascending as the tiebreak) — the order the table and
// the SVG present them in.
func timelineOrder(branches []obs.BranchTimeline) []obs.BranchTimeline {
	out := make([]obs.BranchTimeline, len(branches))
	copy(out, branches)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Transitions != out[j].Transitions {
			return out[i].Transitions > out[j].Transitions
		}
		return out[i].Branch < out[j].Branch
	})
	return out
}

// trajectory renders a branch's state sequence compactly:
// "monitor→biased→monitor…(+4)".
func trajectory(segments []obs.Segment, max int) string {
	var b strings.Builder
	n := len(segments)
	shown := n
	if shown > max {
		shown = max
	}
	for i := 0; i < shown; i++ {
		if i > 0 {
			b.WriteString("→")
		}
		b.WriteString(segments[i].State.String())
	}
	if n > shown {
		fmt.Fprintf(&b, "…(+%d)", n-shown)
	}
	return b.String()
}

// WriteTimeline renders the traced run. Table mode prints a run-summary
// header followed by one row per branch, most-active branches first. CSV mode
// emits the raw per-segment spans (branch, state, from, to), one row per
// constant-state segment, suitable for external plotting.
func WriteTimeline(w io.Writer, res *TimelineResult, csv bool) error {
	ordered := timelineOrder(res.Branches)
	if csv {
		t := stats.NewTable("branch", "state", "from_instr", "to_instr")
		for _, tl := range ordered {
			for _, seg := range tl.Segments {
				t.AddRowf("%d", uint64(tl.Branch), "%s", seg.State.String(),
					"%d", seg.FromInstr, "%d", seg.ToInstr)
			}
		}
		return t.WriteCSV(w)
	}
	hdr := stats.NewTable("workload", "input", "events", "instructions", "transitions", "dropped", "branches traced")
	hdr.AddRowf("%s", res.Bench, "%s", res.Input.String(),
		"%s", stats.Count(res.Stats.Events), "%s", stats.Count(res.Stats.Instrs),
		"%s", stats.Count(res.Transitions), "%s", stats.Count(res.Dropped),
		"%d", len(res.Branches))
	if err := hdr.WriteText(w); err != nil {
		return err
	}
	t := stats.NewTable("branch", "transitions", "evictions", "final", "trajectory")
	for _, tl := range ordered {
		t.AddRowf("%d", uint64(tl.Branch), "%d", tl.Transitions, "%d", tl.Evictions,
			"%s", tl.Final.String(), "%s", trajectory(tl.Segments, 8))
	}
	return t.WriteText(w)
}

// SVGTimelineBranches caps how many branches the SVG shows: the most active
// ones tell the classification story; hundreds of single-transition rows
// would only compress them to invisibility.
const SVGTimelineBranches = 24

// SVGTimeline renders the state timeline as an SVG Gantt-style chart: one row
// per branch (most active at the top), one horizontal span per constant-state
// segment, colored by state via one plot series per state.
func SVGTimeline(w io.Writer, res *TimelineResult) error {
	ordered := timelineOrder(res.Branches)
	if len(ordered) > SVGTimelineBranches {
		ordered = ordered[:SVGTimelineBranches]
	}
	states := []core.State{core.Monitor, core.Biased, core.Unbiased, core.Retired}
	series := make([]plot.Series, len(states))
	for i, st := range states {
		series[i] = plot.Series{Name: st.String(), Style: plot.Segments}
	}
	for rank, tl := range ordered {
		y := float64(len(ordered) - rank) // most active branch on top
		for _, seg := range tl.Segments {
			s := &series[int(seg.State)]
			s.X = append(s.X, float64(seg.FromInstr), float64(seg.ToInstr))
			s.Y = append(s.Y, y, y)
		}
	}
	p := &plot.Plot{
		Title:  fmt.Sprintf("Controller state timeline: %s (%s)", res.Bench, res.Input),
		XLabel: "dynamic instructions",
		YLabel: "branch (by transition count)",
		Series: series,
		YMin:   0,
		YMax:   float64(len(ordered) + 1),
		YFixed: true,
	}
	return p.WriteSVG(w, 960, 480)
}
