package experiments

import (
	"io"

	"reactivespec/internal/core"
	"reactivespec/internal/replay"
	"reactivespec/internal/stats"
)

// ReplayRow compares closed- and open-loop speculation control in the
// rePLay-style frame engine on one benchmark: the same first-order
// conclusion as Figure 7, in the paper's other named consumer of aggressive
// software speculation.
type ReplayRow struct {
	Bench                        string
	ClosedSpeedup, OpenSpeedup   float64
	ClosedAbortPct, OpenAbortPct float64
	Frames                       uint64
}

// Replay runs the frame engine over the benchmark-flavored programs.
func Replay(cfg Config) ([]ReplayRow, error) {
	cfg = cfg.withDefaults()
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (ReplayRow, error) {
		rcfg := replay.DefaultConfig()
		rcfg.RunInstrs = uint64(float64(rcfg.RunInstrs) * cfg.Scale)
		prog, err := msspProgram(name, cfg.Seed, rcfg.RunInstrs)
		if err != nil {
			return ReplayRow{}, err
		}
		params := cfg.Params()
		params.MonitorPeriod = 1_000
		params.OptLatency = 0
		closed := replay.Run(prog, core.New(params), rcfg)
		open := replay.Run(prog, core.New(params.WithNoEviction()), rcfg)
		return ReplayRow{
			Bench:          name,
			ClosedSpeedup:  closed.Speedup(),
			OpenSpeedup:    open.Speedup(),
			ClosedAbortPct: closed.AbortRate() * 100,
			OpenAbortPct:   open.AbortRate() * 100,
			Frames:         closed.Frames,
		}, nil
	})
}

// WriteReplay renders the frame-engine comparison.
func WriteReplay(w io.Writer, rows []ReplayRow, csv bool) error {
	t := stats.NewTable("bench", "closed speedup", "open speedup", "closed abort%", "open abort%", "frames")
	gmc, gmo := 1.0, 1.0
	for _, r := range rows {
		t.AddRowf("%s", r.Bench, "%.3f", r.ClosedSpeedup, "%.3f", r.OpenSpeedup,
			"%.3f", r.ClosedAbortPct, "%.3f", r.OpenAbortPct, "%d", r.Frames)
		gmc *= r.ClosedSpeedup
		gmo *= r.OpenSpeedup
	}
	if n := float64(len(rows)); n > 0 {
		t.AddRowf("%s", "geomean", "%.3f", pow1n(gmc, n), "%.3f", pow1n(gmo, n),
			"%s", "", "%s", "", "%s", "")
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
