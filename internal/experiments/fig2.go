package experiments

import (
	"io"

	"reactivespec/internal/baseline"
	"reactivespec/internal/bias"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// Fig2Series is the Figure 2 data for one benchmark: the self-training
// Pareto curve and the points for the two conventional control mechanisms.
type Fig2Series struct {
	Bench string
	// Pareto is the self-training trade-off curve (downsampled).
	Pareto []bias.ParetoPoint
	// Knee99 is the marked 99%-threshold self-training point.
	Knee99 bias.ParetoPoint
	// TrainInput is the triangle: selection from the differing profile
	// input (99% threshold), evaluated on the evaluation input.
	TrainInput Fig2Point
	// Initial are the crosses: initial-behavior selection at each
	// training length, evaluated on the rest of the run.
	Initial []Fig2Point
}

// Fig2Point is a correct/incorrect fraction pair with a label.
type Fig2Point struct {
	Label      string
	CorrectPct float64
	WrongPct   float64
}

// Fig2TrainLens returns the initial-behavior training lengths for the given
// parameter scale; at the paper's scale they are 1k, 10k, 100k, 300k and 1M
// executions (Section 2.2).
func Fig2TrainLens(paramScale uint64) []uint64 {
	base := []uint64{1_000, 10_000, 100_000, 300_000, 1_000_000}
	if paramScale <= 1 {
		return base
	}
	out := make([]uint64, len(base))
	for i, v := range base {
		out[i] = v / paramScale
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return out
}

// Fig2 reproduces Figure 2: per benchmark, the Pareto-optimal self-training
// curve, the 99%-threshold knee, the cross-input profile triangle, and the
// initial-behavior crosses.
func Fig2(cfg Config) ([]Fig2Series, error) {
	cfg = cfg.withDefaults()
	trainLens := Fig2TrainLens(cfg.ParamScale)
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (Fig2Series, error) {
		eval, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return Fig2Series{}, err
		}
		prof, err := cfg.build(name, workload.InputProfile)
		if err != nil {
			return Fig2Series{}, err
		}
		evalGen := workload.NewGenerator(eval)
		evalProfile := bias.FromStream(evalGen)

		s := Fig2Series{
			Bench:  name,
			Pareto: downsamplePareto(evalProfile.Pareto(), 64),
			Knee99: evalProfile.AtThreshold(0.99),
		}

		// Triangle: select from the profile input, evaluate on the
		// evaluation input.
		trainProfile := bias.FromStream(workload.NewGenerator(prof))
		evalGen.Reset()
		st := harness.Run(evalGen, baseline.NewStatic(trainProfile.Select(0.99, 1)))
		s.TrainInput = Fig2Point{
			Label:      "train-input",
			CorrectPct: st.CorrectFrac() * 100,
			WrongPct:   st.MisspecFrac() * 100,
		}

		// Crosses: initial behavior at increasing training lengths.
		for _, n := range trainLens {
			evalGen.Reset()
			ib := baseline.NewInitialBehavior(n, 0.99)
			st := harness.Run(evalGen, ib)
			s.Initial = append(s.Initial, Fig2Point{
				Label:      "initial-" + stats.Count(n),
				CorrectPct: st.CorrectFrac() * 100,
				WrongPct:   st.MisspecFrac() * 100,
			})
		}
		return s, nil
	})
}

// downsamplePareto keeps roughly n evenly-spaced points, always including
// the last.
func downsamplePareto(points []bias.ParetoPoint, n int) []bias.ParetoPoint {
	if len(points) <= n {
		return points
	}
	out := make([]bias.ParetoPoint, 0, n+1)
	step := float64(len(points)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, points[int(float64(i)*step)])
	}
	out = append(out, points[len(points)-1])
	return out
}

// WriteFig2 renders the Figure 2 series. The full Pareto curves go to CSV
// mode; text mode prints the marked points plus a compact curve summary.
func WriteFig2(w io.Writer, series []Fig2Series, csv bool) error {
	t := stats.NewTable("bench", "mark", "correct%", "incorrect%", "static")
	for _, s := range series {
		if csv {
			for _, p := range s.Pareto {
				t.AddRowf("%s", s.Bench, "%s", "pareto", "%.3f", p.CorrectF*100, "%.5f", p.WrongF*100, "%d", p.NumStatic)
			}
		}
		t.AddRowf("%s", s.Bench, "%s", "knee-99", "%.2f", s.Knee99.CorrectF*100, "%.4f", s.Knee99.WrongF*100, "%d", s.Knee99.NumStatic)
		t.AddRowf("%s", s.Bench, "%s", s.TrainInput.Label, "%.2f", s.TrainInput.CorrectPct, "%.4f", s.TrainInput.WrongPct, "%s", "")
		for _, p := range s.Initial {
			t.AddRowf("%s", s.Bench, "%s", p.Label, "%.2f", p.CorrectPct, "%.4f", p.WrongPct, "%s", "")
		}
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
