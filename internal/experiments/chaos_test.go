package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func chaosTestConfig(benches ...string) Config {
	return Config{Scale: 0.05, ParamScale: 50, Benchmarks: benches}
}

func chaosPointsFor(t *testing.T, points []ChaosPoint, bench, mech string, intensity float64) ChaosPoint {
	t.Helper()
	for _, p := range points {
		if p.Bench == bench && p.Mechanism == mech && p.Intensity == intensity {
			return p
		}
	}
	t.Fatalf("no point for %s/%s@%v", bench, mech, intensity)
	return ChaosPoint{}
}

func TestChaosRunsAllMechanisms(t *testing.T) {
	points, err := Chaos(chaosTestConfig("gzip"), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(ChaosMechanisms) {
		t.Fatalf("got %d points, want %d", len(points), 2*len(ChaosMechanisms))
	}
	for _, mech := range ChaosMechanisms {
		clean := chaosPointsFor(t, points, "gzip", mech, 0)
		if clean.CorrectPct <= 0 {
			t.Errorf("%s: no correct speculation on the clean stream", mech)
		}
	}
}

func TestChaosZeroIntensityMatchesCleanRun(t *testing.T) {
	// At intensity 0 the faulted stream is the clean stream, so the
	// reactive point must be deterministic and match a direct re-run.
	cfg := chaosTestConfig("mcf")
	a, err := Chaos(cfg, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(cfg, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos point %d nondeterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChaosReactiveDegradesMoreGracefullyThanPrevProfile(t *testing.T) {
	// The acceptance property: as fault intensity rises, the reactive
	// controller's misspeculation rate must degrade strictly more
	// gracefully than the previous-run-profile baseline.
	benches := []string{"gzip", "gcc", "mcf", "crafty"}
	intensities := []float64{0, 0.4, 0.8}
	points, err := Chaos(chaosTestConfig(benches...), intensities)
	if err != nil {
		t.Fatal(err)
	}
	rows := ChaosSummary(points)
	get := func(mech string, in float64) ChaosSummaryRow {
		for _, r := range rows {
			if r.Mechanism == mech && r.Intensity == in {
				return r
			}
		}
		t.Fatalf("missing summary row %s@%v", mech, in)
		return ChaosSummaryRow{}
	}
	for _, in := range intensities[1:] {
		reactive := get("reactive", in)
		static := get("prev-profile-99", in)
		if reactive.WrongDelta >= static.WrongDelta {
			t.Errorf("intensity %v: reactive degradation %+.4f not below prev-profile %+.4f",
				in, reactive.WrongDelta, static.WrongDelta)
		}
		if reactive.WrongPct >= static.WrongPct {
			t.Errorf("intensity %v: reactive misspec %.4f%% not below prev-profile %.4f%%",
				in, reactive.WrongPct, static.WrongPct)
		}
	}
	// And the static mechanisms must actually be hurt by the faults —
	// otherwise the comparison above is vacuous.
	if d := get("prev-profile-99", 0.8).WrongDelta; d <= 0 {
		t.Errorf("prev-profile misspec delta %+.4f at intensity 0.8: faults had no bite", d)
	}
}

func TestChaosRejectsBadIntensity(t *testing.T) {
	if _, err := Chaos(chaosTestConfig("gzip"), []float64{-0.1}); err == nil {
		t.Fatal("negative intensity accepted")
	}
	if _, err := Chaos(chaosTestConfig("gzip"), []float64{1.5}); err == nil {
		t.Fatal("intensity > 1 accepted")
	}
}

func TestChaosHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	cfg := chaosTestConfig("gzip")
	cfg.Context = ctx
	_, err := Chaos(cfg, []float64{0, 0.5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestWriteChaosFormats(t *testing.T) {
	points, err := Chaos(chaosTestConfig("gzip"), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteChaos(&b, points, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reactive") || !strings.Contains(b.String(), "gzip") {
		t.Fatalf("chaos table incomplete:\n%s", b.String())
	}
	b.Reset()
	if err := WriteChaosSummary(&b, ChaosSummary(points), true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "intensity,mechanism") {
		t.Fatalf("chaos summary CSV header wrong:\n%s", b.String())
	}
	b.Reset()
	if err := SVGChaos(&b, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") || !strings.Contains(b.String(), "misspeculation") {
		t.Fatal("chaos SVG malformed")
	}
}
