package experiments

import (
	"fmt"
	"io"
	"sort"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// Fig6Result characterizes what branches do right after leaving the biased
// state (Figure 6): for each eviction, the misprediction rate — the fraction
// of outcomes contradicting the original speculated direction — over the
// next window of executions.
type Fig6Result struct {
	// Window is the number of post-eviction executions sampled (64 in the
	// paper).
	Window int
	// Rates holds one post-eviction misprediction rate per observed
	// eviction, sorted ascending.
	Rates []float64
	// FracBelow30 is the fraction of evictions whose post-transition
	// misprediction rate is below 30% (bias softening; the paper reports
	// over 50%).
	FracBelow30 float64
	// FracReversed is the fraction with misprediction rate above 90%
	// (perfectly biased in the other direction; the paper reports ~20%).
	FracReversed float64
}

// Fig6Window is the paper's post-transition sample window.
const Fig6Window = 64

// Fig6 runs the baseline reactive controller over the suite, sampling the
// Fig6Window executions that follow each eviction.
func Fig6(cfg Config) (Fig6Result, error) {
	cfg = cfg.withDefaults()
	res := Fig6Result{Window: Fig6Window}
	type pending struct {
		dir    bool
		wrong  int
		seen   int
		active bool
	}
	for _, name := range cfg.Benchmarks {
		spec, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return Fig6Result{}, err
		}
		ctl := core.New(cfg.Params())
		windows := make(map[trace.BranchID]*pending)
		ctl.OnTransition = func(tr core.Transition) {
			if tr.From == core.Biased && tr.To == core.Monitor {
				dir, _ := ctl.Speculating(tr.Branch)
				windows[tr.Branch] = &pending{dir: dir, active: true}
			}
		}
		harness.RunObserved(workload.NewGenerator(spec), ctl,
			func(ev trace.Event, _ uint64, _ core.Verdict) {
				p := windows[ev.Branch]
				if p == nil || !p.active {
					return
				}
				p.seen++
				if ev.Taken != p.dir {
					p.wrong++
				}
				if p.seen >= Fig6Window {
					res.Rates = append(res.Rates, float64(p.wrong)/float64(p.seen))
					p.active = false
				}
			})
		// Flush partially-observed windows at end of run.
		for _, p := range windows {
			if p.active && p.seen >= 8 {
				res.Rates = append(res.Rates, float64(p.wrong)/float64(p.seen))
			}
		}
	}
	sort.Float64s(res.Rates)
	n := len(res.Rates)
	if n > 0 {
		below30, reversed := 0, 0
		for _, r := range res.Rates {
			if r < 0.30 {
				below30++
			}
			if r > 0.90 {
				reversed++
			}
		}
		res.FracBelow30 = float64(below30) / float64(n)
		res.FracReversed = float64(reversed) / float64(n)
	}
	return res, nil
}

// WriteFig6 renders the post-eviction misprediction-rate distribution.
func WriteFig6(w io.Writer, res Fig6Result, csv bool) error {
	if csv {
		t := stats.NewTable("eviction", "mispred_rate")
		for i, r := range res.Rates {
			t.AddRowf("%d", i, "%.4f", r)
		}
		return t.WriteCSV(w)
	}
	h := stats.NewHistogram(0, 1, 10)
	for _, r := range res.Rates {
		h.Add(r)
	}
	t := stats.NewTable("mispred-rate bucket", "evictions", "fraction", "cumulative")
	for i := range h.Buckets {
		bucket := fmt.Sprintf("%2d%%–%2d%%", i*10, (i+1)*10)
		t.AddRowf("%s", bucket, "%d", int(h.Buckets[i]), "%.3f", h.Frac(i), "%.3f", h.CumFrac(i))
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	sum := stats.NewTable("summary", "measured", "paper")
	sum.AddRowf("%s", "evictions observed", "%d", len(res.Rates), "%s", "")
	sum.AddRowf("%s", "mispred < 30% (softening)", "%s", stats.Pct(res.FracBelow30, 1), "%s", ">50%")
	sum.AddRowf("%s", "mispred > 90% (reversed)", "%s", stats.Pct(res.FracReversed, 1), "%s", "~20%")
	return sum.WriteText(w)
}
