package experiments

import (
	"strings"
	"testing"
)

func assertSVG(t *testing.T, out string, wantMarks ...string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document: %.80s", out)
	}
	for _, m := range wantMarks {
		if !strings.Contains(out, m) {
			t.Fatalf("SVG missing %q", m)
		}
	}
}

func TestSVGFig2(t *testing.T) {
	series, err := Fig2(quickCfg("eon"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SVGFig2(&b, series); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "eon", "self-training", "train input", "initial behavior")
}

func TestSVGFig5(t *testing.T) {
	points, err := Fig5(quickCfg("eon"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SVGFig5(&b, points); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "eon", "no-evict", "baseline")
}

func TestSVGFig3(t *testing.T) {
	series, err := Fig3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SVGFig3(&b, series); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "polyline", "bias toward initial direction")
}

func TestSVGFig6(t *testing.T) {
	res, err := Fig6(quickCfg("gap"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SVGFig6(&b, res); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "misprediction", "<rect")
}

func TestSVGFig7And8(t *testing.T) {
	cfg := Config{Scale: 0.1, Benchmarks: []string{"bzip2", "eon"}}
	rows7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := SVGFig7(&b, rows7); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "closed 1k", "open 1k", "baseline (B)")

	rows8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := SVGFig8(&b, rows8); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, b.String(), "latency 0", "latency 1e5")
}

func TestZeroFloor(t *testing.T) {
	if zeroFloor(0) <= 0 || zeroFloor(-1) <= 0 {
		t.Fatal("zeroFloor must return positive values for log axes")
	}
	if zeroFloor(0.5) != 0.5 {
		t.Fatal("zeroFloor must pass positive values through")
	}
}
