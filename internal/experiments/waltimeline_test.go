package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/server"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
)

// walTimelineParams are scaled far down so a few hundred events drive
// controllers through real classification transitions.
func walTimelineParams() core.Params { return core.DefaultParams().Scaled(200) }

// synthWALEvents builds a deterministic batch over a handful of branches:
// branch 1 is strongly taken-biased, branch 2 oscillates, branch 3 is
// strongly not-taken-biased.
func synthWALEvents(round, n int) []trace.Event {
	events := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			events = append(events, trace.Event{Branch: 1, Taken: true, Gap: 7})
		case 1:
			events = append(events, trace.Event{Branch: 2, Taken: (round+i)%2 == 0, Gap: 11})
		default:
			events = append(events, trace.Event{Branch: 3, Taken: false, Gap: 5})
		}
	}
	return events
}

// writeTimelineWAL writes rounds batches for each named program into a fresh
// WAL under dir and returns the per-program batches in append order.
func writeTimelineWAL(t *testing.T, dir string, hash uint64, programs []string, rounds, perBatch int) map[string][][]trace.Event {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, ParamsHash: hash, Policy: wal.SyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	batches := make(map[string][][]trace.Event)
	for round := 0; round < rounds; round++ {
		for _, prog := range programs {
			events := synthWALEvents(round, perBatch)
			if _, err := l.Append(prog, events); err != nil {
				t.Fatalf("Append: %v", err)
			}
			batches[prog] = append(batches[prog], events)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return batches
}

// TestTimelineFromWALMatchesTable pins the replay semantics to the serving
// table's: after replaying a program's full log, every branch's final
// timeline state equals the state a live table reaches applying the same
// batches.
func TestTimelineFromWALMatchesTable(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	batches := writeTimelineWAL(t, dir, hash, []string{"gzip", "mcf"}, 6, 60)

	res, trunc, err := TimelineFromWAL(WALWindow{
		Dir: dir, Program: "gzip", Params: params, ParamsHash: hash,
	})
	if err != nil {
		t.Fatalf("TimelineFromWAL: %v", err)
	}
	if trunc != nil {
		t.Fatalf("unexpected truncation: %v", trunc)
	}
	if res.Bench != "wal:gzip" {
		t.Fatalf("Bench = %q, want wal:gzip", res.Bench)
	}

	var wantEvents, wantInstrs uint64
	tbl := server.NewTable(params, 4)
	var instr uint64
	for _, events := range batches["gzip"] {
		_, instr = tbl.ApplyBatch("gzip", events, instr, nil)
		wantEvents += uint64(len(events))
		for _, ev := range events {
			wantInstrs += uint64(ev.Gap)
		}
	}
	if res.Stats.Events != wantEvents || res.Stats.Instrs != wantInstrs {
		t.Fatalf("Stats = %d events / %d instrs, want %d / %d",
			res.Stats.Events, res.Stats.Instrs, wantEvents, wantInstrs)
	}
	if res.Transitions == 0 {
		t.Fatal("no transitions recorded; scaled params should classify these branches")
	}
	if len(res.Branches) == 0 {
		t.Fatal("no branch timelines")
	}
	for _, tl := range res.Branches {
		want := tbl.Decide("gzip", tl.Branch).State
		if tl.Final != want {
			t.Errorf("branch %d: final state %v, want table state %v", tl.Branch, tl.Final, want)
		}
		if tl.Segments[0].State != core.Monitor {
			t.Errorf("branch %d: window opens in %v, want monitor (cold start)", tl.Branch, tl.Segments[0].State)
		}
	}
}

// TestTimelineFromWALDeterministic pins that two replays of the same window
// produce identical results.
func TestTimelineFromWALDeterministic(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	writeTimelineWAL(t, dir, hash, []string{"gcc"}, 4, 48)

	w := WALWindow{Dir: dir, Params: params, ParamsHash: hash}
	a, _, err := TimelineFromWAL(w)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	b, _, err := TimelineFromWAL(w)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two replays of the same window differ")
	}
}

// TestTimelineFromWALWindow pins the [From, To) selection: a bounded window
// replays exactly the records inside it, cold-started.
func TestTimelineFromWALWindow(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	batches := writeTimelineWAL(t, dir, hash, []string{"gcc"}, 5, 30)

	perBatch := uint64(len(batches["gcc"][0]))
	res, _, err := TimelineFromWAL(WALWindow{
		Dir: dir, From: 1, To: 4, Params: params, ParamsHash: hash,
	})
	if err != nil {
		t.Fatalf("TimelineFromWAL: %v", err)
	}
	if want := 3 * perBatch; res.Stats.Events != want {
		t.Fatalf("window [1,4) replayed %d events, want %d", res.Stats.Events, want)
	}
}

// TestTimelineFromWALTornTail pins that a torn final record truncates the
// replay to the valid prefix and reports the truncation.
func TestTimelineFromWALTornTail(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	batches := writeTimelineWAL(t, dir, hash, []string{"gcc"}, 3, 30)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(last, fi.Size()-17); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	res, trunc, err := TimelineFromWAL(WALWindow{Dir: dir, Params: params, ParamsHash: hash})
	if err != nil {
		t.Fatalf("TimelineFromWAL: %v", err)
	}
	if trunc == nil {
		t.Fatal("torn tail not reported")
	}
	if want := 2 * uint64(len(batches["gcc"][0])); res.Stats.Events != want {
		t.Fatalf("replayed %d events past a torn record, want %d", res.Stats.Events, want)
	}
}

// TestTimelineFromWALLiveDir pins the point-in-time contract: the replay
// runs against a directory whose Log is still open and appending, sees
// exactly the records flushed before the pass, and a later pass over the
// same (still-live) directory sees the records appended in between.
func TestTimelineFromWALLiveDir(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, ParamsHash: hash, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer l.Close()

	perBatch := 30
	for round := 0; round < 3; round++ {
		if _, err := l.Append("gcc", synthWALEvents(round, perBatch)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	w := WALWindow{Dir: dir, Params: params, ParamsHash: hash}
	res, trunc, err := TimelineFromWAL(w)
	if err != nil {
		t.Fatalf("replay against a live dir: %v", err)
	}
	if trunc != nil {
		t.Fatalf("unexpected truncation on fsynced records: %v", trunc)
	}
	if want := uint64(3 * perBatch); res.Stats.Events != want {
		t.Fatalf("live replay saw %d events, want %d", res.Stats.Events, want)
	}

	// The log keeps growing; a fresh pass sees the new records, while the
	// completed pass was unaffected by them.
	for round := 3; round < 5; round++ {
		if _, err := l.Append("gcc", synthWALEvents(round, perBatch)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	res2, _, err := TimelineFromWAL(w)
	if err != nil {
		t.Fatalf("second live replay: %v", err)
	}
	if want := uint64(5 * perBatch); res2.Stats.Events != want {
		t.Fatalf("second live replay saw %d events, want %d", res2.Stats.Events, want)
	}
}

// TestTimelineFromWALErrors covers the refusal cases: inverted windows,
// parameter mismatches, ambiguous multi-program windows, and empty
// selections.
func TestTimelineFromWALErrors(t *testing.T) {
	params := walTimelineParams()
	hash := server.ParamsHash(params)
	dir := t.TempDir()
	writeTimelineWAL(t, dir, hash, []string{"gzip", "mcf"}, 2, 12)

	if _, _, err := TimelineFromWAL(WALWindow{Dir: dir, From: 3, To: 3, Params: params, ParamsHash: hash}); err == nil {
		t.Error("empty window accepted")
	}
	if _, _, err := TimelineFromWAL(WALWindow{Dir: dir, Params: params, ParamsHash: hash + 1}); !errors.Is(err, wal.ErrParamsMismatch) {
		t.Errorf("wrong params hash: got %v, want ErrParamsMismatch", err)
	}
	if _, _, err := TimelineFromWAL(WALWindow{Dir: dir, Params: params, ParamsHash: hash}); err == nil ||
		!strings.Contains(err.Error(), "select one") {
		t.Errorf("ambiguous multi-program window: got %v", err)
	}
	if _, _, err := TimelineFromWAL(WALWindow{Dir: dir, Program: "nonesuch", Params: params, ParamsHash: hash}); err == nil ||
		!strings.Contains(err.Error(), "no records for program") {
		t.Errorf("unknown program: got %v", err)
	}
}
