package experiments

import (
	"io"

	"reactivespec/internal/baseline"
	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/memdep"
	"reactivespec/internal/stats"
	"reactivespec/internal/values"
	"reactivespec/internal/workload"
)

// GeneralityRow is one policy's outcome on one non-branch behavior domain,
// checking the paper's Section 2 claim that the branch results are
// "qualitatively consistent with other program behaviors".
type GeneralityRow struct {
	Domain     string // "value-invariance" or "memory-dependence"
	Policy     string // "self-train-99", "reactive", "no-evict"
	CorrectPct float64
	WrongPct   float64
}

// Generality runs the reactive model, its open-loop ablation, and the
// self-training oracle on the load-value-invariance and memory-dependence
// workloads.
func Generality(cfg Config) ([]GeneralityRow, error) {
	cfg = cfg.withDefaults()
	params := cfg.Params()
	var rows []GeneralityRow

	// --- Load-value invariance.
	vs := values.BuildSuite(cfg.Seed, cfg.Scale)
	study := vs.RunStudy(params)
	rows = append(rows,
		GeneralityRow{Domain: "value-invariance", Policy: "self-train-99",
			CorrectPct: study.SelfTrainCorrectPct, WrongPct: study.SelfTrainWrongPct},
		GeneralityRow{Domain: "value-invariance", Policy: "reactive",
			CorrectPct: study.Reactive.CorrectFrac() * 100, WrongPct: study.Reactive.MisspecFrac() * 100},
		GeneralityRow{Domain: "value-invariance", Policy: "no-evict",
			CorrectPct: study.NoEvict.CorrectFrac() * 100, WrongPct: study.NoEvict.MisspecFrac() * 100},
	)

	// --- Memory dependences: a binary behavior, so the branch tool chain
	// applies directly.
	spec := memdep.BuildSuite(cfg.Seed, cfg.Scale)
	gen := workload.NewGenerator(spec)
	prof := bias.FromStream(gen)
	gen.Reset()
	st := harness.Run(gen, baseline.NewStatic(prof.Select(0.99, 1)))
	rows = append(rows, GeneralityRow{Domain: "memory-dependence", Policy: "self-train-99",
		CorrectPct: st.CorrectFrac() * 100, WrongPct: st.MisspecFrac() * 100})
	gen.Reset()
	st = harness.Run(gen, core.New(params))
	rows = append(rows, GeneralityRow{Domain: "memory-dependence", Policy: "reactive",
		CorrectPct: st.CorrectFrac() * 100, WrongPct: st.MisspecFrac() * 100})
	gen.Reset()
	st = harness.Run(gen, core.New(params.WithNoEviction()))
	rows = append(rows, GeneralityRow{Domain: "memory-dependence", Policy: "no-evict",
		CorrectPct: st.CorrectFrac() * 100, WrongPct: st.MisspecFrac() * 100})
	return rows, nil
}

// WriteGenerality renders the generality study.
func WriteGenerality(w io.Writer, rows []GeneralityRow, csv bool) error {
	t := stats.NewTable("domain", "policy", "correct%", "incorrect%")
	for _, r := range rows {
		t.AddRowf("%s", r.Domain, "%s", r.Policy, "%.2f", r.CorrectPct, "%.4f", r.WrongPct)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
