package experiments

import (
	"io"
	"math"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// Table3Row reproduces one row of Table 3 ("Model Transition Data"): how
// often branches transition into and out of the biased state under the
// baseline reactive controller, plus the achieved speculation coverage and
// misspeculation distance. The published values are attached for the
// paper-vs-measured comparison.
type Table3Row struct {
	Bench       string
	Touched     int
	Biased      int
	Evicted     int
	TotalEvicts uint64
	Retired     int
	SpecPct     float64 // correct speculations, % of dynamic branches
	MisspecPct  float64 // misspeculations, % of dynamic branches
	MisspecDist float64 // instructions between misspeculations
	Paper       workload.PaperStats
}

// Table3 runs the baseline reactive controller over every benchmark's
// evaluation input and reports the transition data.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.withDefaults()
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (Table3Row, error) {
		spec, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return Table3Row{}, err
		}
		ctl := core.New(cfg.Params())
		st := harness.Run(workload.NewGenerator(spec), ctl)
		touched, biased, evicted, retired := ctl.StaticCounts()
		paper, err := workload.PaperTable3(name)
		if err != nil {
			return Table3Row{}, err
		}
		return Table3Row{
			Bench:       name,
			Touched:     touched,
			Biased:      biased,
			Evicted:     evicted,
			TotalEvicts: ctl.Stats().Evictions,
			Retired:     retired,
			SpecPct:     st.CorrectFrac() * 100,
			MisspecPct:  st.MisspecFrac() * 100,
			MisspecDist: st.MisspecDistance(),
			Paper:       paper,
		}, nil
	})
}

// WriteTable3 renders Table 3 rows, including the paper's published values
// and a suite average line, to w.
func WriteTable3(w io.Writer, rows []Table3Row, csv bool) error {
	t := stats.NewTable(
		"bench", "touch", "bias%", "evict%", "evicts", "spec%", "dist",
		"paper:bias%", "paper:evict%", "paper:spec%", "paper:dist")
	var avgBias, avgEvict, avgSpec, avgDist stats.Running
	for _, r := range rows {
		biasPct := pct(r.Biased, r.Touched)
		evictPct := pct(r.Evicted, r.Touched)
		avgBias.Add(biasPct)
		avgEvict.Add(evictPct)
		avgSpec.Add(r.SpecPct)
		if !math.IsInf(r.MisspecDist, 1) {
			avgDist.Add(r.MisspecDist)
		}
		t.AddRowf(
			"%s", r.Bench,
			"%d", r.Touched,
			"%.1f", biasPct,
			"%.1f", evictPct,
			"%d", r.TotalEvicts,
			"%.1f", r.SpecPct,
			"%.0f", r.MisspecDist,
			"%.1f", pct(r.Paper.Biased, r.Paper.StaticTouch),
			"%.1f", pct(r.Paper.Evicted, r.Paper.StaticTouch),
			"%.1f", r.Paper.SpecPct,
			"%.0f", r.Paper.MisspecDist,
		)
	}
	t.AddRowf(
		"%s", "ave",
		"%s", "",
		"%.1f", avgBias.Mean(),
		"%.1f", avgEvict.Mean(),
		"%s", "",
		"%.1f", avgSpec.Mean(),
		"%.0f", avgDist.Mean(),
		"%.1f", 34.0,
		"%.1f", 2.0,
		"%.1f", 44.8,
		"%.0f", 65000.0,
	)
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
