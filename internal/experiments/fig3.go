package experiments

import (
	"fmt"
	"io"

	"reactivespec/internal/stats"
	"reactivespec/internal/trace"
	"reactivespec/internal/workload"
)

// Fig3Series is the behavior of one initially-invariant, later-changing
// branch: its bias averaged over blocks of 1,000 dynamic instances
// (Figure 3 plots five such branches from gap).
type Fig3Series struct {
	Bench  string
	Branch trace.BranchID
	Class  workload.BranchClass
	// BlockBias is the per-1,000-execution taken fraction.
	BlockBias []float64
}

// Fig3BlockLen is the paper's averaging block size.
const Fig3BlockLen = 1_000

// Fig3 reproduces Figure 3: five static branches from gap that are highly
// biased for at least their first 20 blocks and then change behavior. The
// block bias is computed directly from the branches' (deterministic)
// behavior models.
func Fig3(cfg Config) ([]Fig3Series, error) {
	return fig3For(cfg, "gap", 5)
}

// fig3For extracts changing-branch series from any benchmark.
func fig3For(cfg Config, bench string, want int) ([]Fig3Series, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.build(bench, workload.InputEval)
	if err != nil {
		return nil, err
	}
	var series []Fig3Series
	seenClass := make(map[workload.BranchClass]int)
	for id, b := range spec.Branches {
		if len(series) >= want {
			break
		}
		if !b.Class.Changed() || b.Class == workload.ClassLateOnset {
			continue
		}
		execs := uint64(b.Weight * float64(spec.Events))
		if execs < 25*Fig3BlockLen {
			continue
		}
		// Prefer a diverse class mix, like the figure's five examples.
		if seenClass[b.Class] >= 2 {
			continue
		}
		seenClass[b.Class]++
		blocks := execs / Fig3BlockLen
		if blocks > 120 {
			blocks = 120
		}
		s := Fig3Series{Bench: bench, Branch: trace.BranchID(id), Class: b.Class}
		// Plot bias toward the branch's initial majority direction, as
		// the paper's figure does, so changes are visible regardless of
		// whether the branch is taken- or not-taken-biased.
		initTaken := 0
		for i := uint64(0); i < Fig3BlockLen; i++ {
			if b.Model.Outcome(i) {
				initTaken++
			}
		}
		initDir := initTaken*2 >= Fig3BlockLen
		for blk := uint64(0); blk < blocks; blk++ {
			match := 0
			for i := uint64(0); i < Fig3BlockLen; i++ {
				if b.Model.Outcome(blk*Fig3BlockLen+i) == initDir {
					match++
				}
			}
			s.BlockBias = append(s.BlockBias, float64(match)/Fig3BlockLen)
		}
		series = append(series, s)
	}
	if len(series) < want {
		return series, fmt.Errorf("experiments: only %d changing branches with enough executions in %s", len(series), bench)
	}
	return series, nil
}

// WriteFig3 renders the series, one row per block in CSV mode and a compact
// sparkline-style row per branch in text mode.
func WriteFig3(w io.Writer, series []Fig3Series, csv bool) error {
	if csv {
		t := stats.NewTable("bench", "branch", "class", "block", "bias")
		for _, s := range series {
			for i, b := range s.BlockBias {
				t.AddRowf("%s", s.Bench, "%d", int(s.Branch), "%s", s.Class.String(), "%d", i, "%.3f", b)
			}
		}
		return t.WriteCSV(w)
	}
	t := stats.NewTable("bench", "branch", "class", "blocks", "bias toward initial direction (block 0 → n, ▁=0%..█=100%)")
	for _, s := range series {
		t.AddRowf("%s", s.Bench, "%d", int(s.Branch), "%s", s.Class.String(),
			"%d", len(s.BlockBias), "%s", sparkline(s.BlockBias))
	}
	return t.WriteText(w)
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkline(vals []float64) string {
	// Compress to at most 60 columns.
	cols := len(vals)
	if cols > 60 {
		cols = 60
	}
	out := make([]rune, cols)
	for c := 0; c < cols; c++ {
		lo := c * len(vals) / cols
		hi := (c + 1) * len(vals) / cols
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += vals[i]
		}
		v := sum / float64(hi-lo)
		idx := int(v * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[c] = sparkRunes[idx]
	}
	return string(out)
}
