package experiments

import (
	"io"

	"reactivespec/internal/mssp"
	"reactivespec/internal/stats"
)

// TaskSweepRow reports the MSSP machine at one task granularity: Section 4.3
// observes that because MSSP speculates at task granularity, several failed
// speculations within one task fold into a single task misspeculation, so
// longer tasks lower the effective misspeculation rate (while raising the
// per-misspeculation cost).
type TaskSweepRow struct {
	Bench      string
	TaskBlocks int
	Speedup    float64
	// Violations are individual failed speculations; TaskMisspecs are the
	// squashes they folded into.
	Violations, TaskMisspecs uint64
}

// FoldRatio returns violations per task misspeculation (≥ 1).
func (r TaskSweepRow) FoldRatio() float64 {
	if r.TaskMisspecs == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.TaskMisspecs)
}

// TaskSweepBlocks are the default task lengths, around the Table 5 machine's
// default of 24 dynamic blocks per task.
var TaskSweepBlocks = []int{6, 12, 24, 48, 96}

// TaskSweep runs the closed-loop MSSP machine at several task granularities.
func TaskSweep(cfg Config) ([]TaskSweepRow, error) {
	cfg = cfg.withDefaults()
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]TaskSweepRow, error) {
		mcfg := mssp.DefaultConfig()
		mcfg.RunInstrs = uint64(float64(MSSPRunInstrs) * cfg.Scale)
		prog, err := msspProgram(name, cfg.Seed, mcfg.RunInstrs)
		if err != nil {
			return nil, err
		}
		base, _ := mssp.Baseline(prog, mcfg.RunInstrs)
		var rows []TaskSweepRow
		for _, tb := range TaskSweepBlocks {
			m := mcfg
			m.TaskBlocks = tb
			m.PrecomputedBaseline = base
			res := mssp.Run(prog, fig7Controller(cfg, 1_000, false, 0), m)
			rows = append(rows, TaskSweepRow{
				Bench:        name,
				TaskBlocks:   tb,
				Speedup:      res.Speedup(),
				Violations:   res.SpecViolations,
				TaskMisspecs: res.TaskMisspecs,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []TaskSweepRow
	for _, rs := range perBench {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// WriteTaskSweep renders the task-granularity sweep.
func WriteTaskSweep(w io.Writer, rows []TaskSweepRow, csv bool) error {
	t := stats.NewTable("bench", "task blocks", "speedup", "violations", "task misspecs", "fold ratio")
	for _, r := range rows {
		t.AddRowf("%s", r.Bench, "%d", r.TaskBlocks, "%.3f", r.Speedup,
			"%d", r.Violations, "%d", r.TaskMisspecs, "%.2f", r.FoldRatio())
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
