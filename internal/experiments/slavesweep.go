package experiments

import (
	"io"

	"reactivespec/internal/mssp"
	"reactivespec/internal/stats"
)

// SlaveSweepRow reports MSSP performance at one trailing-core count. The
// Table 5 machine has eight; the sweep shows where verification bandwidth
// becomes the bottleneck (the master stalls when its run-ahead bound fills
// with unverified tasks).
type SlaveSweepRow struct {
	Bench   string
	Slaves  int
	Speedup float64
}

// SlaveSweepCounts are the default trailing-core counts.
var SlaveSweepCounts = []int{1, 2, 4, 8, 16}

// SlaveSweep runs the closed-loop MSSP machine with varying trailing-core
// counts.
func SlaveSweep(cfg Config) ([]SlaveSweepRow, error) {
	cfg = cfg.withDefaults()
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]SlaveSweepRow, error) {
		mcfg := mssp.DefaultConfig()
		mcfg.RunInstrs = uint64(float64(MSSPRunInstrs) * cfg.Scale)
		prog, err := msspProgram(name, cfg.Seed, mcfg.RunInstrs)
		if err != nil {
			return nil, err
		}
		base, _ := mssp.Baseline(prog, mcfg.RunInstrs)
		var rows []SlaveSweepRow
		for _, n := range SlaveSweepCounts {
			m := mcfg
			m.Slaves = n
			m.MaxUnverified = 2 * n
			m.PrecomputedBaseline = base
			res := mssp.Run(prog, fig7Controller(cfg, 1_000, false, 0), m)
			rows = append(rows, SlaveSweepRow{Bench: name, Slaves: n, Speedup: res.Speedup()})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SlaveSweepRow
	for _, rs := range perBench {
		rows = append(rows, rs...)
	}
	return rows, nil
}

// WriteSlaveSweep renders the trailing-core-count sweep.
func WriteSlaveSweep(w io.Writer, rows []SlaveSweepRow, csv bool) error {
	t := stats.NewTable("bench", "slaves", "speedup")
	for _, r := range rows {
		t.AddRowf("%s", r.Bench, "%d", r.Slaves, "%.3f", r.Speedup)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
