package experiments

import (
	"strings"
	"testing"

	"reactivespec/internal/workload"
)

func TestProfileAveraging(t *testing.T) {
	rows, err := ProfileAveraging(Config{Scale: 0.1, Benchmarks: []string{"gzip"}}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one, four := rows[0], rows[1]
	if one.Profiles != 1 || four.Profiles != 4 {
		t.Fatalf("profile counts %d/%d", one.Profiles, four.Profiles)
	}
	// The paper's claim: averaging reduces the misspeculation rate (the
	// input-dependent branches stop looking biased).
	if four.WrongPct > one.WrongPct {
		t.Fatalf("averaging increased misspec: %v -> %v", one.WrongPct, four.WrongPct)
	}
	var b strings.Builder
	if err := WriteAveraging(&b, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gzip") {
		t.Fatal("rendering incomplete")
	}
}

func TestFlushPolicyBetweenLoops(t *testing.T) {
	rows, err := FlushPolicy(Config{Scale: 0.2, Benchmarks: []string{"gap"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Flushes == 0 {
		t.Fatal("no flushes performed")
	}
	// The paper's Section 5 prediction: flush-policy misspeculation lands
	// between closed-loop and open-loop.
	if r.Flush.WrongPct <= r.Closed.WrongPct {
		t.Fatalf("flush misspec %v not above closed-loop %v", r.Flush.WrongPct, r.Closed.WrongPct)
	}
	if r.Flush.WrongPct >= r.Open.WrongPct {
		t.Fatalf("flush misspec %v not below open-loop %v", r.Flush.WrongPct, r.Open.WrongPct)
	}
	var b strings.Builder
	if err := WriteFlush(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestSweepShapes(t *testing.T) {
	cfg := Config{Scale: 0.1, Benchmarks: []string{"gap"}}
	points, err := Sweep(cfg, SweepOscLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Raising the oscillation limit can only allow more selections.
	for i := 1; i < len(points); i++ {
		if points[i].Selections < points[i-1].Selections {
			t.Fatalf("selections not monotone in oscillation limit: %+v", points)
		}
	}

	points, err = Sweep(cfg, SweepThreshold)
	if err != nil {
		t.Fatal(err)
	}
	// A stricter selection threshold cannot increase coverage.
	first, last := points[0], points[len(points)-1]
	if last.CorrectPct > first.CorrectPct+0.5 {
		t.Fatalf("stricter threshold increased coverage: %v -> %v", first.CorrectPct, last.CorrectPct)
	}

	if _, err := Sweep(cfg, SweepKind("bogus")); err == nil {
		t.Fatal("unknown sweep accepted")
	}
	var b strings.Builder
	if err := WriteSweep(&b, points, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweep(&b, points, true); err != nil {
		t.Fatal(err)
	}
}

func TestSweepKindsAllSupported(t *testing.T) {
	cfg := Config{Scale: 0.05, ParamScale: 50, Benchmarks: []string{"eon"}}
	for _, kind := range []SweepKind{SweepMonitor, SweepEvict, SweepWait, SweepOscLimit, SweepStep, SweepThreshold} {
		points, err := Sweep(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(points) == 0 {
			t.Fatalf("%s: no points", kind)
		}
	}
}

func TestGeneralityQualitative(t *testing.T) {
	rows, err := Generality(Config{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]GeneralityRow{}
	for _, r := range rows {
		byKey[r.Domain+"/"+r.Policy] = r
	}
	for _, domain := range []string{"value-invariance", "memory-dependence"} {
		reactive := byKey[domain+"/reactive"]
		noEvict := byKey[domain+"/no-evict"]
		if reactive.CorrectPct <= 0 {
			t.Fatalf("%s: reactive found no opportunity", domain)
		}
		// The branch-study shape must hold in each domain.
		if noEvict.WrongPct < 10*reactive.WrongPct {
			t.Fatalf("%s: no-evict misspec %v not far above reactive %v",
				domain, noEvict.WrongPct, reactive.WrongPct)
		}
	}
	var b strings.Builder
	if err := WriteGenerality(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestTaskSweepFolding(t *testing.T) {
	rows, err := TaskSweep(Config{Scale: 0.2, Benchmarks: []string{"mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TaskSweepBlocks) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Section 4.3: longer tasks fold more violations into each task
	// misspeculation.
	first, last := rows[0], rows[len(rows)-1]
	if last.FoldRatio() <= first.FoldRatio() {
		t.Fatalf("fold ratio not increasing with task size: %v -> %v",
			first.FoldRatio(), last.FoldRatio())
	}
	for _, r := range rows {
		if r.Violations < r.TaskMisspecs {
			t.Fatalf("violations %d < task misspecs %d", r.Violations, r.TaskMisspecs)
		}
	}
	var b strings.Builder
	if err := WriteTaskSweep(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestSlaveSweepDriver(t *testing.T) {
	rows, err := SlaveSweep(Config{Scale: 0.2, Benchmarks: []string{"bzip2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SlaveSweepCounts) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Fatalf("bad speedup %+v", r)
		}
	}
	var b strings.Builder
	if err := WriteSlaveSweep(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeDriver(t *testing.T) {
	rows, spec, err := Describe(Config{Scale: 0.2}, "gap", workload.InputEval)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "gap" || len(rows) == 0 {
		t.Fatalf("describe returned %d rows for %q", len(rows), spec.Name)
	}
	totalStatic := 0
	totalWeight := 0.0
	for _, r := range rows {
		totalStatic += r.Static
		totalWeight += r.WeightPct
		if r.MinExecs > r.MedianExecs || r.MedianExecs > r.MaxExecs {
			t.Fatalf("exec percentiles out of order: %+v", r)
		}
	}
	if totalStatic != len(spec.Branches) {
		t.Fatalf("class static counts sum to %d, want %d", totalStatic, len(spec.Branches))
	}
	if totalWeight < 99.0 || totalWeight > 101.0 {
		t.Fatalf("class weights sum to %v%%", totalWeight)
	}
	var b strings.Builder
	if err := WriteDescribe(&b, spec, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "biased") {
		t.Fatal("describe rendering incomplete")
	}
}

func TestReplayDriver(t *testing.T) {
	rows, err := Replay(Config{Scale: 0.4, Benchmarks: []string{"mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Frames == 0 {
		t.Fatal("no frames")
	}
	if r.OpenSpeedup >= r.ClosedSpeedup {
		t.Fatalf("open-loop frame speedup %v >= closed %v", r.OpenSpeedup, r.ClosedSpeedup)
	}
	if r.OpenAbortPct <= r.ClosedAbortPct {
		t.Fatalf("open-loop abort rate %v <= closed %v", r.OpenAbortPct, r.ClosedAbortPct)
	}
	var b strings.Builder
	if err := WriteReplay(&b, rows, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "geomean") {
		t.Fatal("rendering incomplete")
	}
}

func TestTLSDriver(t *testing.T) {
	rows, err := TLS(Config{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	serial, closed, open := rows[0], rows[1], rows[2]
	if serial.Speedup != 1.0 {
		t.Fatalf("serial speedup = %v", serial.Speedup)
	}
	if closed.Speedup <= 1.0 {
		t.Fatalf("closed-loop TLS speedup = %v", closed.Speedup)
	}
	if open.Speedup >= closed.Speedup {
		t.Fatalf("open %v >= closed %v", open.Speedup, closed.Speedup)
	}
	if open.Violations <= closed.Violations {
		t.Fatalf("open violations %d <= closed %d", open.Violations, closed.Violations)
	}
	var b strings.Builder
	if err := WriteTLS(&b, rows, false); err != nil {
		t.Fatal(err)
	}
}
