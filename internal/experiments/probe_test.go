package experiments

import (
	"os"
	"testing"
)

func TestProbeTable3(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe only")
	}
	rows, err := Table3(Config{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	WriteTable3(os.Stdout, rows, false)
}

func TestProbeFig5(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe only")
	}
	pts, err := Fig5(Config{Scale: 1, Benchmarks: []string{"gzip", "mcf", "gcc", "crafty"}})
	if err != nil {
		t.Fatal(err)
	}
	WriteTable4(os.Stdout, Table4(pts), false)
	WriteFig5(os.Stdout, pts, false)
}

func TestProbeFig2(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe only")
	}
	series, err := Fig2(Config{Scale: 1, Benchmarks: []string{"gzip", "mcf", "crafty", "parser"}})
	if err != nil {
		t.Fatal(err)
	}
	WriteFig2(os.Stdout, series, false)
}

func TestProbeFig7(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe only")
	}
	rows, err := Fig7(Config{Scale: 1, Benchmarks: []string{"bzip2", "crafty", "gcc", "mcf", "vortex", "eon"}})
	if err != nil {
		t.Fatal(err)
	}
	WriteFig7(os.Stdout, rows, false)
}

func TestProbeFig8(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("probe only")
	}
	rows, err := Fig8(Config{Scale: 1, Benchmarks: []string{"bzip2", "crafty", "mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	WriteFig8(os.Stdout, rows, false)
}
