package experiments

import (
	"io"

	"reactivespec/internal/plot"
)

// SVG renderings of the figures (reactivespec -format svg figN > figN.svg).

// SVGFig2 renders Figure 2 as a grid of per-benchmark charts: the
// self-training Pareto line, its 99% knee, the cross-input triangle, and the
// initial-behavior crosses, misspeculation rate (log) against correct
// speculation rate.
func SVGFig2(w io.Writer, series []Fig2Series) error {
	plots := make([]*plot.Plot, 0, len(series))
	for _, s := range series {
		p := &plot.Plot{
			Title:  s.Bench,
			XLabel: "incorrect (% of dynamic branches, log)",
			YLabel: "correct (%)",
			LogX:   true,
		}
		var lx, ly []float64
		for _, pt := range s.Pareto {
			if pt.WrongF <= 0 {
				continue
			}
			lx = append(lx, pt.WrongF*100)
			ly = append(ly, pt.CorrectF*100)
		}
		p.Series = append(p.Series,
			plot.Series{Name: "self-training", X: lx, Y: ly, Style: plot.Line},
			plot.Series{Name: "knee 99%", X: []float64{zeroFloor(s.Knee99.WrongF * 100)}, Y: []float64{s.Knee99.CorrectF * 100}},
			plot.Series{Name: "train input", X: []float64{zeroFloor(s.TrainInput.WrongPct)}, Y: []float64{s.TrainInput.CorrectPct}},
		)
		var ix, iy []float64
		for _, pt := range s.Initial {
			ix = append(ix, zeroFloor(pt.WrongPct))
			iy = append(iy, pt.CorrectPct)
		}
		p.Series = append(p.Series, plot.Series{Name: "initial behavior", X: ix, Y: iy})
		plots = append(plots, p)
	}
	return plot.Grid(w, plots, 3, 380, 280)
}

// zeroFloor keeps zero rates plottable on a log axis.
func zeroFloor(v float64) float64 {
	if v <= 0 {
		return 1e-5
	}
	return v
}

// SVGFig5 renders Figure 5: one chart per benchmark with each controller
// configuration as a point on the same axes as Figure 2.
func SVGFig5(w io.Writer, points []Fig5Point) error {
	byBench := map[string][]Fig5Point{}
	var order []string
	for _, p := range points {
		if _, ok := byBench[p.Bench]; !ok {
			order = append(order, p.Bench)
		}
		byBench[p.Bench] = append(byBench[p.Bench], p)
	}
	plots := make([]*plot.Plot, 0, len(order))
	for _, bench := range order {
		p := &plot.Plot{
			Title:  bench,
			XLabel: "incorrect (%, log)",
			YLabel: "correct (%)",
			LogX:   true,
		}
		for _, pt := range byBench[bench] {
			p.Series = append(p.Series, plot.Series{
				Name: pt.Config,
				X:    []float64{zeroFloor(pt.WrongPct)},
				Y:    []float64{pt.CorrectPct},
			})
		}
		plots = append(plots, p)
	}
	return plot.Grid(w, plots, 3, 380, 280)
}

// SVGFig3 renders Figure 3: per-branch block-bias traces.
func SVGFig3(w io.Writer, series []Fig3Series) error {
	p := &plot.Plot{
		Title:  "Figure 3: initially-invariant branches (gap)",
		XLabel: "block of 1,000 instances",
		YLabel: "bias toward initial direction",
		YFixed: true, YMin: 0, YMax: 1.05,
	}
	for _, s := range series {
		xs := make([]float64, len(s.BlockBias))
		for i := range xs {
			xs[i] = float64(i)
		}
		p.Series = append(p.Series, plot.Series{
			Name:  s.Class.String(),
			X:     xs,
			Y:     s.BlockBias,
			Style: plot.Line,
		})
	}
	return p.WriteSVG(w, 760, 420)
}

// SVGFig6 renders Figure 6 as the post-eviction misprediction-rate
// histogram.
func SVGFig6(w io.Writer, res Fig6Result) error {
	const buckets = 10
	counts := make([]float64, buckets)
	for _, r := range res.Rates {
		i := int(r * buckets)
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	xs := make([]float64, buckets)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / buckets
	}
	total := float64(len(res.Rates))
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	p := &plot.Plot{
		Title:  "Figure 6: misprediction rate after eviction",
		XLabel: "post-transition misprediction rate",
		YLabel: "fraction of evictions",
		Series: []plot.Series{{Name: "evictions", X: xs, Y: counts, Style: plot.Bars}},
	}
	return p.WriteSVG(w, 560, 360)
}

// SVGFig7 renders Figure 7: per-benchmark normalized MSSP performance under
// the four control configurations.
func SVGFig7(w io.Writer, rows []Fig7Row) error {
	p := &plot.Plot{
		Title:  "Figure 7: closed- vs open-loop control (normalized to superscalar)",
		XLabel: "benchmark index",
		YLabel: "speedup vs baseline",
	}
	n := len(rows)
	mk := func(name string, f func(r Fig7Row) float64, style plot.Style) plot.Series {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i, r := range rows {
			xs[i] = float64(i)
			ys[i] = f(r)
		}
		return plot.Series{Name: name, X: xs, Y: ys, Style: style}
	}
	p.Series = []plot.Series{
		mk("closed 1k (c)", func(r Fig7Row) float64 { return r.ClosedLoop }, plot.Line),
		mk("open 1k (o)", func(r Fig7Row) float64 { return r.OpenLoop }, plot.Line),
		mk("closed 10k (C)", func(r Fig7Row) float64 { return r.ClosedLoopLong }, plot.Line),
		mk("open 10k (O)", func(r Fig7Row) float64 { return r.OpenLoopLong }, plot.Line),
		{Name: "baseline (B)", X: []float64{0, float64(n - 1)}, Y: []float64{1, 1}, Style: plot.Line},
	}
	return p.WriteSVG(w, 760, 420)
}

// SVGFig8 renders Figure 8: normalized performance per optimization latency.
func SVGFig8(w io.Writer, rows []Fig8Row) error {
	p := &plot.Plot{
		Title:  "Figure 8: (re)optimization latency sensitivity",
		XLabel: "benchmark index",
		YLabel: "speedup vs baseline",
	}
	n := len(rows)
	for li, lat := range Fig8Latencies {
		xs := make([]float64, 0, n)
		ys := make([]float64, 0, n)
		for i, r := range rows {
			if li < len(r.Speedups) {
				xs = append(xs, float64(i))
				ys = append(ys, r.Speedups[li])
			}
		}
		p.Series = append(p.Series, plot.Series{Name: "latency " + lat.Label, X: xs, Y: ys, Style: plot.Line})
	}
	return p.WriteSVG(w, 760, 420)
}

// SVGChaos renders the chaos sweep: suite-mean correct and incorrect
// speculation rates against fault intensity, one line per control mechanism.
// The incorrect-rate panel is the robustness headline — the reactive line
// stays near the floor while the decide-once mechanisms climb.
func SVGChaos(w io.Writer, points []ChaosPoint) error {
	rows := ChaosSummary(points)
	correct := &plot.Plot{
		Title:  "chaos: correct speculation vs fault intensity",
		XLabel: "fault intensity",
		YLabel: "correct (% of events, suite mean)",
	}
	wrong := &plot.Plot{
		Title:  "chaos: misspeculation vs fault intensity",
		XLabel: "fault intensity",
		YLabel: "incorrect (% of events, suite mean)",
	}
	for _, mech := range ChaosMechanisms {
		var xs, yc, yw []float64
		for _, r := range rows {
			if r.Mechanism != mech {
				continue
			}
			xs = append(xs, r.Intensity)
			yc = append(yc, r.CorrectPct)
			yw = append(yw, r.WrongPct)
		}
		correct.Series = append(correct.Series, plot.Series{Name: mech, X: xs, Y: yc, Style: plot.Line})
		wrong.Series = append(wrong.Series, plot.Series{Name: mech, X: append([]float64{}, xs...), Y: yw, Style: plot.Line})
	}
	return plot.Grid(w, []*plot.Plot{wrong, correct}, 2, 480, 340)
}
