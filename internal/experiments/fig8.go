package experiments

import (
	"io"

	"reactivespec/internal/mssp"
	"reactivespec/internal/stats"
)

// Fig8Latencies are the optimization-latency sweep points. The paper sweeps
// 0, 10^5 and 10^6 cycles over 200 M-instruction runs; scaled to our 16 M
// runs, the same latency-to-run ratios are 0, 8k and 80k cycles.
var Fig8Latencies = []struct {
	Label  string
	Cycles uint64
}{
	{"0", 0},
	{"1e5 (scaled: 8k)", 8_000},
	{"1e6 (scaled: 80k)", 80_000},
}

// Fig8Row is one benchmark's Figure 8 data: closed-loop MSSP performance,
// normalized to the superscalar baseline, at each (re)optimization latency.
type Fig8Row struct {
	Bench    string
	Speedups []float64 // one per Fig8Latencies entry
}

// Fig8 reproduces Figure 8: MSSP's insensitivity to optimization latency.
// Latency is applied both to the controller's deployment delay and to the
// distiller's re-optimization batching window.
func Fig8(cfg Config) ([]Fig8Row, error) {
	cfg = cfg.withDefaults()
	mcfg := mssp.DefaultConfig()
	mcfg.RunInstrs = uint64(float64(MSSPRunInstrs) * cfg.Scale)
	return runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) (Fig8Row, error) {
		prog, err := msspProgram(name, cfg.Seed, mcfg.RunInstrs)
		if err != nil {
			return Fig8Row{}, err
		}
		row := Fig8Row{Bench: name}
		base, _ := mssp.Baseline(prog, mcfg.RunInstrs)
		for _, lat := range Fig8Latencies {
			m := mcfg
			m.OptLatencyCycles = lat.Cycles
			m.PrecomputedBaseline = base
			// Cycles map 1:1 to instructions at the leading core's
			// near-unit IPC; the controller's latency is expressed
			// in instructions.
			ctl := fig7Controller(cfg, 1_000, false, lat.Cycles)
			res := mssp.Run(prog, ctl, m)
			row.Speedups = append(row.Speedups, res.Speedup())
		}
		return row, nil
	})
}

// WriteFig8 renders Figure 8 with a geometric-mean summary row.
func WriteFig8(w io.Writer, rows []Fig8Row, csv bool) error {
	header := []string{"bench", "B"}
	for _, lat := range Fig8Latencies {
		header = append(header, "lat="+lat.Label)
	}
	t := stats.NewTable(header...)
	gm := make([]float64, len(Fig8Latencies))
	for i := range gm {
		gm[i] = 1
	}
	for _, r := range rows {
		cells := []interface{}{"%s", r.Bench, "%.2f", 1.0}
		for i, s := range r.Speedups {
			cells = append(cells, "%.3f", s)
			gm[i] *= s
		}
		t.AddRowf(cells...)
	}
	if n := float64(len(rows)); n > 0 {
		cells := []interface{}{"%s", "geomean", "%.2f", 1.0}
		for i := range gm {
			cells = append(cells, "%.3f", pow1n(gm[i], n))
		}
		t.AddRowf(cells...)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
