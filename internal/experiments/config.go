// Package experiments implements one driver per table and figure of the
// paper's evaluation, regenerating the same rows and series from the
// synthetic workloads (see DESIGN.md for the per-experiment index).
package experiments

import (
	"context"
	"fmt"

	"reactivespec/internal/core"
	"reactivespec/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// Context, when non-nil, bounds the run: long sweeps observe its
	// cancelation between (and, for streaming drivers, within) benchmarks
	// and return its error. nil means context.Background().
	Context context.Context
	// Scale multiplies the default workload size (1.0 = the calibrated
	// default of 1/250 of the paper's dynamic instruction counts). Use
	// small values (e.g. 0.02) for smoke tests.
	Scale float64
	// ParamScale divides the Table 2 count-based controller parameters;
	// the default 10 matches the default workload scale (EXPERIMENTS.md
	// explains the regime argument). 1 uses the paper's absolute values.
	ParamScale uint64
	// Seed perturbs workload generation. The default 0 is the calibrated
	// seed used by EXPERIMENTS.md.
	Seed uint64
	// Benchmarks limits the run to the named benchmarks (nil = all 12).
	Benchmarks []string
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.ParamScale == 0 {
		c.ParamScale = 10
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = workload.Suite()
	}
	return c
}

// ctx returns the run's context, defaulting to context.Background().
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

func (c Config) workloadOptions() workload.Options {
	return workload.Options{
		EventScale:  workload.DefaultEventScale * c.Scale,
		StaticScale: workload.DefaultStaticScale,
		Seed:        c.Seed,
	}
}

// ExperimentWaitPeriod is the revisit wait period used by the default
// experiment regime. The paper's 1,000,000-execution wait is ~1% of a hot
// branch's lifetime at full scale; our hot branches execute 10⁵–10⁶ times, so
// the regime-matched wait is 20,000 executions (see EXPERIMENTS.md).
const ExperimentWaitPeriod = 20_000

// Params returns the controller parameters the experiments run with: the
// paper's Table 2 values scaled to the experiment regime.
func (c Config) Params() core.Params {
	c = c.withDefaults()
	p := core.DefaultParams().Scaled(c.ParamScale)
	if c.ParamScale == 10 {
		p = p.WithWaitPeriod(ExperimentWaitPeriod)
	}
	return p
}

func (c Config) build(name string, input workload.InputID) (*workload.Spec, error) {
	return workload.Build(name, input, c.workloadOptions())
}

func (c Config) mustBuild(name string, input workload.InputID) *workload.Spec {
	s, err := c.build(name, input)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return s
}
