package experiments

import (
	"io"

	"reactivespec/internal/baseline"
	"reactivespec/internal/bias"
	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// Fig5Point is one mark of Figure 5: the correct/incorrect speculation
// fractions achieved by one controller configuration on one benchmark.
type Fig5Point struct {
	Bench      string
	Config     string
	CorrectPct float64
	WrongPct   float64
}

// Fig5ConfigNames lists the Figure 5 / Table 4 configurations in the paper's
// Table 4 order (ascending correct-speculation rate in the paper).
var Fig5ConfigNames = []string{
	"self-train-99",
	"no-revisit",
	"lower-evict-threshold",
	"evict-by-sampling",
	"baseline",
	"monitor-sampling",
	"frequent-revisit",
	"no-evict",
}

// fig5Params returns the controller parameters for a named configuration
// derived from the experiment baseline (Section 3.3's sensitivity study).
func fig5Params(base core.Params, name string) (core.Params, bool) {
	switch name {
	case "baseline":
		return base, true
	case "no-evict":
		return base.WithNoEviction(), true
	case "no-revisit":
		return base.WithNoRevisit(), true
	case "lower-evict-threshold":
		return base.WithEvictThreshold(base.EvictThreshold / 10), true
	case "evict-by-sampling":
		return base.WithSamplingEviction(), true
	case "frequent-revisit":
		return base.WithWaitPeriod(base.WaitPeriod / 10), true
	case "monitor-sampling":
		return base.WithMonitorSampling(8), true
	default:
		return base, false
	}
}

// Fig5 reproduces Figure 5 and the data behind Table 4: the reactive model
// and its sensitivity variants on every benchmark, plus the self-training
// 99%-threshold reference point.
func Fig5(cfg Config) ([]Fig5Point, error) {
	cfg = cfg.withDefaults()
	base := cfg.Params()
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]Fig5Point, error) {
		spec, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return nil, err
		}
		var points []Fig5Point
		for _, conf := range Fig5ConfigNames {
			var st harness.Stats
			if conf == "self-train-99" {
				gen := workload.NewGenerator(spec)
				prof := bias.FromStream(gen)
				gen.Reset()
				st = harness.Run(gen, baseline.NewStatic(prof.Select(0.99, 1)))
			} else {
				params, ok := fig5Params(base, conf)
				if !ok {
					continue
				}
				st = harness.Run(workload.NewGenerator(spec), core.New(params))
			}
			points = append(points, Fig5Point{
				Bench:      name,
				Config:     conf,
				CorrectPct: st.CorrectFrac() * 100,
				WrongPct:   st.MisspecFrac() * 100,
			})
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}
	var points []Fig5Point
	for _, ps := range perBench {
		points = append(points, ps...)
	}
	return points, nil
}

// Table4Row is one row of Table 4: a configuration's correct and incorrect
// speculation rates averaged across the benchmarks, next to the published
// values.
type Table4Row struct {
	Config     string
	CorrectPct float64
	WrongPct   float64
	Paper      [2]float64 // published correct%, incorrect%
}

// paperTable4 holds the published Table 4 (plus the self-training reference,
// which the paper shows as the Figure 5 line rather than a table row).
var paperTable4 = map[string][2]float64{
	"no-revisit":            {35.8, 0.007},
	"lower-evict-threshold": {42.9, 0.015},
	"evict-by-sampling":     {43.6, 0.021},
	"baseline":              {44.8, 0.023},
	"monitor-sampling":      {44.8, 0.025},
	"frequent-revisit":      {46.1, 0.033},
	"no-evict":              {53.9, 1.979},
}

// Table4 aggregates Figure 5 points into the paper's Table 4.
func Table4(points []Fig5Point) []Table4Row {
	rows := make([]Table4Row, 0, len(Fig5ConfigNames))
	for _, conf := range Fig5ConfigNames {
		var c, w stats.Running
		for _, p := range points {
			if p.Config == conf {
				c.Add(p.CorrectPct)
				w.Add(p.WrongPct)
			}
		}
		if c.N() == 0 {
			continue
		}
		rows = append(rows, Table4Row{
			Config:     conf,
			CorrectPct: c.Mean(),
			WrongPct:   w.Mean(),
			Paper:      paperTable4[conf],
		})
	}
	return rows
}

// WriteFig5 renders the per-benchmark Figure 5 points.
func WriteFig5(w io.Writer, points []Fig5Point, csv bool) error {
	t := stats.NewTable("bench", "config", "correct%", "incorrect%")
	for _, p := range points {
		t.AddRowf("%s", p.Bench, "%s", p.Config, "%.2f", p.CorrectPct, "%.4f", p.WrongPct)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

// WriteTable4 renders Table 4 with the paper's published values alongside.
func WriteTable4(w io.Writer, rows []Table4Row, csv bool) error {
	t := stats.NewTable("config", "correct%", "incorrect%", "paper:correct%", "paper:incorrect%")
	for _, r := range rows {
		paperC, paperW := "-", "-"
		if r.Paper[0] != 0 || r.Paper[1] != 0 {
			paperC = stats.Pct(r.Paper[0]/100, 1)
			paperW = stats.Pct(r.Paper[1]/100, 3)
		}
		t.AddRowf("%s", r.Config, "%.1f", r.CorrectPct, "%.4f", r.WrongPct,
			"%s", paperC, "%s", paperW)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
