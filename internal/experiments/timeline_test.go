package experiments

import (
	"bytes"
	"strings"
	"testing"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/obs"
	"reactivespec/internal/workload"
)

func smokeTimeline(t *testing.T) *TimelineResult {
	t.Helper()
	res, err := Timeline(Config{Scale: 0.02}, "gzip", workload.InputEval)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineNonEmpty(t *testing.T) {
	res := smokeTimeline(t)
	if res.Stats.Events == 0 {
		t.Fatal("timeline run processed no events")
	}
	if res.Transitions == 0 || len(res.Branches) == 0 {
		t.Fatalf("empty timeline: %d transitions, %d branches", res.Transitions, len(res.Branches))
	}
	for _, tl := range res.Branches {
		if len(tl.Segments) == 0 {
			t.Fatalf("branch %d has no segments", tl.Branch)
		}
		last := tl.Segments[len(tl.Segments)-1]
		if last.State != tl.Final {
			t.Fatalf("branch %d final %v but last segment %v", tl.Branch, tl.Final, last.State)
		}
	}
}

// TestTimelineMatchesUntracedRun pins the acceptance criterion: the traced
// run's decisions are bitwise identical to an untraced run of the same
// configuration.
func TestTimelineMatchesUntracedRun(t *testing.T) {
	cfg := Config{Scale: 0.02}.withDefaults()
	res := smokeTimeline(t)

	spec, err := cfg.build("gzip", workload.InputEval)
	if err != nil {
		t.Fatal(err)
	}
	plain := harness.Run(workload.NewGenerator(spec), core.New(cfg.Params()))
	if res.Stats != plain {
		t.Fatalf("traced stats %+v differ from untraced %+v", res.Stats, plain)
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a, b := smokeTimeline(t), smokeTimeline(t)
	var wa, wb bytes.Buffer
	if err := WriteTimeline(&wa, a, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimeline(&wb, b, true); err != nil {
		t.Fatal(err)
	}
	if wa.Len() == 0 || !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("timeline CSV not byte-identical across identical runs")
	}
}

func TestWriteTimelineTable(t *testing.T) {
	res := smokeTimeline(t)
	var w bytes.Buffer
	if err := WriteTimeline(&w, res, false); err != nil {
		t.Fatal(err)
	}
	out := w.String()
	for _, want := range []string{"gzip", "transitions", "trajectory", "monitor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestSVGTimeline(t *testing.T) {
	res := smokeTimeline(t)
	var w bytes.Buffer
	if err := SVGTimeline(&w, res); err != nil {
		t.Fatal(err)
	}
	out := w.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// The Gantt rows are Segments strokes; at least one span must render.
	if !strings.Contains(out, "<line") {
		t.Fatal("SVG timeline has no segment strokes")
	}
	for _, state := range []string{"monitor", "biased"} {
		if !strings.Contains(out, ">"+state+"<") {
			t.Fatalf("SVG legend missing state %q", state)
		}
	}
}

func TestTrajectoryTruncation(t *testing.T) {
	segs := []obs.Segment{
		{State: core.Monitor}, {State: core.Biased}, {State: core.Monitor}, {State: core.Biased},
	}
	if got := trajectory(segs, 8); got != "monitor→biased→monitor→biased" {
		t.Fatalf("trajectory = %q", got)
	}
	if got := trajectory(segs, 2); got != "monitor→biased…(+2)" {
		t.Fatalf("truncated trajectory = %q", got)
	}
}
