package experiments

import (
	"io"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/stats"
	"reactivespec/internal/workload"
)

// PolicyPoint is one mark of the policies head-to-head: one registered
// decision policy's speculation quality on one benchmark, under identical
// parameters and the identical event stream.
type PolicyPoint struct {
	Bench       string
	Policy      string
	CorrectPct  float64
	WrongPct    float64
	MisspecDist float64 // mean dynamic instructions between misspeculations
}

// Policies runs every registered decision policy (reactive, selftrain,
// probweight) over every benchmark through the same harness — the
// three-way comparison the paper makes piecewise: its reactive FSM against
// the self-training one-shot classifier (Section 2.1) and against a
// probability-weighted selector. Each policy sees the exact event sequence
// the others do, so differences are attributable to the policy alone.
func Policies(cfg Config) ([]PolicyPoint, error) {
	cfg = cfg.withDefaults()
	params := cfg.Params()
	perBench, err := runParallel(cfg.ctx(), cfg.Benchmarks, func(name string) ([]PolicyPoint, error) {
		spec, err := cfg.build(name, workload.InputEval)
		if err != nil {
			return nil, err
		}
		var points []PolicyPoint
		for _, pol := range core.PolicyNames() {
			set, err := core.NewPolicySet(pol, params)
			if err != nil {
				return nil, err
			}
			st := harness.Run(workload.NewGenerator(spec), set)
			points = append(points, PolicyPoint{
				Bench:       name,
				Policy:      pol,
				CorrectPct:  st.CorrectFrac() * 100,
				WrongPct:    st.MisspecFrac() * 100,
				MisspecDist: st.MisspecDistance(),
			})
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}
	var points []PolicyPoint
	for _, ps := range perBench {
		points = append(points, ps...)
	}
	return points, nil
}

// PolicySummaryRow is one policy's quality averaged across the benchmarks.
type PolicySummaryRow struct {
	Policy     string
	CorrectPct float64
	WrongPct   float64
}

// PoliciesSummary aggregates the per-benchmark points into one row per
// policy, in registration order.
func PoliciesSummary(points []PolicyPoint) []PolicySummaryRow {
	var rows []PolicySummaryRow
	for _, pol := range core.PolicyNames() {
		var c, w stats.Running
		for _, p := range points {
			if p.Policy == pol {
				c.Add(p.CorrectPct)
				w.Add(p.WrongPct)
			}
		}
		if c.N() == 0 {
			continue
		}
		rows = append(rows, PolicySummaryRow{Policy: pol, CorrectPct: c.Mean(), WrongPct: w.Mean()})
	}
	return rows
}

// WritePolicies renders the per-benchmark policy comparison.
func WritePolicies(w io.Writer, points []PolicyPoint, csv bool) error {
	t := stats.NewTable("bench", "policy", "correct%", "incorrect%", "misspec-dist")
	for _, p := range points {
		t.AddRowf("%s", p.Bench, "%s", p.Policy, "%.2f", p.CorrectPct,
			"%.4f", p.WrongPct, "%.0f", p.MisspecDist)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}

// WritePoliciesSummary renders the cross-benchmark per-policy means.
func WritePoliciesSummary(w io.Writer, rows []PolicySummaryRow, csv bool) error {
	t := stats.NewTable("policy", "correct%", "incorrect%")
	for _, r := range rows {
		t.AddRowf("%s", r.Policy, "%.1f", r.CorrectPct, "%.4f", r.WrongPct)
	}
	if csv {
		return t.WriteCSV(w)
	}
	return t.WriteText(w)
}
