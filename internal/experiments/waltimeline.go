package experiments

import (
	"fmt"
	"io"

	"reactivespec/internal/core"
	"reactivespec/internal/harness"
	"reactivespec/internal/obs"
	"reactivespec/internal/trace"
	"reactivespec/internal/wal"
	"reactivespec/internal/workload"
)

// WALWindow selects a historical slice of a reactived write-ahead log for
// point-in-time replay: the records with sequence numbers in [From, To),
// restricted to one program.
type WALWindow struct {
	// Dir is the WAL segment directory (reactived's -wal-dir).
	Dir string
	// Program restricts the replay to one program's event stream. Empty
	// adopts the first record's program and then insists the window is
	// single-program — mixed windows need an explicit selection.
	Program string
	// From is the first sequence number to replay (0 = oldest retained).
	From uint64
	// To stops the replay before this sequence number (0 = end of log).
	To uint64
	// Params must be the controller parameters the daemon ran with;
	// ParamsHash is their digest, checked against every segment header so
	// a replay under different parameters fails instead of silently
	// diverging.
	Params     core.Params
	ParamsHash uint64
}

// TimelineFromWAL replays a window of a reactived write-ahead log through
// fresh per-branch controllers and reconstructs the same per-branch state
// timeline the live timeline experiment produces — the paper's
// classification views recovered from a production event log instead of a
// synthetic workload.
//
// The replay mirrors the serving table's per-entry semantics exactly (gap
// accounting before the branch observation, per-entry controllers keyed by
// branch), so replaying from the head of the log reproduces the live
// trajectories byte for byte. A window that starts mid-log is a cold start:
// controllers begin in the monitor state and instruction counts are relative
// to the window's first event, so the result reads "how would this traffic
// classify on its own", not "what state was the table in".
//
// The replay is a point-in-time pass over a directory that may belong to a
// live daemon (a primary's — or, more usefully, a replica's — -wal-dir): the
// reader snapshots the segment list once at open, so records appended after
// the pass begins are not included, and a record the daemon is mid-way
// through writing when the pass reaches the tail reads as a clean truncation
// of the final segment, reported like any torn tail. Quiescence is not
// required. The one live-directory hazard is compaction (a snapshot on the
// daemon) deleting an unread segment mid-pass, which fails with an error
// naming the remedy: retry, or replay from a later -wal-from.
//
// The returned truncation is non-nil when the log ends in a torn tail (the
// replay covers the valid prefix); errors include parameter-hash mismatches,
// windows that pre-date compaction, and mid-log corruption.
func TimelineFromWAL(w WALWindow) (*TimelineResult, *wal.TailTruncation, error) {
	if w.To != 0 && w.To <= w.From {
		return nil, nil, fmt.Errorf("wal timeline: empty window [%d, %d)", w.From, w.To)
	}
	r, err := wal.NewReader(wal.ReaderOptions{Dir: w.Dir, ParamsHash: w.ParamsHash, From: w.From})
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()

	sink := obs.NewSink(0)
	ctls := make(map[trace.BranchID]*core.Controller)
	ctlFor := func(b trace.BranchID) *core.Controller {
		ctl := ctls[b]
		if ctl == nil {
			ctl = core.New(w.Params)
			// The table keys one controller per branch and reports
			// every observation as its branch 0; restore the real ID
			// on the way into the shared sink so the timeline is
			// per-branch again.
			ctl.OnTransition = func(tr core.Transition) {
				tr.Branch = b
				sink.Record(tr)
			}
			ctls[b] = ctl
		}
		return ctl
	}

	var (
		st       harness.Stats
		instr    uint64
		program  = w.Program
		detected = program == ""
		records  uint64
	)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("wal timeline: reading record %d: %w", r.NextSeq(), err)
		}
		if w.To != 0 && rec.Seq >= w.To {
			break
		}
		if program == "" {
			program = rec.Program
		}
		if rec.Program != program {
			if detected {
				return nil, nil, fmt.Errorf(
					"wal timeline: window holds both %q and %q; select one with the program option",
					program, rec.Program)
			}
			continue
		}
		records++
		for _, ev := range rec.Events {
			gap := uint64(ev.Gap)
			instr += gap
			ctl := ctlFor(ev.Branch)
			ctl.AddInstrs(gap)
			v := ctl.OnBranch(0, ev.Taken, instr)
			st.Events++
			st.Instrs += gap
			switch v {
			case core.Correct:
				st.Correct++
			case core.Misspec:
				st.Misspec++
			default:
				st.NotSpec++
			}
		}
	}
	if records == 0 {
		if w.Program != "" {
			return nil, nil, fmt.Errorf("wal timeline: no records for program %q in window [%d, %d)",
				w.Program, w.From, w.To)
		}
		return nil, nil, fmt.Errorf("wal timeline: no records in window [%d, %d)", w.From, w.To)
	}
	return &TimelineResult{
		Bench:       "wal:" + program,
		Input:       workload.InputEval,
		Stats:       st,
		Transitions: sink.Total(),
		Dropped:     sink.Dropped(),
		Branches:    obs.BuildTimeline(sink.Records(), instr),
	}, r.Truncation(), nil
}
