// Package workload synthesizes SPEC2000int-like branch-event streams.
//
// The paper's functional experiments run the twelve SPEC2000 integer
// benchmarks (9–45 billion instructions each) under a functional simulator
// and observe every dynamic conditional branch. Those binaries and inputs are
// not available here, so this package substitutes calibrated synthetic
// workloads: for each benchmark it builds a static-branch population whose
// size, bias distribution, execution-frequency distribution, time-varying
// behavior classes, and input dependence are matched to the statistics the
// paper publishes (Tables 1 and 3, Figures 2, 3, 6 and 9). The controllers
// under study observe only (branch, outcome, instruction-gap) events, so any
// stream with the same population statistics exercises the same control-policy
// behavior. See DESIGN.md for the substitution argument.
package workload

import (
	"fmt"
	"math"

	"reactivespec/internal/behavior"
	"reactivespec/internal/trace"
)

// InputID selects which input a workload models, mirroring Table 1's
// profile/evaluation input pairs.
type InputID int

const (
	// InputEval is the evaluation input (Table 1, third column).
	InputEval InputID = iota
	// InputProfile is the differing profiling input (Table 1, second column).
	InputProfile
)

// InputVariant returns the k-th alternative profiling input (k ≥ 1;
// InputVariant(1) == InputProfile). Each variant flips and omits a different
// subset of the input-dependent branches, modeling distinct data sets for the
// profile-averaging study of Section 2.2.
func InputVariant(k int) InputID {
	if k < 1 {
		k = 1
	}
	return InputID(k)
}

// String returns the input's name.
func (in InputID) String() string {
	switch {
	case in == InputEval:
		return "eval"
	case in == InputProfile:
		return "profile"
	case in > InputProfile:
		return fmt.Sprintf("profile-variant-%d", int(in))
	default:
		return fmt.Sprintf("InputID(%d)", int(in))
	}
}

// BranchSpec describes one static conditional branch of a workload.
type BranchSpec struct {
	// Weight is the branch's relative dynamic execution frequency.
	// A zero weight means the branch is never exercised by this input.
	Weight float64
	// Model produces the branch's outcome sequence.
	Model behavior.Model
	// Class labels the behavior class the branch was planted as
	// (for introspection, tests, and figure drivers).
	Class BranchClass
	// Group is the correlated-flip group index (−1 if none); members of a
	// group change their behavior together (Figure 9).
	Group int
}

// BranchClass labels the behavior classes of Section 2.
type BranchClass uint8

const (
	// ClassBiased is a stably highly-biased branch.
	ClassBiased BranchClass = iota
	// ClassUnbiased is a stably unbiased (or weakly biased) branch.
	ClassUnbiased
	// ClassCold is a touched branch with too few executions to classify.
	ClassCold
	// ClassReversal starts biased and completely reverses direction.
	ClassReversal
	// ClassSoftening starts biased and softens toward an unbiased mix.
	ClassSoftening
	// ClassInduction flips as a pure function of an induction variable.
	ClassInduction
	// ClassLateOnset starts unbiased and becomes biased later in the run.
	ClassLateOnset
	// ClassTwoPhase has two long, opposite, highly-biased phases; its
	// whole-run bias is low but a reactive controller can exploit each
	// phase (the gzip/mcf cases where the model beats self-training).
	ClassTwoPhase
	// ClassOscillator flips between biased directions many times.
	ClassOscillator
	// ClassBursty is biased with occasional misspeculation bursts.
	ClassBursty
	// ClassCorrelated belongs to a correlated-flip group (Figure 9).
	ClassCorrelated
)

var classNames = [...]string{
	ClassBiased:     "biased",
	ClassUnbiased:   "unbiased",
	ClassCold:       "cold",
	ClassReversal:   "reversal",
	ClassSoftening:  "softening",
	ClassInduction:  "induction",
	ClassLateOnset:  "late-onset",
	ClassTwoPhase:   "two-phase",
	ClassOscillator: "oscillator",
	ClassBursty:     "bursty",
	ClassCorrelated: "correlated",
}

// String returns the class name.
func (c BranchClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("BranchClass(%d)", uint8(c))
}

// Changed reports whether the class is one whose behavior changes mid-run.
func (c BranchClass) Changed() bool {
	switch c {
	case ClassReversal, ClassSoftening, ClassInduction, ClassLateOnset,
		ClassTwoPhase, ClassOscillator, ClassCorrelated:
		return true
	}
	return false
}

// Spec is a fully-instantiated synthetic workload: a static branch population
// plus the run length, ready to be replayed by a Generator.
type Spec struct {
	// Name is the benchmark name (e.g. "gcc").
	Name string
	// Input is the input this spec models.
	Input InputID
	// Seed drives all the randomness in the generated stream.
	Seed uint64
	// Events is the total number of dynamic branch events in a run.
	Events uint64
	// MeanGap is the mean number of instructions per branch event.
	MeanGap uint32
	// Branches is the static population, indexed by trace.BranchID.
	Branches []BranchSpec
}

// Instructions returns the approximate dynamic instruction count of a run.
func (s *Spec) Instructions() uint64 { return s.Events * uint64(s.MeanGap) }

// rng is a splitmix64 sequence generator.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// aliasTable implements Vose's alias method for O(1) weighted sampling.
type aliasTable struct {
	prob  []float64
	alias []int32
}

func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("workload: invalid weight %v", w))
		}
		total += w
	}
	if total <= 0 {
		panic("workload: all weights are zero")
	}
	scaled := make([]float64, n)
	var small, large []int32
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// pick samples an index given two independent uniform draws.
func (t *aliasTable) pick(u uint64, f float64) int32 {
	i := int32(u % uint64(len(t.prob)))
	if f < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// Generator replays a Spec as a trace.Stream. It is deterministic: two
// generators built from the same Spec produce identical streams. Generator
// implements trace.ResetStream.
type Generator struct {
	spec    *Spec
	table   *aliasTable
	rnd     rng
	execIdx []uint64
	emitted uint64
	gapMod  uint64
}

// NewGenerator returns a generator positioned at the start of the run.
func NewGenerator(spec *Spec) *Generator {
	weights := make([]float64, len(spec.Branches))
	for i, b := range spec.Branches {
		weights[i] = b.Weight
	}
	g := &Generator{
		spec:    spec,
		table:   newAliasTable(weights),
		execIdx: make([]uint64, len(spec.Branches)),
		gapMod:  uint64(2*spec.MeanGap - 1),
	}
	if spec.MeanGap < 1 {
		g.gapMod = 1
	}
	g.Reset()
	return g
}

// Reset implements trace.ResetStream.
func (g *Generator) Reset() {
	g.rnd = rng{state: g.spec.Seed}
	for i := range g.execIdx {
		g.execIdx[i] = 0
	}
	g.emitted = 0
}

// Next implements trace.Stream.
func (g *Generator) Next() (trace.Event, bool) {
	if g.emitted >= g.spec.Events {
		return trace.Event{}, false
	}
	g.emitted++
	u := g.rnd.next()
	f := g.rnd.float64()
	id := g.table.pick(u, f)
	n := g.execIdx[id]
	g.execIdx[id] = n + 1
	taken := g.spec.Branches[id].Model.Outcome(n)
	gap := uint32(1 + g.rnd.intn(g.gapMod))
	return trace.Event{Branch: trace.BranchID(id), Taken: taken, Gap: gap}, true
}

// NextBatch fills buf with up to len(buf) events and returns how many were
// produced; it is exactly equivalent to repeated Next calls but amortizes
// the per-call overhead for batch consumers (the serving-layer load
// generator ships events to reactived in NextBatch-sized frames).
func (g *Generator) NextBatch(buf []trace.Event) int {
	n := 0
	for n < len(buf) {
		ev, ok := g.Next()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n
}

// Emitted returns how many events the generator has produced since the last
// reset.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Executions returns how many times the given branch has executed so far.
func (g *Generator) Executions(id trace.BranchID) uint64 { return g.execIdx[id] }
