package workload_test

import (
	"fmt"

	"reactivespec/internal/workload"
)

// Example builds a tiny gcc-flavored workload and replays a few events.
func Example() {
	spec := workload.MustBuild("gcc", workload.InputEval, workload.Options{
		EventScale:  1.0 / 50_000,
		StaticScale: 1.0 / 50,
	})
	fmt.Printf("%s: %d static branches, %d events\n",
		spec.Name, len(spec.Branches), spec.Events)

	gen := workload.NewGenerator(spec)
	ev, _ := gen.Next()
	fmt.Printf("first event: branch %d taken=%v gap=%d\n", ev.Branch, ev.Taken, ev.Gap)
	// Output:
	// gcc: 160 static branches, 43333 events
	// first event: branch 3 taken=false gap=4
}
