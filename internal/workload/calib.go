package workload

import (
	"fmt"
	"math"
	"sort"

	"reactivespec/internal/behavior"
)

// calibration captures the per-benchmark statistics published in the paper
// (Tables 1 and 3) together with the behavior-mix knobs used to plant the
// Section 2.3 behavior classes. All counts are the paper's full-scale values;
// Options scale them down to a laptop-scale regime.
type calibration struct {
	name        string
	staticTouch int     // Table 3 "touch": static conditional branches touched
	lenBInstr   float64 // Table 1 "Len": run length, billions of instructions
	biased      int     // Table 3 "bias": branches entering the biased state
	evicted     int     // Table 3 "evict": static branches ever evicted
	totalEvicts int     // Table 3 "total evicts"
	specPct     float64 // Table 3 "% spec.": dynamic branches correctly speculated
	misspecDist float64 // Table 3 "misspec dist.": instructions per misspeculation
	meanGap     uint32  // mean instructions per conditional branch

	specBoost     float64 // calibration correction on the biased-tier weight
	twoPhaseShare float64 // dynamic-weight share on two-phase exploitable branches
	lateShare     float64 // share of biased weight on late-onset branches
	inputFlip     float64 // share of biased weight reversing on the profile input
	inputMiss     float64 // share of biased weight unexercised by the profile input
	corrGroups    int     // correlated flip groups (Figure 9)
	corrPerGroup  int     // branches per correlated group
	stubbornLate  bool    // plant a heavy very-late reversal (the mcf case)

	profileInput string // Table 1 profile-input description
	evalInput    string // Table 1 evaluation-input description
}

// calibrations is ordered as the paper's tables are.
var calibrations = []calibration{
	{name: "bzip2", staticTouch: 282, lenBInstr: 19, biased: 109, evicted: 6, totalEvicts: 15, specPct: 44.1, misspecDist: 26400, meanGap: 6,
		specBoost: 1.02, twoPhaseShare: 0.02, lateShare: 0.20, inputFlip: 0.010, inputMiss: 0.40, corrGroups: 0, corrPerGroup: 0,
		profileInput: "input.compressed", evalInput: "input.source 10"},
	{name: "crafty", staticTouch: 1124, lenBInstr: 45, biased: 396, evicted: 138, totalEvicts: 276, specPct: 25.1, misspecDist: 109366, meanGap: 5,
		specBoost: 1.10, twoPhaseShare: 0.01, lateShare: 0.18, inputFlip: 0.060, inputMiss: 0.45, corrGroups: 1, corrPerGroup: 5,
		profileInput: "ponder=on ver 0", evalInput: "ponder=off ver 5 sd=12"},
	{name: "eon", staticTouch: 403, lenBInstr: 9, biased: 95, evicted: 3, totalEvicts: 3, specPct: 38.3, misspecDist: 105552, meanGap: 7,
		specBoost: 1.06, twoPhaseShare: 0, lateShare: 0.14, inputFlip: 0.008, inputMiss: 0.40, corrGroups: 0, corrPerGroup: 0,
		profileInput: "rushmeier input", evalInput: "kajiya input"},
	{name: "gap", staticTouch: 3011, lenBInstr: 10, biased: 1045, evicted: 167, totalEvicts: 201, specPct: 52.5, misspecDist: 36728, meanGap: 6,
		specBoost: 1.18, twoPhaseShare: 0.02, lateShare: 0.16, inputFlip: 0.012, inputMiss: 0.45, corrGroups: 2, corrPerGroup: 5,
		profileInput: "(test input)", evalInput: "(train input)"},
	{name: "gcc", staticTouch: 7943, lenBInstr: 13, biased: 2068, evicted: 11, totalEvicts: 12, specPct: 66.3, misspecDist: 20802, meanGap: 6,
		specBoost: 1.15, twoPhaseShare: 0, lateShare: 0.14, inputFlip: 0.010, inputMiss: 0.50, corrGroups: 0, corrPerGroup: 0,
		profileInput: "-O0 cp-decl.i", evalInput: "-O3 integrate.i"},
	{name: "gzip", staticTouch: 314, lenBInstr: 14, biased: 66, evicted: 7, totalEvicts: 12, specPct: 35.4, misspecDist: 43043, meanGap: 6,
		specBoost: 1.04, twoPhaseShare: 0.05, lateShare: 0.16, inputFlip: 0.010, inputMiss: 0.35, corrGroups: 0, corrPerGroup: 0,
		profileInput: "input.compressed 4", evalInput: "input.source 10"},
	{name: "mcf", staticTouch: 366, lenBInstr: 9, biased: 210, evicted: 22, totalEvicts: 47, specPct: 33.6, misspecDist: 12896, meanGap: 6,
		specBoost: 1.10, twoPhaseShare: 0.05, lateShare: 0.16, inputFlip: 0.010, inputMiss: 0.35, corrGroups: 0, corrPerGroup: 0, stubbornLate: true,
		profileInput: "(test input)", evalInput: "(train input)"},
	{name: "parser", staticTouch: 1552, lenBInstr: 13, biased: 284, evicted: 53, totalEvicts: 124, specPct: 26.3, misspecDist: 50643, meanGap: 5,
		specBoost: 1.15, twoPhaseShare: 0.01, lateShare: 0.16, inputFlip: 0.050, inputMiss: 0.40, corrGroups: 1, corrPerGroup: 4,
		profileInput: "(test input)", evalInput: "(train input)"},
	{name: "perl", staticTouch: 1968, lenBInstr: 35, biased: 1075, evicted: 58, totalEvicts: 64, specPct: 63.4, misspecDist: 55382, meanGap: 6,
		specBoost: 1.02, twoPhaseShare: 0.02, lateShare: 0.14, inputFlip: 0.045, inputMiss: 0.50, corrGroups: 1, corrPerGroup: 5,
		profileInput: "scrabbl.pl", evalInput: "diffmail.pl"},
	{name: "twolf", staticTouch: 1542, lenBInstr: 36, biased: 440, evicted: 19, totalEvicts: 22, specPct: 32.1, misspecDist: 165711, meanGap: 6,
		specBoost: 1.08, twoPhaseShare: 0.01, lateShare: 0.14, inputFlip: 0.008, inputMiss: 0.40, corrGroups: 0, corrPerGroup: 0,
		profileInput: "(train input) fast 3", evalInput: "(ref input) fast 1"},
	{name: "vortex", staticTouch: 3484, lenBInstr: 32, biased: 1671, evicted: 67, totalEvicts: 104, specPct: 88.5, misspecDist: 92163, meanGap: 6,
		specBoost: 1.02, twoPhaseShare: 0.01, lateShare: 0.06, inputFlip: 0.008, inputMiss: 0.40, corrGroups: 6, corrPerGroup: 9,
		profileInput: "(train input)", evalInput: "(reduced ref input)"},
	{name: "vpr", staticTouch: 758, lenBInstr: 21, biased: 340, evicted: 16, totalEvicts: 38, specPct: 31.6, misspecDist: 65588, meanGap: 6,
		specBoost: 1.07, twoPhaseShare: 0.01, lateShare: 0.14, inputFlip: 0.055, inputMiss: 0.40, corrGroups: 0, corrPerGroup: 0,
		profileInput: "-bend_cost 2.0", evalInput: "-bend_cost 1.0"},
}

// Suite returns the benchmark names in paper order.
func Suite() []string {
	names := make([]string, len(calibrations))
	for i, c := range calibrations {
		names[i] = c.name
	}
	return names
}

// InputInfo describes a benchmark's Table 1 row.
type InputInfo struct {
	Name         string
	ProfileInput string
	EvalInput    string
	LenBInstr    float64
}

// Table1 returns the paper's Table 1: the profile/evaluation input pairs.
func Table1() []InputInfo {
	rows := make([]InputInfo, len(calibrations))
	for i, c := range calibrations {
		rows[i] = InputInfo{Name: c.name, ProfileInput: c.profileInput, EvalInput: c.evalInput, LenBInstr: c.lenBInstr}
	}
	return rows
}

// PaperStats exposes a benchmark's published Table 3 statistics, used by the
// experiment drivers to print paper-vs-measured comparisons.
type PaperStats struct {
	StaticTouch, Biased, Evicted, TotalEvicts int
	SpecPct, MisspecDist                      float64
}

// PaperTable3 returns the published Table 3 row for the named benchmark.
func PaperTable3(name string) (PaperStats, error) {
	c, err := findCalibration(name)
	if err != nil {
		return PaperStats{}, err
	}
	return PaperStats{
		StaticTouch: c.staticTouch, Biased: c.biased, Evicted: c.evicted,
		TotalEvicts: c.totalEvicts, SpecPct: c.specPct, MisspecDist: c.misspecDist,
	}, nil
}

// Options scale a workload relative to the paper's full-size runs.
//
// The paper's runs are 9–45 billion instructions with thousands of static
// branches executing up to hundreds of millions of times each. The default
// scale reduces dynamic instruction counts by 250× and static populations by
// 2.5×, which keeps the per-branch execution counts in the same regime
// relative to the (correspondingly scaled) controller parameters. See
// EXPERIMENTS.md for the regime argument.
type Options struct {
	// EventScale multiplies the paper's dynamic instruction counts.
	// Zero means the default (1/250).
	EventScale float64
	// StaticScale multiplies the paper's static branch counts.
	// Zero means the default (1/2.5).
	StaticScale float64
	// Seed perturbs all generated randomness. Zero is a valid seed.
	Seed uint64
}

// DefaultEventScale and DefaultStaticScale are the default workload scales.
const (
	DefaultEventScale  = 1.0 / 250
	DefaultStaticScale = 1.0 / 2.5
)

func (o Options) withDefaults() Options {
	if o.EventScale == 0 {
		o.EventScale = DefaultEventScale
	}
	if o.StaticScale == 0 {
		o.StaticScale = DefaultStaticScale
	}
	return o
}

func findCalibration(name string) (calibration, error) {
	for _, c := range calibrations {
		if c.name == name {
			return c, nil
		}
	}
	return calibration{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Build instantiates the named benchmark for the given input at the given
// scale. Building the same (name, input, options) always yields an identical
// Spec.
func Build(name string, input InputID, opts Options) (*Spec, error) {
	c, err := findCalibration(name)
	if err != nil {
		return nil, err
	}
	return build(c, input, opts.withDefaults()), nil
}

// MustBuild is Build, panicking on unknown benchmark names.
func MustBuild(name string, input InputID, opts Options) *Spec {
	s, err := Build(name, input, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// BuildSuite instantiates every benchmark for the given input.
func BuildSuite(input InputID, opts Options) []*Spec {
	specs := make([]*Spec, len(calibrations))
	for i, c := range calibrations {
		specs[i] = build(c, input, opts.withDefaults())
	}
	return specs
}

// zipfWeights returns n weights proportional to 1/(i+1)^exp, normalized to
// sum to total.
func zipfWeights(n int, exp, total float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	for i := range w {
		w[i] *= total / sum
	}
	return w
}

// flooredZipfWeights gives each of n branches at least floor weight (so no
// biased branch is dominated by its monitor window) and distributes the rest
// of total as a zipf(1.0) head. If the floors alone exceed total they are
// scaled down proportionally.
func flooredZipfWeights(n int, total, floor float64) []float64 {
	if floor*float64(n) > 0.9*total {
		floor = 0.9 * total / float64(n)
	}
	w := zipfWeights(n, 1.0, total-floor*float64(n))
	for i := range w {
		w[i] += floor
	}
	return w
}

func scaleCount(n int, f float64, min int) int {
	v := int(math.Round(float64(n) * f))
	if v < min {
		v = min
	}
	return v
}

// build is the calibrated population constructor. It lays out the static
// branch population in three dynamic-frequency tiers (hot/warm/cold), plants
// the Section 2 behavior classes into chosen slots of the biased tier, and
// appends a small number of explicitly-weighted special branches (two-phase,
// the mcf-style stubborn reversal).
func build(c calibration, input InputID, opts Options) *Spec {
	seed := opts.Seed ^ hashString(c.name)
	rnd := rng{state: seed ^ 0xc0ffee}

	events := uint64(c.lenBInstr * 1e9 / float64(c.meanGap) * opts.EventScale)
	nStatic := scaleCount(c.staticTouch, opts.StaticScale, 24)
	nBiased := scaleCount(c.biased, opts.StaticScale, 8)
	evictBudget := scaleCount(c.evicted, opts.StaticScale, 2)
	totalEvicts := scaleCount(c.totalEvicts, opts.StaticScale, evictBudget)
	if evictBudget > nBiased/2 {
		evictBudget = nBiased / 2
	}
	nCold := int(0.40 * float64(nStatic))
	nWarm := nStatic - nBiased - nCold
	if nWarm < 4 {
		nWarm = 4
		nCold = nStatic - nBiased - nWarm
	}

	// Special explicitly-weighted branches come out of the eviction budget
	// first: they are the hottest changers.
	nTwoPhase := 0
	if c.twoPhaseShare > 0 {
		nTwoPhase = 1
		if c.twoPhaseShare > 0.08 {
			nTwoPhase = 2
		}
	}
	nStubborn := 0
	if c.stubbornLate {
		nStubborn = 1
	}
	nSoftHot := 1 // one hot bias-softening branch per benchmark
	nChangers := evictBudget - nTwoPhase - nStubborn - nSoftHot
	if nChangers < 1 {
		nChangers = 1
	}

	// Dynamic-weight budget. Biased branches carry specWeight of the
	// dynamic events; the correct-speculation coverage lands below that
	// because of monitoring, optimization latency, changer second phases,
	// and the residual misspeculation rate. specBoost is the calibrated
	// per-benchmark correction for those losses.
	specWeight := math.Min(0.97, c.specPct/100*1.08*c.specBoost)
	const softHotShare = 0.09
	specialWeight := c.twoPhaseShare + 0.06*float64(nStubborn) + softHotShare*float64(nSoftHot)
	tierWeight := specWeight - specialWeight
	if tierWeight < 0.05 {
		tierWeight = 0.05
	}
	coldWeight := 0.015
	warmWeight := 1 - tierWeight - specialWeight - coldWeight

	biasedW := flooredZipfWeights(nBiased, tierWeight, 5_000/float64(events))
	warmW := zipfWeights(nWarm, 0.8, warmWeight)

	// Misspeculation-residual target for the stable biased population,
	// derived from the published misspeculation distance after reserving
	// a large share of the budget for eviction costs (counter ramp plus
	// the lame-duck window after each eviction).
	instrs := float64(events) * float64(c.meanGap)
	misspecBudget := instrs / c.misspecDist
	rTarget := misspecBudget * 0.25 / (0.9 * specWeight * float64(events))
	rTarget = clamp(rTarget, 1e-6, 2.0e-3)

	branches := make([]BranchSpec, 0, nStatic+nTwoPhase+nStubborn)
	classOf := make([]BranchClass, nBiased)
	for i := range classOf {
		classOf[i] = ClassBiased
	}
	expExecs := func(i int) float64 { return biasedW[i] * float64(events) }

	// --- Late-onset branches: hottest slots. They sit out a monitor
	// window and a wait period before being discovered, so they need
	// plenty of executions to deliver benefit; they are what the revisit
	// arc (unbiased→monitor) exists for.
	lateBudget := c.lateShare * tierWeight
	nLate := 0
	{
		accum := 0.0
		for i := 0; i < nBiased && accum < lateBudget; i++ {
			if expExecs(i) < 40_000 {
				break
			}
			classOf[i] = ClassLateOnset
			accum += biasedW[i]
			nLate++
		}
	}

	// --- Changers (evicted branches): slots just hot enough to be
	// selected, change, and be evicted, taken from the coolest eligible
	// end so eviction lame-duck windows stay cheap.
	changerSlots := make([]int, 0, nChangers)
	for i := nBiased - 1; i >= nLate && len(changerSlots) < nChangers; i-- {
		if classOf[i] == ClassBiased && expExecs(i) >= 5_000 {
			changerSlots = append(changerSlots, i)
		}
	}
	// Two "showcase" changers take hot slots so every benchmark has
	// branches that are highly biased for tens of thousands of instances
	// before changing — the Figure 3 population.
	if len(changerSlots) >= 4 {
		hot := make([]int, 0, 3)
		for i := nLate; i < nBiased && len(hot) < 3; i++ {
			if classOf[i] == ClassBiased && expExecs(i) >= 30_000 {
				alreadyChanger := false
				for _, s := range changerSlots {
					if s == i {
						alreadyChanger = true
						break
					}
				}
				if !alreadyChanger {
					hot = append(hot, i)
				}
			}
		}
		// Showcase slots take fixed, distinct classes and come out
		// of the changer budget.
		if len(hot) > 0 {
			changerSlots = changerSlots[:len(changerSlots)-len(hot)]
			classOf[hot[0]] = ClassReversal
			if len(hot) > 1 {
				classOf[hot[1]] = ClassInduction
			}
			if len(hot) > 2 {
				classOf[hot[2]] = ClassOscillator
			}
		}
	}
	nChangers = len(changerSlots)

	// Distribute eviction multiplicity: oscillators absorb the surplus
	// beyond one eviction per changer.
	extraEvicts := totalEvicts - nChangers - nTwoPhase - nStubborn
	if extraEvicts < 0 {
		extraEvicts = 0
	}
	nOsc := 0
	if extraEvicts > 0 {
		nOsc = (extraEvicts + 2) / 3 // each oscillator evicts ~3 extra times
		if nOsc > nChangers {
			nOsc = nChangers
		}
	}
	// Correlated hot members come out of the changer budget too.
	nCorrHot := 0
	if c.corrGroups > 0 {
		nCorrHot = c.corrGroups * 2
		if nCorrHot > nChangers-nOsc {
			nCorrHot = max(0, nChangers-nOsc)
		}
	}

	// Correlated group schedules: shared fractional windows per group.
	groupSched := make([][]float64, c.corrGroups) // ascending boundary fractions
	for g := range groupSched {
		nb := 2 + int(rnd.intn(3)) // 2–4 boundaries → 1–2 biased windows
		bs := make([]float64, nb)
		for j := range bs {
			bs[j] = 0.1 + 0.8*rnd.float64()
		}
		sort.Float64s(bs)
		groupSched[g] = bs
	}

	for j, slot := range changerSlots {
		switch {
		case j < nOsc:
			classOf[slot] = ClassOscillator
		case j < nOsc+nCorrHot:
			classOf[slot] = ClassCorrelated
		default:
			// Figure 6: over half of biased->unbiased transitions
			// merely soften; only ~20% fully reverse. Keep the
			// changer mix softening-heavy.
			switch (j - nOsc - nCorrHot) % 10 {
			case 0:
				classOf[slot] = ClassReversal
			case 5:
				classOf[slot] = ClassInduction
			default:
				classOf[slot] = ClassSoftening
			}
		}
	}

	// A small bursty population in the stable-biased mid-tier exercises
	// the eviction hysteresis without (usually) being evicted.
	nBursty := 0
	for i := nBiased - 1; i >= 0 && nBursty < 3; i-- {
		if classOf[i] == ClassBiased && expExecs(i) >= 4_000 {
			classOf[i] = ClassBursty
			nBursty++
		}
	}

	// The input-flip and input-miss subsets (profile-input divergence).
	// Shares are fractions of the stable biased population's weight.
	// Each profile-input variant draws its own subsets from a
	// variant-specific deterministic stream, so averaging profiles across
	// variants (Section 2.2) sees genuinely different input-dependent
	// behavior.
	stableW := 0.0
	for i, cl := range classOf {
		if cl == ClassBiased || cl == ClassBursty {
			stableW += biasedW[i]
		}
	}
	inputSel := input
	if inputSel == InputEval {
		// The eval input's subsets are never applied, but drawing them
		// keeps the main rnd stream identical across inputs.
		inputSel = InputProfile
	}
	inputRnd := rng{state: mixSeed(seed, 0x1417+uint64(inputSel))}
	flipped := pickWeightShare(biasedW, classOf, c.inputFlip*stableW, &inputRnd)
	missed := pickWeightShare(biasedW, classOf, c.inputMiss*stableW, &inputRnd)

	// --- Materialize the biased tier.
	hotCorrIdx := 0
	for i := 0; i < nBiased; i++ {
		e := expExecs(i)
		bseed := mixSeed(seed, uint64(i))
		dir := rnd.next()&1 == 0 // biased direction (taken or not-taken)
		r := clamp(rTarget*math.Exp(2.4*(rnd.float64()-0.5)), 1e-6, 2.5e-3)
		p := biasProb(dir, r)
		var m behavior.Model
		class := classOf[i]
		group := -1
		switch class {
		case ClassBiased:
			m = behavior.Bernoulli{Seed: bseed, PTaken: p}
		case ClassBursty:
			m = behavior.Bursty{Seed: bseed, PTaken: p, PBurst: 0.003, BurstLen: 16, PInBurst: 0.35}
		case ClassLateOnset:
			// The onset is long in absolute terms (it must outlast a
			// monitor window and fool initial-behavior training) but a
			// small fraction of the branch's life, so the whole-run
			// bias still clears a 99% self-training threshold.
			onset := uint64(clamp(0.01*e, 2_500, 10_000))
			m = behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: onset, PTaken: 0.45 + 0.1*rnd.float64()},
				{PTaken: biasProb(dir, r)},
			}}
		case ClassReversal:
			at := uint64((0.25 + 0.5*rnd.float64()) * e)
			m = behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: at, PTaken: biasProb(dir, 2e-4)},
				{PTaken: biasProb(!dir, 2e-4)},
			}}
		case ClassSoftening:
			at := uint64((0.25 + 0.5*rnd.float64()) * e)
			soft := 0.45 + 0.50*math.Sqrt(rnd.float64())
			m = behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: at, PTaken: biasProb(dir, 2e-4)},
				{PTaken: biasProb(dir, 1-soft)},
			}}
		case ClassInduction:
			at := uint64((0.4 + 0.3*rnd.float64()) * e)
			if e > 70_000 {
				at = 32_768 // the paper's loop-induction anecdote
			}
			m = behavior.InductionFlip{FlipAt: at, TakenFirst: dir}
		case ClassOscillator:
			// A repeatedly-evicted branch: long highly-biased phases
			// separated by short noisy windows. Each noisy window
			// ramps the eviction counter; the restored bias then
			// earns re-selection after one monitor window, until the
			// oscillation limit conservatively retires the branch.
			cycles := float64(5 + rnd.intn(3))
			lenA := uint64(e/cycles) - 50
			if lenA < 1_000 {
				lenA = 1_000
			}
			m = behavior.Cyclic{Seed: bseed, LenA: lenA, LenB: 50,
				PA: biasProb(dir, 2e-4), PB: biasProb(dir, 0.5)}
		case ClassCorrelated:
			g := hotCorrIdx % c.corrGroups
			hotCorrIdx++
			group = g
			m = corrModel(bseed, dir, groupSched[g], uint64(e))
		}
		// Profile-input divergence.
		if input != InputEval {
			if missed[i] {
				branches = append(branches, BranchSpec{Weight: 0, Model: m, Class: class, Group: group})
				continue
			}
			if flipped[i] {
				m = behavior.Inverted{M: m}
			}
		}
		branches = append(branches, BranchSpec{Weight: biasedW[i], Model: m, Class: class, Group: group})
	}

	// --- Warm unbiased tier. Correlated cold members (branches that flip
	// in Figure 9's characterization but are too cool to be speculation
	// candidates) occupy the tail slots.
	corrCold := 0
	if c.corrGroups > 0 {
		corrCold = c.corrGroups*c.corrPerGroup - nCorrHot
		if corrCold > nWarm/2 {
			corrCold = nWarm / 2
		}
	}
	for i := 0; i < nWarm; i++ {
		bseed := mixSeed(seed, uint64(nBiased+i))
		if i >= nWarm-corrCold {
			g := (i - (nWarm - corrCold)) % c.corrGroups
			dir := rnd.next()&1 == 0
			// Cool, but with enough executions per characterization
			// window to appear in the Figure 9 tracks.
			w := math.Max(warmW[i], 2_600/float64(events))
			e := w * float64(events)
			branches = append(branches, BranchSpec{
				Weight: w,
				Model:  corrModel(bseed, dir, groupSched[g], uint64(e)),
				Class:  ClassCorrelated,
				Group:  g,
			})
			continue
		}
		p := 0.50 + 0.45*rnd.float64() // bias in [50%, 95%): never selectable
		if rnd.next()&1 == 0 {
			p = 1 - p
		}
		branches = append(branches, BranchSpec{
			Weight: warmW[i],
			Model:  behavior.Bernoulli{Seed: bseed, PTaken: p},
			Class:  ClassUnbiased,
			Group:  -1,
		})
	}

	// --- Cold tier: touched, but too rare to classify.
	for i := 0; i < nCold; i++ {
		bseed := mixSeed(seed, uint64(nBiased+nWarm+i))
		p := rnd.float64()
		branches = append(branches, BranchSpec{
			Weight: coldWeight / float64(nCold),
			Model:  behavior.Bernoulli{Seed: bseed, PTaken: p},
			Class:  ClassCold,
			Group:  -1,
		})
	}

	// --- Special explicitly-weighted branches.
	//
	// Two-phase branches: two long, opposite, highly-biased phases. Their
	// whole-run bias is ~50–60%, so a static self-training selection
	// rejects them, but the reactive controller exploits both phases via
	// the eviction arc — the gzip/mcf cases where the model beats
	// self-training (Section 3.2).
	for t := 0; t < nTwoPhase; t++ {
		bseed := mixSeed(seed, 0x70000+uint64(t))
		w := c.twoPhaseShare / float64(nTwoPhase)
		e := w * float64(events)
		split := uint64((0.40 + 0.2*rnd.float64()) * e)
		dir := rnd.next()&1 == 0
		branches = append(branches, BranchSpec{
			Weight: w,
			Model: behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: split, PTaken: biasProb(dir, 1e-4)},
				{PTaken: biasProb(!dir, 1e-4)},
			}},
			Class: ClassTwoPhase,
			Group: -1,
		})
	}
	// The hot softening branch: highly biased for the first half of the
	// run, then ~85% biased in the same direction. The reactive baseline
	// evicts it at the change and (correctly) never re-selects it; an
	// open-loop (no-eviction) policy keeps speculating, harvesting extra
	// correct speculations at a steady misspeculation cost — the reason
	// the Table 4 no-eviction row has both the highest correct rate and a
	// two-orders-of-magnitude-worse incorrect rate.
	for t := 0; t < nSoftHot; t++ {
		bseed := mixSeed(seed, 0x50f7+uint64(t))
		w := softHotShare
		e := w * float64(events)
		at := uint64((0.45 + 0.1*rnd.float64()) * e)
		dir := rnd.next()&1 == 0
		branches = append(branches, BranchSpec{
			Weight: w,
			Model: behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: at, PTaken: biasProb(dir, 1e-4)},
				{PTaken: biasProb(dir, 0.15)},
			}},
			Class: ClassSoftening,
			Group: -1,
		})
	}

	// The stubborn mcf-style branch: heavily weighted, biased far past any
	// plausible initial-training window, then reversing. It defeats
	// initial-behavior training at every training length (Section 2.2).
	if nStubborn > 0 {
		bseed := mixSeed(seed, 0xabcdef)
		w := 0.06
		e := w * float64(events)
		at := uint64(0.55 * e)
		branches = append(branches, BranchSpec{
			Weight: w,
			Model: behavior.Segments{Seed: bseed, Segs: []behavior.Segment{
				{Len: at, PTaken: 1e-4},
				{PTaken: 1 - 1e-4},
			}},
			Class: ClassReversal,
			Group: -1,
		})
	}

	normalizeWeights(branches)
	return &Spec{
		Name:     c.name,
		Input:    input,
		Seed:     seed ^ uint64(input)*0x9e3779b97f4a7c15,
		Events:   events,
		MeanGap:  c.meanGap,
		Branches: branches,
	}
}

// corrModel builds a correlated-group member: highly biased inside the
// group's shared windows, moderately unbiased outside, with boundaries at the
// group's shared run fractions translated to this branch's execution count.
func corrModel(seed uint64, dir bool, sched []float64, execs uint64) behavior.Model {
	segs := make([]behavior.Segment, 0, len(sched)+1)
	prev := 0.0
	biasedPhase := true
	for _, f := range sched {
		length := uint64((f - prev) * float64(execs))
		p := biasProb(dir, 2e-4)
		if !biasedPhase {
			p = biasProb(dir, 1-0.82)
		}
		segs = append(segs, behavior.Segment{Len: length, PTaken: p})
		biasedPhase = !biasedPhase
		prev = f
	}
	p := biasProb(dir, 2e-4)
	if !biasedPhase {
		p = biasProb(dir, 1-0.82)
	}
	segs = append(segs, behavior.Segment{PTaken: p})
	return behavior.Segments{Seed: seed, Segs: segs}
}

// pickWeightShare marks eligible (stable biased or bursty) slots until their
// cumulative weight reaches share, in a deterministic shuffled order so the
// marked set is neither all-hot nor all-cold.
func pickWeightShare(w []float64, classes []BranchClass, share float64, rnd *rng) []bool {
	marked := make([]bool, len(w))
	if share <= 0 {
		return marked
	}
	order := make([]int, 0, len(w))
	for i := range w {
		if classes[i] == ClassBiased || classes[i] == ClassBursty {
			order = append(order, i)
		}
	}
	for i := len(order) - 1; i > 0; i-- {
		j := int(rnd.intn(uint64(i + 1)))
		order[i], order[j] = order[j], order[i]
	}
	accum := 0.0
	for _, i := range order {
		if accum >= share {
			break
		}
		marked[i] = true
		accum += w[i]
	}
	return marked
}

// biasProb returns the taken probability of a branch biased in direction dir
// with residual misspeculation rate r.
func biasProb(dir bool, r float64) float64 {
	if dir {
		return 1 - r
	}
	return r
}

func normalizeWeights(branches []BranchSpec) {
	sum := 0.0
	for _, b := range branches {
		sum += b.Weight
	}
	if sum <= 0 {
		return
	}
	for i := range branches {
		branches[i].Weight /= sum
	}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

func mixSeed(seed, n uint64) uint64 {
	z := seed ^ (n+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
