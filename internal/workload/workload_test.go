package workload

import (
	"math"
	"testing"
	"testing/quick"

	"reactivespec/internal/behavior"
	"reactivespec/internal/trace"
)

// tinyOpts keeps test workloads small.
var tinyOpts = Options{EventScale: 1.0 / 20_000, StaticScale: 1.0 / 10}

func TestSuiteNamesAndOrder(t *testing.T) {
	names := Suite()
	if len(names) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(names))
	}
	if names[0] != "bzip2" || names[11] != "vpr" {
		t.Fatalf("suite order wrong: %v", names)
	}
}

func TestBuildUnknownBenchmark(t *testing.T) {
	if _, err := Build("nonesuch", InputEval, Options{}); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on unknown benchmark")
		}
	}()
	MustBuild("nonesuch", InputEval, Options{})
}

func TestBuildSuiteCoversAll(t *testing.T) {
	specs := BuildSuite(InputEval, tinyOpts)
	if len(specs) != 12 {
		t.Fatalf("BuildSuite returned %d specs", len(specs))
	}
	for i, s := range specs {
		if s.Name != Suite()[i] {
			t.Fatalf("spec %d name %q", i, s.Name)
		}
	}
}

func TestWeightsNormalized(t *testing.T) {
	for _, name := range Suite() {
		spec := MustBuild(name, InputEval, tinyOpts)
		sum := 0.0
		for _, b := range spec.Branches {
			if b.Weight < 0 {
				t.Fatalf("%s: negative weight", name)
			}
			sum += b.Weight
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: weights sum to %v", name, sum)
		}
	}
}

func TestSpecDeterministic(t *testing.T) {
	a := MustBuild("gcc", InputEval, tinyOpts)
	b := MustBuild("gcc", InputEval, tinyOpts)
	if len(a.Branches) != len(b.Branches) || a.Events != b.Events || a.Seed != b.Seed {
		t.Fatal("identical Build calls produced different specs")
	}
	for i := range a.Branches {
		if a.Branches[i].Weight != b.Branches[i].Weight || a.Branches[i].Class != b.Branches[i].Class {
			t.Fatalf("branch %d differs between identical builds", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := MustBuild("gzip", InputEval, tinyOpts)
	g1 := NewGenerator(spec)
	g2 := NewGenerator(spec)
	for i := 0; i < 10_000; i++ {
		e1, ok1 := g1.Next()
		e2, ok2 := g2.Next()
		if ok1 != ok2 || e1 != e2 {
			t.Fatalf("generators diverge at event %d: %+v vs %+v", i, e1, e2)
		}
		if !ok1 {
			break
		}
	}
}

func TestGeneratorReset(t *testing.T) {
	spec := MustBuild("mcf", InputEval, tinyOpts)
	g := NewGenerator(spec)
	first := trace.Collect(trace.Head(g, 1_000))
	g.Reset()
	second := trace.Collect(trace.Head(g, 1_000))
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset replay diverges at %d", i)
		}
	}
}

func TestGeneratorEventCount(t *testing.T) {
	spec := MustBuild("eon", InputEval, tinyOpts)
	g := NewGenerator(spec)
	n := uint64(len(trace.Collect(g)))
	if n != spec.Events {
		t.Fatalf("generated %d events, spec says %d", n, spec.Events)
	}
	if g.Emitted() != spec.Events {
		t.Fatalf("Emitted = %d", g.Emitted())
	}
}

func TestGeneratorFrequenciesTrackWeights(t *testing.T) {
	spec := MustBuild("bzip2", InputEval, Options{EventScale: 1.0 / 2_000, StaticScale: 1.0 / 10})
	g := NewGenerator(spec)
	counts := make([]uint64, len(spec.Branches))
	total := uint64(0)
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		counts[ev.Branch]++
		total++
	}
	// The hottest branches must track their weights within ~25%.
	for id, b := range spec.Branches {
		if b.Weight < 0.02 {
			continue
		}
		got := float64(counts[id]) / float64(total)
		if got < b.Weight*0.75 || got > b.Weight*1.25 {
			t.Errorf("branch %d frequency %v vs weight %v", id, got, b.Weight)
		}
	}
}

func TestGeneratorGapRange(t *testing.T) {
	spec := MustBuild("gap", InputEval, tinyOpts)
	g := NewGenerator(spec)
	var sum, n uint64
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Gap < 1 || ev.Gap > 2*spec.MeanGap-1 {
			t.Fatalf("gap %d outside [1, %d]", ev.Gap, 2*spec.MeanGap-1)
		}
		sum += uint64(ev.Gap)
		n++
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-float64(spec.MeanGap)) > 0.5 {
		t.Fatalf("mean gap %v, want ≈%d", mean, spec.MeanGap)
	}
}

func TestOutcomesMatchModels(t *testing.T) {
	spec := MustBuild("parser", InputEval, tinyOpts)
	g := NewGenerator(spec)
	execIdx := make([]uint64, len(spec.Branches))
	for i := 0; i < 20_000; i++ {
		ev, ok := g.Next()
		if !ok {
			break
		}
		n := execIdx[ev.Branch]
		execIdx[ev.Branch] = n + 1
		if want := spec.Branches[ev.Branch].Model.Outcome(n); ev.Taken != want {
			t.Fatalf("event %d branch %d outcome %v, model says %v", i, ev.Branch, ev.Taken, want)
		}
	}
}

func TestBehaviorClassesPresent(t *testing.T) {
	// Class presence is a property of the default calibrated scale;
	// building a spec (without generating its stream) is cheap.
	spec := MustBuild("gap", InputEval, Options{})
	have := make(map[BranchClass]int)
	for _, b := range spec.Branches {
		have[b.Class]++
	}
	for _, cl := range []BranchClass{ClassBiased, ClassUnbiased, ClassCold, ClassReversal,
		ClassSoftening, ClassInduction, ClassLateOnset, ClassOscillator, ClassCorrelated} {
		if have[cl] == 0 {
			t.Errorf("gap workload missing class %v", cl)
		}
	}
}

func TestStubbornBranchOnlyInMcf(t *testing.T) {
	for _, name := range []string{"mcf", "gcc"} {
		spec := MustBuild(name, InputEval, tinyOpts)
		// The stubborn branch is the final, heavily-weighted reversal.
		last := spec.Branches[len(spec.Branches)-1]
		isStubborn := last.Class == ClassReversal && last.Weight > 0.04
		if (name == "mcf") != isStubborn {
			t.Errorf("%s: stubborn-branch presence = %v", name, isStubborn)
		}
	}
}

func TestProfileInputDiverges(t *testing.T) {
	eval := MustBuild("crafty", InputEval, tinyOpts)
	prof := MustBuild("crafty", InputProfile, tinyOpts)
	if len(eval.Branches) != len(prof.Branches) {
		t.Fatalf("input variants have different populations: %d vs %d",
			len(eval.Branches), len(prof.Branches))
	}
	zeroed, inverted := 0, 0
	for i := range prof.Branches {
		if prof.Branches[i].Weight == 0 && eval.Branches[i].Weight > 0 {
			zeroed++
		}
		if _, ok := prof.Branches[i].Model.(behavior.Inverted); ok {
			inverted++
		}
	}
	if zeroed == 0 {
		t.Error("profile input exercises every branch; expected unexercised regions")
	}
	if inverted == 0 {
		t.Error("profile input has no reversed-bias branches")
	}
}

func TestEvalInputNotInverted(t *testing.T) {
	eval := MustBuild("crafty", InputEval, tinyOpts)
	for i, b := range eval.Branches {
		if _, ok := b.Model.(behavior.Inverted); ok {
			t.Fatalf("eval input branch %d is inverted", i)
		}
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ProfileInput == "" || r.EvalInput == "" || r.LenBInstr <= 0 {
			t.Fatalf("incomplete Table1 row %+v", r)
		}
	}
	if rows[4].Name != "gcc" || rows[4].LenBInstr != 13 {
		t.Fatalf("gcc row wrong: %+v", rows[4])
	}
}

func TestPaperTable3Published(t *testing.T) {
	ps, err := PaperTable3("vortex")
	if err != nil {
		t.Fatal(err)
	}
	if ps.StaticTouch != 3484 || ps.Biased != 1671 || ps.SpecPct != 88.5 {
		t.Fatalf("vortex paper stats %+v", ps)
	}
	if _, err := PaperTable3("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestInstructionsApproximation(t *testing.T) {
	spec := MustBuild("twolf", InputEval, tinyOpts)
	if spec.Instructions() != spec.Events*uint64(spec.MeanGap) {
		t.Fatal("Instructions should be Events × MeanGap")
	}
}

func TestInputIDString(t *testing.T) {
	if InputEval.String() != "eval" || InputProfile.String() != "profile" {
		t.Fatal("InputID names wrong")
	}
	if InputID(9).String() == "" {
		t.Fatal("unknown InputID should format")
	}
}

func TestBranchClassStrings(t *testing.T) {
	if ClassTwoPhase.String() != "two-phase" || ClassCold.String() != "cold" {
		t.Fatal("class names wrong")
	}
	if BranchClass(200).String() == "" {
		t.Fatal("unknown class should format")
	}
	if ClassBiased.Changed() || !ClassReversal.Changed() || !ClassTwoPhase.Changed() {
		t.Fatal("Changed classification wrong")
	}
}

func TestAliasTableMatchesWeightsProperty(t *testing.T) {
	// Property: the alias table's sampling distribution tracks the input
	// weights for any weight vector.
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		weights := make([]float64, len(raw))
		sum := 0.0
		any := false
		for i, w := range raw {
			weights[i] = float64(w)
			sum += weights[i]
			if w > 0 {
				any = true
			}
		}
		if !any {
			return true // all-zero weights are rejected by construction
		}
		tab := newAliasTable(weights)
		r := rng{state: 99}
		const draws = 200_000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			u := r.next()
			f := r.float64()
			counts[tab.pick(u, f)]++
		}
		for i, w := range weights {
			want := w / sum
			got := float64(counts[i]) / draws
			if math.Abs(got-want) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAliasTableRejectsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	newAliasTable([]float64{0, 0})
}

func TestInputVariantsDiffer(t *testing.T) {
	v1 := MustBuild("crafty", InputVariant(1), tinyOpts)
	v2 := MustBuild("crafty", InputVariant(2), tinyOpts)
	if len(v1.Branches) != len(v2.Branches) {
		t.Fatal("variants changed the population size")
	}
	// Different variants must flip/omit different subsets.
	differ := 0
	for i := range v1.Branches {
		z1 := v1.Branches[i].Weight == 0
		z2 := v2.Branches[i].Weight == 0
		_, inv1 := v1.Branches[i].Model.(behavior.Inverted)
		_, inv2 := v2.Branches[i].Model.(behavior.Inverted)
		if z1 != z2 || inv1 != inv2 {
			differ++
		}
	}
	if differ == 0 {
		t.Fatal("profile variants are identical")
	}
}

func TestInputVariantClamps(t *testing.T) {
	if InputVariant(0) != InputProfile || InputVariant(-3) != InputProfile {
		t.Fatal("InputVariant should clamp to the first profile input")
	}
	if InputVariant(3).String() != "profile-variant-3" {
		t.Fatalf("variant name = %q", InputVariant(3).String())
	}
}

func TestVariantsShareEvalPopulationShape(t *testing.T) {
	// The same branch in every variant keeps its class and (when
	// exercised) its weight — only direction/exercise differ.
	ev := MustBuild("parser", InputEval, tinyOpts)
	v2 := MustBuild("parser", InputVariant(2), tinyOpts)
	for i := range ev.Branches {
		if ev.Branches[i].Class != v2.Branches[i].Class {
			t.Fatalf("branch %d class differs across inputs", i)
		}
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	spec := MustBuild("gzip", InputEval, Options{EventScale: DefaultEventScale * 0.001})
	a := NewGenerator(spec)
	b := NewGenerator(spec)
	buf := make([]trace.Event, 137)
	var total int
	for {
		n := a.NextBatch(buf)
		for i := 0; i < n; i++ {
			want, ok := b.Next()
			if !ok {
				t.Fatalf("batch produced event %d beyond Next's end", total+i)
			}
			if buf[i] != want {
				t.Fatalf("event %d: batch %+v, Next %+v", total+i, buf[i], want)
			}
		}
		total += n
		if n < len(buf) {
			break
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("NextBatch ended before Next")
	}
	if uint64(total) != spec.Events {
		t.Fatalf("batched total %d, want %d", total, spec.Events)
	}
}
