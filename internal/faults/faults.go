// Package faults injects deterministic, seeded faults into branch-event
// streams so the speculation controllers can be evaluated under hostile
// conditions rather than only the clean, well-calibrated streams the
// workload generators produce.
//
// Every injector is a stream transformer: it wraps a trace.Stream and yields
// a perturbed stream. All randomness derives from the injector's seed, so a
// faulted stream is exactly reproducible, and each injector implements
// trace.ResetStream whenever the underlying stream does (replaying the
// identical faulted sequence after Reset). Zero-intensity injectors are the
// identity transform.
//
// The injectors model the failure classes the paper's robustness argument
// is about: outcome corruption (noise in the observed outcomes), event loss
// and duplication (imperfect monitoring), misspeculation storms (a branch's
// bias inverting for a window — the mid-run behavior change of Section 2.3
// turned adversarial), early stream truncation, and branch-ID scrambling
// (dynamic instances from code the profile never saw).
package faults

import (
	"math"

	"reactivespec/internal/trace"
)

// rng is a splitmix64 sequence generator (the same generator the workload
// package uses, duplicated here to keep the fault layer self-contained).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// hash64 mixes x through the splitmix64 finalizer.
func hash64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashFrac maps x to a uniform value in [0, 1) deterministically.
func hashFrac(x uint64) float64 {
	return float64(hash64(x)>>11) / float64(1<<53)
}

// satGap saturates an accumulated gap at the Event.Gap range, never below 1.
func satGap(g uint64) uint32 {
	if g < 1 {
		return 1
	}
	if g > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(g)
}

// resetter is a fault stream's full interface: Stream plus rewind.
type resetter interface {
	trace.Stream
	Reset()
}

// guard returns w itself when inner is resettable — so the fault stream
// implements trace.ResetStream too — and a Stream-only view otherwise
// (hiding Reset, which could not replay a single-use inner stream).
func guard(inner trace.Stream, w resetter) trace.Stream {
	if _, ok := inner.(trace.ResetStream); ok {
		return w
	}
	return streamOnly{w}
}

type streamOnly struct{ s trace.Stream }

func (o streamOnly) Next() (trace.Event, bool) { return o.s.Next() }

// resetInner rewinds the wrapped stream; guard guarantees it is resettable
// whenever a fault stream's Reset is reachable.
func resetInner(s trace.Stream) {
	s.(trace.ResetStream).Reset()
}

// Flip corrupts outcomes: each event's Taken bit is inverted independently
// with probability rate. It models observation noise and predictor-state
// corruption.
func Flip(s trace.Stream, rate float64, seed uint64) trace.Stream {
	f := &flipStream{s: s, rate: rate, seed: seed}
	f.Reset0()
	return guard(s, f)
}

type flipStream struct {
	s    trace.Stream
	rate float64
	seed uint64
	rnd  rng
}

// Reset0 resets only the injector's own state (used at construction, before
// the inner stream has produced anything).
func (f *flipStream) Reset0() { f.rnd = rng{state: f.seed} }

func (f *flipStream) Reset() { f.Reset0(); resetInner(f.s) }

func (f *flipStream) Next() (trace.Event, bool) {
	ev, ok := f.s.Next()
	if !ok {
		return trace.Event{}, false
	}
	if f.rate > 0 && f.rnd.float64() < f.rate {
		ev.Taken = !ev.Taken
	}
	return ev, true
}

// Drop removes events: each event is dropped independently with probability
// rate. Instruction gaps of dropped events are folded into the next surviving
// event — the same carry semantics as trace.Filter — so instruction counts
// are conserved. If the stream ends while gap is still carried (the tail of
// the stream was dropped), the last dropped event is emitted carrying the
// accumulated gap, so the total gap of the stream is conserved exactly
// (up to Gap's uint32 saturation).
func Drop(s trace.Stream, rate float64, seed uint64) trace.Stream {
	d := &dropStream{s: s, rate: rate, seed: seed}
	d.Reset0()
	return guard(s, d)
}

type dropStream struct {
	s    trace.Stream
	rate float64
	seed uint64

	rnd      rng
	carry    uint64
	last     trace.Event
	haveLast bool
	done     bool
}

func (d *dropStream) Reset0() {
	d.rnd = rng{state: d.seed}
	d.carry, d.last, d.haveLast, d.done = 0, trace.Event{}, false, false
}

func (d *dropStream) Reset() { d.Reset0(); resetInner(d.s) }

func (d *dropStream) Next() (trace.Event, bool) {
	if d.done {
		return trace.Event{}, false
	}
	for {
		ev, ok := d.s.Next()
		if !ok {
			d.done = true
			if d.haveLast && d.carry > 0 {
				ev := d.last
				ev.Gap = satGap(d.carry)
				return ev, true
			}
			return trace.Event{}, false
		}
		if d.rate > 0 && d.rnd.float64() < d.rate {
			d.carry += uint64(ev.Gap)
			d.last, d.haveLast = ev, true
			continue
		}
		if d.carry > 0 {
			ev.Gap = satGap(d.carry + uint64(ev.Gap))
			d.carry, d.haveLast = 0, false
		}
		return ev, true
	}
}

// Duplicate repeats events: each event is emitted twice with probability
// rate, its instruction gap split between the two copies so the total gap is
// conserved. Events with Gap 1 are never duplicated (the gap cannot be split
// while keeping both halves at least 1).
func Duplicate(s trace.Stream, rate float64, seed uint64) trace.Stream {
	d := &dupStream{s: s, rate: rate, seed: seed}
	d.Reset0()
	return guard(s, d)
}

type dupStream struct {
	s    trace.Stream
	rate float64
	seed uint64

	rnd     rng
	dup     trace.Event
	pending bool
}

func (d *dupStream) Reset0() {
	d.rnd = rng{state: d.seed}
	d.pending = false
}

func (d *dupStream) Reset() { d.Reset0(); resetInner(d.s) }

func (d *dupStream) Next() (trace.Event, bool) {
	if d.pending {
		d.pending = false
		return d.dup, true
	}
	ev, ok := d.s.Next()
	if !ok {
		return trace.Event{}, false
	}
	if d.rate > 0 && ev.Gap >= 2 && d.rnd.float64() < d.rate {
		half := ev.Gap / 2
		d.dup = ev
		d.dup.Gap = half
		d.pending = true
		ev.Gap -= half
	}
	return ev, true
}

// StormConfig parameterizes misspeculation storms.
type StormConfig struct {
	// Period is the mean number of events between storm onsets (a storm
	// starts at each quiet event with probability 1/Period). 0 disables.
	Period uint64
	// Window is the storm length in events.
	Window uint64
	// VictimFrac is the fraction of static branches whose outcomes are
	// inverted while a storm is active; the victim set is chosen
	// deterministically per storm. 0 disables.
	VictimFrac float64
}

func (c StormConfig) enabled() bool {
	return c.Period > 0 && c.Window > 0 && c.VictimFrac > 0
}

// Storm injects misspeculation storms: windows during which a
// deterministically-chosen subset of branches has its outcome inverted on
// every execution. A stably-biased victim becomes stably anti-biased for the
// window — the worst case for any controller that decided once and never
// reconsiders.
func Storm(s trace.Stream, cfg StormConfig, seed uint64) trace.Stream {
	st := &stormStream{s: s, cfg: cfg, seed: seed}
	st.Reset0()
	return guard(s, st)
}

type stormStream struct {
	s    trace.Stream
	cfg  StormConfig
	seed uint64

	rnd     rng
	stormID uint64 // 1-based id of the current/most recent storm
	left    uint64 // events remaining in the active storm
}

func (st *stormStream) Reset0() {
	st.rnd = rng{state: st.seed}
	st.stormID, st.left = 0, 0
}

func (st *stormStream) Reset() { st.Reset0(); resetInner(st.s) }

func (st *stormStream) Next() (trace.Event, bool) {
	ev, ok := st.s.Next()
	if !ok {
		return trace.Event{}, false
	}
	if !st.cfg.enabled() {
		return ev, true
	}
	if st.left == 0 {
		if st.rnd.float64() < 1/float64(st.cfg.Period) {
			st.stormID++
			st.left = st.cfg.Window
		}
	}
	if st.left > 0 {
		st.left--
		// Victim membership hashes (branch, storm, seed) so each storm
		// hits a different subset, independent of event order.
		key := uint64(ev.Branch)<<32 ^ st.stormID ^ st.seed*0x9e3779b97f4a7c15
		if hashFrac(key) < st.cfg.VictimFrac {
			ev.Taken = !ev.Taken
		}
	}
	return ev, true
}

// Truncate ends the stream after at most n events, modeling a run cut short.
// Unlike trace.Head it preserves resettability.
func Truncate(s trace.Stream, n uint64) trace.Stream {
	t := &truncStream{s: s, n: n, left: n}
	return guard(s, t)
}

type truncStream struct {
	s       trace.Stream
	n, left uint64
}

func (t *truncStream) Reset() {
	t.left = t.n
	resetInner(t.s)
}

func (t *truncStream) Next() (trace.Event, bool) {
	if t.left == 0 {
		return trace.Event{}, false
	}
	t.left--
	return t.s.Next()
}

// Scramble remaps a deterministically-chosen fraction of static branches to
// IDs at or above base, modeling dynamic instances from code the profile
// never saw (unprofiled code). The mapping is stable: a scrambled branch maps
// to the same new ID on every execution, so the stream stays a coherent
// branch trace — just one whose IDs a previous-run profile cannot match.
// base should be at least the workload's static branch count so scrambled
// IDs never collide with profiled ones.
func Scramble(s trace.Stream, rate float64, base trace.BranchID, seed uint64) trace.Stream {
	sc := &scrambleStream{s: s, rate: rate, base: base, seed: seed}
	return guard(s, sc)
}

// scrambleSpread bounds how far above base scrambled IDs land, keeping
// dense per-branch controller tables small.
const scrambleSpread = 1 << 12

type scrambleStream struct {
	s    trace.Stream
	rate float64
	base trace.BranchID
	seed uint64
}

func (sc *scrambleStream) Reset() { resetInner(sc.s) }

func (sc *scrambleStream) Next() (trace.Event, bool) {
	ev, ok := sc.s.Next()
	if !ok {
		return trace.Event{}, false
	}
	if sc.rate > 0 {
		h := hash64(uint64(ev.Branch) ^ sc.seed*0xbf58476d1ce4e5b9)
		if float64(h>>11)/float64(1<<53) < sc.rate {
			ev.Branch = sc.base + trace.BranchID(hash64(h)%scrambleSpread)
		}
	}
	return ev, true
}

// Mix is a composite fault configuration. Apply chains the enabled injectors
// in a fixed order (scramble, storm, flip, drop, duplicate, truncate), each
// drawing from an independent seed derived from Seed, so two Mixes with the
// same fields perturb identically.
type Mix struct {
	// FlipRate is the per-event outcome-corruption probability.
	FlipRate float64
	// DropRate and DupRate are the per-event loss and duplication
	// probabilities.
	DropRate, DupRate float64
	// Storm configures misspeculation storms.
	Storm StormConfig
	// ScrambleRate is the fraction of static branches remapped to
	// unprofiled IDs at or above ScrambleBase.
	ScrambleRate float64
	ScrambleBase trace.BranchID
	// TruncateFrac is the fraction of the run cut from the end; it needs
	// the nominal event count passed to Apply.
	TruncateFrac float64
	// Seed drives all the randomness in the mix.
	Seed uint64
}

// Zero reports whether the mix perturbs nothing (Apply is the identity).
func (m Mix) Zero() bool {
	return m.FlipRate <= 0 && m.DropRate <= 0 && m.DupRate <= 0 &&
		!(m.Storm.enabled()) && m.ScrambleRate <= 0 && m.TruncateFrac <= 0
}

// Apply wraps s with the mix's enabled injectors. totalEvents is the nominal
// length of s, used only for truncation. The result implements
// trace.ResetStream whenever s does.
func (m Mix) Apply(s trace.Stream, totalEvents uint64) trace.Stream {
	if m.ScrambleRate > 0 {
		s = Scramble(s, m.ScrambleRate, m.ScrambleBase, hash64(m.Seed+1))
	}
	if m.Storm.enabled() {
		s = Storm(s, m.Storm, hash64(m.Seed+2))
	}
	if m.FlipRate > 0 {
		s = Flip(s, m.FlipRate, hash64(m.Seed+3))
	}
	if m.DropRate > 0 {
		s = Drop(s, m.DropRate, hash64(m.Seed+4))
	}
	if m.DupRate > 0 {
		s = Duplicate(s, m.DupRate, hash64(m.Seed+5))
	}
	if m.TruncateFrac > 0 {
		keep := uint64(float64(totalEvents) * (1 - m.TruncateFrac))
		s = Truncate(s, keep)
	}
	return s
}

// IntensityMix maps a single intensity knob in [0, 1] to a composite Mix
// exercising all five fault classes at once, every component scaling
// linearly with intensity — the canonical hostile-run configuration shared
// by the chaos experiment (internal/experiments) and the service load
// generator (cmd/reactiveload). totalEvents is the nominal run length (it
// sizes the misspeculation-storm period and window), scrambleBase the first
// branch ID outside the profiled population, and seed drives all the mix's
// randomness.
func IntensityMix(intensity float64, totalEvents uint64, scrambleBase trace.BranchID, seed uint64) Mix {
	maxU64 := func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	return Mix{
		FlipRate: 0.15 * intensity,
		DropRate: 0.10 * intensity,
		DupRate:  0.10 * intensity,
		Storm: StormConfig{
			Period:     maxU64(totalEvents/16, 1_000),
			Window:     maxU64(totalEvents/64, 250),
			VictimFrac: 0.5 * intensity,
		},
		ScrambleRate: 0.25 * intensity,
		ScrambleBase: scrambleBase,
		TruncateFrac: 0.15 * intensity,
		Seed:         seed,
	}
}
