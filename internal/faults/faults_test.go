package faults

import (
	"testing"

	"reactivespec/internal/trace"
)

// mkEvents builds a deterministic pseudo-random event sequence.
func mkEvents(n int, seed uint64) []trace.Event {
	r := rng{state: seed}
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{
			Branch: trace.BranchID(r.next() % 64),
			Taken:  r.next()&1 == 1,
			Gap:    uint32(1 + r.next()%200),
		}
	}
	return events
}

func totalGap(events []trace.Event) uint64 {
	var g uint64
	for _, ev := range events {
		g += uint64(ev.Gap)
	}
	return g
}

func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// injectors enumerates every injector at a representative non-zero and zero
// intensity, keyed by name.
func injectors(zero bool) map[string]func(s trace.Stream) trace.Stream {
	rate := 0.3
	storm := StormConfig{Period: 50, Window: 30, VictimFrac: 0.5}
	scramble := 0.4
	if zero {
		rate, scramble = 0, 0
		storm = StormConfig{}
	}
	return map[string]func(s trace.Stream) trace.Stream{
		"flip":      func(s trace.Stream) trace.Stream { return Flip(s, rate, 7) },
		"drop":      func(s trace.Stream) trace.Stream { return Drop(s, rate, 7) },
		"duplicate": func(s trace.Stream) trace.Stream { return Duplicate(s, rate, 7) },
		"storm":     func(s trace.Stream) trace.Stream { return Storm(s, storm, 7) },
		"scramble":  func(s trace.Stream) trace.Stream { return Scramble(s, scramble, 1000, 7) },
	}
}

func TestZeroIntensityIsIdentity(t *testing.T) {
	events := mkEvents(500, 1)
	for name, inject := range injectors(true) {
		got := trace.Collect(inject(trace.NewSliceStream(events)))
		if !sameEvents(got, events) {
			t.Errorf("%s at zero intensity altered the stream", name)
		}
	}
	// The zero Mix is the identity too, including no truncation.
	m := Mix{Seed: 9}
	if !m.Zero() {
		t.Fatal("zero Mix not reported Zero")
	}
	got := trace.Collect(m.Apply(trace.NewSliceStream(events), uint64(len(events))))
	if !sameEvents(got, events) {
		t.Fatal("zero Mix altered the stream")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	events := mkEvents(2000, 2)
	for name, inject := range injectors(false) {
		a := trace.Collect(inject(trace.NewSliceStream(events)))
		b := trace.Collect(inject(trace.NewSliceStream(events)))
		if !sameEvents(a, b) {
			t.Errorf("%s: two streams with the same seed diverged", name)
		}
	}
	// Different seeds must actually perturb differently (flip is the
	// simplest witness).
	a := trace.Collect(Flip(trace.NewSliceStream(events), 0.3, 1))
	b := trace.Collect(Flip(trace.NewSliceStream(events), 0.3, 2))
	if sameEvents(a, b) {
		t.Error("flip: different seeds produced identical corruption")
	}
}

func TestResetReplayIdentity(t *testing.T) {
	events := mkEvents(1500, 3)
	mix := Mix{
		FlipRate: 0.1, DropRate: 0.2, DupRate: 0.2,
		Storm:        StormConfig{Period: 100, Window: 40, VictimFrac: 0.5},
		ScrambleRate: 0.3, ScrambleBase: 1000,
		TruncateFrac: 0.1,
		Seed:         11,
	}
	s := mix.Apply(trace.NewSliceStream(events), uint64(len(events)))
	rs, ok := s.(trace.ResetStream)
	if !ok {
		t.Fatal("mix over a ResetStream lost resettability")
	}
	first := trace.Collect(rs)
	rs.Reset()
	second := trace.Collect(rs)
	if !sameEvents(first, second) {
		t.Fatal("replay after Reset diverged from first pass")
	}
}

func TestNonResettableInnerHidesReset(t *testing.T) {
	events := mkEvents(100, 4)
	// trace.Head returns a plain single-use Stream.
	single := trace.Head(trace.NewSliceStream(events), 50)
	for name, inject := range injectors(false) {
		if _, ok := inject(single).(trace.ResetStream); ok {
			t.Errorf("%s over a single-use stream claims ResetStream", name)
		}
	}
	if _, ok := Truncate(single, 10).(trace.ResetStream); ok {
		t.Error("truncate over a single-use stream claims ResetStream")
	}
}

func TestDropConservesGap(t *testing.T) {
	events := mkEvents(3000, 5)
	want := totalGap(events)
	for _, rate := range []float64{0.1, 0.5, 0.9, 1.0} {
		out := trace.Collect(Drop(trace.NewSliceStream(events), rate, 13))
		if got := totalGap(out); got != want {
			t.Errorf("drop rate %v: total gap %d, want %d", rate, got, want)
		}
		if len(out) >= len(events) && rate > 0 {
			t.Errorf("drop rate %v removed no events", rate)
		}
	}
}

func TestDuplicateConservesGap(t *testing.T) {
	events := mkEvents(3000, 6)
	want := totalGap(events)
	out := trace.Collect(Duplicate(trace.NewSliceStream(events), 0.5, 13))
	if got := totalGap(out); got != want {
		t.Errorf("duplicate: total gap %d, want %d", got, want)
	}
	if len(out) <= len(events) {
		t.Error("duplicate added no events")
	}
	for i, ev := range out {
		if ev.Gap < 1 {
			t.Fatalf("event %d has gap %d < 1", i, ev.Gap)
		}
	}
}

func TestDropThenDuplicateConservesGap(t *testing.T) {
	events := mkEvents(3000, 7)
	want := totalGap(events)
	s := Duplicate(Drop(trace.NewSliceStream(events), 0.4, 21), 0.4, 22)
	if got := totalGap(trace.Collect(s)); got != want {
		t.Errorf("drop+duplicate: total gap %d, want %d", got, want)
	}
}

func TestFlipChangesOnlyOutcomes(t *testing.T) {
	events := mkEvents(2000, 8)
	out := trace.Collect(Flip(trace.NewSliceStream(events), 0.25, 13))
	if len(out) != len(events) {
		t.Fatalf("flip changed event count: %d != %d", len(out), len(events))
	}
	flipped := 0
	for i := range out {
		if out[i].Branch != events[i].Branch || out[i].Gap != events[i].Gap {
			t.Fatalf("event %d: flip altered branch or gap", i)
		}
		if out[i].Taken != events[i].Taken {
			flipped++
		}
	}
	if f := float64(flipped) / float64(len(events)); f < 0.15 || f > 0.35 {
		t.Errorf("flip rate 0.25 produced %v observed", f)
	}
}

func TestStormInvertsVictimBias(t *testing.T) {
	// One always-taken branch; a full-coverage storm must produce a window
	// of not-taken outcomes, and nothing outside storms may change.
	events := make([]trace.Event, 5000)
	for i := range events {
		events[i] = trace.Event{Branch: 1, Taken: true, Gap: 10}
	}
	out := trace.Collect(Storm(trace.NewSliceStream(events),
		StormConfig{Period: 500, Window: 200, VictimFrac: 1}, 17))
	inverted := 0
	for _, ev := range out {
		if !ev.Taken {
			inverted++
		}
	}
	if inverted < 100 {
		t.Fatalf("only %d outcomes inverted over 5000 events at period 500, window 200", inverted)
	}
	if inverted == len(out) {
		t.Fatal("storm inverted everything: storms never end")
	}
	// Zero victim fraction leaves the stream alone even with storms active.
	out = trace.Collect(Storm(trace.NewSliceStream(events),
		StormConfig{Period: 500, Window: 200, VictimFrac: 0}, 17))
	for i, ev := range out {
		if !ev.Taken {
			t.Fatalf("event %d inverted with VictimFrac 0", i)
		}
	}
}

func TestTruncateLength(t *testing.T) {
	events := mkEvents(100, 9)
	out := trace.Collect(Truncate(trace.NewSliceStream(events), 40))
	if len(out) != 40 {
		t.Fatalf("truncate to 40 yielded %d events", len(out))
	}
	if !sameEvents(out, events[:40]) {
		t.Fatal("truncate altered the surviving prefix")
	}
}

func TestScrambleStableAndPartial(t *testing.T) {
	events := mkEvents(4000, 10)
	const base = trace.BranchID(1000)
	out := trace.Collect(Scramble(trace.NewSliceStream(events), 0.5, base, 23))
	mapping := map[trace.BranchID]trace.BranchID{}
	scrambled := map[trace.BranchID]bool{}
	for i, ev := range out {
		orig := events[i].Branch
		if ev.Taken != events[i].Taken || ev.Gap != events[i].Gap {
			t.Fatalf("event %d: scramble altered outcome or gap", i)
		}
		if prev, ok := mapping[orig]; ok && prev != ev.Branch {
			t.Fatalf("branch %d mapped to both %d and %d", orig, prev, ev.Branch)
		}
		mapping[orig] = ev.Branch
		if ev.Branch != orig {
			if ev.Branch < base {
				t.Fatalf("scrambled id %d below base %d", ev.Branch, base)
			}
			scrambled[orig] = true
		}
	}
	if len(scrambled) == 0 || len(scrambled) == len(mapping) {
		t.Fatalf("scramble rate 0.5 remapped %d of %d branches", len(scrambled), len(mapping))
	}
}

func TestMixAppliesEverything(t *testing.T) {
	events := mkEvents(2000, 12)
	mix := Mix{
		FlipRate: 0.1, DropRate: 0.1, DupRate: 0.1,
		Storm:        StormConfig{Period: 200, Window: 50, VictimFrac: 0.5},
		ScrambleRate: 0.3, ScrambleBase: 1000,
		TruncateFrac: 0.25,
		Seed:         31,
	}
	if mix.Zero() {
		t.Fatal("non-zero mix reported Zero")
	}
	out := trace.Collect(mix.Apply(trace.NewSliceStream(events), uint64(len(events))))
	if len(out) == 0 || len(out) > 1500+200 {
		t.Fatalf("mix output length %d implausible (truncation to 1500 before dup)", len(out))
	}
	if sameEvents(out, events[:len(out)]) {
		t.Fatal("mix did not perturb the stream")
	}
}
