// Package values extends the reactive control model from conditional
// branches to load-value invariance — the second program behavior the paper
// reports its results generalize to (Section 2: "loads that produce invariant
// values"), and the behavior behind Figure 1's x.d == 32 approximation.
//
// A branch has two outcomes, so the core controller tracks a direction; a
// load produces arbitrary values, so the monitor state here tracks the modal
// value of a window and the biased state speculates that the load keeps
// producing it (letting the optimizer constant-fold it, as in Figure 1).
// Everything else — the selection threshold, the eviction hysteresis counter,
// the revisit wait, the oscillation limit, the optimization latency — is the
// paper's Table 2 model, unchanged.
package values

import (
	"math"

	"reactivespec/internal/core"
)

// Model produces a load's value sequence as a pure function of its execution
// index, mirroring behavior.Model for branches.
type Model interface {
	// Value returns the value produced by the n-th execution (0-based).
	Value(n uint64) uint32
}

// Constant always produces V.
type Constant uint32

// Value implements Model.
func (c Constant) Value(uint64) uint32 { return uint32(c) }

// PhaseConstant produces V1 for the first SwitchAt executions and V2 after —
// the value analog of a branch reversal (e.g. a configuration reload).
type PhaseConstant struct {
	V1, V2   uint32
	SwitchAt uint64
}

// Value implements Model.
func (p PhaseConstant) Value(n uint64) uint32 {
	if n < p.SwitchAt {
		return p.V1
	}
	return p.V2
}

// MostlyConstant produces Dominant with probability P and otherwise a value
// drawn from a small noise set — a semi-invariant load.
type MostlyConstant struct {
	Seed     uint64
	Dominant uint32
	P        float64
}

// Value implements Model.
func (m MostlyConstant) Value(n uint64) uint32 {
	z := m.Seed + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if float64(z>>11)/float64(1<<53) < m.P {
		return m.Dominant
	}
	return m.Dominant + 1 + uint32(z%7)
}

// Stride produces Base + n×Step — a never-invariant induction load.
type Stride struct {
	Base, Step uint32
}

// Value implements Model.
func (s Stride) Value(n uint64) uint32 { return s.Base + uint32(n)*s.Step }

// Verdict mirrors core.Verdict for value speculation.
type Verdict = core.Verdict

// maxTracked bounds the monitor state's value table, as a hardware or
// software profiler would.
const maxTracked = 4

// loadState is the per-load classifier state.
type loadState struct {
	state core.State

	// Monitor: a small modal-value table.
	monSeen uint64
	vals    [maxTracked]uint32
	counts  [maxTracked]uint64
	used    int

	// Biased: the speculated constant and the eviction counter.
	specValue uint32
	counter   uint32

	waitLeft uint64
	execs    uint64
	optCount uint32

	evictions  uint32
	everBiased bool

	// Deployment (optimization latency).
	liveValue uint32
	liveUntil uint64
	nextValue uint32
	nextAt    uint64
}

// Controller is the reactive classifier for load-value invariance. Its
// parameters are core.Params; MonitorSampleRate and EvictBySampling are not
// supported in this domain and are ignored.
type Controller struct {
	params core.Params
	loads  []loadState
	stats  core.Stats
}

// New returns a value-speculation controller.
func New(params core.Params) *Controller { return &Controller{params: params} }

// Stats returns aggregate counters (Correct = load instances matching the
// speculated constant while live).
func (c *Controller) Stats() core.Stats { return c.stats }

// AddInstrs accounts dynamic instructions.
func (c *Controller) AddInstrs(n uint64) { c.stats.Instrs += n }

func (c *Controller) loadFor(id int) *loadState {
	if id >= len(c.loads) {
		grown := make([]loadState, id+1+id/2)
		copy(grown, c.loads)
		c.loads = grown
	}
	return &c.loads[id]
}

// OnLoad observes one dynamic load producing value v at global instruction
// count instr and reports the speculation outcome.
func (c *Controller) OnLoad(id int, v uint32, instr uint64) Verdict {
	l := c.loadFor(id)
	l.execs++
	c.stats.Events++

	// Deployment lifecycle.
	if l.liveUntil != 0 && instr >= l.liveUntil {
		l.liveUntil = 0
	}
	if l.nextAt != 0 && instr >= l.nextAt {
		l.liveValue = l.nextValue
		l.liveUntil = math.MaxUint64
		l.nextAt = 0
	}
	verdict := core.NotSpeculated
	if l.liveUntil != 0 {
		if v == l.liveValue {
			verdict = core.Correct
			c.stats.Correct++
		} else {
			verdict = core.Misspec
			c.stats.Misspec++
		}
	} else {
		c.stats.NotSpec++
	}

	switch l.state {
	case core.Monitor:
		c.onMonitor(l, v, instr)
	case core.Biased:
		c.onBiased(l, v, instr)
	case core.Unbiased:
		if l.waitLeft > 0 {
			l.waitLeft--
		}
		if l.waitLeft == 0 && !c.params.NoRevisit {
			l.resetMonitor()
			l.state = core.Monitor
		}
	case core.Retired:
	}
	return verdict
}

func (l *loadState) resetMonitor() {
	l.monSeen = 0
	l.used = 0
	for i := range l.counts {
		l.counts[i] = 0
	}
}

func (c *Controller) onMonitor(l *loadState, v uint32, instr uint64) {
	l.monSeen++
	// Track the value in the modal table.
	found := false
	for i := 0; i < l.used; i++ {
		if l.vals[i] == v {
			l.counts[i]++
			found = true
			break
		}
	}
	if !found && l.used < maxTracked {
		l.vals[l.used] = v
		l.counts[l.used] = 1
		l.used++
	}
	if l.monSeen < c.params.MonitorPeriod {
		return
	}
	// Classify: does the modal value clear the selection threshold?
	best := 0
	for i := 1; i < l.used; i++ {
		if l.counts[i] > l.counts[best] {
			best = i
		}
	}
	if l.used > 0 && float64(l.counts[best]) >= c.params.SelectThreshold*float64(l.monSeen) {
		if l.optCount >= c.params.MaxOptimizations {
			c.stats.Retirals++
			l.state = core.Retired
			return
		}
		l.optCount++
		l.specValue = l.vals[best]
		l.counter = 0
		l.everBiased = true
		c.stats.Selections++
		at := instr + c.params.OptLatency
		if at == 0 {
			at = 1
		}
		l.nextValue = l.specValue
		l.nextAt = at
		l.state = core.Biased
		l.resetMonitor()
		return
	}
	l.state = core.Unbiased
	l.waitLeft = c.params.WaitPeriod
	l.resetMonitor()
}

func (c *Controller) onBiased(l *loadState, v uint32, instr uint64) {
	if c.params.NoEviction {
		return
	}
	if l.liveUntil == 0 || l.liveValue != l.specValue {
		return // not yet deployed
	}
	if v != l.specValue {
		next := l.counter + c.params.MisspecStep
		if next > c.params.EvictThreshold {
			next = c.params.EvictThreshold
		}
		l.counter = next
	} else if l.counter >= c.params.CorrectStep {
		l.counter -= c.params.CorrectStep
	} else {
		l.counter = 0
	}
	if l.counter >= c.params.EvictThreshold {
		l.evictions++
		c.stats.Evictions++
		until := instr + c.params.OptLatency
		if until == 0 {
			until = 1
		}
		if l.liveUntil != 0 && until < l.liveUntil {
			l.liveUntil = until
		}
		l.nextAt = 0
		l.state = core.Monitor
		l.resetMonitor()
	}
}

// LoadState returns the classification state of a load.
func (c *Controller) LoadState(id int) core.State {
	if id >= len(c.loads) {
		return core.Monitor
	}
	return c.loads[id].state
}

// Speculating reports whether constant speculation is live for the load and,
// if so, the speculated value.
func (c *Controller) Speculating(id int) (uint32, bool) {
	if id >= len(c.loads) {
		return 0, false
	}
	l := &c.loads[id]
	return l.liveValue, l.liveUntil != 0
}

// StaticCounts mirrors core.Controller.StaticCounts for loads.
func (c *Controller) StaticCounts() (touched, everBiased, everEvicted, retired int) {
	for i := range c.loads {
		l := &c.loads[i]
		if l.execs == 0 {
			continue
		}
		touched++
		if l.everBiased {
			everBiased++
		}
		if l.evictions > 0 {
			everEvicted++
		}
		if l.state == core.Retired {
			retired++
		}
	}
	return touched, everBiased, everEvicted, retired
}
