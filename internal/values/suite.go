package values

import (
	"reactivespec/internal/core"
)

// LoadSpec describes one static load of a value workload.
type LoadSpec struct {
	Weight float64
	Model  Model
	// Class labels the population slice ("invariant", "semi", "phase",
	// "stride") for reports and tests.
	Class string
}

// Suite is a synthetic load-value workload: the value-behavior analog of a
// workload.Spec. Its population follows the published value-locality
// characterizations (Lipasti et al., the paper's reference [8]): a sizeable
// minority of loads are effectively invariant, some are semi-invariant, some
// switch constants at phase changes, and the rest never repeat.
type Suite struct {
	Name    string
	Seed    uint64
	Events  uint64
	MeanGap uint32
	Loads   []LoadSpec
}

// BuildSuite constructs the default value workload at the given scale
// (1.0 ≈ 4 M dynamic loads).
func BuildSuite(seed uint64, scale float64) *Suite {
	if scale <= 0 {
		scale = 1
	}
	events := uint64(4_000_000 * scale)
	rnd := seed
	next := func() uint64 {
		rnd += 0x9e3779b97f4a7c15
		z := rnd
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	frand := func() float64 { return float64(next()>>11) / float64(1<<53) }

	s := &Suite{Name: "valueloc", Seed: seed, Events: events, MeanGap: 5}
	add := func(n int, weightEach float64, class string, mk func(i int) Model) {
		for i := 0; i < n; i++ {
			s.Loads = append(s.Loads, LoadSpec{Weight: weightEach, Model: mk(i), Class: class})
		}
	}
	// ~30% of dynamic loads fully invariant (constant globals, config
	// fields — the Figure 1 x.d == 32 case).
	add(60, 0.30/60, "invariant", func(i int) Model {
		return MostlyConstant{Seed: next(), Dominant: uint32(100 + i), P: 1 - 2e-4*(0.5+frand())}
	})
	// ~15% semi-invariant (55–95% dominant): profitable for hardware
	// value prediction but not for unchecked software speculation.
	add(50, 0.15/50, "semi", func(i int) Model {
		return MostlyConstant{Seed: next(), Dominant: uint32(500 + i), P: 0.55 + 0.4*frand()}
	})
	// ~10% phase-switching constants (a reload changes the value): the
	// changers that require reactive control.
	add(12, 0.10/12, "phase", func(i int) Model {
		execs := 0.10 / 12 * float64(events)
		return PhaseConstant{
			V1:       uint32(900 + i),
			V2:       uint32(1900 + i),
			SwitchAt: uint64((0.3 + 0.4*frand()) * execs),
		}
	})
	// ~45% never invariant (induction variables, streaming data).
	add(80, 0.45/80, "stride", func(i int) Model {
		return Stride{Base: uint32(next()), Step: uint32(1 + next()%8)}
	})
	return s
}

// StudyResult summarizes one value-speculation run plus the self-training
// reference.
type StudyResult struct {
	// Reactive is the reactive controller's outcome.
	Reactive core.Stats
	// ReactiveStatic are the controller's static counts.
	Touched, Biased, Evicted int
	// SelfTrainCorrectPct / SelfTrainWrongPct evaluate oracle selection
	// (whole-run modal value, 99% threshold).
	SelfTrainCorrectPct, SelfTrainWrongPct float64
	// NoEvict is the open-loop outcome.
	NoEvict core.Stats
}

// RunStudy drives the suite through the reactive controller, the open-loop
// variant, and the self-training oracle.
func (s *Suite) RunStudy(params core.Params) StudyResult {
	var res StudyResult

	run := func(p core.Params) (*Controller, core.Stats) {
		ctl := New(p)
		replay(s, func(id int, v uint32, instr uint64) {
			ctl.AddInstrs(uint64(s.MeanGap))
			ctl.OnLoad(id, v, instr)
		})
		return ctl, ctl.Stats()
	}

	ctl, st := run(params)
	res.Reactive = st
	res.Touched, res.Biased, res.Evicted, _ = ctl.StaticCounts()

	_, res.NoEvict = run(params.WithNoEviction())

	// Self-training oracle: whole-run modal value per load.
	type modal struct {
		counts map[uint32]uint64
		execs  uint64
	}
	modals := make([]modal, len(s.Loads))
	replay(s, func(id int, v uint32, _ uint64) {
		if modals[id].counts == nil {
			modals[id].counts = make(map[uint32]uint64)
		}
		modals[id].counts[v]++
		modals[id].execs++
	})
	specValue := make([]uint32, len(s.Loads))
	speculate := make([]bool, len(s.Loads))
	for id, m := range modals {
		var bestV uint32
		var bestN uint64
		for v, n := range m.counts {
			if n > bestN {
				bestV, bestN = v, n
			}
		}
		if m.execs > 0 && float64(bestN) >= 0.99*float64(m.execs) {
			specValue[id] = bestV
			speculate[id] = true
		}
	}
	var events, correct, wrong uint64
	replay(s, func(id int, v uint32, _ uint64) {
		events++
		if !speculate[id] {
			return
		}
		if v == specValue[id] {
			correct++
		} else {
			wrong++
		}
	})
	res.SelfTrainCorrectPct = 100 * float64(correct) / float64(events)
	res.SelfTrainWrongPct = 100 * float64(wrong) / float64(events)
	return res
}

// replay streams the suite's dynamic loads deterministically.
func replay(s *Suite, f func(id int, v uint32, instr uint64)) {
	weights := make([]float64, len(s.Loads))
	total := 0.0
	for i, l := range s.Loads {
		weights[i] = l.Weight
		total += l.Weight
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc / total
	}
	rnd := s.Seed ^ 0xabcd
	next := func() uint64 {
		rnd += 0x9e3779b97f4a7c15
		z := rnd
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	execIdx := make([]uint64, len(s.Loads))
	var instr uint64
	for e := uint64(0); e < s.Events; e++ {
		x := float64(next()>>11) / float64(1<<53)
		id := searchFloat(cum, x)
		n := execIdx[id]
		execIdx[id] = n + 1
		instr += uint64(s.MeanGap)
		f(id, s.Loads[id].Model.Value(n), instr)
	}
}

func searchFloat(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
