package values_test

import (
	"fmt"

	"reactivespec/internal/core"
	"reactivespec/internal/values"
)

// Example applies the reactive model to a load whose produced value is
// invariant until a configuration reload changes it — the Figure 1
// x.d == 32 constant-substitution scenario.
func Example() {
	params := core.Params{
		MonitorPeriod:    100,
		SelectThreshold:  0.995,
		EvictThreshold:   1_000,
		MisspecStep:      50,
		CorrectStep:      1,
		WaitPeriod:       1_000,
		MaxOptimizations: 5,
	}
	ctl := values.New(params)
	load := values.PhaseConstant{V1: 32, V2: 64, SwitchAt: 3_000}

	var instr uint64
	for n := uint64(0); n < 6_000; n++ {
		instr += 5
		ctl.OnLoad(0, load.Value(n), instr)
	}
	v, live := ctl.Speculating(0)
	st := ctl.Stats()
	fmt.Printf("speculating constant %d (live=%v) after %d selections, %d eviction\n",
		v, live, st.Selections, st.Evictions)
	fmt.Printf("correct %.1f%%, incorrect %.2f%%\n",
		100*st.CorrectFrac(), 100*st.MisspecFrac())
	// Output:
	// speculating constant 64 (live=true) after 2 selections, 1 eviction
	// correct 96.3%, incorrect 0.33%
}
