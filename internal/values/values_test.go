package values

import (
	"testing"

	"reactivespec/internal/core"
)

func testParams() core.Params {
	return core.Params{
		MonitorPeriod:    10,
		SelectThreshold:  0.9,
		EvictThreshold:   100,
		MisspecStep:      50,
		CorrectStep:      1,
		WaitPeriod:       20,
		MaxOptimizations: 3,
	}
}

type vfeeder struct {
	ctl   *Controller
	instr uint64
}

func (f *vfeeder) load(id int, v uint32) Verdict {
	f.instr += 5
	f.ctl.AddInstrs(5)
	return f.ctl.OnLoad(id, v, f.instr)
}

func (f *vfeeder) repeat(id int, v uint32, n int) (correct, misspec int) {
	for i := 0; i < n; i++ {
		switch f.load(id, v) {
		case core.Correct:
			correct++
		case core.Misspec:
			misspec++
		}
	}
	return correct, misspec
}

func TestModels(t *testing.T) {
	if Constant(7).Value(0) != 7 || Constant(7).Value(1e6) != 7 {
		t.Fatal("Constant not constant")
	}
	p := PhaseConstant{V1: 1, V2: 2, SwitchAt: 10}
	if p.Value(9) != 1 || p.Value(10) != 2 {
		t.Fatal("PhaseConstant switch point wrong")
	}
	s := Stride{Base: 100, Step: 3}
	if s.Value(0) != 100 || s.Value(5) != 115 {
		t.Fatal("Stride arithmetic wrong")
	}
	m := MostlyConstant{Seed: 1, Dominant: 9, P: 0.9}
	dom := 0
	for n := uint64(0); n < 10_000; n++ {
		if m.Value(n) == 9 {
			dom++
		}
	}
	if dom < 8_800 || dom > 9_200 {
		t.Fatalf("MostlyConstant dominance = %d/10000", dom)
	}
}

func TestInvariantLoadSelected(t *testing.T) {
	f := &vfeeder{ctl: New(testParams())}
	f.repeat(0, 42, 10) // monitor window
	if got := f.ctl.LoadState(0); got != core.Biased {
		t.Fatalf("state = %v, want biased", got)
	}
	// Deployment becomes live at the next instance (even with zero
	// latency the harness sees it one event later).
	correct, _ := f.repeat(0, 42, 100)
	if correct != 100 {
		t.Fatalf("correct = %d", correct)
	}
	if v, live := f.ctl.Speculating(0); !live || v != 42 {
		t.Fatalf("Speculating = (%d, %v)", v, live)
	}
}

func TestVaryingLoadRejected(t *testing.T) {
	f := &vfeeder{ctl: New(testParams())}
	for i := 0; i < 10; i++ {
		f.load(0, uint32(i)) // a stride: never modal
	}
	if got := f.ctl.LoadState(0); got != core.Unbiased {
		t.Fatalf("state = %v, want unbiased", got)
	}
}

func TestConstantSwitchEvictsAndRelearns(t *testing.T) {
	f := &vfeeder{ctl: New(testParams())}
	f.repeat(0, 1, 11)
	// The constant changes: misspecs ramp the counter (2×50 ≥ 100).
	f.repeat(0, 2, 2)
	if got := f.ctl.LoadState(0); got != core.Monitor {
		t.Fatalf("state after switch = %v, want monitor", got)
	}
	// Re-learn the new constant.
	f.repeat(0, 2, 10)
	if got := f.ctl.LoadState(0); got != core.Biased {
		t.Fatalf("state after re-monitor = %v, want biased", got)
	}
	// Deployment becomes live at the next instance.
	correct, misspec := f.repeat(0, 2, 50)
	if correct != 50 || misspec != 0 {
		t.Fatalf("post-relearn verdicts %d/%d", correct, misspec)
	}
	if v, live := f.ctl.Speculating(0); !live || v != 2 {
		t.Fatalf("respeculated value = (%d, %v), want (2, true)", v, live)
	}
}

func TestOscillationLimitRetiresLoad(t *testing.T) {
	p := testParams()
	f := &vfeeder{ctl: New(p)}
	v := uint32(1)
	for opt := uint32(0); opt < p.MaxOptimizations; opt++ {
		f.repeat(0, v, 10) // select
		v++
		f.repeat(0, v, 2) // evict
	}
	f.repeat(0, v, 10) // one selection past the limit
	if got := f.ctl.LoadState(0); got != core.Retired {
		t.Fatalf("state = %v, want retired", got)
	}
}

func TestRevisitDiscoversLateConstant(t *testing.T) {
	f := &vfeeder{ctl: New(testParams())}
	for i := 0; i < 10; i++ {
		f.load(0, uint32(i)) // varying → unbiased
	}
	// Becomes constant; after the 20-execution wait plus a monitor
	// window, it is selected.
	f.repeat(0, 7, 20+10)
	if got := f.ctl.LoadState(0); got != core.Biased {
		t.Fatalf("state = %v, want biased", got)
	}
}

func TestNoRevisitStaysUnbiased(t *testing.T) {
	f := &vfeeder{ctl: New(testParams().WithNoRevisit())}
	for i := 0; i < 10; i++ {
		f.load(0, uint32(i))
	}
	f.repeat(0, 7, 500)
	if got := f.ctl.LoadState(0); got != core.Unbiased {
		t.Fatalf("no-revisit state = %v", got)
	}
}

func TestNoEvictKeepsStaleConstant(t *testing.T) {
	f := &vfeeder{ctl: New(testParams().WithNoEviction())}
	f.repeat(0, 1, 11)
	_, misspec := f.repeat(0, 2, 300)
	if got := f.ctl.LoadState(0); got != core.Biased {
		t.Fatalf("no-evict state = %v", got)
	}
	if misspec != 300 {
		t.Fatalf("misspec = %d", misspec)
	}
}

func TestStatsPartition(t *testing.T) {
	f := &vfeeder{ctl: New(testParams())}
	f.repeat(0, 5, 200)
	f.repeat(1, 6, 50)
	st := f.ctl.Stats()
	if st.Events != 250 || st.Correct+st.Misspec+st.NotSpec != st.Events {
		t.Fatalf("stats %+v", st)
	}
}

func TestSuiteDeterministicAndNormalized(t *testing.T) {
	a := BuildSuite(3, 0.1)
	b := BuildSuite(3, 0.1)
	if len(a.Loads) != len(b.Loads) || a.Events != b.Events {
		t.Fatal("suites differ between identical builds")
	}
	classes := map[string]int{}
	total := 0.0
	for _, l := range a.Loads {
		classes[l.Class]++
		total += l.Weight
	}
	for _, class := range []string{"invariant", "semi", "phase", "stride"} {
		if classes[class] == 0 {
			t.Fatalf("class %q missing", class)
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("weights sum to %v", total)
	}
}

func TestStudyQualitativeShape(t *testing.T) {
	s := BuildSuite(0, 0.2)
	params := core.DefaultParams().Scaled(50)
	params.WaitPeriod = 5_000
	res := s.RunStudy(params)
	// The branch-study shape must carry over: reactive comparable to (or
	// better than) self-training at far lower misspeculation than the
	// open loop.
	if res.Reactive.CorrectFrac()*100 < res.SelfTrainCorrectPct*0.8 {
		t.Fatalf("reactive correct %.2f%% far below self-training %.2f%%",
			res.Reactive.CorrectFrac()*100, res.SelfTrainCorrectPct)
	}
	if res.NoEvict.MisspecFrac() < 10*res.Reactive.MisspecFrac() {
		t.Fatalf("no-evict misspec %.4f%% not far above reactive %.4f%%",
			res.NoEvict.MisspecFrac()*100, res.Reactive.MisspecFrac()*100)
	}
	if res.Touched == 0 || res.Biased == 0 || res.Evicted == 0 {
		t.Fatalf("static counts %d/%d/%d", res.Touched, res.Biased, res.Evicted)
	}
}
