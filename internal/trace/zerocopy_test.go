package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestValidateFrameMatchesDecode pins ValidateFrame's contract: same
// accept/reject set and identical diagnostics as DecodeFrameAppend, plus the
// correct event count on acceptance.
func TestValidateFrameMatchesDecode(t *testing.T) {
	valid := EncodeFrameAppend(nil, mkEvents(40))
	inputs := map[string][]byte{
		"valid":     valid,
		"empty":     {},
		"bad magic": []byte("XXXXrest"),
		"truncated": valid[:len(valid)-2],
		"trailing":  append(append([]byte{}, valid...), 0),
	}
	for name, payload := range inputs {
		want, wantErr := DecodeFrameAppend(payload, nil)
		count, gotErr := ValidateFrame(payload)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: DecodeFrameAppend err=%v, ValidateFrame err=%v", name, wantErr, gotErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s: diagnostics differ:\n decode:   %v\n validate: %v", name, wantErr, gotErr)
			}
			continue
		}
		if count != len(want) {
			t.Fatalf("%s: ValidateFrame count %d, decode produced %d events", name, count, len(want))
		}
	}
}

// FuzzValidateFrame differentially checks ValidateFrame against
// DecodeFrameAppend for arbitrary payloads: identical accept/reject,
// identical error text, matching counts.
func FuzzValidateFrame(f *testing.F) {
	valid := EncodeFrameAppend(nil, mkEvents(30))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := DecodeFrameAppend(data, nil)
		count, gotErr := ValidateFrame(data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("disagreement: decode err=%v, validate err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("diagnostics differ:\n decode:   %v\n validate: %v", wantErr, gotErr)
			}
			if !errors.Is(gotErr, ErrBadTrace) {
				t.Fatalf("validate error %v does not wrap ErrBadTrace", gotErr)
			}
			return
		}
		if count != len(want) {
			t.Fatalf("validate count %d, decode produced %d events", count, len(want))
		}
	})
}

// TestFrameIterMatchesDecode pins FrameIter: over a validated payload it
// yields exactly the events DecodeFrameAppend materializes, in order.
func TestFrameIterMatchesDecode(t *testing.T) {
	for _, n := range []int{0, 1, 7, 500} {
		payload := EncodeFrameAppend(nil, mkEvents(n))
		want, err := DecodeFrameAppend(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		it := NewFrameIter(payload)
		if it.Events() != n {
			t.Fatalf("n=%d: Events() = %d", n, it.Events())
		}
		for i := 0; ; i++ {
			ev, ok := it.Next()
			if !ok {
				if i != len(want) {
					t.Fatalf("n=%d: iterator stopped after %d of %d events", n, i, len(want))
				}
				break
			}
			if ev != want[i] {
				t.Fatalf("n=%d event %d: %+v != %+v", n, i, ev, want[i])
			}
		}
		// Exhausted iterators stay exhausted.
		if _, ok := it.Next(); ok {
			t.Fatalf("n=%d: Next succeeded after exhaustion", n)
		}
	}
}

// TestNextPayloadAppendMatchesNextAppend pins the zero-materialization frame
// reader against the decoding one: same payload bytes, same counts, same
// accept/reject decisions, same buffer-append semantics.
func TestNextPayloadAppendMatchesNextAppend(t *testing.T) {
	var wire bytes.Buffer
	batches := [][]Event{mkEvents(10), mkEvents(100), mkEvents(3)}
	for _, b := range batches {
		if err := WriteFrame(&wire, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(wire.Bytes()))
	var buf []byte
	var spans [][2]int
	for i := range batches {
		start := len(buf)
		var n int
		var err error
		buf, n, err = fr.NextPayloadAppend(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != len(batches[i]) {
			t.Fatalf("frame %d: count %d, want %d", i, n, len(batches[i]))
		}
		spans = append(spans, [2]int{start, len(buf)})
	}
	if _, _, err := fr.NextPayloadAppend(buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
	// Each accumulated span decodes to its batch.
	for i, sp := range spans {
		got, err := DecodeFrameAppend(buf[sp[0]:sp[1]], nil)
		if err != nil {
			t.Fatalf("span %d: %v", i, err)
		}
		if len(got) != len(batches[i]) {
			t.Fatalf("span %d: %d events, want %d", i, len(got), len(batches[i]))
		}
		for j := range got {
			if got[j] != batches[i][j] {
				t.Fatalf("span %d event %d mismatch", i, j)
			}
		}
	}
}

// TestNextPayloadAppendRejectsCorruptPayload checks the reject-and-continue
// contract: a frame whose payload fails validation comes back as *FrameError
// with dst unchanged, and the reader resumes at the following frame.
func TestNextPayloadAppendRejectsCorruptPayload(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteFrame(&wire, mkEvents(5)); err != nil {
		t.Fatal(err)
	}
	// A well-framed garbage payload.
	garbage := []byte("not a trace blob")
	wire.Write(appendUvarint(nil, uint64(len(garbage))))
	wire.Write(garbage)
	if err := WriteFrame(&wire, mkEvents(7)); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(bytes.NewReader(wire.Bytes()))
	buf, n, err := fr.NextPayloadAppend(nil)
	if err != nil || n != 5 {
		t.Fatalf("frame 0: n=%d err=%v", n, err)
	}
	mark := len(buf)
	buf, _, err = fr.NextPayloadAppend(buf)
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Index != 1 {
		t.Fatalf("frame 1: err = %v, want *FrameError index 1", err)
	}
	if len(buf) != mark {
		t.Fatalf("rejected frame extended dst by %d bytes", len(buf)-mark)
	}
	buf, n, err = fr.NextPayloadAppend(buf)
	if err != nil || n != 7 {
		t.Fatalf("frame 2 after reject: n=%d err=%v", n, err)
	}
	if _, _, err := fr.NextPayloadAppend(buf); err != io.EOF {
		t.Fatalf("tail: err = %v, want io.EOF", err)
	}
}

// TestReadSessionFrameBufferedMatches pins the zero-copy session-frame reader
// against the copying one: identical frames, and the fast path's payload
// aliases the bufio buffer rather than scratch.
func TestReadSessionFrameBufferedMatches(t *testing.T) {
	var wire []byte
	payloads := [][]byte{bytes.Repeat([]byte{1}, 100), {}, bytes.Repeat([]byte{2}, 4000)}
	for i, p := range payloads {
		wire = AppendSessionFrame(wire, byte('A'+i), p)
	}

	br := bufio.NewReaderSize(bytes.NewReader(wire), 1<<16)
	var scratch []byte
	for i, want := range payloads {
		typ, payload, newScratch, err := ReadSessionFrameBuffered(br, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte('A'+i) || !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: type %q payload %d bytes", i, typ, len(payload))
		}
		if len(newScratch) != len(scratch) || (len(scratch) > 0 && &newScratch[0] != &scratch[0]) {
			// The buffered fast path must not have grown scratch.
			t.Fatalf("frame %d: scratch changed on the zero-copy path", i)
		}
		scratch = newScratch
	}
	if _, _, _, err := ReadSessionFrameBuffered(br, scratch); err != io.EOF {
		t.Fatalf("tail: err = %v, want io.EOF", err)
	}

	// A frame larger than the bufio buffer falls back to scratch and still
	// round-trips.
	big := bytes.Repeat([]byte{9}, 8000)
	wire = AppendSessionFrame(nil, StreamFrameDecisions, big)
	small := bufio.NewReaderSize(bytes.NewReader(wire), 1<<9) // bufio min size is 16; 512 < 8000
	typ, payload, _, err := ReadSessionFrameBuffered(small, nil)
	if err != nil || typ != StreamFrameDecisions || !bytes.Equal(payload, big) {
		t.Fatalf("fallback path: type %q len %d err %v", typ, len(payload), err)
	}
}

// TestReadSessionFrameBufferedRejectsDamage checks the zero-copy reader
// reports the same ErrBadFrame-wrapped failures as ReadSessionFrame.
func TestReadSessionFrameBufferedRejectsDamage(t *testing.T) {
	good := AppendSessionFrame(nil, StreamFrameEvents, []byte("payload"))
	for name, wire := range map[string][]byte{
		"truncated payload": good[:len(good)-2],
		"length only":       good[:2],
		"over-cap length": {StreamFrameEvents,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		_, _, _, err := ReadSessionFrameBuffered(bufio.NewReader(bytes.NewReader(wire)), nil)
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
		// The copying reader must agree on accept/reject.
		_, _, _, refErr := ReadSessionFrame(bufio.NewReader(bytes.NewReader(wire)), nil)
		if (err == nil) != (refErr == nil) {
			t.Errorf("%s: buffered err=%v, copying err=%v", name, err, refErr)
		}
	}
}

// FuzzReadSessionFrameBuffered differentially checks the zero-copy session
// reader against ReadSessionFrame over arbitrary byte streams, at both a
// large buffer (fast path) and the minimum one (fallback path).
func FuzzReadSessionFrameBuffered(f *testing.F) {
	events := AppendSessionFrame(nil, StreamFrameEvents, EncodeFrameAppend(nil, mkEvents(10)))
	f.Add(events)
	f.Add(events[:len(events)-4])
	f.Add(AppendSessionFrame(events, StreamFrameClose, nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, size := range []int{16, 1 << 16} {
			ref := bufio.NewReader(bytes.NewReader(data))
			zc := bufio.NewReaderSize(bytes.NewReader(data), size)
			var refScratch, zcScratch []byte
			for n := 0; ; n++ {
				refTyp, refPayload, rs, refErr := ReadSessionFrame(ref, refScratch)
				zcTyp, zcPayload, zs, zcErr := ReadSessionFrameBuffered(zc, zcScratch)
				refScratch, zcScratch = rs, zs
				if (refErr == nil) != (zcErr == nil) {
					t.Fatalf("size %d frame %d: ref err=%v, zc err=%v", size, n, refErr, zcErr)
				}
				if refErr != nil {
					if zcErr != io.EOF && !errors.Is(zcErr, ErrBadFrame) {
						t.Fatalf("size %d: zc error %v is neither EOF nor ErrBadFrame", size, zcErr)
					}
					if (refErr == io.EOF) != (zcErr == io.EOF) {
						t.Fatalf("size %d frame %d: EOF disagreement: ref %v, zc %v", size, n, refErr, zcErr)
					}
					break
				}
				if refTyp != zcTyp || !bytes.Equal(refPayload, zcPayload) {
					t.Fatalf("size %d frame %d: type %q/%q payloads %d/%d bytes",
						size, n, refTyp, zcTyp, len(refPayload), len(zcPayload))
				}
				if n > len(data) {
					t.Fatal("more frames than the input could encode")
				}
			}
		}
	})
}

// appendUvarint is a tiny test helper for hand-building wire bytes.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
