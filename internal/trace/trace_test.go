package trace

import (
	"testing"
	"testing/quick"
)

func mkEvents(n int) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{Branch: BranchID(i % 7), Taken: i%3 == 0, Gap: uint32(1 + i%5)}
	}
	return events
}

func TestSliceStreamYieldsAll(t *testing.T) {
	events := mkEvents(10)
	s := NewSliceStream(events)
	got := Collect(s)
	if len(got) != len(events) {
		t.Fatalf("got %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestSliceStreamExhausted(t *testing.T) {
	s := NewSliceStream(mkEvents(2))
	Collect(s)
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream returned an event")
	}
}

func TestSliceStreamReset(t *testing.T) {
	s := NewSliceStream(mkEvents(5))
	first := Collect(s)
	s.Reset()
	second := Collect(s)
	if len(first) != len(second) {
		t.Fatalf("replay produced %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay event %d differs", i)
		}
	}
}

func TestSliceStreamLen(t *testing.T) {
	if got := NewSliceStream(mkEvents(7)).Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
}

func TestHeadLimits(t *testing.T) {
	s := Head(NewSliceStream(mkEvents(10)), 4)
	if got := len(Collect(s)); got != 4 {
		t.Fatalf("Head(4) yielded %d events", got)
	}
}

func TestHeadLargerThanStream(t *testing.T) {
	s := Head(NewSliceStream(mkEvents(3)), 100)
	if got := len(Collect(s)); got != 3 {
		t.Fatalf("Head(100) over 3 events yielded %d", got)
	}
}

func TestHeadZero(t *testing.T) {
	s := Head(NewSliceStream(mkEvents(3)), 0)
	if _, ok := s.Next(); ok {
		t.Fatal("Head(0) yielded an event")
	}
}

func TestFilterKeepsMatching(t *testing.T) {
	events := mkEvents(20)
	s := Filter(NewSliceStream(events), func(ev Event) bool { return ev.Branch == 0 })
	for _, ev := range Collect(s) {
		if ev.Branch != 0 {
			t.Fatalf("filter leaked branch %d", ev.Branch)
		}
	}
}

func TestFilterPreservesInstructionCount(t *testing.T) {
	events := mkEvents(50)
	var total uint64
	for _, ev := range events {
		total += uint64(ev.Gap)
	}
	s := Filter(NewSliceStream(events), func(ev Event) bool { return ev.Branch%2 == 0 })
	var kept uint64
	var lastDropped uint64
	for _, ev := range events {
		if ev.Branch%2 != 0 {
			lastDropped += uint64(ev.Gap)
		}
	}
	for _, ev := range Collect(s) {
		kept += uint64(ev.Gap)
	}
	// Gaps of dropped events fold into the next kept event; only a
	// trailing run of dropped events can lose instruction count.
	trailing := uint64(0)
	for i := len(events) - 1; i >= 0 && events[i].Branch%2 != 0; i-- {
		trailing += uint64(events[i].Gap)
	}
	if kept != total-trailing {
		t.Fatalf("kept %d instructions, want %d (total %d, trailing dropped %d)",
			kept, total-trailing, total, trailing)
	}
	_ = lastDropped
}

func TestFilterEmptyResult(t *testing.T) {
	s := Filter(NewSliceStream(mkEvents(5)), func(Event) bool { return false })
	if _, ok := s.Next(); ok {
		t.Fatal("all-dropping filter yielded an event")
	}
}

func TestCounterTracksTotals(t *testing.T) {
	events := mkEvents(25)
	var instrs uint64
	for _, ev := range events {
		instrs += uint64(ev.Gap)
	}
	c := &Counter{S: NewSliceStream(events)}
	Collect(c)
	if c.Events != uint64(len(events)) {
		t.Fatalf("Counter.Events = %d, want %d", c.Events, len(events))
	}
	if c.Instrs != instrs {
		t.Fatalf("Counter.Instrs = %d, want %d", c.Instrs, instrs)
	}
}

func TestFilterGapFoldingProperty(t *testing.T) {
	// Property: for any event sequence and keep-mod, the sum of gaps of
	// kept output equals the input sum minus trailing dropped gaps.
	f := func(gaps []uint8, mod uint8) bool {
		if mod == 0 {
			mod = 1
		}
		events := make([]Event, len(gaps))
		for i, g := range gaps {
			events[i] = Event{Branch: BranchID(i), Gap: uint32(g%31 + 1)}
		}
		keep := func(ev Event) bool { return uint8(ev.Branch)%mod == 0 }
		var total, trailing uint64
		for _, ev := range events {
			total += uint64(ev.Gap)
		}
		for i := len(events) - 1; i >= 0 && !keep(events[i]); i-- {
			trailing += uint64(events[i].Gap)
		}
		var kept uint64
		for _, ev := range Collect(Filter(NewSliceStream(events), keep)) {
			kept += uint64(ev.Gap)
		}
		return kept == total-trailing
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
