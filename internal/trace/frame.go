package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming frames wrap the trace codec for transport: each frame is a
// length-prefixed, self-delimiting batch of events, so a long-lived
// connection (or an HTTP request body) can carry many independent batches
// and a corrupt batch can be rejected without abandoning the stream — the
// length prefix tells the reader where the next frame starts regardless of
// what the payload contains.
//
//	frame:
//	  length  uvarint  (payload bytes)
//	  payload          (a complete trace blob: magic, version, count, records)

// MaxFramePayload caps a single frame's payload size. A length prefix above
// the cap is treated as a framing error (the stream cannot be trusted past
// it), since a corrupted length would otherwise make the reader swallow the
// rest of the stream as one giant bogus frame.
const MaxFramePayload = 1 << 26

// ErrBadFrame reports an unrecoverable framing error: the frame boundary
// itself (length prefix or payload byte count) is damaged.
var ErrBadFrame = errors.New("trace: malformed frame")

// FrameError reports a frame whose payload failed to decode. The framing is
// intact — the reader has already consumed the frame's bytes and remains
// positioned at the next frame — so callers may reject the frame and keep
// reading.
type FrameError struct {
	// Index is the zero-based frame position in the stream.
	Index int
	// Err is the payload decode failure (wraps ErrBadTrace).
	Err error
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("trace: frame %d rejected: %v", e.Index, e.Err)
}

func (e *FrameError) Unwrap() error { return e.Err }

// EncodeFrame serializes events as one frame payload (without the length
// prefix): a complete trace blob.
func EncodeFrame(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(events), uint64(len(events))); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame decodes one frame payload produced by EncodeFrame. Every
// payload byte must be consumed: trailing garbage, truncation, and record
// corruption all fail with an error wrapping ErrBadTrace.
func DecodeFrame(payload []byte) ([]Event, error) {
	r, err := NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	events := make([]Event, 0, r.Events())
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Offset() != int64(len(payload)) {
		return nil, fmt.Errorf("%w: %d trailing bytes after event %d",
			ErrBadTrace, int64(len(payload))-r.Offset(), len(events))
	}
	return events, nil
}

// WriteFrame writes one length-prefixed frame carrying events.
func WriteFrame(w io.Writer, events []Event) error {
	payload, err := EncodeFrame(events)
	if err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// FrameReader reads a sequence of length-prefixed frames.
type FrameReader struct {
	r     *bufio.Reader
	index int
	err   error // sticky fatal error
}

// NewFrameReader returns a reader over a stream of frames.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next frame's events.
//
//   - io.EOF signals a clean end of the stream (at a frame boundary).
//   - A *FrameError reports a frame whose payload was corrupt; the reader
//     has skipped it and the following call resumes at the next frame.
//   - Any other error is fatal and sticky: the frame boundaries themselves
//     are lost.
func (fr *FrameReader) Next() ([]Event, error) {
	if fr.err != nil {
		return nil, fr.err
	}
	length, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			fr.err = io.EOF
		} else {
			fr.err = fmt.Errorf("%w: reading length of frame %d: %v", ErrBadFrame, fr.index, err)
		}
		return nil, fr.err
	}
	if length > MaxFramePayload {
		fr.err = fmt.Errorf("%w: frame %d length %d exceeds the %d-byte cap",
			ErrBadFrame, fr.index, length, MaxFramePayload)
		return nil, fr.err
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		fr.err = fmt.Errorf("%w: frame %d truncated (%d-byte payload): %v",
			ErrBadFrame, fr.index, length, err)
		return nil, fr.err
	}
	index := fr.index
	fr.index++
	events, err := DecodeFrame(payload)
	if err != nil {
		return nil, &FrameError{Index: index, Err: err}
	}
	return events, nil
}

// Frames returns how many frames have been consumed (including rejected
// ones).
func (fr *FrameReader) Frames() int { return fr.index }
