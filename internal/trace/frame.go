package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming frames wrap the trace codec for transport: each frame is a
// length-prefixed, self-delimiting batch of events, so a long-lived
// connection (or an HTTP request body) can carry many independent batches
// and a corrupt batch can be rejected without abandoning the stream — the
// length prefix tells the reader where the next frame starts regardless of
// what the payload contains.
//
//	frame:
//	  length  uvarint  (payload bytes)
//	  payload          (a complete trace blob: magic, version, count, records)

// MaxFramePayload caps a single frame's payload size. A length prefix above
// the cap is treated as a framing error (the stream cannot be trusted past
// it), since a corrupted length would otherwise make the reader swallow the
// rest of the stream as one giant bogus frame.
const MaxFramePayload = 1 << 26

// ErrBadFrame reports an unrecoverable framing error: the frame boundary
// itself (length prefix or payload byte count) is damaged.
var ErrBadFrame = errors.New("trace: malformed frame")

// FrameError reports a frame whose payload failed to decode. The framing is
// intact — the reader has already consumed the frame's bytes and remains
// positioned at the next frame — so callers may reject the frame and keep
// reading.
type FrameError struct {
	// Index is the zero-based frame position in the stream.
	Index int
	// Err is the payload decode failure (wraps ErrBadTrace).
	Err error
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("trace: frame %d rejected: %v", e.Index, e.Err)
}

func (e *FrameError) Unwrap() error { return e.Err }

// EncodeFrame serializes events as one frame payload (without the length
// prefix): a complete trace blob.
func EncodeFrame(events []Event) ([]byte, error) {
	return EncodeFrameAppend(nil, events), nil
}

// EncodeFrameAppend appends the frame payload for events to dst and returns
// the extended slice. It produces exactly the bytes EncodeFrame produces but
// never allocates beyond growing dst, so hot senders can reuse one buffer
// across frames.
func EncodeFrameAppend(dst []byte, events []Event) []byte {
	dst = append(dst, traceMagic[:]...)
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], traceVersion)
	n += binary.PutUvarint(tmp[n:], uint64(len(events)))
	dst = append(dst, tmp[:n]...)
	prevID := int64(0)
	for _, ev := range events {
		delta := int64(ev.Branch) - prevID
		prevID = int64(ev.Branch)
		n := binary.PutVarint(tmp[:], delta)
		gapTaken := uint64(ev.Gap) << 1
		if ev.Taken {
			gapTaken |= 1
		}
		n += binary.PutUvarint(tmp[n:], gapTaken)
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// AppendFrame appends one length-prefixed frame carrying events to dst and
// returns the extended slice: the allocation-free equivalent of WriteFrame.
func AppendFrame(dst []byte, events []Event) []byte {
	start := len(dst)
	dst = EncodeFrameAppend(dst, events)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(dst)-start))
	// The length prefix precedes the payload; shift the payload right to
	// make room (payloads are small enough that the move is cheap next to
	// the encode itself).
	dst = append(dst, hdr[:n]...)
	copy(dst[start+n:], dst[start:len(dst)-n])
	copy(dst[start:], hdr[:n])
	return dst
}

// DecodeFrame decodes one frame payload produced by EncodeFrame. Every
// payload byte must be consumed: trailing garbage, truncation, and record
// corruption all fail with an error wrapping ErrBadTrace.
func DecodeFrame(payload []byte) ([]Event, error) {
	r, err := NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	// Size the result by the declared count, but never beyond what the
	// payload can physically hold (every record is at least two bytes): a
	// corrupt header must not force a giant allocation before the decode
	// loop detects the truncation.
	capHint := r.Events()
	if max := uint64(len(payload)) / 2; capHint > max {
		capHint = max
	}
	events := make([]Event, 0, capHint)
	for {
		ev, ok := r.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Offset() != int64(len(payload)) {
		return nil, fmt.Errorf("%w: %d trailing bytes after event %d",
			ErrBadTrace, int64(len(payload))-r.Offset(), len(events))
	}
	return events, nil
}

// DecodeFrameAppend decodes one frame payload produced by EncodeFrame,
// appending the events to dst and returning the extended slice. It accepts
// exactly the payloads DecodeFrame accepts and rejects exactly the ones it
// rejects (FuzzDecodeFrameAppend pins the equivalence), but parses the byte
// slice in place instead of layering a buffered reader over it, so the only
// allocation is growing dst. On error dst is returned unchanged (events
// appended before the corruption was detected are dropped).
func DecodeFrameAppend(payload []byte, dst []Event) ([]Event, error) {
	base := len(dst)
	d := frameDecoder{buf: payload}
	if len(payload) < len(traceMagic) {
		return dst[:base], fmt.Errorf("%w: truncated header: %d bytes (file shorter than the %d-byte magic)",
			ErrBadTrace, len(payload), len(traceMagic))
	}
	if *(*[4]byte)(payload) != traceMagic {
		return dst[:base], fmt.Errorf("%w: bad magic %q at byte offset 0 (want %q)",
			ErrBadTrace, payload[:4], traceMagic[:])
	}
	d.off = len(traceMagic)
	version, err := d.uvarint()
	if err != nil {
		return dst[:base], fmt.Errorf("%w: reading version at byte offset %d: %v", ErrBadTrace, d.off, err)
	}
	if version != traceVersion {
		return dst[:base], fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadTrace, version, traceVersion)
	}
	total, err := d.uvarint()
	if err != nil {
		return dst[:base], fmt.Errorf("%w: reading event count at byte offset %d: %v", ErrBadTrace, d.off, err)
	}
	var prevID int64
	for i := uint64(0); i < total; i++ {
		delta, err := d.varint()
		if err != nil {
			return dst[:base], d.fail("branch delta", i, total, err)
		}
		gapTaken, err := d.uvarint()
		if err != nil {
			return dst[:base], d.fail("gap/outcome", i, total, err)
		}
		prevID += delta
		if prevID < 0 || prevID > int64(^uint32(0)) {
			return dst[:base], fmt.Errorf("%w: branch id %d out of range at byte offset %d (event %d of %d)",
				ErrBadTrace, prevID, d.off, i, total)
		}
		if gapTaken>>1 > uint64(^uint32(0)) {
			return dst[:base], fmt.Errorf("%w: gap %d out of range at byte offset %d (event %d of %d)",
				ErrBadTrace, gapTaken>>1, d.off, i, total)
		}
		dst = append(dst, Event{
			Branch: BranchID(prevID),
			Taken:  gapTaken&1 == 1,
			Gap:    uint32(gapTaken >> 1),
		})
	}
	if d.off != len(payload) {
		return dst[:base], fmt.Errorf("%w: %d trailing bytes after event %d",
			ErrBadTrace, len(payload)-d.off, total)
	}
	return dst, nil
}

// ValidateFrame walks one frame payload performing exactly the checks
// DecodeFrameAppend performs — magic, version, declared count, every
// record's varint shape and ranges, trailing bytes — without materializing
// any Event, and returns the event count. It accepts exactly the payloads
// DecodeFrameAppend accepts and fails with the identical diagnostics, so a
// zero-copy reader can reject a corrupt frame before applying it and still
// report the same error text the decoding path always has.
func ValidateFrame(payload []byte) (int, error) {
	d := frameDecoder{buf: payload}
	if len(payload) < len(traceMagic) {
		return 0, fmt.Errorf("%w: truncated header: %d bytes (file shorter than the %d-byte magic)",
			ErrBadTrace, len(payload), len(traceMagic))
	}
	if *(*[4]byte)(payload) != traceMagic {
		return 0, fmt.Errorf("%w: bad magic %q at byte offset 0 (want %q)",
			ErrBadTrace, payload[:4], traceMagic[:])
	}
	d.off = len(traceMagic)
	version, err := d.uvarint()
	if err != nil {
		return 0, fmt.Errorf("%w: reading version at byte offset %d: %v", ErrBadTrace, d.off, err)
	}
	if version != traceVersion {
		return 0, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadTrace, version, traceVersion)
	}
	total, err := d.uvarint()
	if err != nil {
		return 0, fmt.Errorf("%w: reading event count at byte offset %d: %v", ErrBadTrace, d.off, err)
	}
	var prevID int64
	for i := uint64(0); i < total; i++ {
		delta, err := d.varint()
		if err != nil {
			return 0, d.fail("branch delta", i, total, err)
		}
		gapTaken, err := d.uvarint()
		if err != nil {
			return 0, d.fail("gap/outcome", i, total, err)
		}
		prevID += delta
		if prevID < 0 || prevID > int64(^uint32(0)) {
			return 0, fmt.Errorf("%w: branch id %d out of range at byte offset %d (event %d of %d)",
				ErrBadTrace, prevID, d.off, i, total)
		}
		if gapTaken>>1 > uint64(^uint32(0)) {
			return 0, fmt.Errorf("%w: gap %d out of range at byte offset %d (event %d of %d)",
				ErrBadTrace, gapTaken>>1, d.off, i, total)
		}
	}
	if d.off != len(payload) {
		return 0, fmt.Errorf("%w: %d trailing bytes after event %d",
			ErrBadTrace, len(payload)-d.off, total)
	}
	return int(total), nil
}

// FrameIter iterates a frame payload's events in place, one at a time,
// without building an []Event. It assumes the payload already passed
// ValidateFrame: Next stops at the declared count and performs no per-record
// validation of its own (an unvalidated payload yields truncated or
// undefined events, never a panic).
type FrameIter struct {
	d      frameDecoder
	prevID int64
	n      uint64
	total  uint64
}

// NewFrameIter returns an iterator over a validated frame payload.
func NewFrameIter(payload []byte) FrameIter {
	d := frameDecoder{buf: payload, off: len(traceMagic)}
	d.uvarint() // version; already validated
	total, err := d.uvarint()
	if err != nil {
		total = 0
	}
	return FrameIter{d: d, total: total}
}

// Events returns the payload's declared event count.
func (it *FrameIter) Events() int { return int(it.total) }

// Next returns the next event; ok is false after the last one.
func (it *FrameIter) Next() (ev Event, ok bool) {
	if it.n >= it.total {
		return Event{}, false
	}
	it.n++
	delta, err := it.d.varint()
	if err != nil {
		it.n = it.total
		return Event{}, false
	}
	gapTaken, err := it.d.uvarint()
	if err != nil {
		it.n = it.total
		return Event{}, false
	}
	it.prevID += delta
	return Event{
		Branch: BranchID(it.prevID),
		Taken:  gapTaken&1 == 1,
		Gap:    uint32(gapTaken >> 1),
	}, true
}

// frameDecoder walks one frame payload in place, mirroring Reader's varint
// handling (truncation and overflow detection) without its buffering.
type frameDecoder struct {
	buf []byte
	off int
}

func (d *frameDecoder) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		if d.off >= len(d.buf) {
			if i > 0 {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, io.EOF
		}
		b := d.buf[d.off]
		d.off++
		if i == binary.MaxVarintLen64 || (i == binary.MaxVarintLen64-1 && b > 1) {
			return 0, errVarintOverflow
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (d *frameDecoder) varint() (int64, error) {
	ux, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

// fail mirrors Reader.fail's diagnostic shape for in-place payload decoding.
func (d *frameDecoder) fail(field string, event, total uint64, err error) error {
	kind := "corrupt"
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		kind = "truncated"
	}
	return fmt.Errorf("%w: %s %s at byte offset %d (event %d of %d): %v",
		ErrBadTrace, kind, field, d.off, event, total, err)
}

// WriteFrame writes one length-prefixed frame carrying events.
func WriteFrame(w io.Writer, events []Event) error {
	payload, err := EncodeFrame(events)
	if err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// FrameReader reads a sequence of length-prefixed frames.
type FrameReader struct {
	r       *bufio.Reader
	index   int
	err     error  // sticky fatal error
	payload []byte // scratch reused across NextAppend calls
}

// NewFrameReader returns a reader over a stream of frames.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Reset discards the reader's position and any sticky error and rewires it
// to read frames from r. The internal buffers (the 64 KiB read buffer and
// the payload scratch) are kept, so one FrameReader can be pooled across
// many streams without re-allocating them.
func (fr *FrameReader) Reset(r io.Reader) {
	fr.r.Reset(r)
	fr.index = 0
	fr.err = nil
}

// Next returns the next frame's events.
//
//   - io.EOF signals a clean end of the stream (at a frame boundary).
//   - A *FrameError reports a frame whose payload was corrupt; the reader
//     has skipped it and the following call resumes at the next frame.
//   - Any other error is fatal and sticky: the frame boundaries themselves
//     are lost.
func (fr *FrameReader) Next() ([]Event, error) {
	return fr.NextAppend(nil)
}

// NextAppend is Next with caller-owned storage: the frame's events are
// appended to dst and the extended slice is returned. The reader reuses one
// internal payload buffer across calls, so a loop that feeds the returned
// slice back in decodes an entire stream with no per-frame allocation. On
// any error (including a rejected frame) dst is returned unchanged.
func (fr *FrameReader) NextAppend(dst []Event) ([]Event, error) {
	if fr.err != nil {
		return dst, fr.err
	}
	length, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			fr.err = io.EOF
		} else {
			fr.err = fmt.Errorf("%w: reading length of frame %d: %v", ErrBadFrame, fr.index, err)
		}
		return dst, fr.err
	}
	if length > MaxFramePayload {
		fr.err = fmt.Errorf("%w: frame %d length %d exceeds the %d-byte cap",
			ErrBadFrame, fr.index, length, MaxFramePayload)
		return dst, fr.err
	}
	if uint64(cap(fr.payload)) < length {
		fr.payload = make([]byte, length)
	}
	payload := fr.payload[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		fr.err = fmt.Errorf("%w: frame %d truncated (%d-byte payload): %v",
			ErrBadFrame, fr.index, length, err)
		return dst, fr.err
	}
	index := fr.index
	fr.index++
	events, err := DecodeFrameAppend(payload, dst)
	if err != nil {
		return dst, &FrameError{Index: index, Err: err}
	}
	return events, nil
}

// NextPayloadAppend reads the next frame's raw payload bytes, appends them
// to dst, validates them, and returns the extended slice plus the frame's
// event count. It is the zero-materialization sibling of NextAppend: the
// payload is checked with ValidateFrame (same accept/reject set, same
// diagnostics) but no Event structs are built — callers iterate the bytes in
// place (FrameIter) or splice them onward verbatim. On any error (including
// a rejected frame) dst is returned unchanged; a rejected frame is reported
// as a *FrameError and the reader stays positioned at the next frame.
func (fr *FrameReader) NextPayloadAppend(dst []byte) ([]byte, int, error) {
	if fr.err != nil {
		return dst, 0, fr.err
	}
	length, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			fr.err = io.EOF
		} else {
			fr.err = fmt.Errorf("%w: reading length of frame %d: %v", ErrBadFrame, fr.index, err)
		}
		return dst, 0, fr.err
	}
	if length > MaxFramePayload {
		fr.err = fmt.Errorf("%w: frame %d length %d exceeds the %d-byte cap",
			ErrBadFrame, fr.index, length, MaxFramePayload)
		return dst, 0, fr.err
	}
	base := len(dst)
	need := base + int(length)
	if cap(dst) < need {
		newCap := 2 * cap(dst)
		if newCap < need {
			newCap = need
		}
		grown := make([]byte, base, newCap)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	if _, err := io.ReadFull(fr.r, dst[base:]); err != nil {
		fr.err = fmt.Errorf("%w: frame %d truncated (%d-byte payload): %v",
			ErrBadFrame, fr.index, length, err)
		return dst[:base], 0, fr.err
	}
	index := fr.index
	fr.index++
	events, err := ValidateFrame(dst[base:])
	if err != nil {
		return dst[:base], 0, &FrameError{Index: index, Err: err}
	}
	return dst, events, nil
}

// Frames returns how many frames have been consumed (including rejected
// ones).
func (fr *FrameReader) Frames() int { return fr.index }
