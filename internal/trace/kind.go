package trace

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Kind names which speculation behavior an event stream describes. The paper
// (Section 2) reports the reactive model generalizes beyond conditional
// branches to load-value invariance, silent stores / memory dependences, and
// thread-level speculation; this tag lets one serving stack carry all four.
//
// Every kind is a stream of boolean outcomes over unit IDs: a branch's
// taken/not-taken, a load's value matching the speculated constant, a
// dependence pair staying conflict-free, a TLS epoch committing without a
// violation. The Event encoding therefore stays identical across kinds —
// only the tag differs.
type Kind uint8

const (
	// KindBranch is conditional-branch direction speculation — the paper's
	// primary subject and the wire default (untagged events are branches).
	KindBranch Kind = 0
	// KindValue is load-value invariance speculation (internal/values).
	KindValue Kind = 1
	// KindMemdep is memory-dependence speculation (internal/memdep).
	KindMemdep Kind = 2
	// KindTLSpec is thread-level speculation (internal/tlspec): per
	// dependence pair, "this pair never conflicts across iterations".
	KindTLSpec Kind = 3

	// KindCount bounds the valid kinds; Kind values >= KindCount are
	// rejected at every API boundary.
	KindCount = 4
)

var kindNames = [KindCount]string{"branch", "value", "memdep", "tlspec"}

// String returns the kind's wire name ("branch", "value", "memdep",
// "tlspec"), or "kind(N)" for out-of-range values.
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k names one of the defined kinds.
func (k Kind) Valid() bool { return k < KindCount }

// KindNames lists the valid kind names in Kind order.
func KindNames() []string {
	out := make([]string, KindCount)
	copy(out, kindNames[:])
	return out
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, name := range kindNames {
		if s == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown speculation kind %q (want one of %s)",
		s, strings.Join(kindNames[:], ", "))
}

// Kind-program encoding.
//
// The server's table, WAL, replication channel, cursors and snapshots all key
// state by an opaque program string. Rather than widen every one of those
// formats with a kind field, the kind rides inside the program key:
//
//	branch      plain program name — byte-identical to every pre-kind
//	            artifact, so existing WAL segments, snapshots, replication
//	            peers and shard hashes are unchanged
//	non-branch  "\x00" + kind byte + program name
//
// Program names arriving over the API are rejected if they contain NUL, so
// an encoded non-branch key can never collide with a client-chosen name.

// kindProgramPrefix marks an encoded non-branch program key.
const kindProgramPrefix = byte(0x00)

// EncodeKindProgram returns the table/WAL key for (kind, program).
func EncodeKindProgram(kind Kind, program string) string {
	if kind == KindBranch {
		return program
	}
	return string([]byte{kindProgramPrefix, byte(kind)}) + program
}

// SplitKindProgram inverts EncodeKindProgram. Keys that do not carry the
// non-branch prefix decode as (KindBranch, key).
func SplitKindProgram(key string) (Kind, string) {
	if len(key) >= 2 && key[0] == kindProgramPrefix {
		return Kind(key[1]), key[2:]
	}
	return KindBranch, key
}

// ValidProgramName reports whether a client-supplied program name may enter
// the table: non-branch kind-program keys are carved out of the NUL-prefixed
// namespace, so names containing NUL are refused at the API boundary.
func ValidProgramName(program string) bool {
	return strings.IndexByte(program, kindProgramPrefix) < 0
}

// AppendKind appends the proto-4 kind tag — one uvarint — that follows the
// trace context in an 'E' frame payload.
func AppendKind(dst []byte, kind Kind) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(kind))]...)
}

// CutKind splits a proto-4 'E' frame payload (after the trace context) into
// its kind tag and the trace blob that follows. The kind is returned as sent;
// callers validate against the kinds they serve.
func CutKind(payload []byte) (kind Kind, rest []byte, err error) {
	k, n := binary.Uvarint(payload)
	if n <= 0 || k > uint64(^uint8(0)) {
		return 0, nil, fmt.Errorf("%w: events frame kind tag is malformed", ErrBadFrame)
	}
	return Kind(k), payload[n:], nil
}
