package trace

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	want := ReplHello{Proto: ReplicationProtoVersion, ParamsHash: 0xdeadbeefcafef00d, From: 123456, Window: 512}
	wire := AppendReplHello(nil, want)
	got, err := ReadReplHello(bufio.NewReader(bytes.NewReader(wire)))
	if err != nil {
		t.Fatalf("ReadReplHello: %v", err)
	}
	if got != want {
		t.Fatalf("hello round trip: got %+v want %+v", got, want)
	}
	if _, err := ReadReplHello(bufio.NewReader(bytes.NewReader(wire[:len(wire)-1]))); err == nil {
		t.Fatal("truncated hello decoded cleanly")
	}
	if _, err := ReadReplHello(bufio.NewReader(bytes.NewReader(append([]byte("XXXX"), wire[4:]...)))); err == nil {
		t.Fatal("bad magic decoded cleanly")
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	for _, want := range []ReplAck{
		{Proto: 1, Window: 256, Oldest: 10, Next: 999},
		{Err: &StreamError{Code: ReplCodeCompacted, Msg: "records [0, 512) compacted away"}},
	} {
		wire := AppendReplAck(nil, want)
		got, err := ReadReplAck(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("ReadReplAck(%+v): %v", want, err)
		}
		if want.Err == nil {
			if got != want {
				t.Fatalf("ack round trip: got %+v want %+v", got, want)
			}
		} else if got.Err == nil || *got.Err != *want.Err {
			t.Fatalf("rejection round trip: got %+v want %+v", got.Err, want.Err)
		}
	}
}

func TestReplRecordRoundTrip(t *testing.T) {
	frame := EncodeFrameAppend(nil, []Event{{Branch: 7, Taken: true, Gap: 3}, {Branch: 9, Gap: 1}})
	want := ReplRecord{
		Seq:              1 << 40,
		Durable:          (1 << 40) + 17,
		ShippedUnixNanos: 1754550000123456789,
		Trace:            0xbeef0001,
		Program:          "gzip",
		Frame:            frame,
	}
	for _, proto := range []uint32{1, 2} {
		wire := AppendReplRecord(nil, want, proto)

		br := bufio.NewReader(bytes.NewReader(wire))
		typ, payload, _, err := ReadReplFrame(br, nil)
		if err != nil {
			t.Fatalf("proto %d: ReadReplFrame: %v", proto, err)
		}
		if typ != ReplFrameRecord {
			t.Fatalf("proto %d: frame type %q, want %q", proto, typ, ReplFrameRecord)
		}
		got, err := DecodeReplRecord(payload, proto)
		if err != nil {
			t.Fatalf("proto %d: DecodeReplRecord: %v", proto, err)
		}
		if got.Seq != want.Seq || got.Durable != want.Durable ||
			got.ShippedUnixNanos != want.ShippedUnixNanos || got.Program != want.Program {
			t.Fatalf("proto %d: record header round trip: got %+v", proto, got)
		}
		// The trace context is a proto-2 field: proto 1 never carries it.
		wantTrace := uint64(0)
		if proto >= 2 {
			wantTrace = want.Trace
		}
		if got.Trace != wantTrace {
			t.Fatalf("proto %d: trace = %#x, want %#x", proto, got.Trace, wantTrace)
		}
		if !reflect.DeepEqual(got.Frame, frame) {
			t.Fatalf("proto %d: frame payload diverges", proto)
		}
		// Malformed payloads must be rejected, not misparsed.
		for cut := 0; cut < len(payload); cut++ {
			if rec, err := DecodeReplRecord(payload[:cut], proto); err == nil {
				// Shorter prefixes can still parse if the frame payload is
				// merely shortened — the trace decode happens later — but the
				// program field must never read out of bounds.
				if len(rec.Program) > len(payload) {
					t.Fatalf("proto %d: cut %d produced an out-of-bounds program", proto, cut)
				}
			}
		}
	}
}

func TestNegotiateProtos(t *testing.T) {
	streamCases := []struct {
		peer uint32
		want uint32
		ok   bool
	}{
		{0, 0, false},
		{1, 1, true},
		{2, 2, true},
		{3, 3, true},
		{4, 4, true},
		{5, 4, true}, // a newer peer speaks down to us
	}
	for _, c := range streamCases {
		if got, ok := NegotiateStreamProto(c.peer); got != c.want || ok != c.ok {
			t.Fatalf("NegotiateStreamProto(%d) = %d,%v want %d,%v", c.peer, got, ok, c.want, c.ok)
		}
	}
	replCases := []struct {
		peer uint32
		want uint32
		ok   bool
	}{
		{0, 0, false},
		{1, 1, true},
		{2, 2, true},
		{3, 2, true}, // a newer peer speaks down to us
	}
	for _, c := range replCases {
		if got, ok := NegotiateReplProto(c.peer); got != c.want || ok != c.ok {
			t.Fatalf("NegotiateReplProto(%d) = %d,%v want %d,%v", c.peer, got, ok, c.want, c.ok)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	blob := EncodeFrameAppend(nil, []Event{{Branch: 1, Taken: true, Gap: 2}})
	for _, id := range []uint64{0, 1, 0xdeadbeefcafe} {
		payload := AppendTraceContext(nil, id)
		payload = append(payload, blob...)
		got, rest, err := CutTraceContext(payload)
		if err != nil {
			t.Fatalf("CutTraceContext(id=%#x): %v", id, err)
		}
		if got != id {
			t.Fatalf("trace id round trip: got %#x want %#x", got, id)
		}
		if !bytes.Equal(rest, blob) {
			t.Fatal("trace blob diverges after trace context")
		}
	}
	if _, _, err := CutTraceContext(nil); err == nil {
		t.Fatal("empty payload accepted as trace context")
	}
}

func TestReplAckFrameRoundTrip(t *testing.T) {
	wire := AppendReplAckFrame(nil, 987654321)
	br := bufio.NewReader(bytes.NewReader(wire))
	typ, payload, _, err := ReadReplFrame(br, nil)
	if err != nil {
		t.Fatalf("ReadReplFrame: %v", err)
	}
	if typ != ReplFrameAck {
		t.Fatalf("frame type %q, want %q", typ, ReplFrameAck)
	}
	acked, err := DecodeReplAckFrame(payload)
	if err != nil {
		t.Fatalf("DecodeReplAckFrame: %v", err)
	}
	if acked != 987654321 {
		t.Fatalf("acked = %d", acked)
	}
	if _, err := DecodeReplAckFrame(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeReplAckFrame(nil); err == nil {
		t.Fatal("empty ack accepted")
	}
}
