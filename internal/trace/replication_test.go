package trace

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	want := ReplHello{Proto: ReplicationProtoVersion, ParamsHash: 0xdeadbeefcafef00d, From: 123456, Window: 512}
	wire := AppendReplHello(nil, want)
	got, err := ReadReplHello(bufio.NewReader(bytes.NewReader(wire)))
	if err != nil {
		t.Fatalf("ReadReplHello: %v", err)
	}
	if got != want {
		t.Fatalf("hello round trip: got %+v want %+v", got, want)
	}
	if _, err := ReadReplHello(bufio.NewReader(bytes.NewReader(wire[:len(wire)-1]))); err == nil {
		t.Fatal("truncated hello decoded cleanly")
	}
	if _, err := ReadReplHello(bufio.NewReader(bytes.NewReader(append([]byte("XXXX"), wire[4:]...)))); err == nil {
		t.Fatal("bad magic decoded cleanly")
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	for _, want := range []ReplAck{
		{Proto: 1, Window: 256, Oldest: 10, Next: 999},
		{Err: &StreamError{Code: ReplCodeCompacted, Msg: "records [0, 512) compacted away"}},
	} {
		wire := AppendReplAck(nil, want)
		got, err := ReadReplAck(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("ReadReplAck(%+v): %v", want, err)
		}
		if want.Err == nil {
			if got != want {
				t.Fatalf("ack round trip: got %+v want %+v", got, want)
			}
		} else if got.Err == nil || *got.Err != *want.Err {
			t.Fatalf("rejection round trip: got %+v want %+v", got.Err, want.Err)
		}
	}
}

func TestReplRecordRoundTrip(t *testing.T) {
	frame := EncodeFrameAppend(nil, []Event{{Branch: 7, Taken: true, Gap: 3}, {Branch: 9, Gap: 1}})
	want := ReplRecord{
		Seq:              1 << 40,
		Durable:          (1 << 40) + 17,
		ShippedUnixNanos: 1754550000123456789,
		Program:          "gzip",
		Frame:            frame,
	}
	wire := AppendReplRecord(nil, want)

	br := bufio.NewReader(bytes.NewReader(wire))
	typ, payload, _, err := ReadReplFrame(br, nil)
	if err != nil {
		t.Fatalf("ReadReplFrame: %v", err)
	}
	if typ != ReplFrameRecord {
		t.Fatalf("frame type %q, want %q", typ, ReplFrameRecord)
	}
	got, err := DecodeReplRecord(payload)
	if err != nil {
		t.Fatalf("DecodeReplRecord: %v", err)
	}
	if got.Seq != want.Seq || got.Durable != want.Durable ||
		got.ShippedUnixNanos != want.ShippedUnixNanos || got.Program != want.Program {
		t.Fatalf("record header round trip: got %+v", got)
	}
	if !reflect.DeepEqual(got.Frame, frame) {
		t.Fatal("frame payload diverges")
	}
	// Malformed payloads must be rejected, not misparsed.
	for cut := 0; cut < len(payload); cut++ {
		if rec, err := DecodeReplRecord(payload[:cut]); err == nil {
			// Shorter prefixes can still parse if the frame payload is
			// merely shortened — the trace decode happens later — but the
			// program field must never read out of bounds.
			if len(rec.Program) > len(payload) {
				t.Fatalf("cut %d produced an out-of-bounds program", cut)
			}
		}
	}
}

func TestReplAckFrameRoundTrip(t *testing.T) {
	wire := AppendReplAckFrame(nil, 987654321)
	br := bufio.NewReader(bytes.NewReader(wire))
	typ, payload, _, err := ReadReplFrame(br, nil)
	if err != nil {
		t.Fatalf("ReadReplFrame: %v", err)
	}
	if typ != ReplFrameAck {
		t.Fatalf("frame type %q, want %q", typ, ReplFrameAck)
	}
	acked, err := DecodeReplAckFrame(payload)
	if err != nil {
		t.Fatalf("DecodeReplAckFrame: %v", err)
	}
	if acked != 987654321 {
		t.Fatalf("acked = %d", acked)
	}
	if _, err := DecodeReplAckFrame(append(payload, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeReplAckFrame(nil); err == nil {
		t.Fatal("empty ack accepted")
	}
}
