package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream sessions wrap the frame codec for long-lived connections: instead of
// one HTTP POST per batch, a client performs a single handshake (program
// name, controller parameter hash, protocol version, requested window) and
// then pipelines event frames continuously, receiving decision frames back on
// the same connection. This file defines only the session wire format — the
// handshake pair and the typed, length-prefixed session frames; what the
// payloads *mean* (decisions, credit accounting) belongs to the server and
// client on top.
//
// Session wire format, after any transport preamble (HTTP upgrade or a raw
// TCP connect):
//
//	client → server   handshake:
//	  magic       "RSHS" [4]byte
//	  proto       uvarint   (StreamProtoVersion)
//	  paramsHash  uvarint   (controller-parameter hash; see server.ParamsHash)
//	  window      uvarint   (requested in-flight event frames; 0 = server default)
//	  program     uvarint length + bytes
//
//	server → client   handshake ack:
//	  magic       "RSHA" [4]byte
//	  status      byte      (0 = ok, 1 = rejected)
//	  ok:       proto uvarint, window uvarint (granted), paramsHash uvarint
//	  rejected: code uvarint length + bytes, msg uvarint length + bytes
//
// After an ok ack, both directions speak typed session frames:
//
//	frame:
//	  type     byte
//	  length   uvarint  (payload bytes, capped at MaxFramePayload)
//	  payload
//
// Client → server frame types:
//
//	'E'  events   payload is one trace blob (EncodeFrame payload)
//	'C'  close    empty payload; the client is done sending
//
// Server → client frame types:
//
//	'D'  decisions  one applied event frame's results; returns one credit
//	'd'  decisions  same results, run-length encoded (proto >= 3)
//	'x'  decisions  same results as a change list (proto >= 3, change-only
//	                flag granted); both coalesced forms return one credit
//	'R'  reject     one corrupt event frame's diagnostic; returns one credit
//	'T'  terminal   code + msg (StreamError layout); the session is over
//
// Credit: the ack's window advertises how many event frames may be in flight
// (sent but not yet answered by a 'D' or 'R'). The client blocks further
// sends when the window is exhausted; every 'D'/'R' frame implicitly returns
// exactly one credit. The server never answers out of order.
const (
	// StreamProtoVersion is the newest session protocol version this build
	// speaks. The handshake negotiates down: the server acks
	// min(client, server), and both sides speak the acked version, so a
	// proto-1 peer talks to a proto-2 one exactly as before.
	//
	// Version history:
	//
	//	1  the original session format
	//	2  'E' frame payloads gain a leading uvarint trace ID (0 = the
	//	   batch is untraced); everything else is unchanged
	//	3  decision frames may be coalesced: the server may answer with a
	//	   run-length-encoded 'd' frame, or — when the change-only session
	//	   flag was negotiated — a change-list 'x' frame; 'D' stays valid,
	//	   and the proto/flag uvarints in RSHS/RSHA carry session flags in
	//	   their high bits (see StreamFlagChangeOnly)
	//	4  'E' frame payloads gain a uvarint speculation-kind tag (see
	//	   Kind) between the trace ID and the trace blob; at proto <= 3
	//	   every frame is implicitly kind=branch and the bytes are
	//	   unchanged
	StreamProtoVersion = 4
	// StreamProtoMin is the oldest protocol version still accepted.
	StreamProtoMin = 1

	// streamFlagShift is where session flags sit inside the handshake and
	// ack proto uvarints: raw = version | flags<<16. A pre-proto-3 server
	// reads the whole raw value as one big version number and negotiates
	// down to its own, so flags degrade to "not granted" without a wire
	// change; a pre-proto-3 client never sets flags and sees today's exact
	// bytes back (a zero flags field leaves the uvarint unchanged).
	streamFlagShift = 16

	// StreamFlagChangeOnly asks for the decisions-on-change-only session
	// mode: the server answers applied frames with 'x' change-list frames
	// (first decision byte + (gap, byte) deltas) instead of the full
	// decision vector. Only honored at negotiated proto >= 3; the server
	// echoes the granted flags in the ack.
	StreamFlagChangeOnly = uint32(1) << 0

	// streamFlagsKnown is the set of flags this build understands; a server
	// grants at most the intersection of the client's request and this set.
	streamFlagsKnown = StreamFlagChangeOnly

	// StreamFrameEvents carries one trace blob of events (client → server).
	StreamFrameEvents = byte('E')
	// StreamFrameClose announces the end of the client's event stream.
	StreamFrameClose = byte('C')
	// StreamFrameDecisions carries one applied frame's decision bytes
	// (server → client).
	StreamFrameDecisions = byte('D')
	// StreamFrameDecisionsRLE carries one applied frame's decisions
	// run-length encoded (server → client, proto >= 3). Equivalent to a
	// 'D' frame after DecodeDecisionsRLE; returns one credit.
	StreamFrameDecisionsRLE = byte('d')
	// StreamFrameDecisionsChanges carries one applied frame's decisions as
	// a change list (server → client, proto >= 3 with the change-only flag
	// granted). Equivalent to a 'D' frame after DecodeDecisionsChanges;
	// returns one credit.
	StreamFrameDecisionsChanges = byte('x')
	// StreamFrameReject carries one rejected frame's diagnostic text
	// (server → client).
	StreamFrameReject = byte('R')
	// StreamFrameTerminal ends the session with a StreamError payload
	// (server → client).
	StreamFrameTerminal = byte('T')
)

// Terminal and handshake-rejection codes. The code is the machine-readable
// half of a StreamError; msg carries the human diagnostic.
const (
	// StreamCodeBye is the clean terminal after a client close frame.
	StreamCodeBye = "bye"
	// StreamCodeDraining reports a session ended by server drain.
	StreamCodeDraining = "draining"
	// StreamCodeBadFrame reports a session whose framing was lost.
	StreamCodeBadFrame = "bad_frame"
	// StreamCodeProtoMismatch rejects a handshake with the wrong protocol
	// version.
	StreamCodeProtoMismatch = "proto_mismatch"
	// StreamCodeParamMismatch rejects a handshake whose controller
	// parameter hash differs from the server's.
	StreamCodeParamMismatch = "param_mismatch"
	// StreamCodeMalformed rejects a handshake that failed validation.
	StreamCodeMalformed = "malformed"
	// StreamCodeInternal reports a server-side failure (e.g. the write-ahead
	// log rejecting an append) that ends the session before the frame's
	// events were applied.
	StreamCodeInternal = "internal"
	// StreamCodeReadOnly rejects ingest on a replica: followers serve
	// decisions and metrics but writes belong to the primary.
	StreamCodeReadOnly = "read_only"
)

// MaxHandshakeProgram caps the program-name length a handshake may carry; a
// corrupted length must not force a giant allocation.
const MaxHandshakeProgram = 1 << 12

// ErrBadHandshake reports a stream handshake (or ack) that could not be
// decoded: wrong magic, truncated fields, or out-of-range lengths.
var ErrBadHandshake = errors.New("trace: malformed stream handshake")

var (
	handshakeMagic = [4]byte{'R', 'S', 'H', 'S'}
	handshakeAck   = [4]byte{'R', 'S', 'H', 'A'}
)

// Handshake opens a stream session: who is speaking (Program), under which
// controller parameters (ParamsHash), with which protocol revision, session
// flags (StreamFlag*; proto >= 3), and requested pipeline window.
type Handshake struct {
	Proto      uint32
	Flags      uint32
	ParamsHash uint64
	Window     uint32
	Program    string
}

// AppendHandshake appends h's wire form to dst. Flags ride in the high bits
// of the proto uvarint, so a zero Flags field produces exactly the pre-flag
// wire bytes.
func AppendHandshake(dst []byte, h Handshake) []byte {
	dst = append(dst, handshakeMagic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(uint64(h.Proto) | uint64(h.Flags)<<streamFlagShift)
	put(h.ParamsHash)
	put(uint64(h.Window))
	put(uint64(len(h.Program)))
	return append(dst, h.Program...)
}

// ReadHandshake decodes one handshake from r. Malformed input fails with an
// error wrapping ErrBadHandshake.
func ReadHandshake(r *bufio.Reader) (Handshake, error) {
	var h Handshake
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, fmt.Errorf("%w: reading magic: %v", ErrBadHandshake, err)
	}
	if magic != handshakeMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadHandshake, magic[:])
	}
	proto, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading protocol version: %v", ErrBadHandshake, err)
	}
	if proto > uint64(^uint32(0)) {
		return h, fmt.Errorf("%w: protocol version %d out of range", ErrBadHandshake, proto)
	}
	h.Flags = uint32(proto >> streamFlagShift)
	proto &= (1 << streamFlagShift) - 1
	if h.ParamsHash, err = binary.ReadUvarint(r); err != nil {
		return h, fmt.Errorf("%w: reading params hash: %v", ErrBadHandshake, err)
	}
	window, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading window: %v", ErrBadHandshake, err)
	}
	if window > uint64(^uint32(0)) {
		return h, fmt.Errorf("%w: window %d out of range", ErrBadHandshake, window)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading program length: %v", ErrBadHandshake, err)
	}
	if n > MaxHandshakeProgram {
		return h, fmt.Errorf("%w: program name length %d exceeds the %d-byte cap",
			ErrBadHandshake, n, MaxHandshakeProgram)
	}
	program := make([]byte, n)
	if _, err := io.ReadFull(r, program); err != nil {
		return h, fmt.Errorf("%w: reading program name: %v", ErrBadHandshake, err)
	}
	h.Proto = uint32(proto)
	h.Window = uint32(window)
	h.Program = string(program)
	return h, nil
}

// Ack answers a handshake: either a grant (protocol version, granted session
// flags, window, and the server's parameter hash echoed back) or a rejection
// carrying a StreamError.
type Ack struct {
	Proto      uint32
	Flags      uint32
	Window     uint32
	ParamsHash uint64
	// Err is non-nil on a rejected handshake; the grant fields are zero.
	Err *StreamError
}

// AppendAck appends a's wire form to dst. Like the handshake, granted flags
// ride in the high bits of the proto uvarint: a server granting no flags
// (every pre-proto-3 negotiation) emits exactly the pre-flag wire bytes.
func AppendAck(dst []byte, a Ack) []byte {
	dst = append(dst, handshakeAck[:]...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putStr := func(s string) { put(uint64(len(s))); dst = append(dst, s...) }
	if a.Err != nil {
		dst = append(dst, 1)
		putStr(a.Err.Code)
		putStr(a.Err.Msg)
		return dst
	}
	dst = append(dst, 0)
	put(uint64(a.Proto) | uint64(a.Flags)<<streamFlagShift)
	put(uint64(a.Window))
	put(a.ParamsHash)
	return dst
}

// ReadAck decodes one handshake ack from r. A rejected handshake decodes
// cleanly into an Ack with Err set — the rejection is the peer's answer, not
// a wire fault.
func ReadAck(r *bufio.Reader) (Ack, error) {
	var a Ack
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return a, fmt.Errorf("%w: reading ack magic: %v", ErrBadHandshake, err)
	}
	if magic != handshakeAck {
		return a, fmt.Errorf("%w: bad ack magic %q", ErrBadHandshake, magic[:])
	}
	status, err := r.ReadByte()
	if err != nil {
		return a, fmt.Errorf("%w: reading ack status: %v", ErrBadHandshake, err)
	}
	switch status {
	case 0:
		proto, err := binary.ReadUvarint(r)
		if err != nil {
			return a, fmt.Errorf("%w: reading ack protocol version: %v", ErrBadHandshake, err)
		}
		window, err := binary.ReadUvarint(r)
		if err != nil {
			return a, fmt.Errorf("%w: reading ack window: %v", ErrBadHandshake, err)
		}
		if proto > uint64(^uint32(0)) || window > uint64(^uint32(0)) {
			return a, fmt.Errorf("%w: ack field out of range", ErrBadHandshake)
		}
		if a.ParamsHash, err = binary.ReadUvarint(r); err != nil {
			return a, fmt.Errorf("%w: reading ack params hash: %v", ErrBadHandshake, err)
		}
		a.Flags = uint32(proto >> streamFlagShift)
		a.Proto = uint32(proto) & (1<<streamFlagShift - 1)
		a.Window = uint32(window)
		return a, nil
	case 1:
		se, err := readStreamError(r)
		if err != nil {
			return a, err
		}
		a.Err = &se
		return a, nil
	default:
		return a, fmt.Errorf("%w: unknown ack status %d", ErrBadHandshake, status)
	}
}

// StreamError is the typed payload of a terminal frame and of a rejected
// handshake: a machine-readable code plus a human diagnostic.
type StreamError struct {
	Code string
	Msg  string
}

func (e *StreamError) Error() string {
	if e.Msg == "" {
		return "stream terminated: " + e.Code
	}
	return fmt.Sprintf("stream terminated: %s: %s", e.Code, e.Msg)
}

// maxStreamErrorText caps the code and message lengths of a StreamError.
const maxStreamErrorText = 1 << 12

// AppendStreamError appends e's payload form (code + msg, each
// length-prefixed) to dst.
func AppendStreamError(dst []byte, e StreamError) []byte {
	var tmp [binary.MaxVarintLen64]byte
	putStr := func(s string) {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(s)))]...)
		dst = append(dst, s...)
	}
	putStr(e.Code)
	putStr(e.Msg)
	return dst
}

// DecodeStreamError decodes a StreamError payload (a terminal frame's body).
func DecodeStreamError(payload []byte) (StreamError, error) {
	r := bytes.NewReader(payload)
	br := bufio.NewReader(r)
	se, err := readStreamError(br)
	if err != nil {
		return se, err
	}
	if trailing := br.Buffered() + r.Len(); trailing > 0 {
		return se, fmt.Errorf("%w: %d trailing bytes after stream error", ErrBadHandshake, trailing)
	}
	return se, nil
}

func readStreamError(r *bufio.Reader) (StreamError, error) {
	var se StreamError
	read := func(field string) (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return "", fmt.Errorf("%w: reading %s length: %v", ErrBadHandshake, field, err)
		}
		if n > maxStreamErrorText {
			return "", fmt.Errorf("%w: %s length %d exceeds the %d-byte cap",
				ErrBadHandshake, field, n, maxStreamErrorText)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("%w: reading %s: %v", ErrBadHandshake, field, err)
		}
		return string(b), nil
	}
	var err error
	if se.Code, err = read("error code"); err != nil {
		return se, err
	}
	if se.Msg, err = read("error message"); err != nil {
		return se, err
	}
	return se, nil
}

// NegotiateStreamProto picks the session protocol both sides will speak:
// the older of the client's and this build's versions. ok is false when the
// client is older than StreamProtoMin.
func NegotiateStreamProto(clientProto uint32) (proto uint32, ok bool) {
	if clientProto < StreamProtoMin {
		return 0, false
	}
	if clientProto < StreamProtoVersion {
		return clientProto, true
	}
	return StreamProtoVersion, true
}

// NegotiateStreamFlags picks the session flags a server grants: the
// intersection of what the client requested and what this build understands,
// and nothing at all below proto 3 — pre-flag peers must see byte-identical
// acks.
func NegotiateStreamFlags(proto, requested uint32) uint32 {
	if proto < 3 {
		return 0
	}
	return requested & streamFlagsKnown
}

// AppendTraceContext appends the proto-2 trace context — one uvarint trace
// ID, zero meaning untraced — that prefixes an 'E' frame payload.
func AppendTraceContext(dst []byte, traceID uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], traceID)]...)
}

// CutTraceContext splits a proto-2 'E' frame payload into its trace ID and
// the trace blob that follows.
func CutTraceContext(payload []byte) (traceID uint64, rest []byte, err error) {
	traceID, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: events frame trace context is malformed", ErrBadFrame)
	}
	return traceID, payload[n:], nil
}

// AppendSessionFrame appends one typed session frame (type byte, uvarint
// payload length, payload) to dst.
func AppendSessionFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))]...)
	return append(dst, payload...)
}

// ReadSessionFrame reads one typed session frame from r, reusing scratch for
// the payload when it is large enough. The returned payload aliases scratch
// (or a new buffer) and is valid until the next call with the same scratch.
// Framing damage — an unreadable type byte, an over-cap length, a truncated
// payload — fails with an error wrapping ErrBadFrame; a clean EOF at a frame
// boundary returns io.EOF.
func ReadSessionFrame(r *bufio.Reader, scratch []byte) (typ byte, payload, newScratch []byte, err error) {
	return readSessionFrameCap(r, scratch, MaxFramePayload)
}

// readSessionFrameCap is ReadSessionFrame with an explicit payload cap; the
// replication channel needs a slightly larger one because its record frames
// wrap a full trace frame payload plus the program name and seq metadata.
func readSessionFrameCap(r *bufio.Reader, scratch []byte, maxPayload uint64) (typ byte, payload, newScratch []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, scratch, io.EOF
		}
		return 0, nil, scratch, fmt.Errorf("%w: reading session frame type: %v", ErrBadFrame, err)
	}
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, scratch, fmt.Errorf("%w: reading session frame length: %v", ErrBadFrame, err)
	}
	if length > maxPayload {
		return 0, nil, scratch, fmt.Errorf("%w: session frame length %d exceeds the %d-byte cap",
			ErrBadFrame, length, maxPayload)
	}
	if uint64(cap(scratch)) < length {
		scratch = make([]byte, length)
	}
	payload = scratch[:length]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, scratch, fmt.Errorf("%w: session frame truncated (%d-byte payload): %v",
			ErrBadFrame, length, err)
	}
	return typ, payload, scratch, nil
}

// ReadSessionFrameBuffered is ReadSessionFrame minus the payload copy: when
// the frame's payload fits inside r's internal buffer, the returned slice
// aliases that buffer directly (Peek + Discard) and no bytes are copied out.
// The payload is valid only until the next read from r — the same "until the
// next call" lifetime as the scratch-backed variant, tightened to any read.
// Frames larger than r's buffer fall back to scratch exactly like
// ReadSessionFrame, and every error matches its wire diagnostics.
func ReadSessionFrameBuffered(r *bufio.Reader, scratch []byte) (typ byte, payload, newScratch []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, scratch, io.EOF
		}
		return 0, nil, scratch, fmt.Errorf("%w: reading session frame type: %v", ErrBadFrame, err)
	}
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, scratch, fmt.Errorf("%w: reading session frame length: %v", ErrBadFrame, err)
	}
	if length > MaxFramePayload {
		return 0, nil, scratch, fmt.Errorf("%w: session frame length %d exceeds the %d-byte cap",
			ErrBadFrame, length, MaxFramePayload)
	}
	if length <= uint64(r.Size()) {
		buf, perr := r.Peek(int(length))
		if perr != nil {
			// Mirror io.ReadFull's truncation semantics: EOF after a
			// partial payload is an unexpected EOF.
			if perr == io.EOF && len(buf) > 0 {
				perr = io.ErrUnexpectedEOF
			}
			return 0, nil, scratch, fmt.Errorf("%w: session frame truncated (%d-byte payload): %v",
				ErrBadFrame, length, perr)
		}
		r.Discard(int(length))
		return typ, buf, scratch, nil
	}
	if uint64(cap(scratch)) < length {
		scratch = make([]byte, length)
	}
	payload = scratch[:length]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, scratch, fmt.Errorf("%w: session frame truncated (%d-byte payload): %v",
			ErrBadFrame, length, err)
	}
	return typ, payload, scratch, nil
}
