// Package trace defines the branch-event stream representation shared by the
// workload generators, the speculation controllers, and the simulation
// harnesses.
//
// A stream is the functional-simulation abstraction used throughout the
// paper's Sections 2 and 3: program execution is reduced to the sequence of
// dynamic conditional-branch instances, each identified by its static branch,
// its outcome, and the number of dynamic instructions it accounts for.
package trace

// BranchID identifies a static conditional branch within one workload.
// IDs are dense, starting at zero, so implementations may index slices by it.
type BranchID uint32

// Event is one dynamic execution of a static conditional branch.
type Event struct {
	// Branch is the static branch that executed.
	Branch BranchID
	// Taken reports the branch outcome.
	Taken bool
	// Gap is the number of dynamic instructions attributed to this event:
	// the instructions executed since the previous event, including the
	// branch itself. It is always at least 1.
	Gap uint32
}

// Stream produces a finite sequence of events.
//
// Next returns the next event and true, or a zero Event and false once the
// stream is exhausted. Streams are single-use unless documented otherwise.
type Stream interface {
	Next() (Event, bool)
}

// ResetStream is a Stream that can be rewound and replayed from the start.
// Workload generators implement it so that two-pass techniques
// (e.g. self-training) can profile and evaluate the identical sequence.
type ResetStream interface {
	Stream
	// Reset rewinds the stream to its beginning.
	Reset()
}

// SliceStream replays a fixed slice of events. It implements ResetStream.
type SliceStream struct {
	events []Event
	pos    int
}

// NewSliceStream returns a stream over events. The slice is not copied.
func NewSliceStream(events []Event) *SliceStream {
	return &SliceStream{events: events}
}

// Next implements Stream.
func (s *SliceStream) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, true
}

// Reset implements ResetStream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of events in the stream.
func (s *SliceStream) Len() int { return len(s.events) }

// Collect drains a stream into a slice. Intended for tests and small runs;
// full-scale workloads should be consumed incrementally.
func Collect(s Stream) []Event {
	var events []Event
	for {
		ev, ok := s.Next()
		if !ok {
			return events
		}
		events = append(events, ev)
	}
}

// Head returns a stream that yields at most n events from s.
func Head(s Stream, n uint64) Stream { return &headStream{s: s, left: n} }

type headStream struct {
	s    Stream
	left uint64
}

func (h *headStream) Next() (Event, bool) {
	if h.left == 0 {
		return Event{}, false
	}
	h.left--
	return h.s.Next()
}

// Filter returns a stream yielding only the events of s for which keep
// returns true. Instruction gaps of dropped events are folded into the next
// kept event so that instruction counts are preserved.
func Filter(s Stream, keep func(Event) bool) Stream {
	return &filterStream{s: s, keep: keep}
}

type filterStream struct {
	s    Stream
	keep func(Event) bool
}

func (f *filterStream) Next() (Event, bool) {
	var carry uint64
	for {
		ev, ok := f.s.Next()
		if !ok {
			return Event{}, false
		}
		if f.keep(ev) {
			g := carry + uint64(ev.Gap)
			if g > 1<<32-1 {
				g = 1<<32 - 1
			}
			ev.Gap = uint32(g)
			return ev, true
		}
		carry += uint64(ev.Gap)
	}
}

// Counter wraps a stream and tracks the running totals of events and
// instructions that have passed through it.
type Counter struct {
	S      Stream
	Events uint64
	Instrs uint64
}

// Next implements Stream.
func (c *Counter) Next() (Event, bool) {
	ev, ok := c.S.Next()
	if ok {
		c.Events++
		c.Instrs += uint64(ev.Gap)
	}
	return ev, ok
}
