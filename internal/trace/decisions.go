package trace

import (
	"encoding/binary"
	"fmt"
)

// Decision coalescing for stream-proto-3 sessions. A 'D' frame carries one
// applied event frame's decisions verbatim — a uvarint count followed by one
// byte per event — which is overwhelmingly redundant: the controller holds a
// steady verdict for long stretches, so a 1024-event frame typically carries
// a handful of distinct values. Proto 3 adds two coalesced forms, both
// decoding to exactly the bytes the plain frame would have carried:
//
//	'd'  run-length encoded:
//	  count  uvarint  (decision bytes this frame decodes to)
//	  runs:  (runLen uvarint >= 1, value byte) pairs; runLens sum to count
//
//	'x'  change list (the decisions-on-change-only session mode):
//	  count  uvarint
//	  first  byte     (the decision at index 0; absent when count is 0)
//	  pairs: (gap uvarint >= 1, value byte) — each pair changes the value
//	         at index lastIndex+gap; indices stay < count; every index
//	         between changes repeats the previous value
//
// Both forms are self-contained per frame (no state carried across frames),
// so a lost or reordered read cannot desynchronize reconstruction. Worst
// case (a vector that changes every byte) each form costs two bytes per
// decision; senders are expected to fall back to the plain 'D' form whenever
// coalescing does not strictly shrink the payload, which bounds the wire
// cost at the plain encoding.

// AppendDecisionsPlain appends the plain 'D' decisions payload — a uvarint
// count followed by the raw decision bytes — to dst.
func AppendDecisionsPlain(dst []byte, decisions []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(decisions)))]...)
	return append(dst, decisions...)
}

// AppendDecisionsRLE appends the run-length-encoded 'd' payload for
// decisions to dst.
func AppendDecisionsRLE(dst []byte, decisions []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(decisions)))]...)
	for i := 0; i < len(decisions); {
		j := i + 1
		for j < len(decisions) && decisions[j] == decisions[i] {
			j++
		}
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(j-i))]...)
		dst = append(dst, decisions[i])
		i = j
	}
	return dst
}

// DecodeDecisionsRLE decodes a 'd' payload, appending the reconstructed
// decision bytes to dst and returning the extended slice. Malformed input —
// a zero or overlong run, a truncated pair, trailing bytes — fails with an
// error wrapping ErrBadFrame, and dst is returned unchanged. The declared
// count is capped at MaxFramePayload so a corrupt header cannot force a
// giant allocation.
func DecodeDecisionsRLE(payload []byte, dst []byte) ([]byte, error) {
	base := len(dst)
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("%w: reading RLE decisions count", ErrBadFrame)
	}
	if count > MaxFramePayload {
		return dst, fmt.Errorf("%w: RLE decisions count %d exceeds the %d cap",
			ErrBadFrame, count, uint64(MaxFramePayload))
	}
	off := n
	var got uint64
	for got < count {
		runLen, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return dst[:base], fmt.Errorf("%w: reading RLE run length at byte offset %d (%d of %d decisions decoded)",
				ErrBadFrame, off, got, count)
		}
		off += n
		if runLen == 0 || runLen > count-got {
			return dst[:base], fmt.Errorf("%w: RLE run length %d invalid at byte offset %d (%d of %d decisions decoded)",
				ErrBadFrame, runLen, off, got, count)
		}
		if off >= len(payload) {
			return dst[:base], fmt.Errorf("%w: RLE run value truncated at byte offset %d (%d of %d decisions decoded)",
				ErrBadFrame, off, got, count)
		}
		v := payload[off]
		off++
		for i := uint64(0); i < runLen; i++ {
			dst = append(dst, v)
		}
		got += runLen
	}
	if off != len(payload) {
		return dst[:base], fmt.Errorf("%w: %d trailing bytes after %d RLE decisions",
			ErrBadFrame, len(payload)-off, count)
	}
	return dst, nil
}

// AppendDecisionsChanges appends the change-list 'x' payload for decisions
// to dst.
func AppendDecisionsChanges(dst []byte, decisions []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(len(decisions)))]...)
	if len(decisions) == 0 {
		return dst
	}
	dst = append(dst, decisions[0])
	last := 0
	for i := 1; i < len(decisions); i++ {
		if decisions[i] != decisions[last] {
			dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(i-last))]...)
			dst = append(dst, decisions[i])
			last = i
		}
	}
	return dst
}

// DecodeDecisionsChanges decodes an 'x' payload, appending the reconstructed
// decision bytes to dst and returning the extended slice. Malformed input —
// a zero gap, an index at or past count, a truncated pair, trailing bytes —
// fails with an error wrapping ErrBadFrame, and dst is returned unchanged.
// The declared count is capped at MaxFramePayload.
func DecodeDecisionsChanges(payload []byte, dst []byte) ([]byte, error) {
	base := len(dst)
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("%w: reading change-list decisions count", ErrBadFrame)
	}
	if count > MaxFramePayload {
		return dst, fmt.Errorf("%w: change-list decisions count %d exceeds the %d cap",
			ErrBadFrame, count, uint64(MaxFramePayload))
	}
	off := n
	if count == 0 {
		if off != len(payload) {
			return dst, fmt.Errorf("%w: %d trailing bytes after empty change list",
				ErrBadFrame, len(payload)-off)
		}
		return dst, nil
	}
	if off >= len(payload) {
		return dst, fmt.Errorf("%w: change list missing its first decision (count %d)",
			ErrBadFrame, count)
	}
	v := payload[off]
	off++
	dst = append(dst, v)
	idx := uint64(0)
	for off < len(payload) {
		gap, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return dst[:base], fmt.Errorf("%w: reading change gap at byte offset %d (index %d of %d)",
				ErrBadFrame, off, idx, count)
		}
		off += n
		if gap == 0 || gap > count-1-idx {
			return dst[:base], fmt.Errorf("%w: change gap %d invalid at byte offset %d (index %d of %d)",
				ErrBadFrame, gap, off, idx, count)
		}
		if off >= len(payload) {
			return dst[:base], fmt.Errorf("%w: change value truncated at byte offset %d (index %d of %d)",
				ErrBadFrame, off, idx, count)
		}
		nv := payload[off]
		off++
		for i := uint64(1); i < gap; i++ {
			dst = append(dst, v)
		}
		dst = append(dst, nv)
		idx += gap
		v = nv
	}
	for i := idx + 1; i < count; i++ {
		dst = append(dst, v)
	}
	return dst, nil
}
