package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// decisionVectors covers the shapes that matter for coalescing: empty, one
// byte, constant runs, alternating worst case, and mixed run structure.
func decisionVectors() map[string][]byte {
	long := make([]byte, 4096)
	for i := range long {
		long[i] = byte((i / 97) % 5)
	}
	alternating := make([]byte, 257)
	for i := range alternating {
		alternating[i] = byte(i % 2)
	}
	rnd := rand.New(rand.NewSource(42))
	random := make([]byte, 1023)
	for i := range random {
		random[i] = byte(rnd.Intn(4))
	}
	return map[string][]byte{
		"empty":       {},
		"one":         {3},
		"constant":    bytes.Repeat([]byte{1}, 1024),
		"two runs":    append(bytes.Repeat([]byte{0}, 100), bytes.Repeat([]byte{2}, 100)...),
		"alternating": alternating,
		"long mixed":  long,
		"random":      random,
	}
}

func TestDecisionsRLERoundTrip(t *testing.T) {
	for name, want := range decisionVectors() {
		enc := AppendDecisionsRLE(nil, want)
		got, err := DecodeDecisionsRLE(enc, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip changed the bytes: got %d, want %d", name, len(got), len(want))
		}
		// Appending must extend dst, not clobber it.
		prefix := []byte{9, 9}
		got, err = DecodeDecisionsRLE(enc, prefix)
		if err != nil {
			t.Fatalf("%s: decode with prefix: %v", name, err)
		}
		if !bytes.Equal(got[:2], []byte{9, 9}) || !bytes.Equal(got[2:], want) {
			t.Fatalf("%s: append semantics broken", name)
		}
	}
}

func TestDecisionsChangesRoundTrip(t *testing.T) {
	for name, want := range decisionVectors() {
		enc := AppendDecisionsChanges(nil, want)
		got, err := DecodeDecisionsChanges(enc, nil)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip changed the bytes: got %d, want %d", name, len(got), len(want))
		}
	}
}

// TestDecisionsCoalescedShrink pins the point of coalescing: on a run-heavy
// vector both forms beat the plain payload, and on a constant tail the change
// list beats RLE.
func TestDecisionsCoalescedShrink(t *testing.T) {
	v := bytes.Repeat([]byte{1}, 1024)
	plain := AppendDecisionsPlain(nil, v)
	rle := AppendDecisionsRLE(nil, v)
	changes := AppendDecisionsChanges(nil, v)
	if len(rle) >= len(plain) || len(changes) >= len(plain) {
		t.Fatalf("coalescing did not shrink a constant vector: plain %d, rle %d, changes %d",
			len(plain), len(rle), len(changes))
	}
	if len(changes) >= len(rle) {
		t.Fatalf("change list (%d bytes) should beat RLE (%d bytes) on a constant vector",
			len(changes), len(rle))
	}
}

// uv encodes one uvarint into a freshly allocated slice so test cases never
// alias each other's backing arrays.
func uv(v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	return append([]byte(nil), b[:binary.PutUvarint(b[:], v)]...)
}

func TestDecodeDecisionsRLERejectsDamage(t *testing.T) {
	good := AppendDecisionsRLE(nil, []byte{1, 1, 2, 2, 2, 3})
	cases := map[string][]byte{
		"empty":         {},
		"truncated run": good[:len(good)-1],
		"count only":    good[:1],
		"trailing":      append(append([]byte{}, good...), 0),
		// A zero run length can never advance the decode.
		"zero run": append(uv(2), 0, 7, 2, 7),
		// Runs that overshoot the declared count.
		"overlong run": append(uv(2), 3, 7),
		// A count beyond the payload cap must be rejected before allocating.
		"giant count": uv(MaxFramePayload + 1),
	}
	for name, enc := range cases {
		dst := []byte{42}
		got, err := DecodeDecisionsRLE(enc, dst)
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("%s: dst changed on error: %v", name, got)
		}
	}
}

func TestDecodeDecisionsChangesRejectsDamage(t *testing.T) {
	good := AppendDecisionsChanges(nil, []byte{1, 1, 2, 2, 3})
	cases := map[string][]byte{
		"empty":           {},
		"truncated pair":  good[:len(good)-1],
		"missing first":   uv(3),
		"trailing empty":  append(uv(0), 9),
		"zero gap":        append(uv(3), 5, 0, 6),
		"gap past count":  append(uv(3), 5, 3, 6),
		"truncated value": append(uv(3), 5, 2),
		"giant count":     uv(MaxFramePayload + 1),
	}
	for name, enc := range cases {
		dst := []byte{42}
		got, err := DecodeDecisionsChanges(enc, dst)
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("%s: dst changed on error: %v", name, got)
		}
	}
}

// TestHandshakeFlagsRoundTrip checks that session flags survive both the
// handshake and the ack, and that a zero flags field produces exactly the
// pre-flag wire bytes — the proto-2 compatibility claim.
func TestHandshakeFlagsRoundTrip(t *testing.T) {
	h := Handshake{Proto: StreamProtoVersion, Flags: StreamFlagChangeOnly,
		ParamsHash: 0xfeed, Window: 8, Program: "gzip@0"}
	got, err := ReadHandshake(bufio.NewReader(bytes.NewReader(AppendHandshake(nil, h))))
	if err != nil || got != h {
		t.Fatalf("handshake flags round trip: %+v, %v", got, err)
	}
	a := Ack{Proto: StreamProtoVersion, Flags: StreamFlagChangeOnly, Window: 8, ParamsHash: 0xfeed}
	gotA, err := ReadAck(bufio.NewReader(bytes.NewReader(AppendAck(nil, a))))
	if err != nil || gotA != a {
		t.Fatalf("ack flags round trip: %+v, %v", gotA, err)
	}
}

// TestHandshakeZeroFlagsBytesUnchanged reproduces the proto-2 encoders by
// hand and pins that today's Append functions with zero Flags emit exactly
// those bytes, both directions.
func TestHandshakeZeroFlagsBytesUnchanged(t *testing.T) {
	var tmp [binary.MaxVarintLen64]byte
	old := append([]byte{}, 'R', 'S', 'H', 'S')
	put := func(v uint64) { old = append(old, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(2) // proto, as a proto-2 client encoded it
	put(0xabc)
	put(16)
	put(uint64(len("vpr@1")))
	old = append(old, "vpr@1"...)
	now := AppendHandshake(nil, Handshake{Proto: 2, ParamsHash: 0xabc, Window: 16, Program: "vpr@1"})
	if !bytes.Equal(now, old) {
		t.Fatalf("zero-flag handshake bytes differ from the proto-2 encoding:\n got %x\nwant %x", now, old)
	}

	oldAck := append([]byte{}, 'R', 'S', 'H', 'A', 0)
	putA := func(v uint64) { oldAck = append(oldAck, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putA(2)
	putA(16)
	putA(0xabc)
	nowAck := AppendAck(nil, Ack{Proto: 2, Window: 16, ParamsHash: 0xabc})
	if !bytes.Equal(nowAck, oldAck) {
		t.Fatalf("zero-flag ack bytes differ from the proto-2 encoding:\n got %x\nwant %x", nowAck, oldAck)
	}
}

func TestNegotiateStreamFlags(t *testing.T) {
	cases := []struct {
		proto, requested, want uint32
	}{
		{1, StreamFlagChangeOnly, 0},
		{2, StreamFlagChangeOnly, 0},
		{3, StreamFlagChangeOnly, StreamFlagChangeOnly},
		{3, 0, 0},
		{3, StreamFlagChangeOnly | 0x8000, StreamFlagChangeOnly}, // unknown bits dropped
	}
	for _, c := range cases {
		if got := NegotiateStreamFlags(c.proto, c.requested); got != c.want {
			t.Errorf("NegotiateStreamFlags(%d, %#x) = %#x, want %#x", c.proto, c.requested, got, c.want)
		}
	}
}

// FuzzDecisionsRLE differentially checks the RLE codec: every encoded vector
// decodes back to itself, and arbitrary payload bytes either decode cleanly
// or fail wrapping ErrBadFrame without touching dst.
func FuzzDecisionsRLE(f *testing.F) {
	f.Add([]byte{1, 1, 1, 2, 2, 3})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{7}, 300))
	// Truncation-seeded raw payloads.
	enc := AppendDecisionsRLE(nil, []byte{1, 1, 2, 3, 3, 3})
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:1])

	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential: encode(data) must decode back to data exactly.
		enc := AppendDecisionsRLE(nil, data)
		dec, err := DecodeDecisionsRLE(enc, nil)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip changed the bytes: %d != %d", len(dec), len(data))
		}
		// Coalescing must never beat the information content: every run is
		// at least two bytes, so the encoding never exceeds count+header and
		// the fallback comparison in the server stays sound.
		if len(enc) > binary.MaxVarintLen64+2*len(data) {
			t.Fatalf("encoding blew up: %d bytes for %d decisions", len(enc), len(data))
		}
		// Robustness: data as a raw payload must decode or reject cleanly.
		dst := []byte{99}
		got, err := DecodeDecisionsRLE(data, dst)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error %v does not wrap ErrBadFrame", err)
			}
			if len(got) != 1 || got[0] != 99 {
				t.Fatalf("dst changed on error")
			}
		}
	})
}

// FuzzDecisionsChanges is FuzzDecisionsRLE for the change-list codec.
func FuzzDecisionsChanges(f *testing.F) {
	f.Add([]byte{1, 1, 1, 2, 2, 3})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{7}, 300))
	enc := AppendDecisionsChanges(nil, []byte{1, 1, 2, 3, 3, 3})
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:1])

	f.Fuzz(func(t *testing.T, data []byte) {
		enc := AppendDecisionsChanges(nil, data)
		dec, err := DecodeDecisionsChanges(enc, nil)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip changed the bytes: %d != %d", len(dec), len(data))
		}
		dst := []byte{99}
		got, err := DecodeDecisionsChanges(data, dst)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error %v does not wrap ErrBadFrame", err)
			}
			if len(got) != 1 || got[0] != 99 {
				t.Fatalf("dst changed on error")
			}
		}
	})
}
