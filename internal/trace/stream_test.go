package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestHandshakeRoundTrip(t *testing.T) {
	for _, h := range []Handshake{
		{Proto: StreamProtoVersion, ParamsHash: 0xdeadbeefcafe, Window: 16, Program: "gzip@3"},
		{Proto: 7, ParamsHash: 0, Window: 0, Program: ""},
		{Proto: StreamProtoVersion, ParamsHash: ^uint64(0), Window: ^uint32(0), Program: strings.Repeat("p", MaxHandshakeProgram)},
	} {
		wire := AppendHandshake(nil, h)
		got, err := ReadHandshake(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("ReadHandshake(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestHandshakeRejectsDamage(t *testing.T) {
	wire := AppendHandshake(nil, Handshake{Proto: 1, ParamsHash: 42, Window: 4, Program: "p"})
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), wire[4:]...),
		"truncated":   wire[:len(wire)-1],
		"header only": wire[:4],
	}
	// An over-cap program length must be rejected before allocation.
	overlong := AppendHandshake(nil, Handshake{Proto: 1, Program: strings.Repeat("p", MaxHandshakeProgram+1)})
	cases["overlong program"] = overlong
	for name, wire := range cases {
		if _, err := ReadHandshake(bufio.NewReader(bytes.NewReader(wire))); !errors.Is(err, ErrBadHandshake) {
			t.Errorf("%s: err = %v, want ErrBadHandshake", name, err)
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	grant := Ack{Proto: StreamProtoVersion, Window: 32, ParamsHash: 99}
	got, err := ReadAck(bufio.NewReader(bytes.NewReader(AppendAck(nil, grant))))
	if err != nil {
		t.Fatal(err)
	}
	if got != grant {
		t.Fatalf("grant round trip %+v -> %+v", grant, got)
	}

	reject := Ack{Err: &StreamError{Code: StreamCodeParamMismatch, Msg: "hash 1 != 2"}}
	got, err = ReadAck(bufio.NewReader(bytes.NewReader(AppendAck(nil, reject))))
	if err != nil {
		t.Fatal(err)
	}
	if got.Err == nil || *got.Err != *reject.Err {
		t.Fatalf("reject round trip %+v -> %+v", reject, got)
	}
	if !strings.Contains(got.Err.Error(), StreamCodeParamMismatch) {
		t.Fatalf("StreamError.Error() = %q", got.Err.Error())
	}
}

func TestStreamErrorRoundTrip(t *testing.T) {
	se := StreamError{Code: StreamCodeDraining, Msg: "server shutting down"}
	got, err := DecodeStreamError(AppendStreamError(nil, se))
	if err != nil {
		t.Fatal(err)
	}
	if got != se {
		t.Fatalf("round trip %+v -> %+v", se, got)
	}
	if _, err := DecodeStreamError(append(AppendStreamError(nil, se), 0)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("trailing byte: err = %v, want ErrBadHandshake", err)
	}
	if _, err := DecodeStreamError(AppendStreamError(nil, se)[:3]); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("truncation: err = %v, want ErrBadHandshake", err)
	}
}

func TestSessionFrameRoundTrip(t *testing.T) {
	events := mkEvents(50)
	var wire []byte
	wire = AppendSessionFrame(wire, StreamFrameEvents, EncodeFrameAppend(nil, events))
	wire = AppendSessionFrame(wire, StreamFrameDecisions, []byte{1, 2, 3})
	wire = AppendSessionFrame(wire, StreamFrameClose, nil)

	br := bufio.NewReader(bytes.NewReader(wire))
	var scratch []byte

	typ, payload, scratch, err := ReadSessionFrame(br, scratch)
	if err != nil || typ != StreamFrameEvents {
		t.Fatalf("frame 1: type %q err %v", typ, err)
	}
	decoded, err := DecodeFrameAppend(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d of %d events", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, decoded[i], events[i])
		}
	}

	typ, payload, scratch, err = ReadSessionFrame(br, scratch)
	if err != nil || typ != StreamFrameDecisions || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("frame 2: type %q payload %v err %v", typ, payload, err)
	}
	typ, payload, scratch, err = ReadSessionFrame(br, scratch)
	if err != nil || typ != StreamFrameClose || len(payload) != 0 {
		t.Fatalf("frame 3: type %q payload %v err %v", typ, payload, err)
	}
	if _, _, _, err = ReadSessionFrame(br, scratch); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestSessionFrameRejectsDamage(t *testing.T) {
	good := AppendSessionFrame(nil, StreamFrameEvents, []byte("payload"))
	for name, wire := range map[string][]byte{
		"truncated payload": good[:len(good)-2],
		"length only":       good[:2],
		"over-cap length": {StreamFrameEvents,
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		_, _, _, err := ReadSessionFrame(bufio.NewReader(bytes.NewReader(wire)), nil)
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// TestSessionFrameScratchReuse pins the allocation contract: feeding the
// returned scratch back in reuses one buffer across frames.
func TestSessionFrameScratchReuse(t *testing.T) {
	var wire []byte
	for i := 0; i < 8; i++ {
		wire = AppendSessionFrame(wire, StreamFrameDecisions, bytes.Repeat([]byte{byte(i)}, 64))
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	_, first, scratch, err := ReadSessionFrame(br, make([]byte, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		var payload []byte
		_, payload, scratch, err = ReadSessionFrame(br, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if &payload[0] != &first[0] {
			t.Fatalf("frame %d did not reuse the scratch buffer", i)
		}
	}
}
