package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Replication sessions ship write-ahead-log records from a primary to a
// follower over one long-lived connection, reusing the stream session's
// framing conventions (typed frames, uvarint lengths, StreamError payloads)
// with the roles reversed: the *server* (primary) streams data and the
// *client* (follower) returns flow control.
//
// Replication wire format, after a raw TCP connect to the primary's
// replication listener:
//
//	follower → primary   hello:
//	  magic       "RSRH" [4]byte
//	  proto       uvarint   (ReplicationProtoVersion)
//	  paramsHash  uvarint   (controller-parameter hash; see server.ParamsHash)
//	  from        uvarint   (first WAL sequence number wanted)
//	  window      uvarint   (requested in-flight records; 0 = primary default)
//
//	primary → follower   hello ack:
//	  magic       "RSRA" [4]byte
//	  status      byte      (0 = ok, 1 = rejected)
//	  ok:       proto uvarint, window uvarint (granted),
//	            oldest uvarint (oldest retained seq), next uvarint (end of log)
//	  rejected: code uvarint length + bytes, msg uvarint length + bytes
//
// After an ok ack, both directions speak typed session frames:
//
//	primary → follower:
//	  'S'  record    one WAL record: seq, the primary's durable boundary,
//	                 the ship timestamp, the program, and the raw trace
//	                 frame payload exactly as logged
//	  'T'  terminal  code + msg (StreamError layout); the session is over
//
//	follower → primary:
//	  'A'  ack       cumulative: every record below the carried sequence
//	                 number has been applied (and logged) by the follower
//	  'C'  close     empty payload; the follower detaches cleanly
//
// Credit: the ack's window bounds how many shipped records may be
// unacknowledged (seq − ackedSeq). The primary stops shipping at the window
// edge and resumes as acks arrive, so a slow follower exerts backpressure
// without unbounded buffering — the same discipline the ingest stream uses,
// with cumulative acks instead of per-frame credits because WAL sequence
// numbers give a total order for free.
const (
	// ReplicationProtoVersion is the newest replication protocol revision
	// this build speaks. Like the ingest stream, the hello negotiates
	// down: the primary acks min(follower, primary), so proto-1 peers are
	// untouched.
	//
	// Version history:
	//
	//	1  the original record format
	//	2  'S' record frames gain a uvarint trace ID between the ship
	//	   timestamp and the program (0 = the record's batch was untraced)
	ReplicationProtoVersion = 2
	// ReplicationProtoMin is the oldest protocol revision still accepted.
	ReplicationProtoMin = 1

	// ReplFrameRecord carries one WAL record (primary → follower).
	ReplFrameRecord = byte('S')
	// ReplFrameAck carries the follower's cumulative applied sequence
	// (follower → primary).
	ReplFrameAck = byte('A')
)

// ReplCodeCompacted rejects a hello whose from-sequence has already been
// compacted away on the primary: the follower cannot catch up from the log
// alone and needs a full resync (fresh snapshot + empty WAL directory).
const ReplCodeCompacted = "compacted"

// MaxReplPayload caps one replication session frame's payload: a full trace
// frame payload plus the program name and the record header varints.
const MaxReplPayload = MaxFramePayload + MaxHandshakeProgram + 5*binary.MaxVarintLen64

// NegotiateReplProto picks the replication protocol both sides will speak:
// the older of the follower's and this build's revisions. ok is false when
// the follower is older than ReplicationProtoMin.
func NegotiateReplProto(followerProto uint32) (proto uint32, ok bool) {
	if followerProto < ReplicationProtoMin {
		return 0, false
	}
	if followerProto < ReplicationProtoVersion {
		return followerProto, true
	}
	return ReplicationProtoVersion, true
}

var (
	replHelloMagic = [4]byte{'R', 'S', 'R', 'H'}
	replAckMagic   = [4]byte{'R', 'S', 'R', 'A'}
)

// ReplHello opens a replication session: which protocol revision, under
// which controller parameters, resuming from which WAL sequence, with which
// requested credit window.
type ReplHello struct {
	Proto      uint32
	ParamsHash uint64
	From       uint64
	Window     uint32
}

// AppendReplHello appends h's wire form to dst.
func AppendReplHello(dst []byte, h ReplHello) []byte {
	dst = append(dst, replHelloMagic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(uint64(h.Proto))
	put(h.ParamsHash)
	put(h.From)
	put(uint64(h.Window))
	return dst
}

// ReadReplHello decodes one replication hello from r. Malformed input fails
// with an error wrapping ErrBadHandshake.
func ReadReplHello(r *bufio.Reader) (ReplHello, error) {
	var h ReplHello
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, fmt.Errorf("%w: reading replication magic: %v", ErrBadHandshake, err)
	}
	if magic != replHelloMagic {
		return h, fmt.Errorf("%w: bad replication magic %q", ErrBadHandshake, magic[:])
	}
	proto, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading replication protocol version: %v", ErrBadHandshake, err)
	}
	if proto > uint64(^uint32(0)) {
		return h, fmt.Errorf("%w: replication protocol version %d out of range", ErrBadHandshake, proto)
	}
	if h.ParamsHash, err = binary.ReadUvarint(r); err != nil {
		return h, fmt.Errorf("%w: reading params hash: %v", ErrBadHandshake, err)
	}
	if h.From, err = binary.ReadUvarint(r); err != nil {
		return h, fmt.Errorf("%w: reading from-sequence: %v", ErrBadHandshake, err)
	}
	window, err := binary.ReadUvarint(r)
	if err != nil {
		return h, fmt.Errorf("%w: reading window: %v", ErrBadHandshake, err)
	}
	if window > uint64(^uint32(0)) {
		return h, fmt.Errorf("%w: window %d out of range", ErrBadHandshake, window)
	}
	h.Proto = uint32(proto)
	h.Window = uint32(window)
	return h, nil
}

// ReplAck answers a replication hello: either a grant (granted window plus
// the primary's retained range, so the follower can size its catch-up) or a
// rejection carrying a StreamError.
type ReplAck struct {
	Proto  uint32
	Window uint32
	// Oldest and Next bound the primary's retained range [Oldest, Next) at
	// hello time.
	Oldest uint64
	Next   uint64
	// Err is non-nil on a rejected hello; the grant fields are zero.
	Err *StreamError
}

// AppendReplAck appends a's wire form to dst.
func AppendReplAck(dst []byte, a ReplAck) []byte {
	dst = append(dst, replAckMagic[:]...)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putStr := func(s string) { put(uint64(len(s))); dst = append(dst, s...) }
	if a.Err != nil {
		dst = append(dst, 1)
		putStr(a.Err.Code)
		putStr(a.Err.Msg)
		return dst
	}
	dst = append(dst, 0)
	put(uint64(a.Proto))
	put(uint64(a.Window))
	put(a.Oldest)
	put(a.Next)
	return dst
}

// ReadReplAck decodes one replication hello ack from r. A rejection decodes
// cleanly into a ReplAck with Err set — the rejection is the primary's
// answer, not a wire fault.
func ReadReplAck(r *bufio.Reader) (ReplAck, error) {
	var a ReplAck
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return a, fmt.Errorf("%w: reading replication ack magic: %v", ErrBadHandshake, err)
	}
	if magic != replAckMagic {
		return a, fmt.Errorf("%w: bad replication ack magic %q", ErrBadHandshake, magic[:])
	}
	status, err := r.ReadByte()
	if err != nil {
		return a, fmt.Errorf("%w: reading replication ack status: %v", ErrBadHandshake, err)
	}
	switch status {
	case 0:
		proto, err := binary.ReadUvarint(r)
		if err != nil {
			return a, fmt.Errorf("%w: reading replication ack protocol version: %v", ErrBadHandshake, err)
		}
		window, err := binary.ReadUvarint(r)
		if err != nil {
			return a, fmt.Errorf("%w: reading replication ack window: %v", ErrBadHandshake, err)
		}
		if proto > uint64(^uint32(0)) || window > uint64(^uint32(0)) {
			return a, fmt.Errorf("%w: replication ack field out of range", ErrBadHandshake)
		}
		if a.Oldest, err = binary.ReadUvarint(r); err != nil {
			return a, fmt.Errorf("%w: reading replication ack oldest sequence: %v", ErrBadHandshake, err)
		}
		if a.Next, err = binary.ReadUvarint(r); err != nil {
			return a, fmt.Errorf("%w: reading replication ack next sequence: %v", ErrBadHandshake, err)
		}
		a.Proto = uint32(proto)
		a.Window = uint32(window)
		return a, nil
	case 1:
		se, err := readStreamError(r)
		if err != nil {
			return a, err
		}
		a.Err = &se
		return a, nil
	default:
		return a, fmt.Errorf("%w: unknown replication ack status %d", ErrBadHandshake, status)
	}
}

// ReplRecord is one shipped WAL record: its sequence number, the primary's
// durable boundary and wall-clock at ship time (the follower derives its lag
// gauges from both), the program, and the raw trace frame payload exactly as
// it sits in the log.
type ReplRecord struct {
	Seq uint64
	// Durable is the primary's DurableSeq when the record was shipped; the
	// follower's record lag is Durable − (Seq+1).
	Durable uint64
	// ShippedUnixNanos is the primary's wall clock at ship time; the
	// follower's seconds-lag gauge is its own clock minus this (clock skew
	// applies, as with any cross-host lag measure).
	ShippedUnixNanos uint64
	// Trace is the span-trace ID of the ingest batch that appended this
	// record, zero when untraced. On the wire only at proto ≥ 2, between
	// the ship timestamp and the program — it cannot trail the payload
	// because Frame is defined as "the rest".
	Trace   uint64
	Program string
	// Frame is the raw trace frame payload. Decoding on ship would be
	// wasted work — the follower decodes exactly once on apply.
	Frame []byte
}

// AppendReplRecord appends rec as a complete 'S' session frame to dst, in
// the layout of the negotiated protocol revision (proto 1 omits Trace).
func AppendReplRecord(dst []byte, rec ReplRecord, proto uint32) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	dst = append(dst, ReplFrameRecord)
	payloadLen := uvarintLen(rec.Seq) + uvarintLen(rec.Durable) + uvarintLen(rec.ShippedUnixNanos) +
		uvarintLen(uint64(len(rec.Program))) + len(rec.Program) + len(rec.Frame)
	if proto >= 2 {
		payloadLen += uvarintLen(rec.Trace)
	}
	put(uint64(payloadLen))
	put(rec.Seq)
	put(rec.Durable)
	put(rec.ShippedUnixNanos)
	if proto >= 2 {
		put(rec.Trace)
	}
	put(uint64(len(rec.Program)))
	dst = append(dst, rec.Program...)
	return append(dst, rec.Frame...)
}

// DecodeReplRecord decodes an 'S' frame payload in the layout of the
// negotiated protocol revision. The returned record's Frame aliases payload.
func DecodeReplRecord(payload []byte, proto uint32) (ReplRecord, error) {
	var rec ReplRecord
	next := func(field string) (uint64, error) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, fmt.Errorf("%w: replication record %s is malformed", ErrBadFrame, field)
		}
		payload = payload[n:]
		return v, nil
	}
	var err error
	if rec.Seq, err = next("sequence"); err != nil {
		return rec, err
	}
	if rec.Durable, err = next("durable boundary"); err != nil {
		return rec, err
	}
	if rec.ShippedUnixNanos, err = next("ship timestamp"); err != nil {
		return rec, err
	}
	if proto >= 2 {
		if rec.Trace, err = next("trace context"); err != nil {
			return rec, err
		}
	}
	progLen, err := next("program length")
	if err != nil {
		return rec, err
	}
	if progLen > MaxHandshakeProgram || progLen > uint64(len(payload)) {
		return rec, fmt.Errorf("%w: replication record program length %d out of range", ErrBadFrame, progLen)
	}
	rec.Program = string(payload[:progLen])
	rec.Frame = payload[progLen:]
	return rec, nil
}

// AppendReplAckFrame appends a cumulative 'A' ack frame to dst: every record
// below ackedSeq has been applied by the follower.
func AppendReplAckFrame(dst []byte, ackedSeq uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], ackedSeq)
	dst = append(dst, ReplFrameAck)
	var tmp2 [binary.MaxVarintLen64]byte
	dst = append(dst, tmp2[:binary.PutUvarint(tmp2[:], uint64(n))]...)
	return append(dst, tmp[:n]...)
}

// DecodeReplAckFrame decodes an 'A' frame payload.
func DecodeReplAckFrame(payload []byte) (uint64, error) {
	acked, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, fmt.Errorf("%w: replication ack frame is malformed", ErrBadFrame)
	}
	return acked, nil
}

// ReadReplFrame reads one replication session frame — like ReadSessionFrame
// but with the larger replication payload cap.
func ReadReplFrame(r *bufio.Reader, scratch []byte) (typ byte, payload, newScratch []byte, err error) {
	return readSessionFrameCap(r, scratch, MaxReplPayload)
}

// uvarintLen is the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
