package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func frameTestEvents(n, salt int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Branch: BranchID((i*7 + salt) % 40),
			Taken:  (i+salt)%3 != 0,
			Gap:    uint32(1 + (i*13+salt)%30),
		}
	}
	return evs
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	batches := [][]Event{
		frameTestEvents(100, 1),
		{}, // empty frames are legal
		frameTestEvents(3, 9),
		frameTestEvents(1000, 5),
	}
	for _, b := range batches {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i, want := range batches {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d events, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("frame %d event %d: %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
	if fr.Frames() != len(batches) {
		t.Fatalf("Frames() = %d, want %d", fr.Frames(), len(batches))
	}
}

// TestFrameReaderSkipsCorruptFrame checks that a frame with a corrupt payload
// is rejected without losing the frames after it.
func TestFrameReaderSkipsCorruptFrame(t *testing.T) {
	good1 := frameTestEvents(50, 2)
	good2 := frameTestEvents(70, 3)

	// Hand-build the middle frame: valid length prefix, garbage payload.
	payload, err := EncodeFrame(frameTestEvents(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 0xff // corrupt a record
	var buf bytes.Buffer
	if err := WriteFrame(&buf, good1); err != nil {
		t.Fatal(err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	buf.Write(hdr[:n])
	buf.Write(payload)
	if err := WriteFrame(&buf, good2); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&buf)
	if _, err := fr.Next(); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	_, err = fr.Next()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("frame 1: err = %v, want *FrameError", err)
	}
	if fe.Index != 1 {
		t.Fatalf("FrameError.Index = %d, want 1", fe.Index)
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("FrameError should wrap ErrBadTrace, got %v", err)
	}
	got, err := fr.Next()
	if err != nil {
		t.Fatalf("frame 2 after rejected frame: %v", err)
	}
	if len(got) != len(good2) {
		t.Fatalf("frame 2: %d events, want %d", len(got), len(good2))
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end: err = %v, want io.EOF", err)
	}
}

// TestFrameReaderFatalErrors checks that damaged framing is sticky.
func TestFrameReaderFatalErrors(t *testing.T) {
	t.Run("truncated payload", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, frameTestEvents(80, 1)); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		fr := NewFrameReader(bytes.NewReader(full[:len(full)-5]))
		_, err := fr.Next()
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
		if _, err2 := fr.Next(); !errors.Is(err2, ErrBadFrame) {
			t.Fatalf("fatal error not sticky: %v", err2)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], MaxFramePayload+1)
		fr := NewFrameReader(bytes.NewReader(hdr[:n]))
		if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
}

// TestDecodeFrameTrailingGarbage checks that extra payload bytes after the
// declared events are rejected, not silently ignored.
func TestDecodeFrameTrailingGarbage(t *testing.T) {
	payload, err := EncodeFrame(frameTestEvents(10, 6))
	if err != nil {
		t.Fatal(err)
	}
	payload = append(payload, 0x00, 0x01)
	if _, err := DecodeFrame(payload); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace for trailing garbage", err)
	}
}
