package trace

import (
	"bytes"
	"errors"
	"testing"
)

func TestKindNamesAndParse(t *testing.T) {
	names := KindNames()
	if len(names) != KindCount {
		t.Fatalf("KindNames() has %d entries, want %d", len(names), KindCount)
	}
	for i, name := range names {
		k := Kind(i)
		if !k.Valid() || k.String() != name {
			t.Fatalf("Kind(%d): valid=%v name=%q, want valid/%q", i, k.Valid(), k.String(), name)
		}
		parsed, err := ParseKind(name)
		if err != nil || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", name, parsed, err, k)
		}
	}
	if Kind(KindCount).Valid() {
		t.Fatal("Kind(KindCount) reports valid")
	}
	if _, err := ParseKind("quantum"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

// TestKindProgramEncoding pins the compatibility-critical key layout: branch
// keys ARE the plain program name (so every pre-kind WAL segment, snapshot
// and replication peer keeps matching), non-branch keys live in the
// NUL-prefixed namespace client names are banned from.
func TestKindProgramEncoding(t *testing.T) {
	if got := EncodeKindProgram(KindBranch, "gzip"); got != "gzip" {
		t.Fatalf("branch key = %q, want the plain program name", got)
	}
	for _, program := range []string{"", "gzip", "bench@3", "a b/c"} {
		for k := Kind(0); k < KindCount; k++ {
			key := EncodeKindProgram(k, program)
			gotK, gotP := SplitKindProgram(key)
			if gotK != k || gotP != program {
				t.Fatalf("round trip (%v, %q) via %q = (%v, %q)", k, program, key, gotK, gotP)
			}
			if k != KindBranch && key[0] != 0x00 {
				t.Fatalf("non-branch key %q does not carry the NUL prefix", key)
			}
		}
	}
	// A legacy key decodes as a branch stream of the same name.
	if k, p := SplitKindProgram("legacy"); k != KindBranch || p != "legacy" {
		t.Fatalf("legacy key decoded as (%v, %q)", k, p)
	}
	if ValidProgramName("a\x00b") || !ValidProgramName("plain") {
		t.Fatal("ValidProgramName does not fence the NUL namespace")
	}
}

// TestKindTagWire pins the proto-4 frame tag: one uvarint, branch encoding
// to the single zero byte, malformed tails rejected.
func TestKindTagWire(t *testing.T) {
	if got := AppendKind(nil, KindBranch); !bytes.Equal(got, []byte{0}) {
		t.Fatalf("branch kind tag = %x, want the single zero byte", got)
	}
	blob := []byte("frame-bytes")
	for k := Kind(0); k < KindCount; k++ {
		payload := append(AppendKind(nil, k), blob...)
		gotK, rest, err := CutKind(payload)
		if err != nil || gotK != k || !bytes.Equal(rest, blob) {
			t.Fatalf("CutKind round trip for %v: %v, %q, %v", k, gotK, rest, err)
		}
	}
	if _, _, err := CutKind(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("CutKind(nil) = %v, want ErrBadFrame", err)
	}
	// An overlong uvarint (value beyond a byte) is rejected, not truncated.
	huge := AppendTraceContext(nil, 1<<40)
	if _, _, err := CutKind(huge); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("CutKind(overlong) = %v, want ErrBadFrame", err)
	}
}
