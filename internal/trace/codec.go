package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: a small header followed by one varint-encoded record
// per event. The branch ID is delta-encoded against the previous event's
// (zig-zag), the outcome is folded into the gap's low bit, so hot traces
// compress to a few bytes per event.
//
//	magic   [4]byte  "RSPT"
//	version uvarint  (1)
//	events  uvarint  (total records)
//	records:
//	  deltaID zigzag-varint
//	  gapTaken uvarint   (gap<<1 | taken)

var traceMagic = [4]byte{'R', 'S', 'P', 'T'}

const traceVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer serializes an event stream.
type Writer struct {
	w      *bufio.Writer
	events uint64
	buf    [2 * binary.MaxVarintLen64]byte
	prevID int64
}

// NewWriter writes a trace header for a stream of totalEvents events and
// returns the writer. The caller must Write exactly totalEvents events and
// then Flush.
func NewWriter(w io.Writer, totalEvents uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], traceVersion)
	n += binary.PutUvarint(hdr[n:], totalEvents)
	if _, err := bw.Write(hdr[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, events: totalEvents}, nil
}

// Write appends one event.
func (t *Writer) Write(ev Event) error {
	delta := int64(ev.Branch) - t.prevID
	t.prevID = int64(ev.Branch)
	n := binary.PutVarint(t.buf[:], delta)
	gapTaken := uint64(ev.Gap) << 1
	if ev.Taken {
		gapTaken |= 1
	}
	n += binary.PutUvarint(t.buf[n:], gapTaken)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Flush completes the trace.
func (t *Writer) Flush() error { return t.w.Flush() }

// Capture drains a stream into w in trace format and returns the number of
// events written. totalEvents must match the stream's length exactly; use
// CaptureAll when it is unknown.
func Capture(w io.Writer, s Stream, totalEvents uint64) (uint64, error) {
	tw, err := NewWriter(w, totalEvents)
	if err != nil {
		return 0, err
	}
	var n uint64
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(ev); err != nil {
			return n, err
		}
		n++
	}
	if n != totalEvents {
		return n, fmt.Errorf("trace: captured %d events, header says %d", n, totalEvents)
	}
	return n, tw.Flush()
}

// Reader replays a serialized trace as a Stream. Decode errors carry the
// byte offset and event index at which corruption was detected, so a
// truncated or bit-flipped file yields a diagnostic instead of garbage.
type Reader struct {
	r       *bufio.Reader
	off     int64 // bytes consumed from the start of the trace
	total   uint64
	left    uint64
	decoded uint64
	prevID  int64
	err     error
}

// errVarintOverflow reports a varint exceeding 64 bits (only a corrupt or
// adversarial file can contain one; the writer never produces it).
var errVarintOverflow = errors.New("varint overflows 64 bits")

// NewReader validates the header and returns a stream over the trace.
func NewReader(r io.Reader) (*Reader, error) {
	t := &Reader{r: bufio.NewReaderSize(r, 1<<16)}
	var magic [4]byte
	if _, err := io.ReadFull(t.r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v (file shorter than the %d-byte magic)",
			ErrBadTrace, err, len(magic))
	}
	t.off = int64(len(magic))
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q at byte offset 0 (want %q)",
			ErrBadTrace, magic[:], traceMagic[:])
	}
	version, err := t.uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: reading version at byte offset %d: %v", ErrBadTrace, t.off, err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrBadTrace, version, traceVersion)
	}
	events, err := t.uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: reading event count at byte offset %d: %v", ErrBadTrace, t.off, err)
	}
	t.total, t.left = events, events
	return t, nil
}

// Events returns the number of events remaining.
func (t *Reader) Events() uint64 { return t.left }

// Offset returns the number of trace bytes consumed so far.
func (t *Reader) Offset() int64 { return t.off }

// Err returns the first decode error encountered, if any (Next ends the
// stream on error; callers that care should check Err afterwards).
func (t *Reader) Err() error { return t.err }

// uvarint decodes one unsigned varint, accounting consumed bytes and
// detecting truncation and overflow.
func (t *Reader) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := t.r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		t.off++
		if i == binary.MaxVarintLen64 || (i == binary.MaxVarintLen64-1 && b > 1) {
			return 0, errVarintOverflow
		}
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// varint decodes one zig-zag signed varint.
func (t *Reader) varint() (int64, error) {
	ux, err := t.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

// fail records the first decode error, naming where decoding stopped.
func (t *Reader) fail(field string, err error) {
	kind := "corrupt"
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		kind = "truncated"
	}
	t.err = fmt.Errorf("%w: %s %s at byte offset %d (event %d of %d): %v",
		ErrBadTrace, kind, field, t.off, t.decoded, t.total, err)
}

// Next implements Stream.
func (t *Reader) Next() (Event, bool) {
	if t.left == 0 || t.err != nil {
		return Event{}, false
	}
	delta, err := t.varint()
	if err != nil {
		t.fail("branch delta", err)
		return Event{}, false
	}
	gapTaken, err := t.uvarint()
	if err != nil {
		t.fail("gap/outcome", err)
		return Event{}, false
	}
	t.prevID += delta
	if t.prevID < 0 || t.prevID > int64(^uint32(0)) {
		t.err = fmt.Errorf("%w: branch id %d out of range at byte offset %d (event %d of %d)",
			ErrBadTrace, t.prevID, t.off, t.decoded, t.total)
		return Event{}, false
	}
	if gapTaken>>1 > uint64(^uint32(0)) {
		t.err = fmt.Errorf("%w: gap %d out of range at byte offset %d (event %d of %d)",
			ErrBadTrace, gapTaken>>1, t.off, t.decoded, t.total)
		return Event{}, false
	}
	t.left--
	t.decoded++
	return Event{
		Branch: BranchID(t.prevID),
		Taken:  gapTaken&1 == 1,
		Gap:    uint32(gapTaken >> 1),
	}, true
}
