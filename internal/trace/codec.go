package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: a small header followed by one varint-encoded record
// per event. The branch ID is delta-encoded against the previous event's
// (zig-zag), the outcome is folded into the gap's low bit, so hot traces
// compress to a few bytes per event.
//
//	magic   [4]byte  "RSPT"
//	version uvarint  (1)
//	events  uvarint  (total records)
//	records:
//	  deltaID zigzag-varint
//	  gapTaken uvarint   (gap<<1 | taken)

var traceMagic = [4]byte{'R', 'S', 'P', 'T'}

const traceVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer serializes an event stream.
type Writer struct {
	w      *bufio.Writer
	events uint64
	buf    [2 * binary.MaxVarintLen64]byte
	prevID int64
}

// NewWriter writes a trace header for a stream of totalEvents events and
// returns the writer. The caller must Write exactly totalEvents events and
// then Flush.
func NewWriter(w io.Writer, totalEvents uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], traceVersion)
	n += binary.PutUvarint(hdr[n:], totalEvents)
	if _, err := bw.Write(hdr[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, events: totalEvents}, nil
}

// Write appends one event.
func (t *Writer) Write(ev Event) error {
	delta := int64(ev.Branch) - t.prevID
	t.prevID = int64(ev.Branch)
	n := binary.PutVarint(t.buf[:], delta)
	gapTaken := uint64(ev.Gap) << 1
	if ev.Taken {
		gapTaken |= 1
	}
	n += binary.PutUvarint(t.buf[n:], gapTaken)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Flush completes the trace.
func (t *Writer) Flush() error { return t.w.Flush() }

// Capture drains a stream into w in trace format and returns the number of
// events written. totalEvents must match the stream's length exactly; use
// CaptureAll when it is unknown.
func Capture(w io.Writer, s Stream, totalEvents uint64) (uint64, error) {
	tw, err := NewWriter(w, totalEvents)
	if err != nil {
		return 0, err
	}
	var n uint64
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.Write(ev); err != nil {
			return n, err
		}
		n++
	}
	if n != totalEvents {
		return n, fmt.Errorf("trace: captured %d events, header says %d", n, totalEvents)
	}
	return n, tw.Flush()
}

// Reader replays a serialized trace as a Stream.
type Reader struct {
	r      *bufio.Reader
	left   uint64
	prevID int64
	err    error
}

// NewReader validates the header and returns a stream over the trace.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	events, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &Reader{r: br, left: events}, nil
}

// Events returns the number of events remaining.
func (t *Reader) Events() uint64 { return t.left }

// Err returns the first decode error encountered, if any (Next ends the
// stream on error; callers that care should check Err afterwards).
func (t *Reader) Err() error { return t.err }

// Next implements Stream.
func (t *Reader) Next() (Event, bool) {
	if t.left == 0 || t.err != nil {
		return Event{}, false
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("%w: %v", ErrBadTrace, err)
		return Event{}, false
	}
	gapTaken, err := binary.ReadUvarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("%w: %v", ErrBadTrace, err)
		return Event{}, false
	}
	t.prevID += delta
	if t.prevID < 0 || t.prevID > int64(^uint32(0)) {
		t.err = fmt.Errorf("%w: branch id out of range", ErrBadTrace)
		return Event{}, false
	}
	if gapTaken>>1 > uint64(^uint32(0)) {
		t.err = fmt.Errorf("%w: gap out of range", ErrBadTrace)
		return Event{}, false
	}
	t.left--
	return Event{
		Branch: BranchID(t.prevID),
		Taken:  gapTaken&1 == 1,
		Gap:    uint32(gapTaken >> 1),
	}, true
}
