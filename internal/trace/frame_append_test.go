package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestEncodeFrameAppendMatchesEncodeFrame pins that the append-style encoder
// produces byte-identical payloads, including when appending after existing
// bytes.
func TestEncodeFrameAppendMatchesEncodeFrame(t *testing.T) {
	for _, evs := range [][]Event{
		nil,
		frameTestEvents(1, 0),
		frameTestEvents(100, 1),
		frameTestEvents(1000, 5),
	} {
		want, err := EncodeFrame(evs)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodeFrameAppend(nil, evs); !bytes.Equal(got, want) {
			t.Fatalf("%d events: EncodeFrameAppend differs from EncodeFrame", len(evs))
		}
		prefix := []byte("existing")
		got := EncodeFrameAppend(append([]byte(nil), prefix...), evs)
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("%d events: EncodeFrameAppend clobbered the prefix", len(evs))
		}
	}
}

// TestAppendFrameMatchesWriteFrame pins that AppendFrame emits the exact
// length-prefixed bytes WriteFrame emits, frame after frame in one buffer.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	batches := [][]Event{
		frameTestEvents(40, 2),
		{},
		frameTestEvents(900, 7),
	}
	var want bytes.Buffer
	var got []byte
	for _, b := range batches {
		if err := WriteFrame(&want, b); err != nil {
			t.Fatal(err)
		}
		got = AppendFrame(got, b)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("AppendFrame bytes differ from WriteFrame bytes")
	}
}

// TestDecodeFrameAppendMatchesDecodeFrame checks agreement on valid payloads,
// truncations, and single-byte corruptions: same events, same accept/reject.
func TestDecodeFrameAppendMatchesDecodeFrame(t *testing.T) {
	payload, err := EncodeFrame(frameTestEvents(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	check := func(p []byte) {
		t.Helper()
		want, wantErr := DecodeFrame(p)
		got, gotErr := DecodeFrameAppend(p, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decode disagreement: DecodeFrame err=%v, DecodeFrameAppend err=%v", wantErr, gotErr)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrBadTrace) {
				t.Fatalf("DecodeFrameAppend error %v does not wrap ErrBadTrace", gotErr)
			}
			if len(got) != 0 {
				t.Fatalf("DecodeFrameAppend returned %d events alongside an error", len(got))
			}
			return
		}
		if len(got) != len(want) {
			t.Fatalf("%d events, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}
	check(payload)
	for _, cut := range []int{0, 3, 4, 5, len(payload) / 2, len(payload) - 1} {
		check(payload[:cut])
	}
	for _, flip := range []int{0, 4, 5, 6, len(payload) / 2, len(payload) - 1} {
		p := append([]byte(nil), payload...)
		p[flip] ^= 0xff
		check(p)
	}
	check(append(append([]byte(nil), payload...), 0x00))
}

// TestDecodeFrameAppendPreservesDstOnError checks that a rejected payload
// leaves previously appended events intact and adds nothing.
func TestDecodeFrameAppendPreservesDstOnError(t *testing.T) {
	good, err := EncodeFrame(frameTestEvents(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append([]byte(nil), good...), 0x7f) // trailing garbage
	dst, err := DecodeFrameAppend(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]Event(nil), dst...)
	dst, err = DecodeFrameAppend(bad, dst)
	if err == nil {
		t.Fatal("corrupt payload accepted")
	}
	if len(dst) != len(before) {
		t.Fatalf("dst grew to %d events on error, want %d", len(dst), len(before))
	}
	for i := range before {
		if dst[i] != before[i] {
			t.Fatalf("dst event %d changed on error", i)
		}
	}
}

// TestNextAppendAccumulates decodes a multi-frame stream into one shared
// buffer, rejected frame in the middle, and checks positions and contents.
func TestNextAppendAccumulates(t *testing.T) {
	good1 := frameTestEvents(50, 2)
	good2 := frameTestEvents(70, 3)
	corrupt, err := EncodeFrame(frameTestEvents(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	corrupt[len(corrupt)/2] ^= 0xff
	var buf bytes.Buffer
	if err := WriteFrame(&buf, good1); err != nil {
		t.Fatal(err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(corrupt)))
	buf.Write(hdr[:n])
	buf.Write(corrupt)
	if err := WriteFrame(&buf, good2); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&buf)
	var all []Event
	all, err = fr.NextAppend(all)
	if err != nil || len(all) != len(good1) {
		t.Fatalf("frame 0: %d events, err %v", len(all), err)
	}
	got, err := fr.NextAppend(all)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("frame 1: err = %v, want *FrameError", err)
	}
	if len(got) != len(all) {
		t.Fatalf("rejected frame changed dst length: %d -> %d", len(all), len(got))
	}
	all, err = fr.NextAppend(all)
	if err != nil || len(all) != len(good1)+len(good2) {
		t.Fatalf("frame 2: %d events, err %v", len(all), err)
	}
	for i, want := range good1 {
		if all[i] != want {
			t.Fatalf("event %d: %+v != %+v", i, all[i], want)
		}
	}
	for i, want := range good2 {
		if all[len(good1)+i] != want {
			t.Fatalf("event %d: %+v != %+v", len(good1)+i, all[len(good1)+i], want)
		}
	}
	if _, err := fr.NextAppend(all); err != io.EOF {
		t.Fatalf("end: err = %v, want io.EOF", err)
	}
}
