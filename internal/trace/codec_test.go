package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, events []Event) []Event {
	t.Helper()
	var buf bytes.Buffer
	n, err := Capture(&buf, NewSliceStream(events), uint64(len(events)))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(events)) {
		t.Fatalf("captured %d events, want %d", n, len(events))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != uint64(len(events)) {
		t.Fatalf("header says %d events", r.Events())
	}
	got := Collect(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	events := mkEvents(1_000)
	got := roundTrip(t, events)
	if len(got) != len(events) {
		t.Fatalf("decoded %d events", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(got))
	}
}

func TestCodecLargeIDs(t *testing.T) {
	events := []Event{
		{Branch: 0, Taken: true, Gap: 1},
		{Branch: 1 << 30, Taken: false, Gap: 1 << 20},
		{Branch: 5, Taken: true, Gap: 1},
	}
	got := roundTrip(t, events)
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v", i, got[i])
		}
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(100)), 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	Collect(r)
	if r.Err() == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

func TestCaptureCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(5)), 10); err == nil {
		t.Fatal("event-count mismatch accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ids []uint16, gaps []uint8, taken []bool) bool {
		n := len(ids)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(taken) < n {
			n = len(taken)
		}
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			events[i] = Event{Branch: BranchID(ids[i]), Taken: taken[i], Gap: uint32(gaps[i]) + 1}
		}
		var buf bytes.Buffer
		if _, err := Capture(&buf, NewSliceStream(events), uint64(n)); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got := Collect(r)
		if r.Err() != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
