package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, events []Event) []Event {
	t.Helper()
	var buf bytes.Buffer
	n, err := Capture(&buf, NewSliceStream(events), uint64(len(events)))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(events)) {
		t.Fatalf("captured %d events, want %d", n, len(events))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events() != uint64(len(events)) {
		t.Fatalf("header says %d events", r.Events())
	}
	got := Collect(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	events := mkEvents(1_000)
	got := roundTrip(t, events)
	if len(got) != len(events) {
		t.Fatalf("decoded %d events", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestCodecEmpty(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(got))
	}
}

func TestCodecLargeIDs(t *testing.T) {
	events := []Event{
		{Branch: 0, Taken: true, Gap: 1},
		{Branch: 1 << 30, Taken: false, Gap: 1 << 20},
		{Branch: 5, Taken: true, Gap: 1},
	}
	got := roundTrip(t, events)
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v", i, got[i])
		}
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(100)), 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	Collect(r)
	if r.Err() == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

func TestCodecTruncatedErrorNamesOffset(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(100)), 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	Collect(r)
	err = r.Err()
	if err == nil {
		t.Fatal("truncated trace decoded without error")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("error %v does not wrap ErrBadTrace", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "truncated") || !strings.Contains(msg, "byte offset") {
		t.Fatalf("truncation error lacks diagnostics: %v", err)
	}
}

func TestCodecVarintOverflowNamesOffset(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(2)), 2); err != nil {
		t.Fatal(err)
	}
	// Replace the records with an 11-byte continuation run: an overflowing
	// varint in the first record's branch delta.
	data := buf.Bytes()
	// The header length equals that of an empty trace (the event-count
	// varints 0 and 2 are both one byte).
	var empty bytes.Buffer
	if _, err := Capture(&empty, NewSliceStream(nil), 0); err != nil {
		t.Fatal(err)
	}
	hdrLen := empty.Len()
	corrupt := append(append([]byte{}, data[:hdrLen]...),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	r, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	Collect(r)
	err = r.Err()
	if err == nil {
		t.Fatal("overflowing varint decoded without error")
	}
	if !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("overflow error lacks diagnostics: %v", err)
	}
}

func TestCodecBadMagicErrorIsDescriptive(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOPE1234")))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	if !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad-magic error lacks diagnostics: %v", err)
	}
	// A file shorter than the magic is reported as a truncated header.
	_, err = NewReader(bytes.NewReader([]byte("RS")))
	if err == nil || !strings.Contains(err.Error(), "truncated header") {
		t.Fatalf("short-header error lacks diagnostics: %v", err)
	}
}

func TestCodecUnsupportedVersion(t *testing.T) {
	data := append(append([]byte{}, traceMagic[:]...), 99, 0)
	_, err := NewReader(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("version error lacks diagnostics: %v", err)
	}
}

func TestCodecFlippedByteNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(200)), 200); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Flip every byte position in turn; the reader must either decode some
	// prefix cleanly or stop with a wrapped, descriptive error — never
	// panic, never loop.
	for pos := 0; pos < len(valid); pos++ {
		data := append([]byte{}, valid...)
		data[pos] ^= 0x40
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("flip at %d: header error %v does not wrap ErrBadTrace", pos, err)
			}
			continue
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > 1000 {
				t.Fatalf("flip at %d: decoder runaway", pos)
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("flip at %d: error %v does not wrap ErrBadTrace", pos, err)
		}
	}
}

func TestReaderOffsetAdvances(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(10)), 10); err != nil {
		t.Fatal(err)
	}
	size := int64(buf.Len())
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Offset()
	if hdr < 6 {
		t.Fatalf("header offset %d too small", hdr)
	}
	Collect(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Offset() != size {
		t.Fatalf("final offset %d, want file size %d", r.Offset(), size)
	}
}

func TestCaptureCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Capture(&buf, NewSliceStream(mkEvents(5)), 10); err == nil {
		t.Fatal("event-count mismatch accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ids []uint16, gaps []uint8, taken []bool) bool {
		n := len(ids)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(taken) < n {
			n = len(taken)
		}
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			events[i] = Event{Branch: BranchID(ids[i]), Taken: taken[i], Gap: uint32(gaps[i]) + 1}
		}
		var buf bytes.Buffer
		if _, err := Capture(&buf, NewSliceStream(events), uint64(n)); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got := Collect(r)
		if r.Err() != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
