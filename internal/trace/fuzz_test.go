package trace

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func errorsIsBadTrace(err error) bool { return errors.Is(err, ErrBadTrace) }

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and must either decode cleanly or report ErrBadTrace-wrapped
// errors.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and some corruptions of it.
	var buf bytes.Buffer
	events := mkEvents(20)
	if _, err := Capture(&buf, NewSliceStream(events), 20); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RSPT"))
	f.Add([]byte{})
	corrupted := append([]byte{}, valid...)
	if len(corrupted) > 8 {
		corrupted[8] ^= 0xff
	}
	f.Add(corrupted)
	// Header-format probes: good magic with a bad version, a huge declared
	// event count over no records, and an overflowing record varint.
	f.Add(append(append([]byte{}, traceMagic[:]...), 99, 0))
	f.Add(append(append([]byte{}, traceMagic[:]...), traceVersion,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append(append([]byte{}, traceMagic[:]...), traceVersion, 2,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errorsIsBadTrace(err) {
				t.Fatalf("header error %v does not wrap ErrBadTrace", err)
			}
			return
		}
		n := 0
		for {
			ev, ok := r.Next()
			if !ok {
				break
			}
			_ = ev // any uint32 gap is representable; oversized ones error out
			n++
			if n > 1<<20 {
				t.Fatal("decoder produced more events than any input this size could encode")
			}
		}
		if err := r.Err(); err != nil && !errorsIsBadTrace(err) {
			t.Fatalf("decode error %v does not wrap ErrBadTrace", err)
		}
	})
}

// FuzzDecodeFrameAppend differentially checks the in-place payload decoder
// against the reader-based reference: for arbitrary payload bytes the two
// must agree on accept/reject and, when accepting, on every decoded event.
func FuzzDecodeFrameAppend(f *testing.F) {
	var buf bytes.Buffer
	events := mkEvents(30)
	if _, err := Capture(&buf, NewSliceStream(events), 30); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0))
	f.Add([]byte("RSPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := DecodeFrame(data)
		got, gotErr := DecodeFrameAppend(data, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("disagreement: DecodeFrame err=%v, DecodeFrameAppend err=%v", wantErr, gotErr)
		}
		if gotErr != nil {
			if !errorsIsBadTrace(gotErr) {
				t.Fatalf("error %v does not wrap ErrBadTrace", gotErr)
			}
			return
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d events, reference decoded %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: %+v != reference %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzStreamHandshake feeds arbitrary bytes to the session-handshake and ack
// decoders: they must never panic and must either decode cleanly or report
// ErrBadHandshake-wrapped errors. Valid handshakes must round-trip exactly.
func FuzzStreamHandshake(f *testing.F) {
	valid := AppendHandshake(nil, Handshake{
		Proto: StreamProtoVersion, ParamsHash: 0x1234, Window: 8, Program: "gzip@0",
	})
	f.Add(valid)
	// Truncated handshakes: mid-magic, mid-varint, mid-program-name.
	f.Add(valid[:2])
	f.Add(valid[:5])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("RSHS"))
	f.Add([]byte{})
	// A declared program length far beyond the actual bytes.
	f.Add(append(append([]byte{}, valid[:6]...), 0xff, 0xff, 0x01))
	validAck := AppendAck(nil, Ack{Proto: StreamProtoVersion, Window: 8, ParamsHash: 0x1234})
	f.Add(validAck)
	f.Add(validAck[:len(validAck)-1])
	f.Add(AppendAck(nil, Ack{Err: &StreamError{Code: StreamCodeDraining, Msg: "going away"}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHandshake(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			if !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("handshake error %v does not wrap ErrBadHandshake", err)
			}
		} else {
			// An accepted handshake re-encodes and re-decodes to itself
			// (the varint wire form is not canonical, so compare values,
			// not bytes).
			again, err := ReadHandshake(bufio.NewReader(bytes.NewReader(AppendHandshake(nil, h))))
			if err != nil || again != h {
				t.Fatalf("accepted handshake %+v does not round-trip: %+v, %v", h, again, err)
			}
		}
		if _, err := ReadAck(bufio.NewReader(bytes.NewReader(data))); err != nil &&
			!errors.Is(err, ErrBadHandshake) {
			t.Fatalf("ack error %v does not wrap ErrBadHandshake", err)
		}
	})
}

// FuzzSessionFrame feeds arbitrary bytes to the session-frame reader: it must
// never panic, and every frame stream must end in io.EOF (clean boundary) or
// an ErrBadFrame-wrapped framing error.
func FuzzSessionFrame(f *testing.F) {
	events := AppendSessionFrame(nil, StreamFrameEvents, EncodeFrameAppend(nil, mkEvents(10)))
	f.Add(events)
	// Truncated session frames: type byte only, mid-length, mid-payload.
	f.Add(events[:1])
	f.Add(events[:2])
	f.Add(events[:len(events)-4])
	f.Add(AppendSessionFrame(events, StreamFrameClose, nil))
	f.Add(AppendSessionFrame(nil, StreamFrameTerminal,
		AppendStreamError(nil, StreamError{Code: StreamCodeBye})))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		for n := 0; ; n++ {
			var err error
			_, _, scratch, err = ReadSessionFrame(br, scratch)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("session frame error %v does not wrap ErrBadFrame", err)
				}
				return
			}
			if n > len(data) {
				t.Fatal("reader produced more frames than any input this size could encode")
			}
		}
	})
}

// FuzzRoundTrip checks that any event sequence encodes and decodes exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		events := make([]Event, 0, len(data)/3)
		for i := 0; i+2 < len(data); i += 3 {
			events = append(events, Event{
				Branch: BranchID(data[i]),
				Taken:  data[i+1]&1 == 1,
				Gap:    uint32(data[i+2]) + 1,
			})
		}
		var buf bytes.Buffer
		if _, err := Capture(&buf, NewSliceStream(events), uint64(len(events))); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(r)
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d of %d events", len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
			}
		}
	})
}
