package cpu

import (
	"testing"

	"reactivespec/internal/cache"
	"reactivespec/internal/program"
)

func freshCore(cfg Config) *Core { return New(cfg, 0, cache.NewShared()) }

func condBlock() *program.Block {
	return &program.Block{
		Ops: 4, Loads: 1, Stores: 1,
		DeadOps: 2, DeadLoads: 1,
		Kind: program.KindCond, Branch: 0, ValueLoad: -1,
		PC: 0x400, AddrBase: 0x1000, AddrSpan: 512, Stride: 8,
	}
}

func TestExecBlockCountsInstructions(t *testing.T) {
	c := freshCore(Leading)
	blk := condBlock()
	c.ExecBlock(blk, program.Step{Branch: 0, Taken: true, Kind: program.KindCond}, BlockCost{})
	if got := c.Stats().Instrs; got != uint64(blk.Instrs()) {
		t.Fatalf("Instrs = %d, want %d", got, blk.Instrs())
	}
}

func TestDistilledBlockIsCheaper(t *testing.T) {
	run := func(cost BlockCost) float64 {
		c := freshCore(Leading)
		blk := condBlock()
		var cycles float64
		st := program.Step{Branch: 0, Taken: true, Kind: program.KindCond}
		for i := 0; i < 1_000; i++ {
			cycles += c.ExecBlock(blk, st, cost)
		}
		return cycles
	}
	full := run(BlockCost{})
	distilled := run(BlockCost{SkipBranch: true, OpsRemoved: 2, LoadsRemoved: 1})
	if distilled >= full {
		t.Fatalf("distilled cycles %v >= full %v", distilled, full)
	}
}

func TestMispredictionPenalty(t *testing.T) {
	// A random branch costs more than a fixed one, by roughly the
	// pipeline depth per miss.
	run := func(pattern func(i int) bool) float64 {
		c := freshCore(Leading)
		blk := condBlock()
		var cycles float64
		for i := 0; i < 2_000; i++ {
			st := program.Step{Branch: 0, Taken: pattern(i), Kind: program.KindCond}
			cycles += c.ExecBlock(blk, st, BlockCost{})
		}
		return cycles
	}
	stable := run(func(int) bool { return true })
	x := uint64(7)
	random := run(func(int) bool {
		x = x*6364136223846793005 + 1442695040888963407
		return x>>63 == 1
	})
	if random < stable+float64(Leading.Depth)*500 {
		t.Fatalf("random-branch cycles %v vs stable %v: misprediction penalty missing", random, stable)
	}
}

func TestMemoryStallsForStreamingAccesses(t *testing.T) {
	run := func(span uint64) float64 {
		c := freshCore(Leading)
		blk := condBlock()
		blk.AddrSpan = span
		blk.Stride = 64
		var cycles float64
		for i := 0; i < 5_000; i++ {
			st := program.Step{Branch: 0, Taken: true, Kind: program.KindCond}
			cycles += c.ExecBlock(blk, st, BlockCost{})
		}
		return cycles
	}
	resident := run(512)       // fits in L1
	streaming := run(64 << 20) // streams through memory
	if streaming < resident*1.5 {
		t.Fatalf("streaming cycles %v vs resident %v: memory stalls missing", streaming, resident)
	}
	if freshCore(Leading).Stats().MemStalls != 0 {
		t.Fatal("fresh core has stalls")
	}
}

func TestTrailingCoreSlower(t *testing.T) {
	run := func(cfg Config) float64 {
		c := freshCore(cfg)
		blk := condBlock()
		var cycles float64
		for i := 0; i < 2_000; i++ {
			st := program.Step{Branch: 0, Taken: true, Kind: program.KindCond}
			cycles += c.ExecBlock(blk, st, BlockCost{})
		}
		return cycles
	}
	if lead, trail := run(Leading), run(Trailing); trail <= lead {
		t.Fatalf("trailing core (%v cycles) not slower than leading (%v)", trail, lead)
	}
}

func TestRegionEntryAndReturnBalance(t *testing.T) {
	c := freshCore(Leading)
	entry := &program.Block{Ops: 2, Kind: program.KindNone, Branch: -1, ValueLoad: -1}
	exit := &program.Block{Ops: 1, Kind: program.KindReturn, Branch: -1, ValueLoad: -1}
	for i := 0; i < 100; i++ {
		c.ExecBlock(entry, program.Step{Region: 3, Branch: -1, RegionEntry: true}, BlockCost{})
		c.ExecBlock(exit, program.Step{Region: 3, Branch: -1, Kind: program.KindReturn}, BlockCost{})
	}
	if c.Pred.RetMisses != 0 {
		t.Fatalf("balanced call/return mispredicted %d times", c.Pred.RetMisses)
	}
}

func TestIPC(t *testing.T) {
	s := Stats{Instrs: 400, Cycles: 100}
	if s.IPC() != 4 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	if (Stats{}).IPC() != 0 {
		t.Fatal("empty IPC should be 0")
	}
}

func TestColdStart(t *testing.T) {
	c := freshCore(Leading)
	blk := condBlock()
	st := program.Step{Branch: 0, Taken: true, Kind: program.KindCond}
	c.ExecBlock(blk, st, BlockCost{})
	c.ColdStart()
	if c.Mem.L1.Contains(blk.AddrBase) {
		t.Fatal("L1 still warm after ColdStart")
	}
}

func TestTable5CoreConfigs(t *testing.T) {
	if Leading.Width != 4 || Leading.Depth != 12 || Leading.Window != 128 {
		t.Fatalf("Leading = %+v", Leading)
	}
	if Trailing.Width != 2 || Trailing.Depth != 8 || Trailing.Window != 24 {
		t.Fatalf("Trailing = %+v", Trailing)
	}
}
