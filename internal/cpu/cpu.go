// Package cpu provides the per-core timing model used by the MSSP simulation
// (Table 5): a width/depth/window-parameterized superscalar core with a real
// gshare/RAS/indirect predictor simulation and a real set-associative cache
// hierarchy simulation.
//
// The model is trace-driven and event-cost based rather than cycle-accurate:
// each instruction costs 1/width cycles, branch mispredictions cost a
// pipeline refill, and memory accesses cost their hierarchy latency minus
// what the instruction window can hide. This reproduces the first-order
// sensitivities the paper's results depend on (speculation removing
// instructions and mispredictions; misspeculation recovery costs) without
// modeling issue-queue microarchitecture.
package cpu

import (
	"reactivespec/internal/bpred"
	"reactivespec/internal/cache"
	"reactivespec/internal/program"
)

// Config describes one core.
type Config struct {
	// Width is the issue width (instructions per cycle).
	Width int
	// Depth is the pipeline depth; a branch misprediction costs Depth
	// cycles of refill.
	Depth int
	// Window is the instruction-window size; it bounds how much memory
	// latency the core can hide.
	Window int
	// L1 is the core's private first-level cache.
	L1 cache.Config
}

// Table 5 core configurations.
var (
	// Leading is the 4-wide, 12-stage, 128-entry-window leading core.
	Leading = Config{Width: 4, Depth: 12, Window: 128, L1: cache.LeadingL1}
	// Trailing is a 2-wide, 8-stage, 24-entry-window trailing core.
	Trailing = Config{Width: 2, Depth: 8, Window: 24, L1: cache.TrailingL1}
)

// Stats aggregates a core's execution counters.
type Stats struct {
	Instrs       uint64
	Cycles       float64
	BranchMisses uint64
	MemStalls    float64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / s.Cycles
}

// Core is one simulated core.
type Core struct {
	cfg  Config
	Mem  *cache.Hierarchy
	Pred *bpred.Unit

	stats Stats
	// blockSeq tracks per-block access counters for deterministic
	// address-stream generation.
	blockSeq map[uint32]uint64
}

// New returns a core with the given configuration attached to the shared
// memory system.
func New(cfg Config, coreID int, shared *cache.Shared) *Core {
	return &Core{
		cfg:      cfg,
		Mem:      cache.NewHierarchy(coreID, cfg.L1, shared),
		Pred:     bpred.NewUnit(),
		blockSeq: make(map[uint32]uint64),
	}
}

// Stats returns the core's counters so far.
func (c *Core) Stats() Stats { return c.stats }

// hidden is the memory latency (cycles) the window can overlap.
func (c *Core) hidden() float64 {
	return float64(c.cfg.Window) / float64(c.cfg.Width)
}

// BlockCost describes how a dynamic block should be executed.
type BlockCost struct {
	// SkipBranch omits the terminating branch (it was speculated away by
	// the distiller).
	SkipBranch bool
	// OpsRemoved and LoadsRemoved are distilled-away instruction counts.
	OpsRemoved, LoadsRemoved int
}

// ExecBlock executes one dynamic block and returns the cycles it consumed.
// The step supplies the resolved control transfer; cost describes
// distillation adjustments.
func (c *Core) ExecBlock(blk *program.Block, st program.Step, cost BlockCost) float64 {
	ops := blk.Ops - cost.OpsRemoved
	loads := blk.Loads - cost.LoadsRemoved
	if ops < 0 {
		ops = 0
	}
	if loads < 0 {
		loads = 0
	}
	instrs := ops + loads + blk.Stores
	branchExecuted := blk.Kind != program.KindNone && !cost.SkipBranch
	if branchExecuted {
		instrs++
	}
	cycles := float64(instrs) / float64(c.cfg.Width)

	// Memory accesses: deterministic per-block address stream.
	key := uint32(st.Region)<<16 | uint32(st.Block)
	seq := c.blockSeq[key]
	for i := 0; i < loads+blk.Stores; i++ {
		addr := blk.AddrBase
		if blk.AddrSpan > 0 {
			addr += (seq*blk.Stride + uint64(i)*8) % blk.AddrSpan
		}
		seq++
		lat := float64(c.Mem.Access(addr, i >= loads))
		if stall := lat - c.hidden(); stall > 0 && i < loads {
			// Only loads stall the pipeline; stores retire from
			// the store buffer.
			cycles += stall
			c.stats.MemStalls += stall
		}
	}
	c.blockSeq[key] = seq

	if branchExecuted {
		correct := true
		switch blk.Kind {
		case program.KindCond:
			correct = c.Pred.Conditional(blk.PC, st.Taken)
		case program.KindIndirect:
			correct = c.Pred.IndirectJump(blk.PC, st.Target)
		case program.KindCall:
			c.Pred.Call(blk.PC + 4)
		case program.KindReturn:
			correct = c.Pred.Return(retAddrFor(st.Region))
		}
		if !correct {
			cycles += float64(c.cfg.Depth)
			c.stats.BranchMisses++
		}
	}
	if st.RegionEntry {
		// Region invocation is a call: push the return address.
		c.Pred.Call(retAddrFor(st.Region))
	}

	c.stats.Instrs += uint64(instrs)
	c.stats.Cycles += cycles
	return cycles
}

// retAddrFor synthesizes the return address of a region invocation; pushes
// and pops use the same value, so the RAS behaves as in a depth-1 call tree.
func retAddrFor(region int) uint64 { return 0xf000_0000 + uint64(region)*8 }

// ColdStart empties the core's caches and leaves the predictors as-is
// (the paper's runs begin from checkpoints with cold caches).
func (c *Core) ColdStart() { c.Mem.L1.InvalidateAll() }
