// Package program defines the synthetic program IR executed by the MSSP
// timing simulation (Section 4): regions (functions / loop bodies) made of
// basic blocks carrying instruction counts, memory-reference descriptors, and
// terminating branches driven by behavior models. The executor walks the IR
// and produces the dynamic block stream that the distiller, the master core,
// and the trailing (verification) cores consume.
//
// This substitutes for the paper's SimpleScalar-loaded Alpha binaries: the
// MSSP results of Figures 7–8 are relative (closed- vs. open-loop control,
// optimization-latency sweeps), so any program population with comparable
// branch-bias structure exercises the same machine behavior.
package program

import (
	"fmt"

	"reactivespec/internal/behavior"
	"reactivespec/internal/values"
)

// BranchKind labels a block's terminating control transfer.
type BranchKind uint8

const (
	// KindNone falls through to the next block.
	KindNone BranchKind = iota
	// KindCond is a conditional branch (the speculation target).
	KindCond
	// KindCall invokes a region (pushes the return-address stack).
	KindCall
	// KindReturn exits a region (pops the return-address stack).
	KindReturn
	// KindIndirect is a multi-target indirect jump.
	KindIndirect
)

// Block is one basic block.
type Block struct {
	// Ops is the number of non-memory ALU instructions.
	Ops int
	// Loads and Stores are the memory instruction counts.
	Loads, Stores int
	// DeadOps (and DeadLoads) are the instructions the distiller can
	// remove when this block's conditional branch is speculated away:
	// the compare chain feeding the branch and the code made dead by
	// assuming one direction (cf. the paper's Figure 1 example).
	DeadOps, DeadLoads int

	// Kind describes the terminating control transfer; KindCond blocks
	// name the static branch that decides the successor.
	Kind BranchKind
	// Branch is the global static branch index for KindCond (else -1).
	Branch int
	// TakenNext and FallNext are successor block indices within the
	// region (-1 exits the region). KindNone uses FallNext.
	TakenNext, FallNext int
	// Targets are the successor choices of a KindIndirect block.
	Targets []int

	// ValueLoad names a static load in Program.ValueLoads whose produced
	// value the distiller may speculate on (Figure 1's x.d == 32
	// approximation); -1 if the block has no such load.
	ValueLoad int
	// FoldOps and FoldLoads are the instructions removed when the value
	// load is speculated to a constant (the load itself plus the
	// computation the constant folds away).
	FoldOps, FoldLoads int

	// PC is the static address of the terminating instruction.
	PC uint64
	// AddrBase, AddrSpan and Stride describe the block's data working
	// set; the timing model generates load/store addresses from them.
	AddrBase, AddrSpan, Stride uint64
}

// Instrs returns the block's total original instruction count (including the
// terminating control transfer, if any).
func (b *Block) Instrs() int {
	n := b.Ops + b.Loads + b.Stores
	if b.Kind != KindNone {
		n++
	}
	return n
}

// Region is a function or loop body: an entry block plus a small CFG.
type Region struct {
	Name   string
	Blocks []Block
	// Weight is the region's relative invocation frequency.
	Weight float64
	// EntryPC is the region's entry address (the call target).
	EntryPC uint64
}

// Branch is a static conditional branch.
type Branch struct {
	Model  behavior.Model
	PC     uint64
	Region int
	// Class is a free-form label for tests and reports (e.g. "biased",
	// "changer").
	Class string
}

// ValueLoad is a static load whose value stream a values.Model produces.
type ValueLoad struct {
	Model  values.Model
	Region int
	// Class is a free-form label ("invariant", "phase", "varying").
	Class string
}

// Program is a complete synthetic program.
type Program struct {
	Name       string
	Seed       uint64
	Regions    []Region
	Branches   []Branch
	ValueLoads []ValueLoad
}

// Validate checks structural invariants: successor indices in range, branch
// indices valid, weights non-negative.
func (p *Program) Validate() error {
	for ri := range p.Regions {
		r := &p.Regions[ri]
		if r.Weight < 0 {
			return fmt.Errorf("program: region %d has negative weight", ri)
		}
		for bi := range r.Blocks {
			b := &r.Blocks[bi]
			check := func(n int) error {
				if n < -1 || n >= len(r.Blocks) {
					return fmt.Errorf("program: region %d block %d successor %d out of range", ri, bi, n)
				}
				return nil
			}
			if err := check(b.TakenNext); err != nil {
				return err
			}
			if err := check(b.FallNext); err != nil {
				return err
			}
			for _, t := range b.Targets {
				if err := check(t); err != nil {
					return err
				}
			}
			if b.Kind == KindCond && (b.Branch < 0 || b.Branch >= len(p.Branches)) {
				return fmt.Errorf("program: region %d block %d names invalid branch %d", ri, bi, b.Branch)
			}
			if b.DeadOps > b.Ops || b.DeadLoads > b.Loads {
				return fmt.Errorf("program: region %d block %d removes more instructions than it has", ri, bi)
			}
			if b.ValueLoad >= len(p.ValueLoads) {
				return fmt.Errorf("program: region %d block %d names invalid value load %d", ri, bi, b.ValueLoad)
			}
			if b.FoldOps > b.Ops || b.FoldLoads > b.Loads {
				return fmt.Errorf("program: region %d block %d folds more instructions than it has", ri, bi)
			}
		}
	}
	return nil
}

// Step is one dynamic basic-block execution.
type Step struct {
	Region, Block int
	// Branch and Taken describe the resolved conditional branch (Branch
	// is -1 for non-conditional blocks).
	Branch int
	Taken  bool
	// Kind mirrors the block's terminating control transfer.
	Kind BranchKind
	// Target is the resolved next-PC for indirect jumps and returns.
	Target uint64
	// ValueLoad and Value carry the block's value-load result (ValueLoad
	// is -1 when the block has none).
	ValueLoad int
	Value     uint32
	// RegionEntry is set on the first step of a region invocation.
	RegionEntry bool
}

// Executor walks a program deterministically, producing the dynamic block
// stream. Region invocations are sampled by weight; within a region the CFG
// is followed with branch outcomes drawn from the branch models.
type Executor struct {
	prog     *Program
	execIdx  []uint64 // per-branch execution index
	valIdx   []uint64 // per-value-load execution index
	rnd      rng
	weights  []float64
	cum      []float64
	total    float64
	curReg   int
	curBlk   int
	inRegion bool
	steps    uint64
	// MaxBlocksPerInvocation bounds loop iterations within a single
	// region invocation so malformed CFGs cannot hang the simulation.
	MaxBlocksPerInvocation int
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// NewExecutor returns an executor positioned before the first step.
func NewExecutor(p *Program) *Executor {
	e := &Executor{
		prog:                   p,
		execIdx:                make([]uint64, len(p.Branches)),
		valIdx:                 make([]uint64, len(p.ValueLoads)),
		MaxBlocksPerInvocation: 100_000,
	}
	for _, r := range p.Regions {
		e.total += r.Weight
		e.cum = append(e.cum, e.total)
	}
	e.Reset()
	return e
}

// Reset rewinds the executor to the program start.
func (e *Executor) Reset() {
	e.rnd = rng{s: e.prog.Seed}
	for i := range e.execIdx {
		e.execIdx[i] = 0
	}
	for i := range e.valIdx {
		e.valIdx[i] = 0
	}
	e.inRegion = false
	e.steps = 0
}

// pickRegion samples a region invocation by weight.
func (e *Executor) pickRegion() int {
	x := e.rnd.float64() * e.total
	lo, hi := 0, len(e.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next produces the next dynamic block. It never returns false — programs
// are unbounded streams; callers stop after the instruction budget of a run.
func (e *Executor) Next() Step {
	if !e.inRegion {
		e.curReg = e.pickRegion()
		e.curBlk = 0
		e.inRegion = true
		e.steps = 0
	}
	r := &e.prog.Regions[e.curReg]
	b := &r.Blocks[e.curBlk]
	st := Step{
		Region:      e.curReg,
		Block:       e.curBlk,
		Branch:      -1,
		Kind:        b.Kind,
		ValueLoad:   -1,
		RegionEntry: e.steps == 0,
	}
	e.steps++
	if b.ValueLoad >= 0 {
		n := e.valIdx[b.ValueLoad]
		e.valIdx[b.ValueLoad] = n + 1
		st.ValueLoad = b.ValueLoad
		st.Value = e.prog.ValueLoads[b.ValueLoad].Model.Value(n)
	}
	next := b.FallNext
	switch b.Kind {
	case KindCond:
		n := e.execIdx[b.Branch]
		e.execIdx[b.Branch] = n + 1
		taken := e.prog.Branches[b.Branch].Model.Outcome(n)
		st.Branch = b.Branch
		st.Taken = taken
		if taken {
			next = b.TakenNext
		}
	case KindIndirect:
		if len(b.Targets) > 0 {
			next = b.Targets[e.rnd.next()%uint64(len(b.Targets))]
			st.Target = r.EntryPC + uint64(next)*64
		}
	case KindReturn:
		next = -1
	}
	if e.steps >= uint64(e.MaxBlocksPerInvocation) {
		next = -1
	}
	if next < 0 {
		e.inRegion = false
	} else {
		e.curBlk = next
	}
	return st
}

// Executions returns how many times branch id has executed.
func (e *Executor) Executions(id int) uint64 { return e.execIdx[id] }
