package program

import (
	"testing"

	"reactivespec/internal/behavior"
)

// twoBlockProgram is a minimal hand-built program: entry block with a
// conditional branch that either loops to itself or exits.
func twoBlockProgram(m behavior.Model) *Program {
	return &Program{
		Name: "tiny",
		Seed: 1,
		Regions: []Region{{
			Name:   "r0",
			Weight: 1,
			Blocks: []Block{
				{Ops: 3, Loads: 1, Kind: KindCond, Branch: 0, TakenNext: 0, FallNext: -1, ValueLoad: -1, PC: 0x100, AddrSpan: 256, Stride: 8},
			},
		}},
		Branches: []Branch{{Model: m, PC: 0x100, Region: 0}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := twoBlockProgram(behavior.Fixed(false)).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSuccessor(t *testing.T) {
	p := twoBlockProgram(behavior.Fixed(false))
	p.Regions[0].Blocks[0].TakenNext = 7
	if err := p.Validate(); err == nil {
		t.Fatal("expected successor range error")
	}
}

func TestValidateRejectsBadBranchIndex(t *testing.T) {
	p := twoBlockProgram(behavior.Fixed(false))
	p.Regions[0].Blocks[0].Branch = 3
	if err := p.Validate(); err == nil {
		t.Fatal("expected branch index error")
	}
}

func TestValidateRejectsOverRemoval(t *testing.T) {
	p := twoBlockProgram(behavior.Fixed(false))
	p.Regions[0].Blocks[0].DeadOps = 99
	if err := p.Validate(); err == nil {
		t.Fatal("expected dead-op count error")
	}
}

func TestBlockInstrs(t *testing.T) {
	b := Block{Ops: 3, Loads: 2, Stores: 1, Kind: KindCond}
	if b.Instrs() != 7 {
		t.Fatalf("Instrs = %d, want 7", b.Instrs())
	}
	b.Kind = KindNone
	if b.Instrs() != 6 {
		t.Fatalf("fall-through Instrs = %d, want 6", b.Instrs())
	}
}

func TestExecutorFollowsOutcomes(t *testing.T) {
	// Branch taken exactly 3 times per invocation, then exits.
	p := twoBlockProgram(behavior.InductionFlip{FlipAt: 3, TakenFirst: true})
	e := NewExecutor(p)
	steps := 0
	for i := 0; i < 4; i++ {
		st := e.Next()
		if st.Region != 0 || st.Block != 0 || st.Branch != 0 {
			t.Fatalf("step %d = %+v", i, st)
		}
		wantTaken := i < 3
		if st.Taken != wantTaken {
			t.Fatalf("step %d taken = %v", i, st.Taken)
		}
		steps++
	}
	// The next step begins a fresh invocation.
	st := e.Next()
	if !st.RegionEntry {
		t.Fatal("expected a new region invocation")
	}
	_ = steps
}

func TestExecutorDeterminism(t *testing.T) {
	p, err := Synthesize("det", DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewExecutor(p), NewExecutor(p)
	for i := 0; i < 50_000; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("executors diverge at step %d: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestExecutorReset(t *testing.T) {
	p, err := Synthesize("rst", DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p)
	first := make([]Step, 1_000)
	for i := range first {
		first[i] = e.Next()
	}
	e.Reset()
	for i := range first {
		if got := e.Next(); got != first[i] {
			t.Fatalf("reset replay diverges at %d", i)
		}
	}
}

func TestExecutorLoopCap(t *testing.T) {
	// An always-taken self-loop would never exit without the cap.
	p := twoBlockProgram(behavior.Fixed(true))
	e := NewExecutor(p)
	e.MaxBlocksPerInvocation = 100
	for i := 0; i < 100; i++ {
		e.Next()
	}
	st := e.Next()
	if !st.RegionEntry {
		t.Fatal("loop cap did not force a region exit")
	}
}

func TestExecutorTracksExecutions(t *testing.T) {
	p := twoBlockProgram(behavior.Fixed(false))
	e := NewExecutor(p)
	for i := 0; i < 10; i++ {
		e.Next() // each invocation executes the branch once and exits
	}
	if got := e.Executions(0); got != 10 {
		t.Fatalf("Executions = %d, want 10", got)
	}
}

func TestSynthesizeValidates(t *testing.T) {
	for _, name := range []string{"a", "b", "c"} {
		p, err := Synthesize(name, DefaultSynthOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Regions) != DefaultSynthOptions().Regions {
			t.Fatalf("%s: %d regions", name, len(p.Regions))
		}
		if len(p.Branches) == 0 {
			t.Fatalf("%s: no branches", name)
		}
	}
}

func TestSynthesizeRejectsBadOptions(t *testing.T) {
	o := DefaultSynthOptions()
	o.Regions = 0
	if _, err := Synthesize("bad", o); err == nil {
		t.Fatal("expected error")
	}
}

func TestSynthesizeClassMix(t *testing.T) {
	o := DefaultSynthOptions()
	o.BiasedFrac = 0.6
	o.ChangerFrac = 0.3
	o.Regions = 40
	p, err := Synthesize("mix", o)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, b := range p.Branches {
		counts[b.Class]++
	}
	if counts["loop"] != 40 {
		t.Fatalf("loop branches = %d, want one per region", counts["loop"])
	}
	for _, class := range []string{"biased", "unbiased", "changer"} {
		if counts[class] == 0 {
			t.Fatalf("class %q missing: %v", class, counts)
		}
	}
}

func TestSynthesizeDifferentNamesDiffer(t *testing.T) {
	a, _ := Synthesize("one", DefaultSynthOptions())
	b, _ := Synthesize("two", DefaultSynthOptions())
	ea, eb := NewExecutor(a), NewExecutor(b)
	same := 0
	for i := 0; i < 1_000; i++ {
		if ea.Next() == eb.Next() {
			same++
		}
	}
	if same == 1_000 {
		t.Fatal("differently-named programs produced identical streams")
	}
}

func TestSynthesizePlantsValueLoads(t *testing.T) {
	p, err := Synthesize("vals", DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ValueLoads) == 0 {
		t.Fatal("no value loads planted")
	}
	classes := map[string]int{}
	for _, vl := range p.ValueLoads {
		classes[vl.Class]++
	}
	for _, c := range []string{"invariant", "phase", "varying"} {
		if classes[c] == 0 {
			t.Fatalf("value-load class %q missing: %v", c, classes)
		}
	}
	// Every referencing block must be consistent.
	for _, r := range p.Regions {
		for _, b := range r.Blocks {
			if b.ValueLoad >= 0 {
				if b.Loads == 0 {
					t.Fatal("value-load block has no loads")
				}
				if b.FoldLoads == 0 {
					t.Fatal("value-load block folds nothing")
				}
			}
		}
	}
}

func TestExecutorProducesValues(t *testing.T) {
	p, err := Synthesize("vals2", DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p)
	valIdx := make([]uint64, len(p.ValueLoads))
	seen := 0
	for i := 0; i < 200_000 && seen < 500; i++ {
		st := e.Next()
		if st.ValueLoad < 0 {
			continue
		}
		n := valIdx[st.ValueLoad]
		valIdx[st.ValueLoad] = n + 1
		if want := p.ValueLoads[st.ValueLoad].Model.Value(n); st.Value != want {
			t.Fatalf("value load %d execution %d: got %d, model says %d",
				st.ValueLoad, n, st.Value, want)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("executor never produced a value load")
	}
}
